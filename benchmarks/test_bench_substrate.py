"""Micro-benchmarks of the substrate itself (ablation-style).

These measure the *host-side* performance of the reproduction — ring
throughput, rewriting speed, BPF interpretation — useful when tuning the
simulator, and they double as the DESIGN.md ablation benches for the
design choices the paper calls out (ring vs per-follower queues, spin vs
waitlock, ring capacity).
"""

from repro.bpf import assemble_bpf, pack_seccomp_data
from repro.core import RingBuffer, syscall_event
from repro.costmodel import DEFAULT_COSTS
from repro.isa import assemble
from repro.isa.memory import AddressSpace, Segment
from repro.rewriter import BinaryRewriter
from repro.sim import Machine, Simulator


def _pump_ring(events: int, consumers: int, capacity: int) -> int:
    sim = Simulator()
    machine = Machine(sim, name="m")
    ring = RingBuffer(sim, DEFAULT_COSTS, capacity=capacity)
    for vid in range(1, consumers + 1):
        ring.add_consumer(vid)

    def producer():
        for i in range(events):
            yield from ring.publish(syscall_event("close", 0, i + 1, 0))

    def consumer(vid):
        for _ in range(events):
            while ring.peek(vid) is None:
                yield from ring.wait_published(
                    False, lambda: ring.peek(vid) is not None)
            ring.advance(vid)

    machine.spawn(producer(), name="p")
    for vid in range(1, consumers + 1):
        machine.spawn(consumer(vid), name=f"c{vid}")
    sim.run()
    return sim.now


def test_bench_ring_throughput(benchmark):
    """Host wall-time to stream 2000 events through 3 consumers."""
    virtual = benchmark(lambda: _pump_ring(2000, 3, 256))
    assert virtual > 0


def test_bench_ring_capacity_ablation(benchmark):
    """Ablation: a one-slot ring (the paper's no-buffering security
    configuration, §6) costs producer stalls; 256 slots absorb jitter."""
    def run():
        tiny = _pump_ring(400, 2, 1)
        default = _pump_ring(400, 2, 256)
        return tiny, default

    tiny, default = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nring capacity 1: {tiny} ps, capacity 256: {default} ps")
    assert tiny >= default  # buffering can only help


_REWRITE_SOURCE = "\n".join(
    ["movi rax, 1", "syscall", "mov rbx, rax", "nop", "nop", "nop"] * 200
    + ["hlt"])


def test_bench_rewriter_scan_speed(benchmark):
    """Host wall-time to scan+patch a 200-site text segment."""

    def rewrite():
        space = AddressSpace()
        rewriter = BinaryRewriter(space, auto=False)
        rewriter.install_entry_point()
        code = assemble(_REWRITE_SOURCE, origin=0x1000)
        segment = space.map(Segment(0x1000, code, perms="rx", name="t"))
        rewriter.rewrite_segment(segment)
        return rewriter.patchset.stats.jmp_patched

    patched = benchmark(rewrite)
    assert patched == 200


_FILTER = assemble_bpf("""
ld event[0]
jeq #108, a
jeq #2, b
jmp bad
a: ld [0]
jeq #102, good
b: ld [0]
jeq #104, good
bad: ret #0
good: ret #0x7fff0000
""")
_DATA = pack_seccomp_data(102)


def test_bench_bpf_interpreter(benchmark):
    """Host-side speed of one rewrite-rule evaluation."""
    verdict = benchmark(lambda: _FILTER.run(_DATA, [108]))
    assert verdict == 0x7FFF0000
