"""Regenerates Figure 4: system call microbenchmarks."""

from repro.experiments import figure4
from conftest import run_and_render


def test_bench_figure4(benchmark):
    result = run_and_render(benchmark, figure4.run, iterations=200,
                            warmup=20)
    by_call = {row["syscall"]: row for row in result.rows}
    # Shape assertions straight from the paper's discussion (§4.1).
    assert by_call["close"]["follower"] < by_call["close"]["native"]
    assert by_call["open"]["leader"] > 3 * by_call["open"]["native"]
    assert by_call["time"]["native"] < 100  # vDSO fast path
