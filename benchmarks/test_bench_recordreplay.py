"""Regenerates the §5.4 record-replay comparison with Scribe."""

from repro.experiments import recordreplay_exp
from conftest import run_and_render


def test_bench_recordreplay(benchmark):
    result = run_and_render(benchmark, recordreplay_exp.run, scale=0.02)
    rows = {row["system"]: row for row in result.rows}
    varan = rows["varan record client"]["overhead"]
    scribe = rows["scribe (in-kernel)"]["overhead"]
    # Paper: 14% vs 53%.
    assert varan < scribe
    assert varan < 1.3
    assert scribe > 1.25


def test_bench_replay_triage(benchmark):
    outcome = benchmark.pedantic(recordreplay_exp.triage_crash,
                                 rounds=1, iterations=1)
    print()
    print("replay triage:", outcome)
    assert outcome["crashed_revisions"] == [outcome["expected_buggy"]]
