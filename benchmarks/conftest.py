"""Shared fixtures for the benchmark harness.

Each ``test_bench_*`` module regenerates one table or figure of the
paper: it runs the experiment driver once under pytest-benchmark (wall
time of the regeneration is the benchmarked quantity) and prints the
rows the paper reports, so ``pytest benchmarks/ --benchmark-only -s``
reproduces the evaluation section end to end.
"""

import pytest


def run_and_render(benchmark, driver, **kwargs):
    """Run one experiment driver under pytest-benchmark and print it."""
    result = benchmark.pedantic(lambda: driver(**kwargs),
                                rounds=1, iterations=1)
    print()
    print(result.render())
    return result


@pytest.fixture
def render(benchmark):
    def runner(driver, **kwargs):
        return run_and_render(benchmark, driver, **kwargs)

    return runner
