"""Regenerates Figure 5: C10k server overhead for 0-6 followers."""

from repro.experiments import figure5
from conftest import run_and_render


def test_bench_figure5(benchmark):
    result = run_and_render(benchmark, figure5.run, scale=0.005)
    rows = {row["server"]: row for row in result.rows}
    # Who wins / who loses, per the paper:
    assert rows["beanstalkd"]["f1"] > rows["lighttpd"]["f1"]
    assert rows["redis"]["f1"] < 1.2
    # Overhead grows (weakly) with follower count for every server.
    for row in rows.values():
        assert row["f6"] >= row["f0"] - 0.02
    # Beanstalkd alone pays a visible interception cost (INT0 site).
    assert rows["beanstalkd"]["f0"] > 1.05
    assert rows["lighttpd"]["f0"] < 1.05
