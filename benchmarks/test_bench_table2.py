"""Regenerates Table 2: Varan vs Mx, Orchestra and Tachyon."""

from repro.experiments import table2
from conftest import run_and_render


def test_bench_table2(benchmark):
    result = run_and_render(benchmark, table2.run, scale=0.02,
                            spec_scale=0.05)
    for row in result.rows:
        # The headline claim: Varan beats the prior system everywhere.
        assert row["varan"] < row["prior"], row
    by_bench = {(r["system"], r["benchmark"]): r for r in result.rows}
    # ptrace lockstep is catastrophic on I/O-bound servers (>2x)...
    assert by_bench[("mx", "redis-benchmark")]["prior"] > 2.0
    assert by_bench[("tachyon", "lighttpd-ab")]["prior"] > 2.0
    # ...while Varan stays close to native.
    assert by_bench[("mx", "lighttpd-http_load")]["varan"] < 1.2
    assert by_bench[("tachyon", "thttpd-ab")]["varan"] < 1.15
