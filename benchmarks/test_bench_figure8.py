"""Regenerates Figure 8: SPEC CPU2006 overhead for 0-6 followers."""

from repro.experiments import figure8
from conftest import run_and_render


def test_bench_figure8(benchmark):
    result = run_and_render(benchmark, figure8.run, scale=0.05)
    rows = {row["benchmark"]: row for row in result.rows}
    assert rows["429.mcf"]["f6"] > 2.5
    assert rows["456.hmmer"]["f6"] < 1.7
    # Suite-wide: overhead is monotone-ish in follower count.
    for row in result.rows:
        assert row["f6"] >= row["f1"] - 0.05
