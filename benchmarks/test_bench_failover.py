"""Regenerates the §5.1 transparent-failover measurements."""

import pytest

from repro.experiments import failover
from conftest import run_and_render


def test_bench_failover(benchmark):
    result = run_and_render(benchmark, failover.run)
    rows = {row["scenario"]: row for row in result.rows}
    baseline = rows["redis HMGET baseline (no buggy version)"]
    follower = rows["redis buggy revision as follower"]
    leader = rows["redis buggy revision as leader"]
    # Paper: 42.36us baseline, no change on follower crash, 122.62us on
    # leader crash.
    assert follower["latency_us"] == pytest.approx(
        baseline["latency_us"], rel=0.02)
    assert leader["latency_us"] == pytest.approx(122.62, rel=0.25)
    assert baseline["latency_us"] == pytest.approx(42.36, rel=0.25)
