#!/usr/bin/env python
"""Wall-clock performance harness for the simulation substrate.

Two suites:

``substrate``
    Microbenchmarks of the DES engine hot path — events processed per
    wall-clock second for (a) raw process churn (Compute/Sleep/Block
    dispatch) and (b) the leader→followers ring-buffer pump.  Results go
    to ``benchmarks/BENCH_substrate.json``; ``--check`` re-measures and
    fails if any workload regressed more than ``--tolerance`` (default
    30%) against the committed numbers — that is the CI smoke gate.

``sweep``
    Wall-clock seconds for a representative experiment-sweep slice run
    through :mod:`repro.experiments.runner`, serial and with ``--jobs``.
    Results go to ``benchmarks/BENCH_sweep.json``.

Wall-clock only: none of this touches virtual time.  The invariant that
these optimizations never shift simulated results is enforced
separately by ``python -m repro sweep --check-reference`` and
``tests/test_runner.py``.

Usage::

    python benchmarks/perf_harness.py substrate
    python benchmarks/perf_harness.py substrate --check --tolerance 0.30
    python benchmarks/perf_harness.py sweep --jobs 2
    python benchmarks/perf_harness.py all
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

SUBSTRATE_JSON = os.path.join(_REPO_ROOT, "benchmarks",
                              "BENCH_substrate.json")
SWEEP_JSON = os.path.join(_REPO_ROOT, "benchmarks", "BENCH_sweep.json")

#: Sweep slice used for the wall-clock benchmark: small enough for CI,
#: broad enough to exercise servers, failover and the ring ablations.
SWEEP_SLICE = ("ablations", "failover-5.1", "figure6", "sanitization-5.3")
SWEEP_SCALE = 0.008


# -- substrate workloads ----------------------------------------------------

def engine_churn(procs: int = 20, iters: int = 2000) -> int:
    """Raw engine throughput: Compute/Sleep/Block dispatch churn.

    Returns the number of simulator events processed.
    """
    from repro.sim.core import Block, Compute, Simulator, Sleep
    from repro.sim.machine import Machine

    sim = Simulator()
    machine = Machine(sim, name="bench")

    def worker(k):
        for i in range(iters):
            yield Compute(100 + (i + k) % 7)
            if i % 5 == 0:
                yield Sleep(50)
            if i % 11 == 0:
                yield Block(timeout_ps=25)

    for k in range(procs):
        machine.spawn(worker(k), name=f"w{k}")
    sim.run()
    return sim.events_processed


def pump_ring(events: int = 3000, consumers: int = 3,
              capacity: int = 256) -> int:
    """Leader→followers event pump through the shared ring buffer.

    One producer publishes ``events`` syscall events; ``consumers``
    spin-waiting followers drain them.  Returns the number of simulator
    events processed.
    """
    from repro.core.events import syscall_event
    from repro.core.ringbuffer import RingBuffer
    from repro.costmodel import DEFAULT_COSTS
    from repro.sim.core import Simulator
    from repro.sim.machine import Machine

    sim = Simulator()
    machine = Machine(sim, name="bench")
    ring = RingBuffer(sim, DEFAULT_COSTS, capacity=capacity)
    for vid in range(1, consumers + 1):
        ring.add_consumer(vid)

    def producer():
        for i in range(events):
            yield from ring.publish(syscall_event("close", 0, i + 1, 0))

    def consumer(vid):
        for _ in range(events):
            while ring.peek(vid) is None:
                yield from ring.wait_published(
                    False, lambda: ring.peek(vid) is not None)
            ring.advance(vid)

    machine.spawn(producer(), name="leader")
    for vid in range(1, consumers + 1):
        machine.spawn(consumer(vid), name=f"follower{vid}")
    sim.run()
    return sim.events_processed


SUBSTRATE_WORKLOADS = {
    "engine_churn": engine_churn,
    "pump_ring": pump_ring,
}


def measure_substrate(repeats: int = 3) -> dict:
    """Best-of-``repeats`` events/sec for every substrate workload."""
    results = {}
    for name, workload in SUBSTRATE_WORKLOADS.items():
        best_rate = 0.0
        events = 0
        for _ in range(repeats):
            started = time.perf_counter()
            events = workload()
            elapsed = time.perf_counter() - started
            best_rate = max(best_rate, events / elapsed)
        results[name] = {
            "events": events,
            "events_per_sec": round(best_rate, 1),
        }
    return results


# -- sweep wall-clock -------------------------------------------------------

def measure_sweep(jobs: int) -> dict:
    from repro.experiments import runner

    results = {}
    for label, n in (("serial", 1), (f"jobs{jobs}", jobs)):
        if label in results:
            continue
        started = time.perf_counter()
        swept = runner.run_sweep(jobs=n, scale=SWEEP_SCALE,
                                 experiments=list(SWEEP_SLICE))
        elapsed = time.perf_counter() - started
        results[label] = {
            "jobs": n,
            "seconds": round(elapsed, 2),
            "experiments": len(swept),
        }
        if jobs <= 1:
            break
    return results


# -- plumbing ---------------------------------------------------------------

def _meta() -> dict:
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def write_json(path: str, payload: dict) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.relpath(path, _REPO_ROOT)}")


def check_substrate(measured: dict, tolerance: float) -> int:
    """Exit status 1 if any workload regressed beyond ``tolerance``."""
    try:
        with open(SUBSTRATE_JSON) as fh:
            committed = json.load(fh)
    except FileNotFoundError:
        print(f"no committed baseline at {SUBSTRATE_JSON}; "
              f"run without --check first", file=sys.stderr)
        return 2
    status = 0
    for name, entry in committed["workloads"].items():
        baseline = entry["events_per_sec"]
        current = measured[name]["events_per_sec"]
        floor = baseline * (1.0 - tolerance)
        verdict = "ok" if current >= floor else "REGRESSED"
        print(f"{name}: {current:.0f} ev/s vs baseline {baseline:.0f} "
              f"(floor {floor:.0f}) {verdict}")
        if current < floor:
            status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("suite", choices=("substrate", "sweep", "all"))
    parser.add_argument("--repeats", type=int, default=3,
                        help="substrate: repetitions, best kept")
    parser.add_argument("--jobs", type=int, default=2,
                        help="sweep: parallel worker count to time")
    parser.add_argument("--check", action="store_true",
                        help="substrate: compare against committed "
                             "BENCH_substrate.json instead of writing")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="substrate --check: allowed fractional "
                             "events/sec regression (default 0.30)")
    args = parser.parse_args(argv)

    status = 0
    if args.suite in ("substrate", "all"):
        measured = measure_substrate(repeats=args.repeats)
        for name, entry in measured.items():
            print(f"{name}: {entry['events_per_sec']:.0f} events/sec "
                  f"({entry['events']} events)")
        if args.check:
            status = check_substrate(measured, args.tolerance)
        else:
            write_json(SUBSTRATE_JSON,
                       {"meta": _meta(), "workloads": measured})
    if status == 0 and args.suite in ("sweep", "all"):
        timed = measure_sweep(jobs=args.jobs)
        for label, entry in timed.items():
            print(f"sweep[{label}]: {entry['seconds']}s "
                  f"({entry['experiments']} experiments)")
        if not args.check:
            write_json(SWEEP_JSON, {
                "meta": _meta(),
                "scale": SWEEP_SCALE,
                "experiments": list(SWEEP_SLICE),
                "runs": timed,
            })
    return status


if __name__ == "__main__":
    raise SystemExit(main())
