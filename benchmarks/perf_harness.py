#!/usr/bin/env python
"""Wall-clock performance harness for the simulation substrate.

Four suites:

``substrate``
    Microbenchmarks of the DES engine hot path — events processed per
    wall-clock second for (a) raw process churn (Compute/Sleep/Block
    dispatch) and (b) the leader→followers ring-buffer pump.  Results go
    to ``benchmarks/BENCH_substrate.json``; ``--check`` re-measures and
    fails if any workload regressed more than ``--tolerance`` (default
    30%) against the committed numbers — that is the CI smoke gate.

``cpu``
    Guest-MIPS of the VX86 interpreter on the ``cpu_loop`` workload,
    through the translation cache and through per-step decode.  Results
    go to ``benchmarks/BENCH_cpu.json``; ``--check`` fails if cached
    MIPS regressed beyond ``--tolerance`` *or* the cached/per-step
    speedup drops below the committed floor (machine-independent).

``sweep``
    Wall-clock seconds for a representative experiment-sweep slice run
    through :mod:`repro.experiments.runner`, serial and with ``--jobs``.
    Results go to ``benchmarks/BENCH_sweep.json``.

``loadgen``
    Engine churn at load-generation occupancy: 10k+ concurrent client
    processes, each parking a request watchdog plus retransmit timers
    that are cancelled on response — the standing lazily-cancelled
    population that bloats the single global heap.  Measures
    events/sec under the sharded engine and the single-heap engine on
    the *same* workload; results go to ``benchmarks/BENCH_load.json``
    and ``--check`` enforces both an events/sec floor and the
    sharded/heap speedup ratio (machine-independent, floor 3x).

Wall-clock only: none of this touches virtual time.  The invariant that
these optimizations never shift simulated results is enforced
separately by ``python -m repro sweep --check-reference`` and
``tests/test_runner.py``.

Usage::

    python benchmarks/perf_harness.py substrate
    python benchmarks/perf_harness.py substrate --check --tolerance 0.30
    python benchmarks/perf_harness.py cpu
    python benchmarks/perf_harness.py cpu --check
    python benchmarks/perf_harness.py cpu --profile   # cProfile hot paths
    python benchmarks/perf_harness.py sweep --jobs 2
    python benchmarks/perf_harness.py loadgen --repeats 1
    python benchmarks/perf_harness.py loadgen --repeats 1 --check
    python benchmarks/perf_harness.py all
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

SUBSTRATE_JSON = os.path.join(_REPO_ROOT, "benchmarks",
                              "BENCH_substrate.json")
CPU_JSON = os.path.join(_REPO_ROOT, "benchmarks", "BENCH_cpu.json")
SWEEP_JSON = os.path.join(_REPO_ROOT, "benchmarks", "BENCH_sweep.json")
LOAD_JSON = os.path.join(_REPO_ROOT, "benchmarks", "BENCH_load.json")

#: The cached/per-step guest-MIPS ratio the cpu gate enforces.  Wall
#: clocks differ across machines but the *ratio* is stable, so this part
#: of the gate travels.
CPU_SPEEDUP_FLOOR = 3.0

#: Superblock+chaining+fusion over the plain basic-block cache
#: (``translate="blocks"``) — the machine-independent floor for the
#: direct-threaded hot path itself.
SUPERBLOCK_VS_BLOCK_FLOOR = 2.0

#: The last committed ``cached_mips`` before superblock translation
#: (PR 3's basic-block cache as measured by the CI runner).  The cpu
#: gate requires the current cached rate to clear 3x this figure.
PR3_CACHED_BASELINE = 0.65
PR3_RATIO_FLOOR = 3.0

#: Sweep slice used for the wall-clock benchmark: small enough for CI,
#: broad enough to exercise servers, failover and the ring ablations.
SWEEP_SLICE = ("ablations", "failover-5.1", "figure6", "sanitization-5.3")
SWEEP_SCALE = 0.008

#: Sharded-engine events/sec over the single-heap engine on the same
#: 10k-process load-generation workload.  Wall clocks differ across
#: machines but the ratio is stable, so this part of the gate travels.
LOADGEN_RATIO_FLOOR = 3.0

#: Load-generation churn shape: 16 machine groups x 625 client actors
#: (10,000 concurrent processes), each request parking three staggered
#: retransmit timers that are cancelled when the response arrives.
LOADGEN_MACHINES = 16
LOADGEN_ACTORS = 625
LOADGEN_CYCLES = 80
LOADGEN_RETRIES = 3
LOADGEN_SHARDS = 8
LOADGEN_INTERVAL_US = 50
LOADGEN_TIMEOUT_INTERVALS = 60


# -- substrate workloads ----------------------------------------------------

def engine_churn(procs: int = 20, iters: int = 2000) -> int:
    """Raw engine throughput: Compute/Sleep/Block dispatch churn.

    Returns the number of simulator events processed.
    """
    from repro.sim.core import Block, Compute, Simulator, Sleep
    from repro.sim.machine import Machine

    sim = Simulator()
    machine = Machine(sim, name="bench")

    def worker(k):
        for i in range(iters):
            yield Compute(100 + (i + k) % 7)
            if i % 5 == 0:
                yield Sleep(50)
            if i % 11 == 0:
                yield Block(timeout_ps=25)

    for k in range(procs):
        machine.spawn(worker(k), name=f"w{k}")
    sim.run()
    return sim.events_processed


def pump_ring(events: int = 3000, consumers: int = 3,
              capacity: int = 256) -> int:
    """Leader→followers event pump through the shared ring buffer.

    One producer publishes ``events`` syscall events; ``consumers``
    spin-waiting followers drain them.  Returns the number of simulator
    events processed.
    """
    from repro.core.events import syscall_event
    from repro.core.ringbuffer import RingBuffer
    from repro.costmodel import DEFAULT_COSTS
    from repro.sim.core import Simulator
    from repro.sim.machine import Machine

    sim = Simulator()
    machine = Machine(sim, name="bench")
    ring = RingBuffer(sim, DEFAULT_COSTS, capacity=capacity)
    for vid in range(1, consumers + 1):
        ring.add_consumer(vid)

    def producer():
        for i in range(events):
            yield from ring.publish(syscall_event("close", 0, i + 1, 0))

    def consumer(vid):
        for _ in range(events):
            while ring.peek(vid) is None:
                yield from ring.wait_published(
                    False, lambda: ring.peek(vid) is not None)
            ring.advance(vid)

    machine.spawn(producer(), name="leader")
    for vid in range(1, consumers + 1):
        machine.spawn(consumer(vid), name=f"follower{vid}")
    sim.run()
    return sim.events_processed


SUBSTRATE_WORKLOADS = {
    "engine_churn": engine_churn,
    "pump_ring": pump_ring,
}


def measure_substrate(repeats: int = 3) -> dict:
    """Best-of-``repeats`` events/sec for every substrate workload."""
    results = {}
    for name, workload in SUBSTRATE_WORKLOADS.items():
        best_rate = 0.0
        events = 0
        for _ in range(repeats):
            started = time.perf_counter()
            events = workload()
            elapsed = time.perf_counter() - started
            best_rate = max(best_rate, events / elapsed)
        results[name] = {
            "events": events,
            "events_per_sec": round(best_rate, 1),
        }
    return results


# -- guest MIPS -------------------------------------------------------------

#: Arithmetic + memory + stack + branch mix, 12 instructions/iteration.
_CPU_LOOP_SOURCE = """
    movi rbx, {iterations}
    movi rcx, 0x20000000
    movi rdx, 7
    movi rsi, 3
loop:
    add rdx, rsi
    store [rcx+0], rdx
    load rax, [rcx+0]
    add rax, rdx
    push rax
    pop rdi
    addi rdx, 13
    cmp rdx, rsi
    subi rbx, 1
    jnz loop
    hlt
"""


def _cpu_loop_build(iterations: int, translate: bool):
    from repro.isa.assembler import assemble
    from repro.isa.cpu import Cpu
    from repro.isa.memory import AddressSpace, Segment

    code = assemble(_CPU_LOOP_SOURCE.format(iterations=iterations),
                    origin=0x1000)
    space = AddressSpace()
    space.map(Segment(0x1000, code, perms="rx", name="text"))
    space.map(Segment(0x2000_0000, bytes(0x1000), perms="rw", name="data"))
    space.map(Segment(0x7FF0_0000, bytes(0x4000), perms="rw", name="stack"))
    return Cpu(space, 0x1000, 0x7FF0_4000, name="bench",
               translate=translate)


def cpu_loop(iterations: int = 60_000, translate: bool = True):
    """Run the guest loop; returns (instructions retired, seconds)."""
    cpu = _cpu_loop_build(iterations, translate)
    started = time.perf_counter()
    cpu.run_sync(max_insns=20_000_000)
    elapsed = time.perf_counter() - started
    return cpu.insns_retired, elapsed


def measure_cpu(repeats: int = 3, iterations: int = 60_000) -> dict:
    """Best-of-``repeats`` guest MIPS: superblock cache, plain
    basic-block cache, and per-step decode."""
    rates = {}
    insns = 0
    for label, translate in (("cached", True), ("block", "blocks"),
                             ("interp", False)):
        best = 0.0
        for _ in range(repeats):
            insns, elapsed = cpu_loop(iterations, translate=translate)
            best = max(best, insns / elapsed / 1e6)
        rates[label] = best
    return {
        "cpu_loop": {
            "instructions": insns,
            "cached_mips": round(rates["cached"], 3),
            "block_mips": round(rates["block"], 3),
            "interp_mips": round(rates["interp"], 3),
            "speedup_x": round(rates["cached"] / rates["interp"], 2),
            "superblock_vs_block_x": round(
                rates["cached"] / rates["block"], 2),
        }
    }


def measure_event_codec(repeats: int = 3, count: int = 200_000) -> dict:
    """Packed 64-byte event line vs the per-field encoder it replaced.

    Measures million-packs/sec for :func:`repro.core.events.pack_event`
    (one pre-compiled Struct for the whole line), for a field-at-a-time
    reference doing one ``struct.pack`` per field (the old shape of the
    seal/encode paths), and for the unpack side.
    """
    import struct

    from repro.core.events import (ETYPE_CODES, pack_event, syscall_event,
                                   unpack_event)

    mask = 2 ** 64 - 1
    event = syscall_event("read", 0, 5, 512, args=(3, 512, 4096))

    def per_field_pack(ev):
        out = struct.pack("<B", ETYPE_CODES[ev.etype] | len(ev.args) << 4)
        out += struct.pack("<B", ev.tindex & 0xFF)
        out += struct.pack("<H", ev.nr & 0xFFFF)
        out += struct.pack("<I", ev.clock & 0xFFFF_FFFF)
        out += struct.pack("<Q", ev.retval & mask)
        for arg in ev.args:
            out += struct.pack("<Q", arg & mask)
        return out + b"\x00" * (8 * (6 - len(ev.args)))

    line = pack_event(event)
    assert per_field_pack(event) == line  # same 64 bytes, same layout

    def rate(fn, arg):
        best = 0.0
        loop = range(count)
        for _ in range(repeats):
            started = time.perf_counter()
            for _ in loop:
                fn(arg)
            elapsed = time.perf_counter() - started
            best = max(best, count / elapsed / 1e6)
        return best

    packed = rate(pack_event, event)
    per_field = rate(per_field_pack, event)
    unpack = rate(unpack_event, line)
    return {
        "packed_mops": round(packed, 3),
        "per_field_mops": round(per_field, 3),
        "unpack_mops": round(unpack, 3),
        "packed_vs_per_field_x": round(packed / per_field, 2),
    }


def check_cpu(measured: dict, tolerance: float) -> int:
    """Exit status 1 on MIPS regression or any ratio below its floor."""
    try:
        with open(CPU_JSON) as fh:
            committed = json.load(fh)
    except FileNotFoundError:
        print(f"no committed baseline at {CPU_JSON}; "
              f"run without --check first", file=sys.stderr)
        return 2
    status = 0
    for name, entry in committed["workloads"].items():
        baseline = entry["cached_mips"]
        current = measured[name]["cached_mips"]
        floor = baseline * (1.0 - tolerance)
        verdict = "ok" if current >= floor else "REGRESSED"
        print(f"{name}: {current:.2f} guest MIPS vs baseline "
              f"{baseline:.2f} (floor {floor:.2f}) {verdict}")
        if current < floor:
            status = 1
        for ratio_key, ratio_floor, label in (
                ("speedup_x", CPU_SPEEDUP_FLOOR, "cached/per-step"),
                ("superblock_vs_block_x", SUPERBLOCK_VS_BLOCK_FLOOR,
                 "superblock/basic-block")):
            ratio = measured[name][ratio_key]
            verdict = "ok" if ratio >= ratio_floor else "REGRESSED"
            print(f"{name}: {label} ratio {ratio:.2f}x "
                  f"(floor {ratio_floor:.1f}x) {verdict}")
            if ratio < ratio_floor:
                status = 1
        pr3_ratio = current / PR3_CACHED_BASELINE
        verdict = "ok" if pr3_ratio >= PR3_RATIO_FLOOR else "REGRESSED"
        print(f"{name}: {pr3_ratio:.2f}x over the PR 3 committed "
              f"baseline ({PR3_CACHED_BASELINE} MIPS, floor "
              f"{PR3_RATIO_FLOOR:.1f}x) {verdict}")
        if pr3_ratio < PR3_RATIO_FLOOR:
            status = 1
    return status


# -- load-generation churn --------------------------------------------------

def loadgen_churn(sim) -> int:
    """Engine churn at open-loop load-generation occupancy.

    10,000 concurrent client actors (16 machine groups x 625) follow the
    request/watchdog shape of :mod:`repro.clients.loadgen`: every
    request parks a Block watchdog plus three staggered retransmit
    timers (``timeout >> 3``, ``>> 2``, ``>> 1``) that are cancelled
    when the per-machine responder wakes the actor.  The cancelled
    timers are lazily dead — the single global heap must push every one
    through an O(log 1-2M) heap and pop the stale survivors at expiry,
    while the sharded engine keeps them in small per-shard heaps and
    compacts them in bulk.  Returns events processed (identical for
    both engines: dispatch order is bit-identical by construction).
    """
    from repro.costmodel import US_PS, MachineSpec
    from repro.sim.core import Block, Sleep
    from repro.sim.machine import Machine

    interval = LOADGEN_INTERVAL_US * US_PS
    timeout_ps = LOADGEN_TIMEOUT_INTERVALS * interval
    spec = MachineSpec(logical_cores=64, physical_cores=32)
    machines = [Machine(sim, spec, name=f"m{i}")
                for i in range(LOADGEN_MACHINES)]

    def noop():
        pass

    def actor():
        while True:
            handles = [sim.schedule(timeout_ps >> (LOADGEN_RETRIES - r),
                                    noop)
                       for r in range(LOADGEN_RETRIES)]
            response = yield Block(timeout_ps=timeout_ps)
            for handle in handles:
                handle.cancel()
            if response is None:
                break

    def responder(mine):
        for cycle in range(LOADGEN_CYCLES):
            yield Sleep(interval)
            for proc in mine:
                proc.wake(cycle)
        yield Sleep(interval)
        for proc in mine:
            proc.wake(None)

    for machine in machines:
        mine = [machine.spawn(actor(), name="a", daemon=True)
                for _ in range(LOADGEN_ACTORS)]
        machine.spawn(responder(mine), name="r")
    sim.run()
    return sim.events_processed


def measure_loadgen(repeats: int = 2) -> dict:
    """Best-of-``repeats`` events/sec, sharded vs single-heap engine."""
    from repro.sim.core import Simulator
    from repro.sim.shard import ShardedSimulator

    rates = {}
    events = 0
    stale_dropped = 0
    for label, make in (("sharded",
                         lambda: ShardedSimulator(shards=LOADGEN_SHARDS)),
                        ("heap", Simulator)):
        best = 0.0
        for _ in range(repeats):
            sim = make()
            started = time.perf_counter()
            events = loadgen_churn(sim)
            elapsed = time.perf_counter() - started
            best = max(best, events / elapsed)
            if label == "sharded":
                stale_dropped = sim.stale_dropped
        rates[label] = best
    return {
        "loadgen_churn": {
            "procs": LOADGEN_MACHINES * LOADGEN_ACTORS,
            "shards": LOADGEN_SHARDS,
            "events": events,
            "stale_dropped": stale_dropped,
            "sharded_events_per_sec": round(rates["sharded"], 1),
            "heap_events_per_sec": round(rates["heap"], 1),
            "sharded_vs_heap_x": round(rates["sharded"] / rates["heap"], 2),
        }
    }


def check_loadgen(measured: dict, tolerance: float) -> int:
    """Exit status 1 on events/sec regression or ratio below the floor."""
    try:
        with open(LOAD_JSON) as fh:
            committed = json.load(fh)
    except FileNotFoundError:
        print(f"no committed baseline at {LOAD_JSON}; "
              f"run without --check first", file=sys.stderr)
        return 2
    status = 0
    for name, entry in committed["workloads"].items():
        baseline = entry["sharded_events_per_sec"]
        current = measured[name]["sharded_events_per_sec"]
        floor = baseline * (1.0 - tolerance)
        verdict = "ok" if current >= floor else "REGRESSED"
        print(f"{name}: {current:.0f} ev/s sharded vs baseline "
              f"{baseline:.0f} (floor {floor:.0f}) {verdict}")
        if current < floor:
            status = 1
        ratio = measured[name]["sharded_vs_heap_x"]
        verdict = "ok" if ratio >= LOADGEN_RATIO_FLOOR else "REGRESSED"
        print(f"{name}: sharded/heap ratio {ratio:.2f}x at "
              f"{measured[name]['procs']} procs "
              f"(floor {LOADGEN_RATIO_FLOOR:.1f}x) {verdict}")
        if ratio < LOADGEN_RATIO_FLOOR:
            status = 1
    return status


# -- sweep wall-clock -------------------------------------------------------

def measure_sweep(jobs: int) -> dict:
    from repro.experiments import runner

    results = {}
    for label, n in (("serial", 1), (f"jobs{jobs}", jobs)):
        if label in results:
            continue
        started = time.perf_counter()
        swept = runner.run_sweep(jobs=n, scale=SWEEP_SCALE,
                                 experiments=list(SWEEP_SLICE))
        elapsed = time.perf_counter() - started
        results[label] = {
            "jobs": n,
            "seconds": round(elapsed, 2),
            "experiments": len(swept),
        }
        if jobs <= 1:
            break
    return results


# -- plumbing ---------------------------------------------------------------

def _meta() -> dict:
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def write_json(path: str, payload: dict) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.relpath(path, _REPO_ROOT)}")


def check_substrate(measured: dict, tolerance: float) -> int:
    """Exit status 1 if any workload regressed beyond ``tolerance``."""
    try:
        with open(SUBSTRATE_JSON) as fh:
            committed = json.load(fh)
    except FileNotFoundError:
        print(f"no committed baseline at {SUBSTRATE_JSON}; "
              f"run without --check first", file=sys.stderr)
        return 2
    status = 0
    for name, entry in committed["workloads"].items():
        baseline = entry["events_per_sec"]
        current = measured[name]["events_per_sec"]
        floor = baseline * (1.0 - tolerance)
        verdict = "ok" if current >= floor else "REGRESSED"
        print(f"{name}: {current:.0f} ev/s vs baseline {baseline:.0f} "
              f"(floor {floor:.0f}) {verdict}")
        if current < floor:
            status = 1
    return status


def _profiled(fn, *args, **kwargs):
    """Run ``fn`` under cProfile, print the hottest frames, return its
    result — the hot-path hunting loop behind every perf PR."""
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    result = profiler.runcall(fn, *args, **kwargs)
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(20)
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("suite", choices=("substrate", "cpu", "sweep",
                                          "loadgen", "all"))
    parser.add_argument("--repeats", type=int, default=3,
                        help="substrate/cpu/loadgen: repetitions, "
                             "best kept")
    parser.add_argument("--jobs", type=int, default=2,
                        help="sweep: parallel worker count to time")
    parser.add_argument("--check", action="store_true",
                        help="substrate/cpu: compare against the "
                             "committed baseline instead of writing")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="--check: allowed fractional regression "
                             "(default 0.30)")
    parser.add_argument("--profile", action="store_true",
                        help="run the selected suites under cProfile "
                             "and print the hottest frames")
    args = parser.parse_args(argv)
    measure = _profiled if args.profile else lambda fn, **kw: fn(**kw)
    if args.profile:
        # Profiler overhead distorts the numbers: never write them as a
        # baseline or judge a regression gate from them.
        args.check = False

    status = 0
    if args.suite in ("substrate", "all"):
        measured = measure(measure_substrate, repeats=args.repeats)
        for name, entry in measured.items():
            print(f"{name}: {entry['events_per_sec']:.0f} events/sec "
                  f"({entry['events']} events)")
        if args.check:
            status = check_substrate(measured, args.tolerance)
        elif not args.profile:
            write_json(SUBSTRATE_JSON,
                       {"meta": _meta(), "workloads": measured})
    if status == 0 and args.suite in ("cpu", "all"):
        measured = measure(measure_cpu, repeats=args.repeats)
        for name, entry in measured.items():
            print(f"{name}: {entry['cached_mips']:.2f} guest MIPS cached "
                  f"(superblocks), {entry['block_mips']:.2f} basic-block, "
                  f"{entry['interp_mips']:.2f} per-step "
                  f"({entry['speedup_x']:.2f}x over per-step, "
                  f"{entry['superblock_vs_block_x']:.2f}x over blocks, "
                  f"{entry['instructions']} insns)")
        codec = measure_event_codec(repeats=args.repeats)
        print(f"event_codec: {codec['packed_mops']:.2f} M packs/s packed "
              f"vs {codec['per_field_mops']:.2f} per-field "
              f"({codec['packed_vs_per_field_x']:.2f}x), "
              f"{codec['unpack_mops']:.2f} M unpacks/s")
        if args.check:
            status = check_cpu(measured, args.tolerance)
        elif not args.profile:
            write_json(CPU_JSON, {"meta": _meta(), "workloads": measured,
                                  "event_codec": codec})
    if status == 0 and args.suite in ("loadgen", "all"):
        measured = measure(measure_loadgen, repeats=args.repeats)
        for name, entry in measured.items():
            print(f"{name}: {entry['sharded_events_per_sec']:.0f} ev/s "
                  f"sharded ({entry['shards']} shards) vs "
                  f"{entry['heap_events_per_sec']:.0f} single-heap = "
                  f"{entry['sharded_vs_heap_x']:.2f}x at "
                  f"{entry['procs']} procs ({entry['events']} events, "
                  f"{entry['stale_dropped']} stale compacted)")
        if args.check:
            status = check_loadgen(measured, args.tolerance)
        elif not args.profile:
            write_json(LOAD_JSON, {"meta": _meta(), "workloads": measured})
    if status == 0 and args.suite in ("sweep", "all"):
        timed = measure_sweep(jobs=args.jobs)
        for label, entry in timed.items():
            print(f"sweep[{label}]: {entry['seconds']}s "
                  f"({entry['experiments']} experiments)")
        if not args.check and not args.profile:
            write_json(SWEEP_JSON, {
                "meta": _meta(),
                "scale": SWEEP_SCALE,
                "experiments": list(SWEEP_SLICE),
                "runs": timed,
            })
    return status


if __name__ == "__main__":
    raise SystemExit(main())
