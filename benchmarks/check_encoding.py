#!/usr/bin/env python
"""Byte-identity checks for the packed event encoders.

The hot-path encoders pack a whole record with one pre-compiled
``struct.Struct`` call instead of field-at-a-time packs.  That is a
pure speed change: the byte streams must not move.  Three exact
comparisons enforce it:

1. ``recordreplay.logfile.encode_event`` against a per-field reference
   encoder that emits the documented wire format one ``struct.pack``
   at a time, across a corpus of event shapes (args, payload, flat
   aux, aux pairs, descriptors, control events, negative values).
2. ``core.events.pack_event`` (the 64-byte ring-slot line) against a
   per-field slot reference, plus an ``unpack_event`` roundtrip.
3. A deterministic recorded session's log bytes against the committed
   golden ``benchmarks/reference_log.bin`` — proof that packed
   encoding leaves recorded logs unchanged.

Run with ``--write-golden`` only after a *deliberate* format change.
"""

from __future__ import annotations

import argparse
import os
import struct
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

from repro.core import NvxSession, VersionSpec  # noqa: E402
from repro.core.events import (  # noqa: E402
    EV_EXIT,
    EV_FORK,
    EVENT_SIZE,
    ETYPE_CODES,
    Event,
    pack_event,
    syscall_event,
    unpack_event,
)
from repro.kernel.uapi import O_RDWR  # noqa: E402
from repro.recordreplay import (  # noqa: E402
    Recorder,
    decode_records,
    encode_event,
)
from repro.recordreplay.logfile import MAGIC  # noqa: E402
from repro.world import World  # noqa: E402

GOLDEN = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "reference_log.bin")

_MASK64 = (1 << 64) - 1


def encode_event_reference(event: Event, payload: bytes = b"") -> bytes:
    """The original field-at-a-time log encoder, kept as the oracle."""
    int_args = [a for a in event.args if isinstance(a, int)]
    if event.aux and all(isinstance(a, tuple) and len(a) == 2
                         for a in event.aux):
        aux_kind = 1
        naux = len(event.aux)
        aux_values = [value for pair in event.aux for value in pair]
    else:
        aux_kind = 0
        aux_values = [a for a in event.aux if isinstance(a, int)]
        naux = len(aux_values)
    fds = event.fd_numbers
    body = struct.pack("<Biq", ETYPE_CODES[event.etype], event.nr,
                       event.clock)
    body += struct.pack("<Hq", event.tindex, event.retval)
    body += struct.pack("<B", len(int_args))
    for arg in int_args:
        body += struct.pack("<q", arg)
    body += struct.pack("<BB", aux_kind, naux)
    for value in aux_values:
        body += struct.pack("<q", value)
    body += struct.pack("<B", len(fds))
    for fd in fds:
        body += struct.pack("<i", fd)
    body += struct.pack("<I", len(payload))
    return struct.pack("<II", MAGIC, len(body) + len(payload)) \
        + body + payload


def pack_event_reference(event: Event) -> bytes:
    """Field-at-a-time rendering of the 64-byte ring-slot line."""
    args = [a & _MASK64 for a in event.args]
    line = struct.pack("<B", ETYPE_CODES[event.etype] | len(args) << 4)
    line += struct.pack("<B", event.tindex & 0xFF)
    line += struct.pack("<H", event.nr & 0xFFFF)
    line += struct.pack("<I", event.clock & 0xFFFF_FFFF)
    line += struct.pack("<Q", event.retval & _MASK64)
    for arg in args:
        line += struct.pack("<Q", arg)
    line += b"\x00" * (8 * (6 - len(args)))
    return line


def event_corpus():
    read = syscall_event("read", 1, 7, 512, args=(3, 512), aux=(9,))
    read.fd_numbers = (4, 5)
    read.fd_count = 2
    epoll = syscall_event("epoll_wait", 0, 11, 2,
                          args=(5, 0, 8, -1), aux=((6, 1), (7, 4)))
    neg = syscall_event("open", 2, 19, -2, args=(0, O_RDWR))
    fork = Event(EV_FORK, -1, "fork", 0, 23, retval=41)
    fork.fd_numbers = (3,)
    fork.fd_count = 1
    exit_ev = Event(EV_EXIT, -1, "exit", 3, 29, retval=-7)
    return [
        (read, b"the-payload"),
        (epoll, b""),
        (neg, b""),
        (fork, b""),
        (exit_ev, b""),
    ]


def check_log_encoder() -> int:
    checked = 0
    for event, payload in event_corpus():
        fast = encode_event(event, payload)
        slow = encode_event_reference(event, payload)
        assert fast == slow, f"encode_event drift for {event!r}"
        [(decoded, back)] = list(decode_records(fast))
        assert back == payload
        assert decoded.retval == event.retval
        checked += 1
    return checked


def check_slot_packer() -> int:
    checked = 0
    for event, _ in event_corpus():
        if not all(isinstance(a, int) for a in event.args):
            continue
        fast = pack_event(event)
        assert len(fast) == EVENT_SIZE
        assert fast == pack_event_reference(event), \
            f"pack_event drift for {event!r}"
        back = unpack_event(fast)
        assert back.etype == event.etype
        assert back.retval == event.retval
        checked += 1
    return checked


def record_session() -> bytes:
    """Deterministic recorded run (mirrors tests/test_recordreplay.py)."""

    def app(ctx):
        fd = yield from ctx.open("/tmp/input")
        data = yield from ctx.read(fd, 32)
        t = yield from ctx.time()
        out = yield from ctx.open("/dev/null", O_RDWR)
        yield from ctx.write(out, data)
        yield from ctx.close(out)
        yield from ctx.close(fd)
        return (data, t)

    world = World()
    world.kernel.fs(world.server).create("/tmp/input", b"the-input")
    session = NvxSession(world, [VersionSpec("prod", app)])
    recorder = Recorder(session, "/var/log.bin")
    session.start()
    world.run()
    return recorder.log_bytes


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write-golden", action="store_true",
                        help="regenerate benchmarks/reference_log.bin")
    options = parser.parse_args()

    shapes = check_log_encoder()
    slots = check_slot_packer()
    print(f"encode_event == per-field reference over {shapes} shapes")
    print(f"pack_event == per-field slot reference over {slots} events")

    log = record_session()
    records = list(decode_records(log))
    assert records, "recorded session produced no events"
    assert any(b"the-input" in payload for _, payload in records)
    if options.write_golden:
        with open(GOLDEN, "wb") as fh:
            fh.write(log)
        print(f"wrote {len(log)} golden bytes ({len(records)} records)")
        return 0
    with open(GOLDEN, "rb") as fh:
        golden = fh.read()
    assert log == golden, (
        f"recorded log drifted from golden: {len(log)} bytes vs "
        f"{len(golden)} committed — the encoder changed the byte stream")
    print(f"recorded log matches golden byte-for-byte "
          f"({len(log)} bytes, {len(records)} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
