"""Regenerates the §5.3 live-sanitization measurements."""

from repro.experiments import sanitization
from conftest import run_and_render


def test_bench_sanitization(benchmark):
    result = run_and_render(benchmark, sanitization.run, scale=0.02)
    rows = {row["configuration"]: row for row in result.rows}
    asan = rows["plain leader + ASan follower"]
    # Paper: no additional leader slowdown; small log distance.
    assert asan["leader_slowdown"] < 1.1
    assert asan["median_log_distance"] < 256  # follower keeps up


def test_bench_sanitizer_detects_injected_bug(benchmark):
    reports, _session = benchmark.pedantic(
        sanitization.detect_use_after_free, rounds=1, iterations=1)
    assert any(r.kind == "heap-use-after-free" for r in reports)
