"""Regenerates the §5.2 multi-revision execution experiment."""

from repro.experiments import multirevision
from conftest import run_and_render


def test_bench_multirevision(benchmark):
    result = run_and_render(benchmark, multirevision.run)
    varan_rows = [r for r in result.rows if r["monitor"] == "varan+bpf"]
    assert all(r["followers_alive"] == 1 for r in varan_rows)
    lockstep = [r for r in result.rows
                if r["monitor"] == "ptrace-lockstep"][0]
    assert lockstep["followers_alive"] == 0  # prior systems cannot
