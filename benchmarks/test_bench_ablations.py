"""Regenerates the DESIGN.md ablation studies."""

from repro.experiments import ablations
from conftest import run_and_render


def test_bench_pump_vs_ring(benchmark):
    result = run_and_render(benchmark, ablations.pump_vs_ring)
    by_count = {row["consumers"]: row for row in result.rows}
    assert by_count[6]["pump_penalty"] > by_count[1]["pump_penalty"]


def test_bench_ring_capacity(benchmark):
    result = run_and_render(benchmark, ablations.ring_capacity)
    times = [row["time_us"] for row in result.rows]
    assert times[0] >= times[-1]  # capacity 1 slowest


def test_bench_waitlock(benchmark):
    result = run_and_render(benchmark, ablations.waitlock)
    assert len(result.rows) == 2
