"""Regenerates Figure 7: SPEC CPU2000 overhead for 0-6 followers."""

from repro.experiments import figure7
from conftest import run_and_render


def test_bench_figure7(benchmark):
    result = run_and_render(benchmark, figure7.run, scale=0.05)
    rows = {row["benchmark"]: row for row in result.rows}
    # mcf (memory-bound) scales far worse than eon/crafty (cache-light).
    assert rows["181.mcf"]["f6"] > 2.5
    assert rows["252.eon"]["f6"] < 1.6
    assert rows["186.crafty"]["f1"] < 1.15
