"""Regenerates Figure 6: prior-work servers under Varan."""

from repro.experiments import figure6
from conftest import run_and_render


def test_bench_figure6(benchmark):
    result = run_and_render(benchmark, figure6.run, scale=0.02,
                            follower_counts=(0, 1, 2, 3, 4, 5, 6))
    # Varan scales essentially flat on these workloads (§4.3).
    for row in result.rows:
        assert row["f6"] < 1.35
        assert row["f0"] < 1.1
