"""Sharded DES engine: bit-identity with the single-heap engine.

The contract under test is the one :mod:`repro.sim.shard` documents:
for *any* shard count and *any* shard assignment, the sharded engine
dispatches the same events, at the same virtual times, in the same
order, with the same side effects as :class:`repro.sim.core.Simulator`.
Hypothesis drives random programs through both engines and compares
their full dispatch traces; the remaining tests pin the edge cases
(until_ps pauses, clock rewind, deadlock, max_events) and the stale
compaction machinery.
"""

from hypothesis import given, settings, strategies as st
import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.core import Block, Compute, Simulator, Sleep
from repro.sim.machine import Machine
from repro.sim.shard import ShardedSimulator
from repro.world import default_engine


# -- random-program equivalence ---------------------------------------------

_OPS = st.tuples(
    st.sampled_from(["compute", "sleep", "block", "timer", "cancel",
                     "burst"]),
    st.integers(min_value=1, max_value=400))


@st.composite
def _program(draw):
    n_machines = draw(st.integers(1, 4))
    n_procs = draw(st.integers(1, 6))
    procs = [(draw(st.integers(0, n_machines - 1)),
              draw(st.lists(_OPS, min_size=1, max_size=10)))
             for _ in range(n_procs)]
    return n_machines, procs


def _run_program(sim, program):
    """Execute a generated program, returning its full dispatch trace."""
    n_machines, procs = program
    machines = [Machine(sim, name=f"m{i}") for i in range(n_machines)]
    log = []

    def worker(pid, ops):
        for i, (op, arg) in enumerate(ops):
            log.append(("op", pid, i, op, sim.now))
            if op == "compute":
                yield Compute(arg)
            elif op == "sleep":
                yield Sleep(arg)
            elif op == "block":
                yield Block(timeout_ps=arg)
            elif op == "timer":
                sim.schedule(arg, lambda pid=pid, i=i:
                             log.append(("fire", pid, i, sim.now)))
            elif op == "cancel":
                handle = sim.schedule(
                    arg, lambda pid=pid, i=i:
                    log.append(("cancelled-fired!", pid, i)))
                handle.cancel()
            elif op == "burst":
                # Retransmit-timer shape: stagger several timers, cancel
                # half — the standing stale population compaction eats.
                handles = [sim.schedule(arg + 13 * k, lambda pid=pid,
                                        i=i, k=k: log.append(
                                            ("burst", pid, i, k, sim.now)))
                           for k in range(4)]
                for k, handle in enumerate(handles):
                    if k % 2:
                        handle.cancel()
                yield Sleep(1)

    for pid, (machine_index, ops) in enumerate(procs):
        machines[machine_index].spawn(worker(pid, ops), name=f"p{pid}")
    sim.run()
    return log, sim.now, sim.events_processed


class TestRandomProgramEquivalence:
    @given(_program(), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_trace_identical_to_single_heap(self, program, shards):
        baseline = _run_program(Simulator(), program)
        sharded = _run_program(ShardedSimulator(shards=shards), program)
        assert sharded == baseline

    @given(_program(), st.integers(2, 4), st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_any_shard_assignment_is_equivalent(self, program, shards,
                                                salt):
        """Dispatch order cannot depend on which shard holds a machine."""
        baseline = _run_program(Simulator(), program)
        scrambled = ShardedSimulator(
            shards=shards,
            group_of=lambda name: (int(name[1:]) * 0x9E3779B1 + salt))
        assert _run_program(scrambled, program) == baseline


# -- run() edge-case parity --------------------------------------------------

def _staged(sim):
    """A small fixed program with events straddling t=500."""
    machine = Machine(sim, name="m0")
    log = []

    def worker():
        for step in range(6):
            log.append((sim.now, step))
            yield Sleep(200)

    machine.spawn(worker(), name="w", daemon=True)
    return log


class TestRunEdges:
    def test_until_ps_pause_and_resume_parity(self):
        results = []
        for sim in (Simulator(), ShardedSimulator(shards=3)):
            log = _staged(sim)
            sim.run(until_ps=500)
            paused = (sim.now, list(log), sim.events_processed)
            sim.run()
            results.append((paused, (sim.now, log, sim.events_processed)))
        assert results[0] == results[1]
        (paused, _final) = results[0]
        assert paused[0] == 500  # clock parked exactly at the deadline

    def test_clock_rewind_diverts_immediate_lane(self):
        """run(until_ps=<earlier>) rewinds the clock; a delay-0 event
        scheduled then must not break the immediate lane's sort order."""
        logs = []
        for sim in (Simulator(), ShardedSimulator(shards=2)):
            log = []
            sim.schedule(50, lambda log=log: log.append(("late", 50)))
            sim.run(until_ps=40)
            assert sim.now == 40
            sim.schedule(0, lambda log=log, sim=sim:
                         log.append(("imm40", sim.now)))
            sim.run(until_ps=20)  # rewind: now goes 40 -> 20
            assert sim.now == 20
            sim.schedule(0, lambda log=log, sim=sim:
                         log.append(("imm20", sim.now)))
            sim.run()
            logs.append(log)
        assert logs[0] == logs[1]
        assert logs[0] == [("imm20", 20), ("imm40", 40), ("late", 50)]

    def test_deadlock_error_parity(self):
        for sim in (Simulator(), ShardedSimulator(shards=2)):
            machine = Machine(sim, name="m0")

            def stuck():
                yield Block()  # no timeout, nobody will wake us

            machine.spawn(stuck(), name="stuck")
            with pytest.raises(DeadlockError):
                sim.run()

    def test_max_events_parity(self):
        counts = []
        for sim in (Simulator(), ShardedSimulator(shards=2)):
            def ticker(sim=sim):
                def tick():
                    sim.schedule(10, tick)
                tick()
            ticker()
            with pytest.raises(SimulationError):
                sim.run(max_events=100)
            counts.append(sim.events_processed)
        assert counts[0] == counts[1]

    def test_bad_shard_count_rejected(self):
        with pytest.raises(SimulationError):
            ShardedSimulator(shards=0)


# -- stale compaction --------------------------------------------------------

class TestCompaction:
    def test_cancelled_timers_are_compacted(self):
        sim = ShardedSimulator(shards=2)
        Machine(sim, name="m0")
        fired = []
        for i in range(2000):
            handle = sim.schedule(10_000 + i, lambda i=i: fired.append(i))
            if i % 100:
                handle.cancel()
        assert sim.stale_dropped > 0  # geometric trigger already ran
        sim.run()
        assert fired == [i for i in range(2000) if i % 100 == 0]
        assert sim.pending_events() == 0

    def test_events_processed_excludes_stale(self):
        """Both engines count only real dispatches, so the stat is part
        of the bit-identity contract."""
        stats = []
        for sim in (Simulator(), ShardedSimulator(shards=3)):
            fired = []
            for i in range(500):
                handle = sim.schedule(100 + i, lambda i=i: fired.append(i))
                if i % 3:
                    handle.cancel()
            sim.run()
            stats.append((sim.events_processed, fired))
        assert stats[0] == stats[1]


# -- shard assignment --------------------------------------------------------

class TestAssignment:
    def test_round_robin_default(self):
        sim = ShardedSimulator(shards=3)
        machines = [Machine(sim, name=f"m{i}") for i in range(7)]
        assert [m._shard_index for m in machines] == [0, 1, 2, 0, 1, 2, 0]

    def test_group_of_policy(self):
        sim = ShardedSimulator(shards=4, group_of=lambda n: int(n[1:]) * 3)
        machines = [Machine(sim, name=f"m{i}") for i in range(8)]
        assert [m._shard_index for m in machines] == [
            i * 3 % 4 for i in range(8)]


# -- whole-experiment identity ----------------------------------------------

def test_experiment_cell_identical_under_sharded_engine():
    """A full NVX experiment driver (sessions, ring, network) renders
    byte-identically whichever engine runs it."""
    from repro.experiments.registry import run_experiment

    with default_engine("heap"):
        heap = run_experiment("figure4").render()
    with default_engine("sharded", shards=4):
        sharded = run_experiment("figure4").render()
    assert sharded == heap


def test_chaos_journal_identical_under_sharded_engine():
    """Fault plans (kills, delays, failover) replay bit-identically."""
    from repro.faults.chaos import run_chaos

    with default_engine("heap"):
        heap_journal, heap_failures = run_chaos(5, 3)
    with default_engine("sharded", shards=4):
        shard_journal, shard_failures = run_chaos(5, 3)
    assert shard_journal == heap_journal
    assert shard_failures == heap_failures
