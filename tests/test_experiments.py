"""Smoke + shape tests for the experiment drivers (tiny workloads)."""

import pytest

from repro.experiments import figure4, multirevision, failover
from repro.experiments.harness import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.spec_common import (
    run_spec_lockstep,
    run_spec_native,
    run_spec_varan,
)
from repro.apps.spec import ALL_SPEC
from repro.nvx.lockstep import MX_PROFILE


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return figure4.run(iterations=80, warmup=10)

    def test_all_five_calls_measured(self, result):
        assert [row["syscall"] for row in result.rows] == [
            "close", "write", "read", "open", "time"]

    def test_native_matches_paper_exactly(self, result):
        # Native costs are calibration inputs: they must match.
        for row in result.rows:
            assert row["native"] == pytest.approx(
                figure4.PAPER_FIGURE4["native"][row["syscall"]], rel=0.02)

    def test_intercept_cheap_except_time(self, result):
        for row in result.rows:
            ratio = row["intercept"] / row["native"]
            if row["syscall"] == "time":
                assert ratio > 2  # large relative, tiny absolute
            else:
                assert ratio < 1.16

    def test_leader_shape(self, result):
        by_call = {row["syscall"]: row for row in result.rows}
        # close/write: small constant on top of interception.
        assert by_call["close"]["leader"] == pytest.approx(1718, rel=0.15)
        # read pays the payload copy; open pays the fd transfer.
        assert by_call["read"]["leader"] > 2 * by_call["read"]["intercept"]
        assert by_call["open"]["leader"] == pytest.approx(8788, rel=0.15)

    def test_follower_cheaper_than_native_for_small_results(self, result):
        by_call = {row["syscall"]: row for row in result.rows}
        assert by_call["close"]["follower"] < by_call["close"]["native"]
        assert by_call["write"]["follower"] < by_call["write"]["native"]
        # fd transfer makes open expensive for followers too.
        assert by_call["open"]["follower"] == pytest.approx(7342, rel=0.2)


class TestSpecRunners:
    def test_native_run_completes(self):
        bench = ALL_SPEC["186.crafty"]
        assert run_spec_native(bench, scale=0.02) > 0

    def test_varan_overhead_small_for_cache_light(self):
        bench = ALL_SPEC["186.crafty"]  # low memory intensity
        native = run_spec_native(bench, scale=0.02)
        varan = run_spec_varan(bench, followers=1, scale=0.02)
        assert 1.0 <= varan / native < 1.15

    def test_mcf_degrades_with_followers(self):
        bench = ALL_SPEC["429.mcf"]  # highest memory intensity
        native = run_spec_native(bench, scale=0.02)
        few = run_spec_varan(bench, followers=1, scale=0.02)
        many = run_spec_varan(bench, followers=6, scale=0.02)
        assert many / native > 2.0  # steep degradation, as in Figure 8
        assert many > few

    def test_lockstep_slower_than_varan_on_spec(self):
        bench = ALL_SPEC["176.gcc"]  # highest syscall density
        native = run_spec_native(bench, scale=0.02)
        varan = run_spec_varan(bench, followers=1, scale=0.02)
        lockstep = run_spec_lockstep(bench, MX_PROFILE, scale=0.02)
        assert lockstep > varan > native


class TestSection5:
    def test_failover_shape(self):
        result = failover.run()
        rows = {row["scenario"]: row for row in result.rows}
        baseline = rows["redis HMGET baseline (no buggy version)"]
        follower = rows["redis buggy revision as follower"]
        leader = rows["redis buggy revision as leader"]
        # Follower crash: no latency increase at all.
        assert follower["latency_us"] == pytest.approx(
            baseline["latency_us"], rel=0.02)
        # Leader crash: latency roughly triples (42 -> 122 in the paper).
        assert leader["latency_us"] > 2 * baseline["latency_us"]
        assert leader["promotions"] == 1
        # Lighttpd's 5 ms request hides the failover in both orders.
        lf = rows["lighttpd buggy as follower"]
        ll = rows["lighttpd buggy as leader"]
        assert ll["latency_us"] == pytest.approx(lf["latency_us"],
                                                 rel=0.05)

    def test_multirevision_all_pairs_survive(self):
        result = multirevision.run()
        varan_rows = [r for r in result.rows if r["monitor"] == "varan+bpf"]
        assert len(varan_rows) == 3
        for row in varan_rows:
            assert row["followers_alive"] == 1
            assert row["divergences_resolved"] >= 1
            assert row["requests_served"] > 0
        lockstep_row = [r for r in result.rows
                        if r["monitor"] == "ptrace-lockstep"][0]
        assert lockstep_row["followers_alive"] == 0


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {"table1", "figure4", "figure5", "figure6", "table2",
                    "figure7", "figure8", "failover-5.1",
                    "multirevision-5.2", "sanitization-5.3",
                    "recordreplay-5.4", "ablations", "distributed",
                    "loadcurve", "fuzz-summary"}
        assert expected == set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("figure99")

    def test_table1_renders(self):
        result = run_experiment("table1")
        assert isinstance(result, ExperimentResult)
        text = result.render()
        assert "Nginx" in text and "101852" in text.replace(",", "")
