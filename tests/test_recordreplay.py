"""Tests for the record-replay clients (§5.4) and the log format."""

import pytest

from repro.core import NvxSession, VersionSpec
from repro.core.events import EV_EXIT, Event, syscall_event
from repro.errors import RecordReplayError
from repro.kernel.uapi import O_RDWR, Segfault
from repro.recordreplay import (
    Recorder,
    ReplaySession,
    decode_records,
    encode_event,
)
from repro.world import World


class TestLogFormat:
    def test_roundtrip_syscall_event(self):
        event = syscall_event("read", 1, 7, 512, args=(3, 512),
                              aux=(9,))
        event.fd_numbers = (4, 5)
        event.fd_count = 2
        blob = encode_event(event, b"payload-bytes")
        [(decoded, payload)] = list(decode_records(blob))
        assert decoded.name == "read" and decoded.nr == event.nr
        assert decoded.clock == 7 and decoded.tindex == 1
        assert decoded.retval == 512
        assert decoded.args == (3, 512)
        assert decoded.aux == (9,)
        assert decoded.fd_numbers == (4, 5)
        assert payload == b"payload-bytes"

    def test_roundtrip_control_event(self):
        event = Event(EV_EXIT, -1, "exit", 0, 3, retval=7)
        [(decoded, payload)] = list(decode_records(encode_event(event)))
        assert decoded.etype == EV_EXIT and decoded.retval == 7
        assert payload == b""

    def test_stream_of_records(self):
        blob = b"".join(
            encode_event(syscall_event("close", 0, i + 1, 0))
            for i in range(5))
        decoded = list(decode_records(blob))
        assert [e.clock for e, _ in decoded] == [1, 2, 3, 4, 5]

    def test_truncated_log_rejected(self):
        blob = encode_event(syscall_event("close", 0, 1, 0))
        with pytest.raises(RecordReplayError):
            list(decode_records(blob[:-3]))

    def test_bad_magic_rejected(self):
        with pytest.raises(RecordReplayError):
            list(decode_records(b"\x00" * 16))


def app(ctx):
    fd = yield from ctx.open("/tmp/input")
    data = yield from ctx.read(fd, 32)
    t = yield from ctx.time()
    out = yield from ctx.open("/dev/null", O_RDWR)
    yield from ctx.write(out, data)
    yield from ctx.close(out)
    yield from ctx.close(fd)
    return (data, t)


def record_run():
    world = World()
    world.kernel.fs(world.server).create("/tmp/input", b"the-input")
    session = NvxSession(world, [VersionSpec("prod", app)])
    recorder = Recorder(session, "/var/log.bin")
    session.start()
    world.run()
    return recorder, session


class TestRecorder:
    def test_records_every_event(self):
        recorder, session = record_run()
        published = session.root_tuple.ring.stats.published
        assert recorder.events_recorded == published
        assert recorder.bytes_written > 0

    def test_payloads_in_log(self):
        recorder, _ = record_run()
        payloads = [p for _, p in decode_records(recorder.log_bytes) if p]
        assert b"the-input" in payloads

    def test_leader_unobstructed(self):
        recorder, session = record_run()
        leader = session.variants[0].root_task.threads[0]
        assert leader.exception is None
        assert leader.result[0] == b"the-input"


class TestReplay:
    def test_replay_reproduces_results(self):
        recorder, _ = record_run()
        world = World()
        replay = ReplaySession(world, [VersionSpec("candidate", app)],
                               recorder.log_bytes)
        replay.start()
        world.run()
        thread = replay.variants[0].root_task.threads[0]
        assert thread.result[0] == b"the-input"

    def test_multi_version_replay_triages_crash(self):
        def crasher(ctx):
            fd = yield from ctx.open("/tmp/input")
            yield from ctx.read(fd, 32)
            raise Segfault("regression")
            yield  # pragma: no cover

        recorder, _ = record_run()
        world = World()
        replay = ReplaySession(world,
                               [VersionSpec("good", app),
                                VersionSpec("bad", crasher)],
                               recorder.log_bytes)
        replay.start()
        world.run()
        assert replay.crashed == ["v1:bad"]
        assert replay.variants[0].root_task.threads[0].result[0] == \
            b"the-input"

    def test_replayed_time_matches_recording(self):
        recorder, session = record_run()
        recorded_time = session.variants[0].root_task.threads[0].result[1]
        world = World()
        replay = ReplaySession(world, [VersionSpec("candidate", app)],
                               recorder.log_bytes)
        replay.start()
        world.run()
        assert replay.variants[0].root_task.threads[0].result[1] == \
            recorded_time

    def test_divergent_candidate_dropped(self):
        def divergent(ctx):
            yield from ctx.getuid()
            return "divergent"

        recorder, _ = record_run()
        world = World()
        replay = ReplaySession(world, [VersionSpec("odd", divergent)],
                               recorder.log_bytes)
        replay.start()
        world.run()
        assert replay.stats.fatal_divergences
        assert not replay.variants[0].alive
