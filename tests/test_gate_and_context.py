"""Tests for the syscall gate dispatch paths and the ProcessContext API."""

import pytest

from repro.costmodel import DEFAULT_COSTS, cycles
from repro.kernel.task import PATCH_INT, PATCH_JMP, PATCH_VDSO
from repro.kernel.uapi import Syscall, SysResult
from repro.world import World


def run_main(main, configure=None):
    world = World()
    task = world.kernel.spawn_task(world.server, main, name="t")
    if configure is not None:
        configure(task)
    world.run()
    thread = task.threads[0]
    if thread.exception is not None:
        raise thread.exception
    return thread.result, world, task


class TestGateDispatch:
    def test_native_path_has_no_intercept_charge(self):
        def main(ctx):
            yield from ctx.syscall("close", -1)

        _, world, _ = run_main(main)
        native_only = world.now

        def configure(task):
            task.gate.intercepting = True

        _, world2, _ = run_main(main, configure)
        fast = cycles(DEFAULT_COSTS.intercept.fast_path)
        assert world2.now - native_only == pytest.approx(fast, abs=300)

    def test_int_site_charges_slow_path(self):
        def main(ctx):
            yield from ctx.syscall("close", -1, site="hot")

        def configure_jmp(task):
            task.gate.intercepting = True
            task.gate.patch_kinds = {"hot": PATCH_JMP}

        def configure_int(task):
            task.gate.intercepting = True
            task.gate.patch_kinds = {"hot": PATCH_INT}

        _, world_jmp, _ = run_main(main, configure_jmp)
        _, world_int, _ = run_main(main, configure_int)
        delta = world_int.now - world_jmp.now
        expected = cycles(DEFAULT_COSTS.intercept.slow_path
                          - DEFAULT_COSTS.intercept.fast_path)
        assert delta == pytest.approx(expected, abs=300)

    def test_vdso_calls_use_stub_cost(self):
        def main(ctx):
            yield from ctx.time()

        def configure(task):
            task.gate.intercepting = True

        _, world, task = run_main(main, configure)
        expected = cycles(DEFAULT_COSTS.intercept.vdso_stub
                          + DEFAULT_COSTS.syscalls.native("time"))
        assert world.now == pytest.approx(expected, abs=300)

    def test_installed_table_handles_call(self):
        seen = []

        def fake_close(task, call):
            seen.append(call.name)
            return SysResult(0)
            yield  # pragma: no cover

        def main(ctx):
            result = yield from ctx.syscall("close", 5)
            return result.retval

        def configure(task):
            task.gate.intercepting = True
            task.gate.table = {"close": fake_close}

        result, _, _ = run_main(main, configure)
        assert result == 0 and seen == ["close"]

    def test_default_handler_catches_unlisted_calls(self):
        def default(task, call):
            return SysResult(-99)
            yield  # pragma: no cover

        def main(ctx):
            result = yield from ctx.syscall("getpid")
            return result.retval

        def configure(task):
            task.gate.intercepting = True
            task.gate.table = {}
            task.gate.default_handler = default

        result, _, _ = run_main(main, configure)
        assert result == -99

    def test_syscall_counts_tracked(self):
        def main(ctx):
            for _ in range(3):
                yield from ctx.time()
            yield from ctx.getpid()

        _, _, task = run_main(main)
        assert task.gate.counts["time"] == 3
        assert task.gate.counts["getpid"] == 1


class TestContextApi:
    def test_site_defaults_to_call_name(self):
        def main(ctx):
            result = yield from ctx.syscall("getpid")
            return result

        result, _, _ = run_main(main)
        assert result.ok

    def test_compute_burns_virtual_time(self):
        def main(ctx):
            yield from ctx.compute(1000)

        _, world, _ = run_main(main)
        assert world.now == cycles(1000)

    def test_unknown_syscall_returns_enosys(self):
        from repro.kernel.uapi import ENOSYS

        def main(ctx):
            result = yield from ctx.syscall("not_a_real_call")
            return result.retval

        result, _, _ = run_main(main)
        assert result == -ENOSYS

    def test_unimplemented_syscall_returns_enosys(self):
        from repro.kernel.uapi import ENOSYS

        def main(ctx):
            result = yield from ctx.syscall("shmget")
            return result.retval

        result, _, _ = run_main(main)
        assert result == -ENOSYS

    def test_nanosleep_advances_clock(self):
        def main(ctx):
            before = ctx.sim.now
            yield from ctx.nanosleep(5_000_000)
            return ctx.sim.now - before

        result, _, _ = run_main(main)
        assert result >= 5_000_000


class TestNetworkModel:
    def test_bandwidth_delay_scales_with_size(self):
        from repro.sim.network import Network
        from repro.sim import Machine, Simulator

        sim = Simulator()
        a = Machine(sim, name="a")
        b = Machine(sim, name="b")
        net = Network(sim)
        arrivals = {}
        net.deliver(a, b, 100, lambda: arrivals.setdefault("small",
                                                           sim.now))
        net.deliver(a, b, 100_000, lambda: arrivals.setdefault("big",
                                                               sim.now))
        sim.run()
        assert arrivals["big"] > arrivals["small"]

    def test_loopback_is_fast(self):
        from repro.sim.network import Network
        from repro.sim import Machine, Simulator

        sim = Simulator()
        a = Machine(sim, name="a")
        net = Network(sim)
        seen = {}
        net.deliver(a, a, 1_000_000, lambda: seen.setdefault("t",
                                                             sim.now))
        sim.run()
        assert seen["t"] < 10_000  # no bandwidth cap on loopback

    def test_serialized_mode_orders_transmissions(self):
        from repro.sim.network import Network
        from repro.sim import Machine, Simulator

        sim = Simulator()
        a = Machine(sim, name="a")
        b = Machine(sim, name="b")
        net = Network(sim)
        net.serialize = True
        order = []
        net.deliver(a, b, 50_000, lambda: order.append("first"))
        net.deliver(a, b, 10, lambda: order.append("second"))
        sim.run()
        # The small message queues behind the big one per direction.
        assert order == ["first", "second"]


class TestWorld:
    def test_two_machines_exist(self):
        world = World()
        assert world.server.name == "server"
        assert world.client.name == "client"

    def test_filesystems_are_per_machine(self):
        world = World()
        world.kernel.fs(world.server).create("/tmp/x", b"server-side")
        assert world.kernel.fs(world.client).lookup("/tmp/x") is None

    def test_custom_cost_model(self):
        from repro.costmodel import CostModel, MachineSpec

        costs = CostModel(machine=MachineSpec(logical_cores=2,
                                              physical_cores=1))
        world = World(costs=costs)
        assert world.server.spec.logical_cores == 2
