"""Tests for the DES synchronisation primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Barrier, Machine, Mutex, Semaphore, Simulator
from repro.sim.core import Compute, Sleep


def world(cores=8):
    sim = Simulator()
    return sim, Machine(sim, name="m")


class TestMutex:
    def test_mutual_exclusion(self):
        sim, machine = world()
        mutex = Mutex(sim)
        trace = []

        def worker(name):
            yield from mutex.acquire()
            trace.append(("enter", name, sim.now))
            yield Compute(1000, preemptible=False)
            trace.append(("exit", name, sim.now))
            mutex.release()

        for name in "abc":
            machine.spawn(worker(name), name=name)
        sim.run()
        # Critical sections never overlap.
        intervals = []
        for i in range(0, len(trace), 2):
            assert trace[i][0] == "enter" and trace[i + 1][0] == "exit"
            intervals.append((trace[i][2], trace[i + 1][2]))
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2

    def test_fifo_ordering(self):
        sim, machine = world()
        mutex = Mutex(sim)
        order = []

        def worker(name, delay):
            yield Sleep(delay)
            yield from mutex.acquire()
            order.append(name)
            yield Compute(10_000, preemptible=False)
            mutex.release()

        machine.spawn(worker("first", 0), name="f")
        machine.spawn(worker("second", 100), name="s")
        machine.spawn(worker("third", 200), name="t")
        sim.run()
        assert order == ["first", "second", "third"]

    def test_release_unlocked_rejected(self):
        sim, _ = world()
        mutex = Mutex(sim)
        with pytest.raises(SimulationError):
            mutex.release()


class TestSemaphore:
    def test_counting_allows_n_holders(self):
        sim, machine = world()
        sem = Semaphore(sim, value=2)
        concurrency = {"now": 0, "max": 0}

        def worker():
            yield from sem.acquire()
            concurrency["now"] += 1
            concurrency["max"] = max(concurrency["max"],
                                     concurrency["now"])
            yield Compute(1000)
            concurrency["now"] -= 1
            sem.release()

        for i in range(5):
            machine.spawn(worker(), name=f"w{i}")
        sim.run()
        assert concurrency["max"] == 2

    def test_negative_value_rejected(self):
        sim, _ = world()
        with pytest.raises(SimulationError):
            Semaphore(sim, value=-1)


class TestBarrier:
    def test_all_parties_released_together(self):
        sim, machine = world()
        barrier = Barrier(sim, parties=3)
        releases = []

        def worker(delay):
            yield Sleep(delay)
            yield from barrier.arrive()
            releases.append(sim.now)

        for delay in (100, 500, 900):
            machine.spawn(worker(delay), name=f"w{delay}")
        sim.run()
        assert len(releases) == 3
        assert max(releases) - min(releases) == 0  # same timestamp

    def test_generation_increments_per_round(self):
        sim, machine = world()
        barrier = Barrier(sim, parties=2)

        def worker():
            for _ in range(3):
                yield from barrier.arrive()

        machine.spawn(worker(), name="a")
        machine.spawn(worker(), name="b")
        sim.run()
        assert barrier.generation == 3

    def test_reset_parties_releases_waiters(self):
        sim, machine = world()
        barrier = Barrier(sim, parties=3)
        done = []

        def waiter():
            yield from barrier.arrive()
            done.append(sim.now)

        machine.spawn(waiter(), name="a")
        machine.spawn(waiter(), name="b")

        def shrinker():
            yield Sleep(1000)
            barrier.reset_parties(2)

        machine.spawn(shrinker(), name="s")
        sim.run()
        assert len(done) == 2

    def test_zero_parties_rejected(self):
        sim, _ = world()
        with pytest.raises(SimulationError):
            Barrier(sim, parties=0)
