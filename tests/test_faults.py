"""Tests for the fault-injection plane and the invariant checker."""

import random

import pytest

from repro.core import NvxSession, VersionSpec
from repro.core.config import SessionConfig
from repro.errors import NvxError
from repro.faults import (
    BITFLIP,
    CORRUPT_SLOT,
    CRASH,
    LOSS_PROBABILITY,
    PARTITION,
    RETRANSMIT_PS,
    STALL,
    TORN_WRITE,
    Fault,
    FaultPlan,
    InvariantChecker,
    NetworkFaults,
    run_plan,
)
from repro.world import World


def reader(n_reads=6):
    def main(ctx):
        parts = []
        fd = yield from ctx.open("/tmp/data")
        for i in range(n_reads):
            parts.append((yield from ctx.pread(fd, 8, i)))
        yield from ctx.close(fd)
        return b"".join(parts)

    return main


def run_faulted(specs, plan, ring_capacity=16, checker=None):
    world = World()
    world.kernel.fs(world.server).create("/tmp/data", b"0123456789abcdef")
    config = SessionConfig(fault_plan=plan, ring_capacity=ring_capacity,
                           invariants=checker)
    session = NvxSession(world, specs, config=config).start()
    world.run()
    return session, world


def activity_window(specs, ring_capacity=16):
    """Run ``specs`` fault-free; return (first_syscall_ps, horizon_ps).

    Session setup occupies the early sim time and ring tuples appear
    lazily, so timed faults must be aimed inside the window where the
    workload actually dispatches system calls.
    """
    marks = []

    def wrap(main):
        def wrapped(ctx):
            marks.append(ctx.task.kernel.sim.now)
            return (yield from main(ctx))
        return wrapped

    probe = [VersionSpec(s.name, wrap(s.main)) for s in specs]
    _session, world = run_faulted(probe, None, ring_capacity=ring_capacity)
    return min(marks), world.sim.now


# ===========================================================================
# FaultPlan: plain data, seed-determined, validated
# ===========================================================================

class TestFaultPlan:
    def test_same_seed_same_plan(self):
        plans = [FaultPlan.random(random.Random(99), 3, 10**9)
                 for _ in range(2)]
        assert plans[0] == plans[1]
        assert plans[0].describe() == plans[1].describe()

    def test_different_seeds_differ(self):
        a = FaultPlan.random(random.Random(1), 3, 10**9)
        b = FaultPlan.random(random.Random(2), 3, 10**9)
        assert a.describe() != b.describe()

    def test_random_plan_keeps_a_survivor(self):
        for seed in range(50):
            plan = FaultPlan.random(random.Random(seed), 2, 10**8,
                                    max_faults=5)
            crashed = [f for f in plan.faults if f.kind == CRASH]
            assert len(crashed) <= 1  # of 2 variants, one always survives

    def test_unknown_kind_rejected(self):
        with pytest.raises(NvxError):
            Fault("meteor", at_ps=1)

    def test_exactly_one_trigger_required(self):
        with pytest.raises(NvxError):
            Fault(CRASH, variant=0)  # neither
        with pytest.raises(NvxError):
            Fault(CRASH, variant=0, at_ps=1, at_syscall=1)  # both

    def test_syscall_trigger_only_for_variant_faults(self):
        with pytest.raises(NvxError):
            Fault(CORRUPT_SLOT, at_syscall=3)

    def test_describe_is_canonical(self):
        fault = Fault(STALL, variant=1, at_syscall=4,
                      stall_cycles=100, duration_ps=2000)
        assert fault.describe() == "stall[sys=4 v1 stall=100c/2000ps]"
        assert FaultPlan().describe() == "(no faults)"


# ===========================================================================
# Crash injection
# ===========================================================================

class TestCrashInjection:
    def test_syscall_index_crash_drops_follower(self):
        plan = FaultPlan((Fault(CRASH, variant=1, at_syscall=3),))
        session, _ = run_faulted(
            [VersionSpec("lead", reader()), VersionSpec("dies", reader()),
             VersionSpec("lives", reader())], plan)
        assert not session.variants[1].alive
        assert session.variants[0].is_leader
        assert (session.variants[0].root_task.threads[0].result
                == session.variants[2].root_task.threads[0].result)
        assert any("fired in" in line for line in session.injector.log)

    def test_timed_leader_crash_promotes_follower(self):
        specs = [VersionSpec("lead", reader(20)),
                 VersionSpec("heir", reader(20))]
        start, horizon = activity_window(specs)
        plan = FaultPlan((Fault(CRASH, variant=0,
                                at_ps=(start + horizon) // 2),))
        session, _ = run_faulted(specs, plan)
        assert not session.variants[0].alive
        assert session.variants[1].is_leader
        assert session.stats.promotions == 1
        assert session.variants[1].root_task.threads[0].result is not None

    def test_crash_while_parked_in_ring_wait(self):
        # The leader naps mid-stream; the follower drains the backlog and
        # parks in the ring wait.  Killing it there must drop it cleanly
        # (cursor removed, no deadlock), not strand the leader.
        def napping_leader(ctx):
            for _ in range(3):
                yield from ctx.time()
            yield from ctx.nanosleep(80_000_000)
            for _ in range(3):
                yield from ctx.time()
            return "done"

        specs = [VersionSpec("lead", napping_leader),
                 VersionSpec("parked", napping_leader)]
        start, _horizon = activity_window(specs)
        # Mid-nap: the follower has drained the pre-nap backlog and is
        # parked waiting for the leader's next publish.
        plan = FaultPlan((Fault(CRASH, variant=1,
                                at_ps=start + 40_000_000),))
        session, _ = run_faulted(specs, plan)
        fired = [line for line in session.injector.log if "fired" in line]
        assert fired and "blocked" in fired[0]
        assert not session.variants[1].alive
        assert session.variants[0].root_task.threads[0].result == "done"
        assert 1 not in session.root_tuple.ring.cursors

    def test_crash_of_dead_variant_is_skipped(self):
        specs = [VersionSpec("lead", reader()), VersionSpec("dies", reader())]
        _start, horizon = activity_window(specs)
        plan = FaultPlan((Fault(CRASH, variant=1, at_syscall=2),
                          Fault(CRASH, variant=1, at_ps=horizon * 2)))
        session, _ = run_faulted(specs, plan)
        assert any("skipped" in line for line in session.injector.log)


# ===========================================================================
# Ring damage: surfaced as a diagnostic, never a hang
# ===========================================================================

class TestRingDamage:
    def laggard_specs(self):
        def fast(ctx):
            for _ in range(24):
                yield from ctx.time()
            return "done"

        def slow(ctx):
            for _ in range(24):
                yield from ctx.time()
                yield from ctx.compute(60_000)
            return "done"

        return [VersionSpec("fast", fast), VersionSpec("slow", slow)]

    def test_slot_corruption_surfaces_as_nvx_error(self):
        # 4-slot ring, laggy follower: the window of pending slots stays
        # full, so the injected corruption lands on a slot the follower
        # still has to consume.  It must be reported and the follower
        # dropped — the session may not hang or silently misreplay.
        specs = self.laggard_specs()
        start, horizon = activity_window(specs, ring_capacity=4)
        plan = FaultPlan((Fault(CORRUPT_SLOT, at_ps=(start + horizon) // 2,
                                ring=0, slot_offset=1),))
        session, _ = run_faulted(specs, plan, ring_capacity=4)
        assert any("poisoned" in line for line in session.injector.log)
        assert session.stats.ring_faults
        name, message, _ps = session.stats.ring_faults[0]
        assert "slow" in name
        assert "slot corruption" in message
        assert not session.variants[1].alive
        assert session.variants[0].root_task.threads[0].result == "done"

    def test_torn_write_caught_by_seal(self):
        specs = self.laggard_specs()
        start, horizon = activity_window(specs, ring_capacity=4)
        plan = FaultPlan((Fault(TORN_WRITE, at_ps=(start + horizon) // 2,
                                ring=0, slot_offset=0),))
        session, _ = run_faulted(specs, plan, ring_capacity=4)
        assert session.stats.ring_faults
        assert "torn write" in session.stats.ring_faults[0][1]
        assert session.variants[0].root_task.threads[0].result == "done"

    def test_corruption_with_empty_ring_is_skipped(self):
        plan = FaultPlan((Fault(CORRUPT_SLOT, at_ps=1, ring=0),))
        session, _ = run_faulted(self.laggard_specs(), plan)
        assert any("skipped" in line for line in session.injector.log)
        assert session.variants[1].alive


# ===========================================================================
# Stalls and bitflips
# ===========================================================================

class TestStallAndBitflip:
    def test_stall_slows_but_preserves_outputs(self):
        plan = FaultPlan((Fault(STALL, variant=1, at_syscall=2,
                                stall_cycles=40_000,
                                duration_ps=50_000_000),))
        session, world = run_faulted(
            [VersionSpec("lead", reader(10)), VersionSpec("late", reader(10))],
            plan)
        base_session, base_world = run_faulted(
            [VersionSpec("lead", reader(10)), VersionSpec("late", reader(10))],
            None)
        assert any("window opened" in line for line in session.injector.log)
        assert (session.variants[1].root_task.threads[0].result
                == base_session.variants[1].root_task.threads[0].result)
        assert world.sim.now > base_world.sim.now  # the stall cost sim time

    def test_bitflip_without_guest_image_is_skipped(self):
        plan = FaultPlan((Fault(BITFLIP, variant=1, at_ps=10_000_000,
                                addr=0x100, bit=3),))
        session, _ = run_faulted(
            [VersionSpec("lead", reader()), VersionSpec("plain", reader())],
            plan)
        assert any("no guest image" in line for line in session.injector.log)


# ===========================================================================
# Network faults: delay, never drop
# ===========================================================================

class TestNetworkFaults:
    def test_partition_holds_and_redelivers(self):
        net = NetworkFaults(partitions=[(100, 200)], loss_windows=[])
        # Inside the window: held until heal + full transit.
        assert net.adjust("a", "b", now=150, arrival=160) == 210
        assert net.messages_held == 1
        # Outside the window: untouched.
        assert net.adjust("a", "b", now=250, arrival=260) == 260

    def test_loss_window_delays_by_retransmit(self):
        net = NetworkFaults(partitions=[], loss_windows=[(0, 10**9)], seed=5)
        arrivals = [net.adjust("a", "b", now=t, arrival=t + 10)
                    for t in range(0, 1000, 10)]
        delayed = [a for t, a in zip(range(0, 1000, 10), arrivals)
                   if a != t + 10]
        assert delayed  # some messages lost...
        assert len(delayed) < len(arrivals)  # ...but not all
        for t, a in zip(range(0, 1000, 10), arrivals):
            assert a in (t + 10, t + 10 + RETRANSMIT_PS)  # never dropped
        assert 0.0 < LOSS_PROBABILITY < 1.0

    def test_same_seed_same_losses(self):
        a = NetworkFaults([], [(0, 10**6)], seed=3)
        b = NetworkFaults([], [(0, 10**6)], seed=3)
        seq_a = [a.adjust("x", "y", now=i, arrival=i + 5) for i in range(50)]
        seq_b = [b.adjust("x", "y", now=i, arrival=i + 5) for i in range(50)]
        assert seq_a == seq_b


# ===========================================================================
# InvariantChecker unit behaviour
# ===========================================================================

class _FakeRing:
    name = "fake0"
    tracer = None
    sim = None


class _FakeEvent:
    def __init__(self, seq, clock):
        self.seq = seq
        self.clock = clock


class TestInvariantChecker:
    def test_dense_publishes_pass(self):
        checker = InvariantChecker(roundtrip_every=10**9)
        ring = _FakeRing()
        for i in range(5):
            checker.on_publish(ring, _FakeEvent(seq=i, clock=i + 1))
        assert checker.violations == []
        assert checker.events_checked == 5

    def test_seq_gap_is_a_violation(self):
        checker = InvariantChecker(roundtrip_every=10**9)
        ring = _FakeRing()
        checker.on_publish(ring, _FakeEvent(seq=0, clock=1))
        checker.on_publish(ring, _FakeEvent(seq=2, clock=2))
        assert any("non-monotonic" in v for v in checker.violations)

    def test_clock_gap_means_dropped_event(self):
        checker = InvariantChecker(roundtrip_every=10**9)
        ring = _FakeRing()
        checker.on_publish(ring, _FakeEvent(seq=0, clock=1))
        checker.on_publish(ring, _FakeEvent(seq=1, clock=3))
        assert any("dropped or duplicated" in v for v in checker.violations)

    def test_consume_gap_is_a_violation(self):
        checker = InvariantChecker()
        ring = _FakeRing()
        checker.on_consume(ring, 1, _FakeEvent(seq=0, clock=1))
        checker.on_consume(ring, 1, _FakeEvent(seq=2, clock=3))
        assert any("consumer 1" in v for v in checker.violations)
        # An independent consumer keeps its own lane.
        checker2 = InvariantChecker()
        checker2.on_consume(ring, 1, _FakeEvent(seq=0, clock=1))
        checker2.on_consume(ring, 2, _FakeEvent(seq=5, clock=6))
        assert checker2.violations == []

    def test_roundtrip_checks_real_events(self):
        from repro.core.events import syscall_event

        checker = InvariantChecker(roundtrip_every=1)
        ring = _FakeRing()
        event = syscall_event("pread", 0, 1, 42, args=(3, 8, 0))
        event.seq = 0
        checker.on_publish(ring, event)
        assert checker.roundtrips_checked == 1
        assert checker.violations == []

    def test_lockstep_hook_flags_escaped_mixed_round(self):
        checker = InvariantChecker()
        checker.on_lockstep_round("p", 1, ["read", "read"])
        assert checker.violations == []
        checker.on_lockstep_round("p", 2, ["read", "write"], caught=True)
        assert checker.violations == []  # the monitor caught it: conformant
        checker.on_lockstep_round("p", 3, ["read", "write"])
        assert len(checker.violations) == 1
        assert "escaped" in checker.violations[0]

    def test_final_check_flags_starved_consumer(self):
        class _Ring:
            name = "r0"
            head = 10
            cursors = {1: 10, 2: 7}

        class _Tuple:
            ring = _Ring()

        class _Variant:
            alive = True

        class _Session:
            leader = _Variant()
            variants = [_Variant()]
            tuples = [_Tuple()]

        checker = InvariantChecker()
        checker.attach_session(_Session())
        violations = checker.final_check()
        assert len(violations) == 1
        assert "3 events behind" in violations[0]

    def test_summary_format(self):
        checker = InvariantChecker()
        assert checker.summary() == ("invariants: 0 publishes, 0 consumes, "
                                     "0 roundtrips, 0 violations")


# ===========================================================================
# End-to-end: sessions under plans keep the invariants green
# ===========================================================================

class TestSessionInvariants:
    def test_fault_free_session_is_conformant(self):
        checker = InvariantChecker(roundtrip_every=1)
        session, _ = run_faulted(
            [VersionSpec("a", reader()), VersionSpec("b", reader())],
            None, checker=checker)
        assert checker.final_check() == []
        assert checker.events_checked > 0
        assert checker.roundtrips_checked == checker.events_checked

    def test_faulted_session_stays_conformant(self):
        # Even with a crash + failover, the checker must see zero
        # violations: failover drops no events and corrupts no streams.
        specs = [VersionSpec("a", reader(15)), VersionSpec("b", reader(15)),
                 VersionSpec("c", reader(15))]
        start, horizon = activity_window(specs)
        checker = InvariantChecker(roundtrip_every=1)
        plan = FaultPlan((Fault(CRASH, variant=0,
                                at_ps=(start + horizon) // 2),))
        session, _ = run_faulted(specs, plan, checker=checker)
        assert session.stats.promotions == 1
        assert checker.final_check() == []

    def test_metrics_expose_invariant_counters(self):
        session, _ = run_faulted(
            [VersionSpec("a", reader()), VersionSpec("b", reader())], None)
        snapshot = session.metrics_snapshot()
        counters = dict(snapshot["counters"])
        assert counters.get("invariant.checks", 0) > 0
        assert counters.get("invariant.violations", 1) == 0


# ===========================================================================
# Chaos runs: deterministic, self-checking
# ===========================================================================

class TestChaosDeterminism:
    def test_one_plan_is_deterministic_and_green(self):
        lines_a, mism_a, viol_a = run_plan(3, 0)
        lines_b, mism_b, viol_b = run_plan(3, 0)
        assert lines_a == lines_b
        assert (mism_a, viol_a) == (0, 0)
        assert (mism_b, viol_b) == (0, 0)

    @pytest.mark.slow
    def test_chaos_journal_byte_identical(self):
        from repro.faults import run_chaos

        journal_a, failures_a = run_chaos(11, 4)
        journal_b, failures_b = run_chaos(11, 4)
        assert journal_a == journal_b
        assert failures_a == 0 and failures_b == 0
        assert journal_a.endswith("0 output mismatches, "
                                  "0 invariant violations\n")
