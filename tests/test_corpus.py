"""Tier-1 replay of the checked-in chaos regression corpus.

The nightly Hypothesis sweep (``tests/test_chaos_properties.py``)
explores the chaos seed space; plans it surfaced as interesting are
promoted into ``tests/corpus/*.json`` (see its README).  This fast test
replays every corpus entry on every run: the journal must hash to the
recorded value byte-for-byte and the NVX contract must still hold.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.faults.chaos import run_plan

CORPUS_DIR = Path(__file__).parent / "corpus"
ENTRIES = sorted(CORPUS_DIR.glob("chaos-*.json"))


def _load(path: Path) -> dict:
    with open(path) as fh:
        return json.load(fh)


def _entry_id(path: Path) -> str:
    return path.stem


class TestChaosCorpus:
    def test_corpus_is_nonempty(self):
        assert len(ENTRIES) >= 5

    @pytest.mark.parametrize("path", ENTRIES, ids=_entry_id)
    def test_replay_matches_recorded_journal(self, path):
        entry = _load(path)
        lines, mismatches, violations = run_plan(
            entry["seed"], entry["index"],
            placement=entry.get("placement", "local"))
        text = "\n".join(lines) + "\n"
        digest = hashlib.sha256(text.encode()).hexdigest()
        expect = entry["expect"]
        assert mismatches == expect["mismatches"], text
        assert violations == expect["violations"], text
        assert digest == expect["journal_sha256"], (
            f"{path.name}: chaos journal drifted:\n{text}")
