"""Failure-injection tests: cascading crashes, tiny rings, pool leaks."""

import pytest

from repro.core import NvxSession, VersionSpec
from repro.kernel.uapi import Segfault
from repro.world import World


def crash_after(n_calls, tag="crash"):
    def main(ctx):
        for i in range(n_calls):
            yield from ctx.time()
        raise Segfault(f"{tag} after {n_calls} calls")
        yield  # pragma: no cover

    return main


def healthy(n_calls=10):
    def main(ctx):
        values = []
        for _ in range(n_calls):
            values.append((yield from ctx.time()))
        fd = yield from ctx.open("/tmp/data")
        data = yield from ctx.read(fd, 32)
        yield from ctx.close(fd)
        return data

    return main


def run_session(specs, **kwargs):
    world = World()
    world.kernel.fs(world.server).create("/tmp/data", b"still-here")
    session = NvxSession(world, specs, **kwargs).start()
    world.run()
    return session, world


class TestCascadingCrashes:
    def test_leader_crashes_then_new_leader_crashes(self):
        session, _ = run_session([
            VersionSpec("crash0", crash_after(2, "first")),
            VersionSpec("crash1", crash_after(5, "second")),
            VersionSpec("survivor", healthy()),
        ])
        assert session.stats.promotions == 2
        assert len(session.stats.crashes) == 2
        survivor = session.variants[2]
        assert survivor.is_leader
        assert survivor.root_task.threads[0].result == b"still-here"

    def test_all_followers_crash_leader_continues(self):
        session, _ = run_session([
            VersionSpec("leader", healthy()),
            VersionSpec("f1", crash_after(1)),
            VersionSpec("f2", crash_after(3)),
        ])
        assert session.stats.promotions == 0
        assert len(session.stats.crashes) == 2
        assert session.variants[0].root_task.threads[0].result == \
            b"still-here"
        assert session.followers == []

    def test_leader_crash_with_no_followers_is_fatal_for_session(self):
        from repro.errors import FailoverError

        world = World()
        session = NvxSession(world,
                             [VersionSpec("only", crash_after(1))]).start()
        world.run()
        # The coordinator hit FailoverError: nobody left to promote.
        assert session.coordinator.failed
        assert isinstance(session.coordinator.exception, FailoverError)

    def test_crash_during_payload_flight_does_not_leak_pool(self):
        def reader(ctx):
            fd = yield from ctx.open("/tmp/data")
            for _ in range(20):
                yield from ctx.syscall("pread", fd, 32, 0, nbytes=32)
            yield from ctx.close(fd)
            return "done"

        def crashing_reader(ctx):
            fd = yield from ctx.open("/tmp/data")
            for _ in range(3):
                yield from ctx.syscall("pread", fd, 32, 0, nbytes=32)
            raise Segfault("mid-stream")
            yield  # pragma: no cover

        session, _ = run_session([
            VersionSpec("leader", reader),
            VersionSpec("doomed", crashing_reader),
            VersionSpec("steady", reader),
        ])
        # All payload chunks eventually returned to their buckets.
        assert session.pool.live_bytes() == 0


class TestTinyRing:
    def test_capacity_one_ring_still_correct(self):
        session, _ = run_session(
            [VersionSpec("a", healthy(5)), VersionSpec("b", healthy(5))],
            ring_capacity=1)
        assert session.variants[0].root_task.threads[0].result == \
            session.variants[1].root_task.threads[0].result
        assert session.root_tuple.ring.stats.producer_stalls > 0

    def test_capacity_one_with_crashing_follower(self):
        session, _ = run_session(
            [VersionSpec("a", healthy(8)),
             VersionSpec("b", crash_after(2))],
            ring_capacity=1)
        assert session.variants[0].root_task.threads[0].result == \
            b"still-here"


class TestFollowerLag:
    def test_slow_follower_throttles_leader_via_backpressure(self):
        def fast(ctx):
            for _ in range(600):
                yield from ctx.time()
            return "done"

        def slow(ctx):
            for _ in range(600):
                yield from ctx.time()
                yield from ctx.compute(4000)  # slower than the leader
            return "done"

        world = World()
        session = NvxSession(world, [VersionSpec("fast", fast),
                                     VersionSpec("slow", slow)],
                             ring_capacity=16).start()
        world.run()
        assert session.root_tuple.ring.stats.producer_stalls > 0
        assert session.variants[0].root_task.threads[0].result == "done"

    def test_divergent_follower_unblocks_stalled_leader(self):
        # The leader fills the ring; the follower then diverges fatally.
        # Unsubscribing it must release the leader.
        def leader(ctx):
            for _ in range(100):
                yield from ctx.time()
            return "finished"

        def follower(ctx):
            for _ in range(10):
                yield from ctx.time()
            yield from ctx.getuid()  # divergence
            return "never"

        world = World()
        session = NvxSession(world, [VersionSpec("l", leader),
                                     VersionSpec("f", follower)],
                             ring_capacity=8).start()
        world.run()
        assert session.variants[0].root_task.threads[0].result == \
            "finished"
        assert session.stats.fatal_divergences
