"""Failure-injection tests: cascading crashes, tiny rings, pool leaks."""

import pytest

from repro.core import NvxSession, VersionSpec
from repro.core.config import SessionConfig
from repro.faults import CRASH, Fault, FaultPlan
from repro.kernel.uapi import Segfault
from repro.world import World


def crash_after(n_calls, tag="crash"):
    def main(ctx):
        for i in range(n_calls):
            yield from ctx.time()
        raise Segfault(f"{tag} after {n_calls} calls")
        yield  # pragma: no cover

    return main


def healthy(n_calls=10):
    def main(ctx):
        values = []
        for _ in range(n_calls):
            values.append((yield from ctx.time()))
        fd = yield from ctx.open("/tmp/data")
        data = yield from ctx.read(fd, 32)
        yield from ctx.close(fd)
        return data

    return main


def run_session(specs, **kwargs):
    world = World()
    world.kernel.fs(world.server).create("/tmp/data", b"still-here")
    session = NvxSession(world, specs, **kwargs).start()
    world.run()
    return session, world


class TestCascadingCrashes:
    def test_leader_crashes_then_new_leader_crashes(self):
        session, _ = run_session([
            VersionSpec("crash0", crash_after(2, "first")),
            VersionSpec("crash1", crash_after(5, "second")),
            VersionSpec("survivor", healthy()),
        ])
        assert session.stats.promotions == 2
        assert len(session.stats.crashes) == 2
        survivor = session.variants[2]
        assert survivor.is_leader
        assert survivor.root_task.threads[0].result == b"still-here"

    def test_all_followers_crash_leader_continues(self):
        session, _ = run_session([
            VersionSpec("leader", healthy()),
            VersionSpec("f1", crash_after(1)),
            VersionSpec("f2", crash_after(3)),
        ])
        assert session.stats.promotions == 0
        assert len(session.stats.crashes) == 2
        assert session.variants[0].root_task.threads[0].result == \
            b"still-here"
        assert session.followers == []

    def test_leader_crash_with_no_followers_is_fatal_for_session(self):
        from repro.errors import FailoverError

        world = World()
        session = NvxSession(world,
                             [VersionSpec("only", crash_after(1))]).start()
        world.run()
        # The coordinator hit FailoverError: nobody left to promote.
        assert session.coordinator.failed
        assert isinstance(session.coordinator.exception, FailoverError)

    def test_crash_during_payload_flight_does_not_leak_pool(self):
        def reader(ctx):
            fd = yield from ctx.open("/tmp/data")
            for _ in range(20):
                yield from ctx.syscall("pread", fd, 32, 0, nbytes=32)
            yield from ctx.close(fd)
            return "done"

        def crashing_reader(ctx):
            fd = yield from ctx.open("/tmp/data")
            for _ in range(3):
                yield from ctx.syscall("pread", fd, 32, 0, nbytes=32)
            raise Segfault("mid-stream")
            yield  # pragma: no cover

        session, _ = run_session([
            VersionSpec("leader", reader),
            VersionSpec("doomed", crashing_reader),
            VersionSpec("steady", reader),
        ])
        # All payload chunks eventually returned to their buckets.
        assert session.pool.live_bytes() == 0


class TestTinyRing:
    def test_capacity_one_ring_still_correct(self):
        session, _ = run_session(
            [VersionSpec("a", healthy(5)), VersionSpec("b", healthy(5))],
            ring_capacity=1)
        assert session.variants[0].root_task.threads[0].result == \
            session.variants[1].root_task.threads[0].result
        assert session.root_tuple.ring.stats.producer_stalls > 0

    def test_capacity_one_with_crashing_follower(self):
        session, _ = run_session(
            [VersionSpec("a", healthy(8)),
             VersionSpec("b", crash_after(2))],
            ring_capacity=1)
        assert session.variants[0].root_task.threads[0].result == \
            b"still-here"


class TestFollowerLag:
    def test_slow_follower_throttles_leader_via_backpressure(self):
        def fast(ctx):
            for _ in range(600):
                yield from ctx.time()
            return "done"

        def slow(ctx):
            for _ in range(600):
                yield from ctx.time()
                yield from ctx.compute(4000)  # slower than the leader
            return "done"

        world = World()
        session = NvxSession(world, [VersionSpec("fast", fast),
                                     VersionSpec("slow", slow)],
                             ring_capacity=16).start()
        world.run()
        assert session.root_tuple.ring.stats.producer_stalls > 0
        assert session.variants[0].root_task.threads[0].result == "done"

    def test_divergent_follower_unblocks_stalled_leader(self):
        # The leader fills the ring; the follower then diverges fatally.
        # Unsubscribing it must release the leader.
        def leader(ctx):
            for _ in range(100):
                yield from ctx.time()
            return "finished"

        def follower(ctx):
            for _ in range(10):
                yield from ctx.time()
            yield from ctx.getuid()  # divergence
            return "never"

        world = World()
        session = NvxSession(world, [VersionSpec("l", leader),
                                     VersionSpec("f", follower)],
                             ring_capacity=8).start()
        world.run()
        assert session.variants[0].root_task.threads[0].result == \
            "finished"
        assert session.stats.fatal_divergences


def run_planned(specs, plan, ring_capacity=16):
    """Run ``specs`` under a seeded :class:`FaultPlan`."""
    world = World()
    world.kernel.fs(world.server).create("/tmp/data", b"still-here")
    config = SessionConfig(fault_plan=plan, ring_capacity=ring_capacity)
    session = NvxSession(world, specs, config=config).start()
    world.run()
    return session, world


class TestPromotionEdgeCases:
    """Crashes landing inside the failover machinery itself."""

    @staticmethod
    def _laggard_specs():
        def fast(ctx):
            for _ in range(30):
                yield from ctx.time()
            return "done"

        def slow(ctx):
            for _ in range(30):
                yield from ctx.time()
                yield from ctx.compute(200_000)  # deep consumer lag
            return "done"

        return [VersionSpec("lead", fast), VersionSpec("heir", slow),
                VersionSpec("spare", slow)]

    def test_follower_crash_during_in_flight_promotion(self):
        # Phase 1: crash only the leader; the slow heir is promoted with
        # a deep backlog to drain, so the window between "is_leader set"
        # and "await_promotion_complete ran" is wide.  Record when the
        # leader died.
        probe_plan = FaultPlan((Fault(CRASH, variant=0, at_syscall=20),))
        probe, _ = run_planned(self._laggard_specs(), probe_plan)
        assert probe.stats.promotions == 1
        leader_death_ps = probe.stats.crashes[0][2]

        # Phase 2: same workload, second crash shortly after the first —
        # the heir dies mid-drain, still holding its consumer cursor.
        # Before the stale-cursor fix this deadlocked: the spare's
        # publishes blocked forever behind the dead heir's cursor.
        plan = FaultPlan((Fault(CRASH, variant=0, at_syscall=20),
                          Fault(CRASH, variant=1,
                                at_ps=leader_death_ps + 2_000_000)))
        session, _ = run_planned(self._laggard_specs(), plan)
        assert session.stats.promotions == 2
        assert len(session.stats.crashes) == 2
        assert session.variants[2].is_leader
        assert session.variants[2].root_task.threads[0].result == "done"
        assert 1 not in session.root_tuple.ring.cursors

    def test_leader_crash_while_parked_in_producer_stall(self):
        # A capacity-2 ring and a slow follower park the leader in the
        # publish backpressure wait for most of the run.  Killing it
        # there must still promote cleanly: the follower drains what was
        # published, restarts through the leader path and finishes.
        def fast(ctx):
            for _ in range(30):
                yield from ctx.time()
            return "done"

        def slow(ctx):
            for _ in range(30):
                yield from ctx.time()
                yield from ctx.compute(200_000)
            return "done"

        specs = [VersionSpec("lead", fast), VersionSpec("heir", slow)]

        # Probe fault-free for the activity window: session setup eats
        # the early sim time, so time the crash at the window midpoint,
        # when the ring is full and the leader is parked.
        marks = []

        def probed(build):
            def main(ctx):
                marks.append(ctx.task.kernel.sim.now)
                return (yield from build(ctx))
            return main

        world = World()
        world.kernel.fs(world.server).create("/tmp/data", b"still-here")
        probe_specs = [VersionSpec(s.name, probed(s.main)) for s in specs]
        NvxSession(world, probe_specs,
                   config=SessionConfig(ring_capacity=2)).start()
        world.run()
        start, horizon = min(marks), world.sim.now

        plan = FaultPlan((Fault(CRASH, variant=0,
                                at_ps=(start + horizon) // 2),))
        session, _ = run_planned(specs, plan, ring_capacity=2)
        fired = [line for line in session.injector.log if "fired" in line]
        assert fired
        assert session.stats.promotions == 1
        assert session.variants[1].is_leader
        assert session.variants[1].root_task.threads[0].result == "done"
        assert 0 not in session.root_tuple.ring.cursors
