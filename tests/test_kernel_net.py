"""Kernel tests: sockets, pipes, epoll, processes, threads, signals."""

import pytest

from repro.errors import DeadlockError
from repro.kernel.uapi import (
    EAGAIN,
    ECONNREFUSED,
    EPIPE,
    EPOLL_CTL_ADD,
    EPOLL_CTL_DEL,
    EPOLLIN,
    O_NONBLOCK,
    SIGSEGV,
    SIGTERM,
    Segfault,
    SysError,
)
from repro.world import World


def finish(thread):
    if thread.exception is not None:
        raise thread.exception
    return thread.result


class TestSockets:
    def test_connect_refused_without_listener(self):
        def main(ctx):
            s = yield from ctx.socket()
            result = yield from ctx.syscall("connect", s, ("server", 9999))
            return result.retval

        w = World()
        task = w.spawn(main, name="c", machine=w.client)
        w.run()
        assert finish(task.threads[0]) == -ECONNREFUSED

    def test_echo_roundtrip_same_machine(self):
        w = World()

        def server(ctx):
            s = yield from ctx.socket()
            yield from ctx.bind(s, ("server", 7))
            yield from ctx.listen(s)
            c = yield from ctx.accept(s)
            data = yield from ctx.recv(c, 100)
            yield from ctx.send(c, data.upper())
            yield from ctx.close(c)
            yield from ctx.close(s)

        def client(ctx):
            s = yield from ctx.socket()
            yield from ctx.connect(s, ("server", 7))
            yield from ctx.send(s, b"hello")
            reply = yield from ctx.recv(s, 100)
            yield from ctx.close(s)
            return reply

        w.spawn(server, name="s")
        task = w.spawn(client, name="c")
        w.run()
        assert finish(task.threads[0]) == b"HELLO"

    def test_cross_machine_latency_visible(self):
        w = World()
        stamps = {}

        def server(ctx):
            s = yield from ctx.socket()
            yield from ctx.bind(s, ("server", 7))
            yield from ctx.listen(s)
            c = yield from ctx.accept(s)
            yield from ctx.recv(c, 100)
            yield from ctx.send(c, b"pong")

        def client(ctx):
            s = yield from ctx.socket()
            start = ctx.sim.now
            yield from ctx.connect(s, ("server", 7))
            yield from ctx.send(s, b"ping")
            yield from ctx.recv(s, 100)
            stamps["rtt"] = ctx.sim.now - start

        w.spawn(server, name="s")
        w.spawn(client, name="c", machine=w.client)
        w.run()
        # At least two round trips across a 30 µs-latency link.
        assert stamps["rtt"] >= 4 * w.costs.network.latency_ps

    def test_recv_eof_after_peer_close(self):
        w = World()

        def server(ctx):
            s = yield from ctx.socket()
            yield from ctx.bind(s, ("server", 7))
            yield from ctx.listen(s)
            c = yield from ctx.accept(s)
            yield from ctx.close(c)

        def client(ctx):
            s = yield from ctx.socket()
            yield from ctx.connect(s, ("server", 7))
            return (yield from ctx.recv(s, 100))

        w.spawn(server, name="s")
        task = w.spawn(client, name="c")
        w.run()
        assert finish(task.threads[0]) == b""

    def test_send_after_peer_gone_is_epipe(self):
        w = World()

        def server(ctx):
            s = yield from ctx.socket()
            yield from ctx.bind(s, ("server", 7))
            yield from ctx.listen(s)
            c = yield from ctx.accept(s)
            yield from ctx.close(c)
            yield from ctx.close(s)

        def client(ctx):
            s = yield from ctx.socket()
            yield from ctx.connect(s, ("server", 7))
            data = yield from ctx.recv(s, 10)  # EOF
            result = yield from ctx.syscall("sendto", s, 1, data=b"x")
            return data, result.retval

        w.spawn(server, name="s")
        task = w.spawn(client, name="c")
        w.run()
        assert finish(task.threads[0]) == (b"", -EPIPE)

    def test_nonblocking_accept_eagain(self):
        def main(ctx):
            s = yield from ctx.socket(flags=O_NONBLOCK)
            yield from ctx.bind(s, ("server", 7))
            yield from ctx.listen(s)
            result = yield from ctx.syscall("accept", s)
            return result.retval

        w = World()
        task = w.spawn(main, name="s")
        w.run()
        assert finish(task.threads[0]) == -EAGAIN

    def test_socketpair_duplex(self):
        def main(ctx):
            a, b = yield from ctx.socketpair()
            yield from ctx.write(a, b"ping")
            got = yield from ctx.read(b, 10)
            yield from ctx.write(b, b"pong")
            back = yield from ctx.read(a, 10)
            return got, back

        w = World()
        task = w.spawn(main, name="p")
        w.run()
        assert finish(task.threads[0]) == (b"ping", b"pong")

    def test_pipe_one_way(self):
        def main(ctx):
            r, wfd = yield from ctx.pipe()
            yield from ctx.write(wfd, b"through the pipe")
            return (yield from ctx.read(r, 100))

        w = World()
        task = w.spawn(main, name="p")
        w.run()
        assert finish(task.threads[0]) == b"through the pipe"


class TestEpoll:
    def test_epoll_wait_timeout_returns_empty(self):
        def main(ctx):
            ep = yield from ctx.epoll_create()
            s = yield from ctx.socket()
            yield from ctx.bind(s, ("server", 7))
            yield from ctx.listen(s)
            yield from ctx.epoll_ctl(ep, EPOLL_CTL_ADD, s, EPOLLIN)
            events = yield from ctx.epoll_wait(ep, timeout_ms=5)
            return events

        w = World()
        task = w.spawn(main, name="p")
        w.run()
        assert finish(task.threads[0]) == []

    def test_epoll_del_stops_events(self):
        w = World()

        def main(ctx):
            ep = yield from ctx.epoll_create()
            r, wfd = yield from ctx.pipe()
            yield from ctx.epoll_ctl(ep, EPOLL_CTL_ADD, r, EPOLLIN)
            yield from ctx.write(wfd, b"x")
            first = yield from ctx.epoll_wait(ep, timeout_ms=1)
            yield from ctx.epoll_ctl(ep, EPOLL_CTL_DEL, r, 0)
            second = yield from ctx.epoll_wait(ep, timeout_ms=1)
            return len(first), len(second)

        task = w.spawn(main, name="p")
        w.run()
        assert finish(task.threads[0]) == (1, 0)

    def test_epoll_wakes_blocked_waiter(self):
        w = World()
        order = []

        def waiter(ctx):
            ep = yield from ctx.epoll_create()
            r, wfd = yield from ctx.pipe()
            shared["r"], shared["w"] = r, wfd
            yield from ctx.epoll_ctl(ep, EPOLL_CTL_ADD, r, EPOLLIN)
            shared["task"] = ctx.task
            events = yield from ctx.epoll_wait(ep)
            order.append("woke")
            return events

        shared = {}

        def writer(ctx):
            yield from ctx.nanosleep(1_000_000_000)  # 1 ms
            # Write through the same task's pipe description.
            description = shared["task"].fdtable.get(shared["w"])
            description.write_bytes(b"data")
            order.append("wrote")

        task = w.spawn(waiter, name="waiter")
        w.spawn(writer, name="writer")
        w.run()
        events = finish(task.threads[0])
        assert order == ["wrote", "woke"]
        assert events and events[0][1] & EPOLLIN


    def test_watcher_registry_is_insertion_ordered(self):
        # Pollable.poke iterates the watcher registry and wakes each
        # epoll's sleepers in turn, so the iteration order is part of
        # the deterministic schedule.  A set would order watchers by
        # object address (heap-layout-dependent — it once flipped a
        # reference-sweep cell depending on PYTHONHASHSEED); the
        # registry must preserve registration order exactly, including
        # across unregister/re-register cycles.
        from repro.kernel.epoll import Epoll
        from repro.kernel.net import Pollable
        from repro.sim.core import Simulator

        sim = Simulator()
        pollable = Pollable(sim)
        epolls = [Epoll(sim) for _ in range(5)]
        for index, ep in enumerate(epolls):
            pollable.watchers[ep] = None
        assert list(pollable.watchers) == epolls
        pollable.watchers.pop(epolls[1], None)
        pollable.watchers[epolls[1]] = None  # re-register: moves to back
        assert list(pollable.watchers) == \
            [epolls[0]] + epolls[2:] + [epolls[1]]


class TestProcessesAndThreads:
    def test_fork_runs_child_and_wait4_reaps(self):
        w = World()
        log = []

        def child(ctx):
            yield from ctx.nanosleep(500_000)
            log.append("child")
            yield from ctx.exit(7)

        def parent(ctx):
            pid = yield from ctx.fork(child)
            reaped, status = yield from ctx.wait4(pid)
            log.append("parent")
            return reaped == pid, status

        task = w.spawn(parent, name="parent")
        w.run()
        assert finish(task.threads[0]) == (True, 7)
        assert log == ["child", "parent"]

    def test_fork_child_shares_descriptions(self):
        w = World()

        def child(ctx):
            data = yield from ctx.read(3, 3)  # inherited fd 3
            shared["child_read"] = data
            return None

        shared = {}

        def parent(ctx):
            fd = yield from ctx.open("/tmp/a")
            assert fd == 3
            pid = yield from ctx.fork(child)
            yield from ctx.wait4(pid)
            # Child advanced the shared offset.
            return (yield from ctx.read(fd, 3))

        fs_files = {"/tmp/a": b"abcdef"}
        fs = w.kernel.fs(w.server)
        for path, data in fs_files.items():
            fs.create(path, data)
        task = w.spawn(parent, name="parent")
        w.run()
        assert shared["child_read"] == b"abc"
        assert finish(task.threads[0]) == b"def"

    def test_threads_share_fdtable(self):
        w = World()
        shared = {}

        def worker(ctx):
            shared["data"] = yield from ctx.read(shared["fd"], 5)
            return None

        def main(ctx):
            fd = yield from ctx.open("/tmp/a")
            shared["fd"] = fd
            tid = yield from ctx.spawn_thread(worker)
            yield from ctx.nanosleep(10_000_000)
            return tid

        w.kernel.fs(w.server).create("/tmp/a", b"words")
        task = w.spawn(main, name="m")
        w.run()
        assert shared["data"] == b"words"
        assert len(task.threads) == 2

    def test_exit_group_kills_all_threads(self):
        w = World()

        def worker(ctx):
            yield from ctx.nanosleep(10_000_000_000_000)  # long sleep
            return "never"

        def main(ctx):
            yield from ctx.spawn_thread(worker)
            yield from ctx.exit(3)

        task = w.spawn(main, name="m")
        w.run()
        assert task.exited and task.exit_status == 3
        assert all(t.done for t in task.threads)

    def test_getpid_differs_between_parent_and_child(self):
        w = World()
        pids = {}

        def child(ctx):
            pids["child"] = yield from ctx.getpid()
            return None

        def parent(ctx):
            pids["parent"] = yield from ctx.getpid()
            pid = yield from ctx.fork(child)
            yield from ctx.wait4(pid)
            return pid

        task = w.spawn(parent, name="p")
        w.run()
        assert pids["parent"] != pids["child"]
        assert finish(task.threads[0]) == pids["child"]


class TestSignals:
    def test_sigterm_default_kills(self):
        w = World()

        def victim(ctx):
            yield from ctx.nanosleep(10_000_000_000_000)
            return "survived"

        victim_task = w.spawn(victim, name="victim")

        def killer(ctx):
            yield from ctx.nanosleep(1_000_000)
            yield from ctx.kill(victim_task.pid, SIGSEGV)
            return None

        w.spawn(killer, name="killer")
        w.run()
        assert victim_task.exited
        assert victim_task.exit_status == 128 + SIGSEGV

    def test_registered_handler_intercepts(self):
        w = World()
        caught = []

        def victim(ctx):
            yield from ctx.sigaction(
                SIGTERM, lambda task, sig: caught.append(sig))
            yield from ctx.nanosleep(5_000_000)
            return "survived"

        victim_task = w.spawn(victim, name="victim")

        def killer(ctx):
            yield from ctx.nanosleep(1_000_000)
            yield from ctx.kill(victim_task.pid, SIGTERM)
            return None

        w.spawn(killer, name="killer")
        w.run()
        assert caught == [SIGTERM]
        assert finish(victim_task.threads[0]) == "survived"

    def test_segfault_without_hook_exits_139(self):
        w = World()

        def crasher(ctx):
            yield from ctx.compute(100)
            raise Segfault("null deref")

        task = w.spawn(crasher, name="crash")
        w.run()
        assert task.exited and task.exit_status == 139

    def test_segfault_hook_invoked(self):
        w = World()
        seen = []

        def crasher(ctx):
            yield from ctx.compute(100)
            raise Segfault("bad store")

        task = w.spawn(crasher, name="crash")
        task.segv_hook = lambda t, fault: seen.append(str(fault))
        w.run()
        assert seen == ["bad store"]
