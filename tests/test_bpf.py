"""BPF machine tests, including the paper's Listing 1 verbatim."""

import pytest

from repro.bpf import (
    ACTION_ALLOW,
    ACTION_KILL,
    ACTION_SKIP,
    NVX_RET_SKIP,
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_KILL,
    BpfProgram,
    RewriteRules,
    assemble_bpf,
    jump,
    pack_seccomp_data,
    stmt,
    verify,
)
from repro.bpf.insn import (
    BPF_ABS,
    BPF_ADD,
    BPF_ALU,
    BPF_DIV,
    BPF_JA,
    BPF_JEQ,
    BPF_JMP,
    BPF_K,
    BPF_LD,
    BPF_MEM,
    BPF_RET,
    BPF_ST,
    BPF_W,
)
from repro.errors import BpfVerifierError
from repro.kernel.uapi import SYSCALL_NUMBERS

#: Listing 1 of the paper, character-for-character where it matters.
LISTING_1 = """
ld event[0]
jeq #108, getegid /* __NR_getegid */
jeq #2, open /* __NR_open */
jmp bad
getegid:
ld [0] /* offsetof(struct seccomp_data, nr) */
jeq #102, good /* __NR_getuid */
open:
ld [0] /* offsetof(struct seccomp_data, nr) */
jeq #104, good /* __NR_getgid */
bad: ret #0 /* SECCOMP_RET_KILL */
good: ret #0x7fff0000 /* SECCOMP_RET_ALLOW */
"""


class TestAssembler:
    def test_listing1_assembles(self):
        program = assemble_bpf(LISTING_1, name="listing1")
        assert len(program) == 10

    def test_unknown_mnemonic(self):
        with pytest.raises(BpfVerifierError):
            assemble_bpf("frob #1\nret #0")

    def test_undefined_label(self):
        with pytest.raises(BpfVerifierError):
            assemble_bpf("jmp nowhere\nret #0")

    def test_backward_jump_rejected(self):
        with pytest.raises(BpfVerifierError):
            assemble_bpf("top:\nld [0]\njmp top\nret #0")

    def test_duplicate_label_rejected(self):
        with pytest.raises(BpfVerifierError):
            assemble_bpf("a:\na:\nret #0")

    def test_label_and_insn_same_line(self):
        program = assemble_bpf("go: ret #7")
        assert program.run(pack_seccomp_data(0)) == 7

    def test_comments_stripped(self):
        program = assemble_bpf("ret #1 /* inline */ // trailing")
        assert program.run(pack_seccomp_data(0)) == 1


class TestVerifier:
    def test_empty_program_rejected(self):
        with pytest.raises(BpfVerifierError):
            verify([])

    def test_must_end_in_ret(self):
        with pytest.raises(BpfVerifierError):
            verify([stmt(BPF_LD | BPF_W | BPF_ABS, 0)])

    def test_jump_out_of_range_rejected(self):
        insns = [jump(BPF_JMP | BPF_JEQ | BPF_K, 1, 5, 0),
                 stmt(BPF_RET | BPF_K, 0)]
        with pytest.raises(BpfVerifierError):
            verify(insns)

    def test_division_by_zero_constant_rejected(self):
        insns = [stmt(BPF_ALU | BPF_DIV | BPF_K, 0),
                 stmt(BPF_RET | BPF_K, 0)]
        with pytest.raises(BpfVerifierError):
            verify(insns)

    def test_scratch_slot_bounds(self):
        insns = [stmt(BPF_ST, 16), stmt(BPF_RET | BPF_K, 0)]
        with pytest.raises(BpfVerifierError):
            verify(insns)

    def test_valid_program_passes(self):
        program = assemble_bpf(LISTING_1)
        verify(program.insns)  # no exception


class TestInterpreter:
    def test_ret_constant(self):
        assert assemble_bpf("ret #42").run(b"") == 42

    def test_ld_abs_reads_nr(self):
        program = assemble_bpf("ld [0]\nret a")
        assert program.run(pack_seccomp_data(123)) == 123

    def test_ld_event_extension(self):
        program = assemble_bpf("ld event[0]\nret a")
        assert program.run(pack_seccomp_data(0), event_words=[77]) == 77

    def test_event_word_out_of_range_reads_zero(self):
        program = assemble_bpf("ld event[5]\nret a")
        assert program.run(pack_seccomp_data(0), event_words=[1]) == 0

    def test_arithmetic(self):
        program = assemble_bpf("ld #10\nadd #5\nmul #3\nsub #15\nret a")
        assert program.run(b"") == 30

    def test_scratch_memory(self):
        program = assemble_bpf("ld #9\nst M[3]\nld #0\nld M[3]\nret a")
        assert program.run(b"") == 9

    def test_conditional_fallthrough(self):
        source = "ld [0]\njeq #5, yes\nret #100\nyes: ret #200"
        program = assemble_bpf(source)
        assert program.run(pack_seccomp_data(5)) == 200
        assert program.run(pack_seccomp_data(6)) == 100

    def test_jt_jf_form(self):
        source = "ld [0]\njgt #10, big, small\nbig: ret #1\nsmall: ret #2"
        program = assemble_bpf(source)
        assert program.run(pack_seccomp_data(11)) == 1
        assert program.run(pack_seccomp_data(10)) == 2

    def test_args_accessible_at_offset_16(self):
        program = assemble_bpf("ld [16]\nret a")
        assert program.run(pack_seccomp_data(1, args=[999])) == 999

    def test_load_past_end_raises(self):
        from repro.errors import BpfRuntimeError

        program = assemble_bpf("ld [60]\nret a")
        with pytest.raises(BpfRuntimeError):
            program.run(b"\0" * 8)


class TestListing1Semantics:
    """Drive Listing 1 exactly as §5.2 describes."""

    @pytest.fixture()
    def program(self):
        return assemble_bpf(LISTING_1, name="listing1")

    def test_follower_getuid_while_leader_getegid_allowed(self, program):
        # Follower executes getuid (102), leader's event is getegid (108).
        data = pack_seccomp_data(SYSCALL_NUMBERS["getuid"])
        verdict = program.run(data, [SYSCALL_NUMBERS["getegid"]])
        assert verdict == SECCOMP_RET_ALLOW

    def test_follower_getgid_while_leader_open_allowed(self, program):
        data = pack_seccomp_data(SYSCALL_NUMBERS["getgid"])
        verdict = program.run(data, [SYSCALL_NUMBERS["open"]])
        assert verdict == SECCOMP_RET_ALLOW

    def test_other_combinations_killed(self, program):
        data = pack_seccomp_data(SYSCALL_NUMBERS["write"])
        assert program.run(data, [SYSCALL_NUMBERS["getegid"]]) == \
            SECCOMP_RET_KILL
        data = pack_seccomp_data(SYSCALL_NUMBERS["getuid"])
        assert program.run(data, [SYSCALL_NUMBERS["write"]]) == \
            SECCOMP_RET_KILL


class TestRewriteRules:
    def test_no_filters_means_kill(self):
        rules = RewriteRules()
        assert rules.evaluate(1, [], [2]) == ACTION_KILL

    def test_allow_verdict(self):
        rules = RewriteRules([assemble_bpf(LISTING_1)])
        action = rules.evaluate(SYSCALL_NUMBERS["getuid"], [],
                                [SYSCALL_NUMBERS["getegid"]])
        assert action == ACTION_ALLOW
        assert rules.applied == 1

    def test_skip_verdict(self):
        skip_filter = assemble_bpf(
            f"ld event[0]\njeq #{SYSCALL_NUMBERS['getuid']}, s\n"
            f"ret #0\ns: ret #{NVX_RET_SKIP:#x}")
        rules = RewriteRules([skip_filter])
        action = rules.evaluate(SYSCALL_NUMBERS["getegid"], [],
                                [SYSCALL_NUMBERS["getuid"]])
        assert action == ACTION_SKIP

    def test_first_matching_filter_wins(self):
        allow_all = assemble_bpf(f"ret #{SECCOMP_RET_ALLOW:#x}")
        kill_all = assemble_bpf("ret #0")
        rules = RewriteRules([kill_all, allow_all])
        assert rules.evaluate(1, [], [2]) == ACTION_ALLOW
