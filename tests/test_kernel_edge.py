"""Edge-case kernel tests: descriptor passing, listener lifecycle,
partial reads, uapi plumbing."""

import pytest

from repro.kernel.net import DuplexPipe, PipeEnd, StreamBuffer
from repro.kernel.uapi import (
    ERRNO_NAMES,
    SYSCALL_NAMES,
    SYSCALL_NUMBERS,
    Syscall,
    SysError,
    SysResult,
    syscall_number,
)
from repro.costmodel import SEC_PS
from repro.errors import KernelError
from repro.sim import Simulator
from repro.world import World


class TestUapi:
    def test_listing1_numbers_match_x86_64(self):
        # These exact numbers appear in the paper's Listing 1.
        assert SYSCALL_NUMBERS["getegid"] == 108
        assert SYSCALL_NUMBERS["open"] == 2
        assert SYSCALL_NUMBERS["getuid"] == 102
        assert SYSCALL_NUMBERS["getgid"] == 104

    def test_number_name_roundtrip(self):
        for name, nr in SYSCALL_NUMBERS.items():
            assert SYSCALL_NAMES[nr] == name

    def test_unknown_syscall_number_raises(self):
        with pytest.raises(KernelError):
            syscall_number("made_up_call")

    def test_sysresult_errno_accessors(self):
        ok = SysResult(3)
        err = SysResult(-9)
        assert ok.ok and ok.errno == 0
        assert not err.ok and err.errno == 9

    def test_syserror_message_uses_symbolic_name(self):
        error = SysError(9, "write")
        assert "EBADF" in str(error)
        assert ERRNO_NAMES[9] == "EBADF"

    def test_syscall_arg_defaults(self):
        call = Syscall("read", (3,))
        assert call.arg(0) == 3
        assert call.arg(5, default=-1) == -1


class TestStreamBuffer:
    def test_partial_pull(self):
        buffer = StreamBuffer()
        buffer.push(b"abcdef")
        assert buffer.pull(2) == b"ab"
        assert buffer.pull(10) == b"cdef"
        assert buffer.size == 0

    def test_pull_across_chunks(self):
        buffer = StreamBuffer()
        buffer.push(b"abc")
        buffer.push(b"def")
        assert buffer.pull(4) == b"abcd"
        assert buffer.pull(4) == b"ef"

    def test_empty_push_ignored(self):
        buffer = StreamBuffer()
        buffer.push(b"")
        assert buffer.size == 0 and not buffer.chunks


class TestFdPassing:
    def test_scm_rights_increfs(self):
        sim = Simulator()
        a, b = PipeEnd.make_socketpair(sim)
        payload, _ = PipeEnd.make_pipe(sim)
        before = payload.refcount
        assert a.push_fd(payload) == 0
        assert payload.refcount == before + 1
        assert b.fd_queue[0] is payload

    def test_push_fd_to_closed_peer_is_epipe(self):
        from repro.kernel.uapi import EPIPE

        sim = Simulator()
        a, b = PipeEnd.make_socketpair(sim)
        b.closed = True
        payload, _ = PipeEnd.make_pipe(sim)
        assert a.push_fd(payload) == -EPIPE


class TestListenerLifecycle:
    def test_port_reuse_after_server_exit(self):
        world = World()

        def short_server(ctx):
            fd = yield from ctx.socket()
            yield from ctx.bind(fd, ("server", 9090))
            yield from ctx.listen(fd)
            yield from ctx.close(fd)
            return "done"

        first = world.spawn(short_server, name="s1")
        world.run()
        assert first.threads[0].result == "done"

        second = world.spawn(short_server, name="s2")
        world.run()
        assert second.threads[0].result == "done"  # EADDRINUSE would raise

    def test_bind_conflict_detected(self):
        from repro.kernel.uapi import EADDRINUSE

        world = World()

        def holder(ctx):
            fd = yield from ctx.socket()
            yield from ctx.bind(fd, ("server", 9091))
            yield from ctx.listen(fd)
            yield from ctx.nanosleep(int(0.01 * SEC_PS))

        def contender(ctx):
            yield from ctx.nanosleep(1_000_000)
            fd = yield from ctx.socket()
            result = yield from ctx.syscall("bind", fd, ("server", 9091))
            return result.retval

        world.spawn(holder, name="h", daemon=True)
        task = world.spawn(contender, name="c")
        world.run()
        assert task.threads[0].result == -EADDRINUSE

    def test_connect_during_backlog_overflow_refused(self):
        from repro.kernel.uapi import ECONNREFUSED

        world = World()

        def tiny_backlog_server(ctx):
            fd = yield from ctx.socket()
            yield from ctx.bind(fd, ("server", 9092))
            yield from ctx.listen(fd, backlog=1)
            yield from ctx.nanosleep(int(0.05 * SEC_PS))  # never accepts

        def client(ctx):
            yield from ctx.nanosleep(1_000_000)
            outcomes = []
            for _ in range(3):
                fd = yield from ctx.socket()
                result = yield from ctx.syscall("connect", fd,
                                                ("server", 9092))
                outcomes.append(result.retval)
            return outcomes

        world.spawn(tiny_backlog_server, name="s", daemon=True)
        task = world.spawn(client, name="c", machine=world.client)
        world.run()
        outcomes = task.threads[0].result
        assert outcomes[0] == 0
        assert -ECONNREFUSED in outcomes  # backlog filled


class TestSendfileAndVectored:
    def test_sendfile_to_socket(self):
        world = World()
        world.kernel.fs(world.server).create("/var/www/big",
                                             b"F" * 1000)

        def server(ctx):
            s = yield from ctx.socket()
            yield from ctx.bind(s, ("server", 9093))
            yield from ctx.listen(s)
            conn = yield from ctx.accept(s)
            src = yield from ctx.open("/var/www/big")
            sent = yield from ctx.sendfile(conn, src, 1000)
            yield from ctx.close(conn)
            return sent

        def client(ctx):
            from repro.clients.base import connect_with_retry, recv_until

            fd = yield from connect_with_retry(ctx, ("server", 9093))
            data = b""
            while len(data) < 1000:
                chunk = yield from ctx.recv(fd, 4096)
                if not chunk:
                    break
                data += chunk
            return data

        server_task = world.spawn(server, name="s")
        client_task = world.spawn(client, name="c", machine=world.client)
        world.run()
        assert server_task.threads[0].result == 1000
        assert client_task.threads[0].result == b"F" * 1000
