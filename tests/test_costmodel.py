"""Tests for the calibrated cost model."""

import pytest

from repro.costmodel import (
    CYCLE_PS,
    DEFAULT_COSTS,
    CostModel,
    FailoverCosts,
    MachineSpec,
    cycles,
    to_cycles,
)


class TestConversions:
    def test_cycle_roundtrip(self):
        assert to_cycles(cycles(1234)) == pytest.approx(1234)

    def test_cycle_ps_matches_frequency(self):
        # 3.5 GHz → 285.7 ps; we round to 286.
        assert CYCLE_PS == 286
        assert abs(1e12 / 3.5e9 - CYCLE_PS) < 1

    def test_cycles_is_integral(self):
        assert isinstance(cycles(100.5), int)


class TestFigure4Anchors:
    """The native column of Figure 4 is a calibration *input*."""

    @pytest.mark.parametrize("call,expected", [
        ("close", 1261), ("write", 1430), ("read", 1486),
        ("open", 2583), ("time", 49),
    ])
    def test_native_costs_match_paper(self, call, expected):
        assert DEFAULT_COSTS.syscalls.native(call) == expected

    def test_per_byte_surcharge_beyond_512(self):
        base = DEFAULT_COSTS.syscalls.native("read")
        assert DEFAULT_COSTS.syscalls.native("read", 512) == base
        assert DEFAULT_COSTS.syscalls.native("read", 4096) > base

    def test_unknown_call_uses_default(self):
        assert DEFAULT_COSTS.syscalls.native("frobnicate") == \
            DEFAULT_COSTS.syscalls.table["default"]


class TestInterceptionPaths:
    def test_fast_path_well_under_native_close(self):
        # §4.1: interception is <15% of a cheap syscall.
        assert DEFAULT_COSTS.intercept.fast_path < 0.15 * 1261

    def test_slow_path_dominated_by_signal_delivery(self):
        slow = DEFAULT_COSTS.intercept.slow_path
        assert slow > 10 * DEFAULT_COSTS.intercept.fast_path
        assert slow > DEFAULT_COSTS.intercept.int_fallback

    def test_paper_intercept_anchor_for_time(self):
        # 122 cycles total for intercepted time (49 native + stub).
        total = 49 + DEFAULT_COSTS.intercept.vdso_stub
        assert total == pytest.approx(122, abs=5)


class TestStreamCosts:
    def test_leader_close_anchor(self):
        # Figure 4: leader close 1718 = native + fast path + publish.
        total = (1261 + DEFAULT_COSTS.intercept.fast_path
                 + DEFAULT_COSTS.stream.ring_publish)
        assert total == pytest.approx(1718, rel=0.03)

    def test_follower_close_anchor(self):
        # Figure 4: follower close 257 = fast path + consume.
        total = (DEFAULT_COSTS.intercept.fast_path
                 + DEFAULT_COSTS.stream.ring_consume)
        assert total == pytest.approx(257, rel=0.05)

    def test_fd_transfer_costs_anchor_open(self):
        leader_open = (2583 + DEFAULT_COSTS.intercept.fast_path
                       + DEFAULT_COSTS.stream.ring_publish
                       + DEFAULT_COSTS.stream.fd_send)
        assert leader_open == pytest.approx(8788, rel=0.07)


class TestPtraceCosts:
    def test_stop_cost_includes_two_context_switches(self):
        ptrace = DEFAULT_COSTS.ptrace
        assert ptrace.stop_cost() >= 2 * ptrace.context_switch

    def test_copy_cost_word_granular(self):
        ptrace = DEFAULT_COSTS.ptrace
        assert ptrace.copy_cost(8) == ptrace.peek_poke
        assert ptrace.copy_cost(512) == 64 * ptrace.peek_poke
        assert ptrace.copy_cost(9) == 2 * ptrace.peek_poke

    def test_ptrace_read_dwarfs_varan_leader_read(self):
        # The core claim: ptrace costs explode with buffer size.
        ptrace_512 = (2 * DEFAULT_COSTS.ptrace.stop_cost()
                      + DEFAULT_COSTS.ptrace.copy_cost(512))
        varan_512 = (DEFAULT_COSTS.stream.ring_publish
                     + DEFAULT_COSTS.stream.shm_alloc
                     + 512 * DEFAULT_COSTS.stream.copy_per_byte)
        assert ptrace_512 > 10 * varan_512


class TestModelPlumbing:
    def test_with_replaces_sections(self):
        custom = DEFAULT_COSTS.with_(
            failover=FailoverCosts(detect_signal=1))
        assert custom.failover.detect_signal == 1
        assert custom.stream is DEFAULT_COSTS.stream

    def test_machine_spec_defaults_match_testbed(self):
        spec = MachineSpec()
        assert spec.logical_cores == 8
        assert spec.physical_cores == 4
        assert spec.freq_ghz == 3.5

    def test_cost_model_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COSTS.record_log_per_event = 0
