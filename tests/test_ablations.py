"""Tests for the design-choice ablation studies."""

from repro.experiments import ablations


class TestPumpAblation:
    def test_pump_penalty_grows_with_followers(self):
        result = ablations.pump_vs_ring(events=400,
                                        consumer_counts=(1, 4))
        by_count = {row["consumers"]: row for row in result.rows}
        assert by_count[4]["pump_penalty"] > by_count[1]["pump_penalty"]
        # §3.3.1: the pump is the bottleneck at scale.
        assert by_count[4]["pump_penalty"] > 2.0

    def test_ring_time_independent_of_consumer_count(self):
        result = ablations.pump_vs_ring(events=400,
                                        consumer_counts=(1, 6))
        by_count = {row["consumers"]: row for row in result.rows}
        # Consumers progress in parallel on their own cores.
        assert by_count[6]["ring_us"] <= by_count[1]["ring_us"] * 1.3


class TestCapacityAblation:
    def test_single_slot_ring_is_slowest(self):
        result = ablations.ring_capacity(events=400,
                                         capacities=(1, 256))
        by_capacity = {row["capacity"]: row for row in result.rows}
        assert by_capacity[1]["time_us"] >= by_capacity[256]["time_us"]


class TestWaitlockAblation:
    def test_slow_producer_forces_waitlock_either_way(self):
        result = ablations.waitlock(events=50)
        by_mode = {row["mode"]: row for row in result.rows}
        assert by_mode["waitlock"]["waitlock_sleeps"] == 50
        # Spinning first still ends in the waitlock: budget expires.
        assert by_mode["spin-first"]["waitlock_sleeps"] == 50
        assert by_mode["spin-first"]["spin_waits"] == 50
