"""Integration tests: the simulated servers against their clients."""

import pytest

from repro.apps import (
    LIGHTTPD,
    ServerStats,
    make_beanstalkd,
    make_httpd,
    make_memcached,
    make_nginx,
    make_redis,
)
from repro.clients import (
    make_apachebench,
    make_beanstalkd_benchmark,
    make_memslap,
    make_redis_benchmark,
    make_wrk,
)
from repro.costmodel import SEC_PS
from repro.world import World


def drive(server_main, client_mains, files=None, until_s=20.0):
    world = World()
    fs = world.kernel.fs(world.server)
    fs.create("/var/www/index.html", b"w" * 4096)
    if files:
        for path, data in files.items():
            fs.create(path, data)
    world.spawn(server_main, name="server", daemon=True)
    for index, main in enumerate(client_mains):
        world.kernel.spawn_task(world.client, main, name=f"cli{index}")
    world.run(until_ps=int(until_s * SEC_PS))
    return world


class TestHttpd:
    def test_wrk_serves_pages(self):
        stats = ServerStats()
        mains, report = make_wrk(duration_ps=SEC_PS // 100)
        drive(make_httpd(LIGHTTPD, stats=stats), mains)
        assert report.errors == 0
        assert report.requests > 50
        assert stats.requests == report.requests

    def test_apachebench_one_connection_per_request(self):
        stats = ServerStats()
        mains, report = make_apachebench(requests=60, concurrency=6,
                                         scale=1.0)
        drive(make_httpd(LIGHTTPD, stats=stats), mains)
        assert report.requests == 60
        assert stats.connections == 60  # no keepalive

    def test_response_carries_full_page(self):
        stats = ServerStats()
        mains, report = make_wrk(clients=1, duration_ps=SEC_PS // 1000)
        drive(make_httpd(LIGHTTPD, stats=stats,
                         page_path="/var/www/index.html"), mains)
        assert stats.bytes_out >= report.requests * 4096


class TestBeanstalkd:
    def test_pushes_inserted(self):
        stats = ServerStats()
        mains, report = make_beanstalkd_benchmark(workers=3, pushes=20,
                                                  scale=1.0)
        drive(make_beanstalkd(stats=stats), mains)
        assert report.errors == 0
        assert report.requests == 60
        assert stats.requests == 60

    def test_reserve_delete_cycle(self):
        stats = ServerStats()

        def client(ctx):
            from repro.clients.base import connect_with_retry, recv_until

            fd = yield from connect_with_retry(ctx, ("server", 11300))
            yield from ctx.send(fd, b"put payload-bytes\r\n")
            inserted = yield from recv_until(ctx, fd, b"\r\n")
            yield from ctx.send(fd, b"reserve\r\n")
            reserved = yield from recv_until(ctx, fd, b"\r\n")
            yield from ctx.send(fd, b"delete 1\r\n")
            deleted = yield from recv_until(ctx, fd, b"\r\n")
            return inserted, reserved, deleted

        world = World()
        world.spawn(make_beanstalkd(stats=stats), name="bs", daemon=True)
        task = world.kernel.spawn_task(world.client, client, name="c")
        world.run(until_ps=SEC_PS)
        inserted, reserved, deleted = task.threads[0].result
        assert inserted.startswith(b"INSERTED 1")
        assert reserved.startswith(b"RESERVED 1")
        assert deleted.startswith(b"DELETED")


class TestRedis:
    def test_benchmark_mix_served(self):
        stats = ServerStats()
        mains, report = make_redis_benchmark(clients=5, requests=70,
                                             scale=1.0)
        drive(make_redis(stats=stats, background_thread=False), mains)
        assert report.errors == 0
        assert report.requests == 70 // 5 * 5 * 7
        assert stats.errors == 0

    def test_incr_on_string_returns_error_not_crash(self):
        stats = ServerStats()

        def client(ctx):
            from repro.clients.base import connect_with_retry, recv_until

            fd = yield from connect_with_retry(ctx, ("server", 6379))
            yield from ctx.send(fd, b"SET k notanumber\r\n")
            yield from recv_until(ctx, fd, b"\r\n")
            yield from ctx.send(fd, b"INCR k\r\n")
            return (yield from recv_until(ctx, fd, b"\r\n"))

        world = World()
        world.spawn(make_redis(stats=stats, background_thread=False),
                    name="redis", daemon=True)
        task = world.kernel.spawn_task(world.client, client, name="c")
        world.run(until_ps=SEC_PS)
        assert task.threads[0].result.startswith(b"-ERR")

    def test_buggy_revision_crashes_on_hmget(self):
        from repro.apps.redis import BUGGY_REVISION

        stats = ServerStats()

        def client(ctx):
            from repro.clients.base import connect_with_retry, recv_until

            fd = yield from connect_with_retry(ctx, ("server", 6379))
            yield from ctx.send(fd, b"HMGET missing f1\r\n")
            return (yield from recv_until(ctx, fd, b"\r\n"))

        world = World()
        server = world.spawn(
            make_redis(stats=stats, revision=BUGGY_REVISION,
                       background_thread=False),
            name="redis", daemon=True)
        world.kernel.spawn_task(world.client, client, name="c",
                                daemon=True)
        world.run(until_ps=SEC_PS)
        assert server.exited and server.exit_status == 139


class TestMemcached:
    def test_memslap_roundtrip(self):
        stats = ServerStats()
        mains, report = make_memslap(initial_load=40, executions=40,
                                     concurrency=4, scale=1.0)
        drive(make_memcached(stats=stats), mains)
        assert report.errors == 0
        assert report.requests == 40
        # loads + mixed ops all hit the worker threads
        assert stats.requests >= 40

    def test_connections_distributed_across_workers(self):
        stats = ServerStats()
        mains, report = make_memslap(initial_load=8, executions=8,
                                     concurrency=4, scale=1.0)
        drive(make_memcached(stats=stats, workers=2), mains)
        assert stats.connections == 4


class TestNginx:
    def test_multiprocess_serving(self):
        stats = ServerStats()
        mains, report = make_wrk(port=8080, clients=8,
                                 duration_ps=SEC_PS // 100)
        drive(make_nginx(port=8080, stats=stats, workers=2), mains)
        assert report.errors == 0
        assert report.requests > 20
        assert stats.requests == report.requests
