"""Translation-cache tests: differential equivalence with per-step
decode, invalidation (rewriter patches, self-modifying code, remaps),
and the hit/miss/invalidation counters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel import CYCLE_PS
from repro.errors import DisassemblyError, ExecutionFault
from repro.isa import AddressSpace, Cpu, Segment, assemble
from repro.isa.translator import GLOBAL_STATS, T_SYSCALL
from repro.obs import metrics as obs_metrics
from repro.sim.core import Compute

TEXT = 0x1000
DATA = 0x4000
STACK_TOP = 0x20000


def build_cpu(source, translate=True, text_perms="rx", name="cpu"):
    space = AddressSpace()
    code = assemble(source, origin=TEXT)
    space.map(Segment(TEXT, code, perms=text_perms, name="text"))
    space.map(Segment(DATA, bytes(0x800), perms="rw", name="data"))
    space.map(Segment(STACK_TOP - 0x1000, bytes(0x1000), perms="rw",
                      name="stack"))
    cpu = Cpu(space, TEXT, STACK_TOP, name=name, translate=translate)

    def syscall_handler(inner):
        return (inner.regs[0] * 3 + 11) & (2 ** 64 - 1)
        yield  # pragma: no cover - generator marker

    def int0_handler(inner):
        return (inner.regs[0] ^ 0x5A5A) & (2 ** 64 - 1)
        yield  # pragma: no cover - generator marker

    def vsys_handler(inner, index):
        return 7000 + index
        yield  # pragma: no cover - generator marker

    def vmcall_handler(inner):
        return 0xC0DE
        yield  # pragma: no cover - generator marker

    cpu.syscall_handler = syscall_handler
    cpu.int0_handler = int0_handler
    cpu.vsys_handler = vsys_handler
    cpu.vmcall_handler = vmcall_handler
    return cpu


def drive(cpu, max_insns=100_000, batch_cycles=20_000):
    """Run to completion, returning (retval, exc_repr, compute_ps)."""
    gen = cpu.run(max_insns=max_insns, batch_cycles=batch_cycles)
    total = 0
    try:
        while True:
            cmd = next(gen)
            if isinstance(cmd, Compute):
                total += cmd.ps
    except StopIteration as stop:
        return stop.value, None, total
    except (ExecutionFault, DisassemblyError) as exc:
        return None, f"{type(exc).__name__}: {exc}", total


def assert_equivalent(source, max_insns=100_000, batch_cycles=20_000,
                      text_perms="rx"):
    """Run ``source`` under cached (superblocks + chaining), cached with
    fusion forced from the first execution, and per-step decode; the
    observable outcome must be identical in all three."""
    interp = build_cpu(source, translate=False, text_perms=text_perms)
    i_ret, i_exc, i_ps = drive(interp, max_insns, batch_cycles)
    cached = build_cpu(source, translate=True, text_perms=text_perms)
    fused = build_cpu(source, translate=True, text_perms=text_perms)
    fused.tcache.fuse_threshold = 1  # every block compiles before run 1
    for cpu in (cached, fused):
        c_ret, c_exc, c_ps = drive(cpu, max_insns, batch_cycles)
        assert c_exc == i_exc
        assert c_ret == i_ret
        assert cpu.regs == interp.regs
        assert cpu.zf == interp.zf
        assert cpu.rip == interp.rip
        assert cpu.halted == interp.halted
        assert cpu.cycles == interp.cycles
        if c_exc is None:
            # Every retired cycle was flushed in both modes, so the
            # sim-time Compute totals agree exactly (only the chunking
            # differs).
            assert c_ps == i_ps == cpu.cycles * CYCLE_PS
            assert cpu.insns_retired == interp.insns_retired
    return cached, interp


class TestCounters:
    def test_loop_hits_after_first_miss(self):
        cpu = build_cpu("""
            movi rbx, 50
        loop:
            subi rbx, 1
            jnz loop
            hlt
        """)
        cpu.run_sync()
        stats = cpu.tcache.stats
        # One block per entry point; re-entries now arrive through the
        # direct-threaded chain (the loop backedge links on its second
        # trip), so lookup hits plus chain follows cover the iterations.
        assert stats.misses >= 1
        assert stats.hits + stats.chain_follows >= 48
        assert stats.chains_linked >= 1
        assert stats.chain_follows >= 40
        assert stats.invalidations == 0
        assert stats.blocks_translated == stats.misses
        assert stats.insns_translated >= 2
        # The loop went hot and fused.
        assert stats.fused_blocks >= 1
        # Superblock lengths are histogrammed at translate time.
        assert sum(stats.sb_len_buckets) == stats.blocks_translated

    def test_global_stats_accumulate(self):
        before = GLOBAL_STATS.hits + GLOBAL_STATS.misses
        cpu = build_cpu("movi rax, 9\nhlt")
        cpu.run_sync()
        assert GLOBAL_STATS.hits + GLOBAL_STATS.misses > before

    def test_counters_flow_through_obs_drain(self):
        obs_metrics.start_collection()
        cpu = build_cpu("""
            movi rbx, 10
        loop:
            subi rbx, 1
            jnz loop
            hlt
        """)
        cpu.run_sync()
        snap = obs_metrics.drain()
        assert snap["counters"]["tcache.misses"] >= 1
        assert (snap["counters"]["tcache.hits"]
                + snap["counters"]["tcache.chain_follows"]) >= 8
        assert snap["counters"]["tcache.chains_linked"] >= 1
        assert snap["counters"]["tcache.dispatch_blocks"] >= 1
        # The superblock length histogram rides along as fixed buckets.
        assert sum(snap["counters"][f"tcache.sb_len_p2_{k}"]
                   for k in range(9)) >= 1
        # Deltas, not process totals: a fresh window starts near zero,
        # and every tcache key is always present.
        obs_metrics.start_collection()
        empty = obs_metrics.drain()
        assert empty["counters"]["tcache.hits"] == 0
        assert empty["counters"]["tcache.misses"] == 0
        assert empty["counters"]["tcache.chain_follows"] == 0
        assert empty["counters"]["tcache.chains_broken"] == 0
        assert empty["counters"]["tcache.fused_blocks"] == 0
        for k in range(9):
            assert empty["counters"][f"tcache.sb_len_p2_{k}"] == 0


class TestInvalidation:
    def test_patch_code_evicts_stale_block(self):
        # Translate, then patch the text the way the rewriter does, and
        # re-execute from the same entry: skipping eviction would replay
        # the stale block and return 5.
        cpu = build_cpu("movi rax, 5\nhlt")
        assert cpu.run_sync() == 5
        patched = assemble("movi rax, 7\nhlt", origin=TEXT)
        cpu.space.patch_code(TEXT, patched)
        cpu.rip = TEXT
        cpu.halted = False
        assert cpu.run_sync() == 7
        assert cpu.tcache.stats.invalidations >= 1

    def test_plain_store_evicts_stale_block(self):
        # Same eviction contract for ordinary stores into (rwx) text.
        source = """
            movi rax, 5
            hlt
        """
        cpu = build_cpu(source, text_perms="rwx")
        assert cpu.run_sync() == 5
        # Overwrite the low immediate byte of `movi rax, 5` (opcode +
        # reg byte precede it) through the data path.
        new_first8 = bytearray(cpu.space.read(TEXT, 8))
        new_first8[2] = 9
        cpu.space.write_u64(TEXT, int.from_bytes(new_first8, "little"))
        cpu.rip = TEXT
        cpu.halted = False
        assert cpu.run_sync() == 9
        assert cpu.tcache.stats.invalidations >= 1

    def test_self_modification_inside_block_takes_effect(self):
        # The store and its victim sit in one straight-line run: the
        # block must stop at the store and re-translate the tail.
        prefix = assemble(
            "movi rcx, 0\nmovi rdx, 0\nmovi rbx, 0\nstore [rcx+0], rdx",
            origin=TEXT)
        victim_addr = TEXT + len(prefix)
        source = f"""
            movi rcx, {victim_addr}
            movi rdx, {{patched_words}}
            movi rbx, 0
            store [rcx+0], rdx
            movi rax, 1
            hlt
        """
        # Build the 8 bytes that turn `movi rax, 1` into `movi rax, 42`.
        original = assemble("movi rax, 1", origin=victim_addr)
        patched = bytearray(original[:8])
        patched[2] = 42
        src = source.format(
            patched_words=int.from_bytes(bytes(patched), "little"))
        cached, interp = assert_equivalent(src, text_perms="rwx")
        assert cached.regs[0] == 42

    def test_mapping_change_flushes_cache(self):
        cpu = build_cpu("movi rax, 1\nhlt")
        block = cpu.tcache.lookup(cpu)
        assert block.terminator != T_SYSCALL
        assert cpu.tcache.stats.misses == 1
        cpu.space.map(Segment(0x9000, bytes(16), perms="rw", name="late"))
        cpu.tcache.lookup(cpu)
        assert cpu.tcache.stats.invalidations >= 1
        assert cpu.tcache.stats.misses == 2

    def test_exec_perm_loss_faults_like_interpreter(self):
        cpu = build_cpu("movi rax, 1\nhlt")
        cpu.tcache.lookup(cpu)
        cpu.space.mprotect(cpu.space.find(TEXT), "r")
        with pytest.raises(ExecutionFault, match="not executable"):
            cpu.run_sync()

    LOOP = """
        movi rbx, {count}
    loop:
        subi rbx, 1
        jnz loop
        hlt
    """

    def test_patch_code_unlinks_chains(self):
        # A rewriter patch bumps Segment.version; eviction must strip
        # every chain link into and out of the stale blocks, or the
        # patched code would never be reached from a chained loop.
        cpu = build_cpu(self.LOOP.format(count=30))
        cpu.run_sync()
        stats = cpu.tcache.stats
        assert stats.chains_linked >= 1
        assert stats.chains_broken == 0
        patched = assemble("movi rax, 77\nhlt", origin=TEXT)
        cpu.space.patch_code(TEXT, patched)
        cpu.rip = TEXT
        cpu.halted = False
        assert cpu.run_sync() == 77
        assert stats.chains_broken >= 1

    def test_remap_mid_run_breaks_then_relinks_chains(self):
        # A mapping change between block executions (here: between
        # Compute batches, as a yielding sim process would see) must be
        # caught by the chain-follow generation check, flush the cache,
        # and let the loop re-translate and re-link.
        cpu = build_cpu(self.LOOP.format(count=200))
        gen = cpu.run(max_insns=100_000, batch_cycles=1)
        for _ in range(5):
            next(gen)
        cpu.space.map(Segment(0x9000, bytes(16), perms="rw", name="late"))
        try:
            while True:
                next(gen)
        except StopIteration:
            pass
        stats = cpu.tcache.stats
        assert cpu.halted and cpu.regs[1] == 0
        assert stats.chains_broken >= 1  # flush counted the stale links
        assert stats.chains_linked >= 2  # ...and the loop re-linked


class TestMaxInsnParity:
    # The budget boundary can land anywhere in a block; the fault's
    # rip/cycles/message must match per-step accounting exactly.
    SOURCE = """
        movi rbx, 1000
    loop:
        addi rax, 3
        push rax
        pop rcx
        subi rbx, 1
        jnz loop
        hlt
    """

    @pytest.mark.parametrize("budget", [1, 2, 3, 5, 7, 11, 23, 24, 25, 26])
    def test_budget_boundary(self, budget):
        assert_equivalent(self.SOURCE, max_insns=budget)

    def test_exact_completion_budget(self):
        # 1 prologue + 1000 * 5 loop insns + hlt.
        assert_equivalent(self.SOURCE, max_insns=5002)
        assert_equivalent(self.SOURCE, max_insns=5001)


class TestHandlerBoundaries:
    def test_handlers_and_batching_equivalent(self):
        source = """
            movi rax, 4
            syscall
            mov rbx, rax
            int0
            vsys 2
            add rax, rbx
            pusha
            popa
            hlt
        """
        for batch in (1, 7, 20_000):
            assert_equivalent(source, batch_cycles=batch)

    def test_fault_on_unmapped_load(self):
        assert_equivalent("movi rbx, 0x333330\nload rax, [rbx+0]\nhlt")

    def test_fault_on_stack_underflow_mid_popa(self):
        # rsp walks off the top of the stack segment inside POPA.
        assert_equivalent(f"movi rsp, {STACK_TOP - 16}\npopa\nhlt")

    def test_decode_error_reached_only_at_runtime(self):
        # A conditional skips over garbage bytes: translation must not
        # fault on bytes execution never reaches.
        source = """
            movi rax, 1
            cmpi rax, 1
            jz over
            hlt
        over:
            movi rax, 77
            hlt
        """
        cached, _ = assert_equivalent(source)
        assert cached.regs[0] == 77


# -- differential property test ---------------------------------------------

_REG_NAMES = ("rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
              "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15")


@st.composite
def _programs(draw):
    """Random VX86 programs, including text-segment stores (the text is
    mapped rwx), wild pointers and unbounded loops."""
    n = draw(st.integers(min_value=4, max_value=24))
    reg = st.sampled_from(_REG_NAMES)
    # rsp excluded from most destinations to keep stack ops interesting
    # without making every program an instant fault.
    dst = st.sampled_from(tuple(r for r in _REG_NAMES if r != "rsp"))
    label = st.integers(min_value=0, max_value=n)  # n == exit label
    small = st.integers(min_value=-64, max_value=64)
    imm = st.one_of(st.integers(min_value=-2 ** 31, max_value=2 ** 31 - 1),
                    st.sampled_from([0, 1, -1, 2 ** 31 - 1, -2 ** 31]))
    imm64 = st.one_of(imm, st.sampled_from(
        [2 ** 63 - 1, -2 ** 63, 2 ** 40, DATA, TEXT, STACK_TOP - 64]))
    base = st.sampled_from(["rbx", "rcx"])

    lines = [f"movi rbx, {DATA}", f"movi rcx, {TEXT}"]
    for i in range(n):
        lines.append(f"L{i}:")
        kind = draw(st.sampled_from(
            ["movi", "mov", "add", "addi", "sub", "subi", "cmp", "cmpi",
             "push", "pop", "load", "store", "jmp", "jz", "jnz", "call",
             "ret", "nop", "syscall", "vsys", "int0"]))
        if kind == "movi":
            lines.append(f"movi {draw(dst)}, {draw(imm64)}")
        elif kind in ("mov", "add", "sub", "cmp"):
            lines.append(f"{kind} {draw(dst)}, {draw(reg)}")
        elif kind in ("addi", "subi", "cmpi"):
            lines.append(f"{kind} {draw(dst)}, {draw(imm)}")
        elif kind == "push":
            lines.append(f"push {draw(reg)}")
        elif kind == "pop":
            lines.append(f"pop {draw(dst)}")
        elif kind == "load":
            lines.append(f"load {draw(dst)}, [{draw(base)}{draw(small):+d}]")
        elif kind == "store":
            lines.append(f"store [{draw(base)}{draw(small):+d}], {draw(reg)}")
        elif kind in ("jmp", "jz", "jnz", "call"):
            lines.append(f"{kind} L{draw(label)}")
        elif kind == "vsys":
            lines.append(f"vsys {draw(st.integers(0, 3))}")
        else:
            lines.append(kind)
    lines.append(f"L{n}:")
    lines.append("hlt")
    return "\n".join(lines)


class TestDifferential:
    @settings(max_examples=120, deadline=None)
    @given(source=_programs(),
           max_insns=st.sampled_from([37, 500, 4000]),
           batch=st.sampled_from([13, 20_000]))
    def test_cached_equals_per_step(self, source, max_insns, batch):
        # Covers superblock formation, chained exits and (via the forced
        # fuse_threshold=1 executor inside assert_equivalent) the fused
        # compiled bodies, against the per-step oracle.
        assert_equivalent(source, max_insns=max_insns, batch_cycles=batch,
                          text_perms="rwx")

    @settings(max_examples=40, deadline=None)
    @given(source=_programs(), max_insns=st.sampled_from([37, 4000]))
    def test_block_mode_equals_per_step(self, source, max_insns):
        # translate="blocks" is the CI speedup baseline (PR 3 basic-block
        # behavior): it must stay observably exact too.
        blocks = build_cpu(source, translate="blocks", text_perms="rwx")
        interp = build_cpu(source, translate=False, text_perms="rwx")
        b_ret, b_exc, b_ps = drive(blocks, max_insns)
        i_ret, i_exc, i_ps = drive(interp, max_insns)
        assert (b_ret, b_exc) == (i_ret, i_exc)
        assert blocks.regs == interp.regs
        assert blocks.rip == interp.rip
        assert blocks.cycles == interp.cycles
        if b_exc is None:
            assert b_ps == i_ps == blocks.cycles * CYCLE_PS
        assert blocks.tcache.stats.chains_linked == 0
        assert blocks.tcache.stats.fused_blocks == 0
