"""Unit tests for the EventTransport API and the networked NetRing:
factories, placement resolution, frames/acks/flow control, selective
replication, compression, and failover re-anchoring."""

import warnings

import pytest

from repro.core import (
    NetRing,
    RingBuffer,
    local_transport,
    net_transport,
    resolve_placement,
    resolve_transport,
    syscall_event,
)
from repro.core.netring import (
    ACK_BYTES,
    FRAME_HEADER_BYTES,
    NetStats,
    REPLICATE_SELECTIVE,
)
from repro.core.events import EVENT_SIZE
from repro.core.transport import EventTransport, TransportContext
from repro.costmodel import DEFAULT_COSTS, NetworkSpec
from repro.errors import NvxError
from repro.sim import Machine, Simulator
from repro.sim.network import Network


def rig(capacity=8, **kwargs):
    """A sim, two machines, a network and a NetRing with one remote
    consumer (vid 1 on machine b) and one local (vid 2 on machine a)."""
    sim = Simulator()
    a = Machine(sim, name="a")
    b = Machine(sim, name="b")
    network = Network(sim, NetworkSpec())
    ring = NetRing(sim, DEFAULT_COSTS, network, a, {1: b, 2: a},
                   capacity=capacity, **kwargs)
    ring.add_consumer(1)
    ring.add_consumer(2)
    return sim, a, b, network, ring


def publish_n(sim, machine, ring, n, name="close", payload=None):
    def producer():
        for i in range(n):
            event = syscall_event(name, 0, i + 1, 0)
            if payload is not None:
                event.payload = payload
            yield from ring.publish(event)
    machine.spawn(producer(), name="producer")
    sim.run()


class FakePayload:
    """Duck-types SharedChunk for byte accounting (.data)."""

    def __init__(self, length):
        self.data = b"p" * length


class TestTransportAPI:
    def test_base_class_is_abstract(self):
        transport = EventTransport()
        for method in ("publish", "peek", "advance", "min_cursor"):
            with pytest.raises((NotImplementedError, TypeError)):
                getattr(transport, method)()

    def test_local_factory_builds_ringbuffer(self):
        sim = Simulator()
        ctx = TransportContext(sim=sim, costs=DEFAULT_COSTS, capacity=8,
                               name="r")
        ring = local_transport()(ctx)
        assert type(ring) is RingBuffer and ring.capacity == 8

    def test_resolve_default_is_local(self):
        sim = Simulator()
        ctx = TransportContext(sim=sim, costs=DEFAULT_COSTS, capacity=8,
                               name="r")
        assert type(resolve_transport(None, False)(ctx)) is RingBuffer

    def test_resolve_default_with_remote_is_netring(self):
        sim = Simulator()
        a = Machine(sim, name="a")
        b = Machine(sim, name="b")
        ctx = TransportContext(sim=sim, costs=DEFAULT_COSTS, capacity=8,
                               name="r", network=Network(sim),
                               producer_machine=a,
                               consumer_machines={1: b})
        assert type(resolve_transport(None, True)(ctx)) is NetRing

    def test_legacy_class_shim_warns_once(self):
        import repro.core.transport as mod
        mod._legacy_transport_warned = False
        sim = Simulator()
        ctx = TransportContext(sim=sim, costs=DEFAULT_COSTS, capacity=8,
                               name="r")
        with pytest.warns(DeprecationWarning):
            factory = resolve_transport(RingBuffer, False)
        assert type(factory(ctx)) is RingBuffer
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolve_transport(RingBuffer, False)

    def test_resolve_rejects_non_callable(self):
        with pytest.raises(NvxError):
            resolve_transport(42, False)

    def test_netring_requires_network(self):
        sim = Simulator()
        a = Machine(sim, name="a")
        with pytest.raises(NvxError):
            NetRing(sim, DEFAULT_COSTS, None, a, {})

    def test_netring_rejects_unknown_policy(self):
        sim = Simulator()
        a = Machine(sim, name="a")
        with pytest.raises(NvxError):
            NetRing(sim, DEFAULT_COSTS, Network(sim), a, {},
                    replicate="sometimes")


class TestPlacementResolution:
    def make_world(self):
        from repro.world import World
        return World(machine_names=("server", "client", "replica1"))

    def specs(self, n=3):
        from repro.core import VersionSpec

        def main(ctx):
            yield
        return [VersionSpec(f"v{i}", main) for i in range(n)]

    def test_default_everyone_on_default_machine(self):
        world = self.make_world()
        machines = resolve_placement(None, self.specs(), world,
                                     world.server)
        assert all(m is world.server for m in machines)

    def test_by_index_and_name(self):
        world = self.make_world()
        machines = resolve_placement(
            {1: "replica1", "v2": "replica1"}, self.specs(), world,
            world.server)
        assert machines[0] is world.server
        assert machines[1] is world.machine("replica1")
        assert machines[2] is world.machine("replica1")

    def test_machine_objects_accepted(self):
        world = self.make_world()
        machines = resolve_placement({0: world.machine("replica1")},
                                     self.specs(), world, world.server)
        assert machines[0] is world.machine("replica1")

    def test_unknown_key_raises(self):
        world = self.make_world()
        with pytest.raises(NvxError):
            resolve_placement({"nope": "replica1"}, self.specs(), world,
                              world.server)

    def test_unknown_machine_raises(self):
        world = self.make_world()
        with pytest.raises(NvxError):
            resolve_placement({0: "mars"}, self.specs(), world,
                              world.server)


class TestNetRingFrames:
    def test_remote_peek_gated_on_frame_arrival(self):
        sim, a, b, network, ring = rig()
        seen = {}

        def producer():
            yield from ring.publish(syscall_event("close", 0, 1, 0))
            # Local consumer sees it immediately; remote does not.
            seen["local"] = ring.peek(2) is not None
            seen["remote_before"] = ring.peek(1) is not None
        a.spawn(producer(), name="producer")
        sim.run()
        assert seen["local"] and not seen["remote_before"]
        # The coalesce timer fired during run(); the frame arrived.
        assert ring.peek(1) is not None
        assert ring.net.frames == 1

    def test_full_batch_flushes_immediately(self):
        sim, a, b, network, ring = rig(max_batch=4)
        frames = {}

        def producer():
            for i in range(4):
                yield from ring.publish(syscall_event("close", 0, i + 1, 0))
            frames["at_batch"] = ring.net.frames
        a.spawn(producer(), name="producer")
        sim.run()
        assert frames["at_batch"] == 1

    def test_control_event_flushes_immediately(self):
        from repro.core.events import EV_EXIT, Event
        sim, a, b, network, ring = rig(max_batch=8)

        def producer():
            yield from ring.publish(syscall_event("close", 0, 1, 0))
            yield from ring.publish(Event(EV_EXIT, -1, EV_EXIT, 0, 2))
        a.spawn(producer(), name="producer")
        sim.run()
        assert ring.net.frames >= 1
        assert ring.peek(1) is not None

    def test_frame_bytes_cover_header_and_lines(self):
        sim, a, b, network, ring = rig(max_batch=4)
        publish_n(sim, a, ring, 4)
        assert ring.net.bytes == FRAME_HEADER_BYTES + 4 * EVENT_SIZE

    def test_acks_flow_back_and_unblock_producer(self):
        sim, a, b, network, ring = rig(capacity=4)
        done = {}

        def producer():
            for i in range(12):
                yield from ring.publish(syscall_event("close", 0, i + 1, 0))
            done["produced"] = True

        def consumer(vid):
            def run():
                consumed = 0
                while consumed < 12:
                    if ring.peek(vid) is None:
                        yield from ring.wait_published(
                            False, lambda: ring.peek(vid) is not None)
                        continue
                    ring.advance(vid)
                    consumed += 1
                done[vid] = consumed
            return run
        a.spawn(producer(), name="producer")
        b.spawn(consumer(1)(), name="c1")
        a.spawn(consumer(2)(), name="c2")
        sim.run()
        assert done.get("produced") and done[1] == 12 and done[2] == 12
        assert ring.net.acks > 0
        assert network.bytes_sent >= ring.net.bytes + ACK_BYTES

    def test_min_cursor_gates_on_acked_not_live(self):
        sim, a, b, network, ring = rig(capacity=8)
        publish_n(sim, a, ring, 2)
        # Remote consumer advances but its ack is in flight: pretend by
        # advancing the live cursor directly.
        ring.advance(1)
        ring.cursors[1] = 2
        assert ring.min_cursor() <= ring._acked[1]

    def test_remove_consumer_clears_remote_state(self):
        sim, a, b, network, ring = rig()
        ring.remove_consumer(1)
        assert 1 not in ring._remote and 1 not in ring._acked
        assert 1 not in ring._visible and 1 not in ring._ack_sent


class TestReplicationPolicies:
    def test_selective_elides_local_regenerable_payload(self):
        sim, a, b, network, ring = rig(max_batch=2,
                                       replicate=REPLICATE_SELECTIVE)
        publish_n(sim, a, ring, 2, name="pread", payload=FakePayload(300))
        assert ring.net.payload_elided == 600
        assert ring.net.bytes == FRAME_HEADER_BYTES + 2 * EVENT_SIZE

    def test_full_ships_payload_bytes(self):
        sim, a, b, network, ring = rig(max_batch=2)
        publish_n(sim, a, ring, 2, name="pread", payload=FakePayload(300))
        assert ring.net.payload_elided == 0
        assert ring.net.bytes == FRAME_HEADER_BYTES + 2 * (EVENT_SIZE + 300)

    def test_selective_still_ships_external_payloads(self):
        sim, a, b, network, ring = rig(max_batch=2,
                                       replicate=REPLICATE_SELECTIVE)
        publish_n(sim, a, ring, 2, name="recv", payload=FakePayload(100))
        assert ring.net.payload_elided == 0
        assert ring.net.bytes == FRAME_HEADER_BYTES + 2 * (EVENT_SIZE + 100)

    def test_compression_saves_bytes(self):
        sim, a, b, network, ring = rig(max_batch=4, compress=True)
        publish_n(sim, a, ring, 4)
        assert ring.net.bytes_saved > 0
        assert ring.net.bytes < FRAME_HEADER_BYTES + 4 * EVENT_SIZE


class TestFailover:
    def test_on_promote_reveals_backlog_and_reanchors(self):
        sim, a, b, network, ring = rig(max_batch=64, coalesce_ps=10**12)
        done = {}

        def producer():
            for i in range(3):
                yield from ring.publish(syscall_event("close", 0, i + 1, 0))
            # Frames never flushed (huge batch + timer): remote blind.
            done["remote_blind"] = ring.peek(1) is None
        a.spawn(producer(), name="producer")
        sim.run()
        assert done["remote_blind"]
        ring.on_promote(1, b)
        # vid 1 now produces from machine b; backlog fully visible.
        assert ring.producer_machine is b
        assert ring.peek(1) is not None
        # vid 2 (machine a) became remote relative to the new leader.
        assert 2 in ring._remote and 1 not in ring._remote
        assert ring._visible[2] == ring.head

    def test_promote_resets_flow_control_to_live_cursors(self):
        sim, a, b, network, ring = rig(max_batch=1)
        publish_n(sim, a, ring, 3)
        ring.advance(1)
        ring.on_promote(1, b)
        assert ring._acked[2] == ring.cursors[2]
        assert ring.min_cursor() == min(ring.cursors.values())


class TestMetrics:
    def test_netstats_as_dict_keys(self):
        stats = NetStats()
        assert set(stats.as_dict()) == {
            "net.frames", "net.bytes", "net.acks", "net.remote_lag",
            "net.payload_elided", "net.bytes_saved"}
        assert all(value == 0 for value in stats.as_dict().values())

    def test_extra_metrics_registers_counters(self):
        from repro.obs.metrics import MetricsRegistry
        sim, a, b, network, ring = rig(max_batch=2)
        publish_n(sim, a, ring, 2)
        reg = MetricsRegistry()
        ring.extra_metrics(reg)
        snap = reg.snapshot()["counters"]
        assert snap["net.frames"] == ring.net.frames
        assert snap["net.bytes"] == ring.net.bytes

    def test_drain_carries_per_world_net_counters(self):
        # NetStats is scoped per World: drain() sums the worlds of the
        # sessions registered since start_collection(), so a ring built
        # on another world (or a leftover from a previous point) cannot
        # bleed into this point's snapshot.
        from repro.core import VersionSpec
        from repro.obs import metrics as obs_metrics
        from repro.world import World

        def main(ctx):
            yield from ctx.compute(1_000)
            return 0

        obs_metrics.start_collection()
        world = World(machine_names=("server", "client", "replica1"))
        session = world.nvx(
            [VersionSpec("a", main), VersionSpec("b", main)],
            placement={1: "replica1"}).start()
        world.run()
        counters = obs_metrics.drain()["counters"]
        assert counters["net.frames"] == world.net_stats.frames > 0
        assert counters["net.bytes"] == world.net_stats.bytes > 0
        assert session.root_tuple.ring.world_net is world.net_stats

    def test_world_net_counters_do_not_bleed_across_sessions(self):
        # A second, unrelated world's traffic must not show up in a
        # point that only registered the first world's session.
        sim, a, b, network, ring = rig(max_batch=2)
        publish_n(sim, a, ring, 2)
        assert ring.world_net.frames == ring.net.frames > 0

        from repro.obs import metrics as obs_metrics
        obs_metrics.start_collection()
        counters = obs_metrics.drain()["counters"]
        assert counters["net.frames"] == 0
        assert counters["net.bytes"] == 0

    def test_drain_net_keys_always_present(self):
        from repro.obs import metrics as obs_metrics
        obs_metrics.start_collection()
        counters = obs_metrics.drain()["counters"]
        for key in ("net.frames", "net.bytes", "net.acks",
                    "net.remote_lag"):
            assert counters[key] == 0


class TestWorldFacade:
    def test_placement_kwarg_folds_into_config(self):
        from repro.world import World
        from repro.core import VersionSpec

        def main(ctx):
            fd = yield from ctx.open("/tmp/f")
            data = yield from ctx.read(fd, 8)
            yield from ctx.close(fd)
            return data

        world = World(machine_names=("server", "client", "replica1"))
        for name in ("server", "replica1"):
            world.kernel.fs(world.machine(name)).create("/tmp/f", b"x" * 8)
        session = world.nvx(
            [VersionSpec("a", main), VersionSpec("b", main)],
            placement={1: "replica1"}).start()
        world.run()
        assert type(session.root_tuple.ring) is NetRing
        assert session.variants[1].machine.name == "replica1"
        for variant in session.variants:
            thread = variant.root_task.threads[0]
            assert thread.exception is None
            assert thread.result == b"x" * 8

    def test_transport_kwarg_selects_policy(self):
        from repro.world import World
        from repro.core import VersionSpec

        def main(ctx):
            yield from ctx.getuid()
            return True

        world = World(machine_names=("server", "client", "replica1"))
        session = world.nvx(
            [VersionSpec("a", main), VersionSpec("b", main)],
            placement={1: "replica1"},
            transport=net_transport(replicate=REPLICATE_SELECTIVE)).start()
        world.run()
        assert session.root_tuple.ring.replicate == REPLICATE_SELECTIVE

    def test_explicit_config_fields_win_over_kwargs(self):
        from repro.world import World
        from repro.core.config import SessionConfig
        config = SessionConfig(placement={1: "replica1"})
        folded = World._fold(config, {1: "client"}, None)
        assert folded.placement == {1: "replica1"}
