"""Sweep-runner determinism and engine ordering invariants.

``test_parallel_matches_serial`` is the invariant named in DESIGN.md §5:
wall-clock parallelism (and any other wall-clock optimization) must
never change virtual-time results — a ``--jobs N`` sweep is bit-for-bit
identical to the serial one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import figure5, runner
from repro.sim.core import Simulator

#: A deliberately small Figure 5 slice: two servers, two follower
#: counts, tiny workload scale — seconds, not minutes.
_SLICE_SERVERS = ("beanstalkd", "memcached")
_SLICE_KWARGS = (("follower_counts", (0, 1)), ("scale", 0.002))


def _slice_points():
    return [("figure5", server, _SLICE_KWARGS)
            for server in _SLICE_SERVERS]


class TestSweepRunner:
    def test_parallel_matches_serial(self):
        points = _slice_points()
        serial = runner.merge_results(points, runner.run_points(points, 1))
        parallel = runner.merge_results(points, runner.run_points(points, 2))
        assert runner.render_sweep(serial) == runner.render_sweep(parallel)

    def test_decomposition_matches_whole_driver(self):
        points = _slice_points()
        merged = runner.merge_results(points, runner.run_points(points, 1))
        whole = figure5.run(servers=_SLICE_SERVERS,
                            **dict(_SLICE_KWARGS))
        assert merged[0].render() == whole.render()

    def test_full_sweep_covers_every_experiment(self):
        from repro.experiments.registry import EXPERIMENTS

        points = runner.sweep_points(scale=0.008)
        assert {eid for eid, _part, _kw in points} == set(EXPERIMENTS)

    def test_scale_only_reaches_scaled_experiments(self):
        points = runner.sweep_points(scale=0.01)
        for eid, _part, kwargs in points:
            expects_scale = eid in runner.SCALED_EXPERIMENTS
            assert (("scale", 0.01) in kwargs) == expects_scale

    def test_compare_reports_ignores_wallclock_lines(self):
        left = "row 1\n[figure4 regenerated in 1.2s]\n# comment\n"
        right = "row 1\n[figure4 regenerated in 99.9s]\n"
        assert runner.compare_reports(left, right) == []
        assert runner.compare_reports("row 1\n", "row 2\n")


class TestEngineOrdering:
    """The optimized Simulator preserves (time, seq) delivery order
    under interleaved schedule/cancel — the invariant the tuple-heap +
    lazy-cancellation rewrite must not break."""

    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 1000),   # delay_ps
                  st.booleans(),          # cancel an earlier handle?
                  st.integers(0, 31)),    # which earlier handle
        min_size=1, max_size=40))
    def test_schedule_cancel_preserves_time_seq_order(self, ops):
        sim = Simulator()
        fired = []
        handles = []
        cancelled = set()
        for i, (delay, do_cancel, target) in enumerate(ops):
            handles.append(
                (sim.schedule(delay, lambda i=i: fired.append(
                    (sim.now, i))), delay))
            if do_cancel:
                victim = target % len(handles)
                handles[victim][0].cancel()
                cancelled.add(victim)
        sim.run()

        fired_ids = [i for _now, i in fired]
        # Cancelled callbacks never fire; everything else fires once.
        assert set(fired_ids) == set(range(len(ops))) - cancelled
        # Each callback fires exactly at its scheduled virtual time.
        for now, i in fired:
            assert now == handles[i][1]
        # Delivery is (time, seq)-ordered: non-decreasing times, and
        # equal-time callbacks fire in schedule (seq) order.
        times = [now for now, _i in fired]
        assert times == sorted(times)
        for (t_a, i_a), (t_b, i_b) in zip(fired, fired[1:]):
            if t_a == t_b:
                assert i_a < i_b

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 500), min_size=1, max_size=20),
           st.integers(1, 400))
    def test_nested_schedules_keep_ordering(self, delays, extra):
        sim = Simulator()
        fired = []

        def make(i, delay):
            def fn():
                fired.append((sim.now, i))
                if i % 3 == 0:
                    sim.schedule(extra, lambda: fired.append(
                        (sim.now, 1000 + i)))
            return fn

        for i, delay in enumerate(delays):
            sim.schedule(delay, make(i, delay))
        sim.run()
        times = [now for now, _i in fired]
        assert times == sorted(times)

    def test_cancelled_event_does_not_advance_clock(self):
        sim = Simulator()
        late = sim.schedule(100, lambda: None)
        sim.schedule(0, late.cancel)
        sim.run()
        # The cancelled entry is skipped before the clock moves to 100.
        assert sim.now == 0
