"""Open-loop load-generation plane: determinism, digests, topology.

The plane's contract is byte-stable measurement: the same topology,
config and seed must produce identical reports on either DES engine,
because ``python -m repro load`` output is compared with ``cmp`` in CI
and the loadcurve experiment feeds the reference sweep.
"""

from hypothesis import given, settings, strategies as st
import pytest

from repro.apps.redis import make_redis
from repro.clients.base import LatencyDigest
from repro.clients.loadgen import (
    DEFAULT_CLASSES,
    OpenLoopConfig,
    _class_of,
    make_open_loop,
    spawn_pool,
)
from repro.clients.topology import LoadTopology
from repro.costmodel import SEC_PS, US_PS
from repro.errors import NvxError
from repro.world import World, default_engine


# -- LatencyDigest -----------------------------------------------------------

class TestLatencyDigest:
    @given(st.lists(st.integers(min_value=1, max_value=10 ** 9),
                    min_size=1, max_size=200),
           st.sampled_from([0.0, 50.0, 90.0, 99.0, 99.9, 100.0]))
    @settings(max_examples=60, deadline=None)
    def test_exact_while_within_limit(self, values, pct):
        """Below the reservoir limit every sample is retained, so the
        percentile matches the old sort-the-list implementation."""
        digest = LatencyDigest()
        for value in values:
            digest.observe(value)
        ordered = sorted(values)
        index = min(len(values) - 1, int(pct / 100.0 * len(values)))
        assert digest.percentile_ps(pct) == float(ordered[index])
        assert digest.avg_ps() == pytest.approx(sum(values) / len(values))

    @given(st.lists(st.integers(min_value=1, max_value=10 ** 6),
                    min_size=50, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_bounded_beyond_limit(self, values):
        """Past the limit the reservoir stays bounded and percentiles
        stay inside the observed range and monotone in pct."""
        digest = LatencyDigest(limit=16)
        for value in values:
            digest.observe(value)
        assert len(digest.reservoir) == 16
        assert digest.count == len(values)
        p50 = digest.percentile_ps(50)
        p99 = digest.percentile_ps(99)
        assert 0 <= p50 <= p99
        # Interpolation cannot leave the power-of-two bucket range, so
        # it is bounded by [min/2, 2*max] of the true samples.
        assert p99 <= 2 * max(values)

    def test_deterministic_reservoir(self):
        """The digest-local seeded RNG makes replacement deterministic:
        two identical observation sequences yield identical digests."""
        a, b = LatencyDigest(limit=8), LatencyDigest(limit=8)
        for i in range(1000):
            value = (i * 2654435761) % 100_000 + 1
            a.observe(value)
            b.observe(value)
        assert a.reservoir == b.reservoir
        assert a.snapshot() == b.snapshot()
        assert a.percentile_ps(99) == b.percentile_ps(99)

    def test_empty(self):
        digest = LatencyDigest()
        assert digest.avg_ps() == 0.0
        assert digest.percentile_ps(99) == 0.0


# -- topology ----------------------------------------------------------------

class TestTopology:
    def test_machine_names_server_first(self):
        topology = LoadTopology(clients=10, machines=3,
                                extra_machines=("replica1",))
        assert topology.machine_names() == (
            "server", "replica1", "lg0", "lg1", "lg2")

    def test_round_robin_placement(self):
        topology = LoadTopology(clients=7, machines=3)
        assert [m for _, m in topology.placements()] == [
            "lg0", "lg1", "lg2", "lg0", "lg1", "lg2", "lg0"]

    def test_validation(self):
        with pytest.raises(NvxError):
            LoadTopology(clients=0)
        with pytest.raises(NvxError):
            LoadTopology(machines=0)


# -- config ------------------------------------------------------------------

class TestConfig:
    def test_validation(self):
        with pytest.raises(NvxError):
            OpenLoopConfig(rate_rps=0)
        with pytest.raises(NvxError):
            OpenLoopConfig(arrivals="bursty")
        with pytest.raises(NvxError):
            OpenLoopConfig(classes=())

    def test_weighted_class_assignment_is_deterministic(self):
        config = OpenLoopConfig()
        expanded = [_class_of(config, i).name
                    for i in range(2 * sum(max(1, c.weight)
                                           for c in DEFAULT_CLASSES))]
        assert expanded == ["ping", "ping", "get", "get", "set"] * 2

    def test_rate_too_high_for_pool(self):
        topology = LoadTopology(clients=1, machines=1)
        config = OpenLoopConfig(rate_rps=2 * SEC_PS)
        with pytest.raises(NvxError):
            make_open_loop(topology, config)


# -- open-loop determinism ---------------------------------------------------

def _drive(seed: int, engine: str, arrivals: str = "poisson"):
    """One tiny open-loop run against the simulated redis; returns a
    comparable snapshot of everything the plane measured."""
    topology = LoadTopology(clients=8, machines=2)
    with default_engine(engine, shards=3):
        world = World(machine_names=topology.machine_names())
    world.spawn(make_redis(), name="redis", daemon=True)
    duration_ps = SEC_PS // 4
    config = OpenLoopConfig(rate_rps=400.0, duration_ps=duration_ps,
                            arrivals=arrivals, seed=seed, churn_every=8)
    placements, report, stats = make_open_loop(topology, config)
    spawn_pool(world, placements)
    world.run(until_ps=2 * duration_ps)
    return {
        "requests": report.requests,
        "errors": report.errors,
        "started": report.started_ps,
        "finished": report.finished_ps,
        "hist": report.latency.snapshot(),
        "reservoir": list(report.latency.reservoir),
        "per_command": {name: digest.snapshot()
                        for name, digest in report.per_command.items()},
        "timeouts": stats.timeouts,
        "reconnects": stats.reconnects,
        "late": stats.late_arrivals,
        "now": world.now,
    }


class TestOpenLoopDeterminism:
    def test_same_seed_same_journal(self):
        assert _drive(3, "heap") == _drive(3, "heap")

    def test_engines_agree(self):
        assert _drive(3, "heap") == _drive(3, "sharded")

    def test_uniform_arrivals_deterministic(self):
        assert _drive(5, "heap", "uniform") == _drive(
            5, "sharded", "uniform")

    def test_different_seed_different_arrivals(self):
        a = _drive(1, "heap")
        b = _drive(2, "heap")
        assert a["requests"] > 0 and b["requests"] > 0
        assert a != b

    def test_pool_actually_measures(self):
        snap = _drive(3, "heap")
        assert snap["requests"] > 10
        assert snap["errors"] == 0
        assert set(snap["per_command"]) == {"ping", "get", "set"}
        assert snap["reconnects"] >= 8  # churn_every=8 forces churn


# -- loadcurve experiment ----------------------------------------------------

def test_loadcurve_smoke_identical_across_engines():
    """The registry-level experiment renders byte-identically on both
    engines at sweep scale (the CI cmp gate in miniature)."""
    from repro.experiments import loadcurve

    def render(engine):
        with default_engine(engine, shards=4):
            return loadcurve.run(scale=0.008, followers=1,
                                 duration_s=0.25,
                                 offered_multipliers=(0.5,)).render()

    heap = render("heap")
    sharded = render("sharded")
    assert sharded == heap
    assert "native" in heap
    assert "varan local f1" in heap
    assert "varan remote f1" in heap
