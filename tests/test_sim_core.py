"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.errors import DeadlockError, ProcessKilled, SimulationError
from repro.sim import (
    TIMEOUT,
    Block,
    Compute,
    Machine,
    Simulator,
    Sleep,
    WaitQueue,
)


def world(cores=8):
    sim = Simulator()
    machine = Machine(sim, name="m0")
    machine.spec = machine.spec.__class__(logical_cores=cores,
                                          physical_cores=max(1, cores // 2))
    machine.free_cores = cores
    return sim, machine


class TestClock:
    def test_time_starts_at_zero(self):
        sim = Simulator()
        assert sim.now == 0

    def test_schedule_advances_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(100, lambda: seen.append(sim.now))
        sim.schedule(50, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [50, 100]

    def test_equal_times_fire_in_schedule_order(self):
        sim = Simulator()
        seen = []
        for i in range(5):
            sim.schedule(10, lambda i=i: seen.append(i))
        sim.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(10, lambda: seen.append(1))
        handle.cancel()
        sim.run()
        assert seen == []

    def test_run_until_pauses_clock(self):
        sim = Simulator()
        seen = []
        sim.schedule(100, lambda: seen.append(1))
        sim.run(until_ps=50)
        assert sim.now == 50 and seen == []
        sim.run()
        assert seen == [1] and sim.now == 100


class TestCompute:
    def test_compute_advances_process_time(self):
        sim, m = world()

        def main():
            yield Compute(1000)
            yield Compute(500)
            return sim.now

        proc = m.spawn(main(), name="p")
        sim.run()
        assert proc.done and proc.result == 1500
        assert proc.cpu_ps == 1500

    def test_sequential_on_single_core(self):
        sim, m = world(cores=1)
        finished = {}

        def main(name):
            yield Compute(1000, preemptible=False)
            finished[name] = sim.now

        m.spawn(main("a"), name="a")
        m.spawn(main("b"), name="b")
        sim.run()
        assert finished["a"] == 1000
        assert finished["b"] == 2000

    def test_parallel_on_two_cores(self):
        sim, m = world(cores=2)
        finished = {}

        def main(name):
            yield Compute(1000)
            finished[name] = sim.now

        m.spawn(main("a"), name="a")
        m.spawn(main("b"), name="b")
        sim.run()
        assert finished == {"a": 1000, "b": 1000}

    def test_preemptible_round_robin_shares_core(self):
        sim, m = world(cores=1)
        order = []

        def main(name):
            for _ in range(3):
                yield Compute(100)
                order.append(name)

        m.spawn(main("a"), name="a")
        m.spawn(main("b"), name="b")
        sim.run()
        # Interleaved, not a,a,a,b,b,b.
        assert order[:4] == ["a", "b", "a", "b"]


class TestSleepAndBlock:
    def test_sleep_releases_core(self):
        sim, m = world(cores=1)
        seen = []

        def sleeper():
            yield Sleep(1000)
            seen.append(("sleeper", sim.now))

        def worker():
            yield Compute(200, preemptible=False)
            seen.append(("worker", sim.now))

        m.spawn(sleeper(), name="s")
        m.spawn(worker(), name="w")
        sim.run()
        assert ("worker", 200) in seen
        assert ("sleeper", 1000) in seen

    def test_block_and_wake_value(self):
        sim, m = world()

        def waiter():
            value = yield Block()
            return value

        proc = m.spawn(waiter(), name="w")

        def waker():
            yield Compute(500)
            proc.wake("hello")

        m.spawn(waker(), name="k")
        sim.run()
        assert proc.result == "hello"

    def test_block_timeout_delivers_sentinel(self):
        sim, m = world()

        def waiter():
            value = yield Block(timeout_ps=700)
            return (value is TIMEOUT, sim.now)

        proc = m.spawn(waiter(), name="w")
        sim.run()
        assert proc.result == (True, 700)

    def test_spin_block_occupies_core(self):
        sim, m = world(cores=1)
        seen = []

        def spinner():
            value = yield Block(spin=True, timeout_ps=1000)
            seen.append(("spin", sim.now, value is TIMEOUT))

        def worker():
            yield Compute(100)
            seen.append(("work", sim.now))

        m.spawn(spinner(), name="s")
        m.spawn(worker(), name="w")
        sim.run()
        # The spinner holds the only core; the worker runs after timeout.
        assert seen[0] == ("spin", 1000, True)
        assert seen[1][0] == "work" and seen[1][1] >= 1000

    def test_deadlock_detection(self):
        sim, m = world()

        def stuck():
            yield Block()

        m.spawn(stuck(), name="z")
        with pytest.raises(DeadlockError):
            sim.run()

    def test_daemon_does_not_trip_deadlock(self):
        sim, m = world()

        def stuck():
            yield Block()

        m.spawn(stuck(), name="z", daemon=True)
        sim.run()  # no exception


class TestLifecycle:
    def test_result_and_exception(self):
        sim, m = world()

        def ok():
            yield Compute(10)
            return 42

        def boom():
            yield Compute(10)
            raise ValueError("boom")

        p1 = m.spawn(ok(), name="ok")
        p2 = m.spawn(boom(), name="boom")
        sim.run()
        assert p1.result == 42 and p1.exception is None
        assert isinstance(p2.exception, ValueError)

    def test_double_start_rejected(self):
        sim, m = world()

        def main():
            yield Compute(1)

        proc = m.spawn(main(), name="p")
        with pytest.raises(SimulationError):
            proc.start()
        sim.run()

    def test_join_returns_result(self):
        sim, m = world()

        def child():
            yield Compute(300)
            return "done"

        child_proc = m.spawn(child(), name="c")

        def parent():
            value = yield from child_proc.join()
            return (value, sim.now)

        parent_proc = m.spawn(parent(), name="p")
        sim.run()
        assert parent_proc.result == ("done", 300)

    def test_kill_blocked_process(self):
        sim, m = world()

        def stuck():
            try:
                yield Block()
            except ProcessKilled:
                return "killed"

        proc = m.spawn(stuck(), name="z")

        def killer():
            yield Compute(100)
            proc.kill()

        m.spawn(killer(), name="k")
        sim.run()
        assert proc.result == "killed"

    def test_interrupt_mid_compute(self):
        sim, m = world()

        def busy():
            try:
                yield Compute(10_000)
            except RuntimeError:
                return sim.now

        proc = m.spawn(busy(), name="b")

        def interrupter():
            yield Compute(2_000)
            proc.interrupt(RuntimeError("sig"))

        m.spawn(interrupter(), name="i")
        sim.run()
        assert proc.result == 2_000

    def test_on_done_fires_after_completion_too(self):
        sim, m = world()

        def main():
            yield Compute(10)

        proc = m.spawn(main(), name="p")
        sim.run()
        seen = []
        proc.on_done(lambda p: seen.append(p.name))
        assert seen == ["p"]

    def test_core_accounting_never_overflows(self):
        sim, m = world(cores=2)

        def main():
            yield Compute(50)
            yield Sleep(50)
            yield Compute(50)

        for i in range(6):
            m.spawn(main(), name=f"p{i}")
        sim.run()
        assert m.free_cores == m.spec.logical_cores


class TestWaitQueueEdge:
    def test_notify_skips_timed_out_waiter(self):
        sim, m = world()
        queue = WaitQueue(sim)
        results = {}

        def waiter(name, timeout):
            value = yield from queue.wait(timeout_ps=timeout)
            results[name] = value

        m.spawn(waiter("fast", 100), name="fast")
        m.spawn(waiter("slow", None), name="slow")

        def notifier():
            yield Sleep(500)
            queue.notify("gift")

        m.spawn(notifier(), name="n")
        sim.run()
        assert results["fast"] is TIMEOUT
        assert results["slow"] == "gift"
