"""Mutation-style self-test for the NVX conformance oracle.

``faults/invariants.py`` is the arbiter every chaos and fuzz run leans
on, so it gets the mutation treatment: deliberately inject each
violation class the checker claims to catch — dropped external events,
non-dense sequence numbers, stale consumer cursors, escaped lockstep
rounds, starved followers — and assert the matching invariant fires
(and *only* when injected: every clean counterpart stays silent).
A checker that silently stopped catching a class would pass every
integration test whose runs happen to be conformant; this file is what
fails instead.
"""

import pytest

from repro.core.events import syscall_event
from repro.faults.invariants import InvariantChecker


class FakeRing:
    """The minimal surface the checker's hooks touch."""

    def __init__(self, name="ring0"):
        self.name = name
        self.tracer = None
        self.sim = None
        self.cursors = {}
        self.head = 0


def _event(clock, seq, name="close"):
    event = syscall_event(name, 0, clock, retval=0)
    event.seq = seq
    return event


class FakeVariant:
    def __init__(self, alive=True):
        self.alive = alive


class FakeTuple:
    def __init__(self, ring):
        self.ring = ring


class FakeSession:
    def __init__(self, ring, leader="leader", n_alive=2):
        self.leader = leader
        self.variants = [FakeVariant() for _ in range(n_alive)]
        self.tuples = [FakeTuple(ring)]


class TestPublishInvariants:
    def test_dense_publishes_are_silent(self):
        checker = InvariantChecker()
        ring = FakeRing()
        for i in range(5):
            checker.on_publish(ring, _event(clock=i + 1, seq=i))
        assert checker.violations == []

    def test_seq_gap_fires_non_monotonic(self):
        checker = InvariantChecker()
        ring = FakeRing()
        checker.on_publish(ring, _event(clock=1, seq=0))
        checker.on_publish(ring, _event(clock=2, seq=2))  # dropped seq 1
        assert any("non-monotonic publish" in v
                   for v in checker.violations)

    def test_seq_reorder_fires_non_monotonic(self):
        checker = InvariantChecker()
        ring = FakeRing()
        checker.on_publish(ring, _event(clock=1, seq=0))
        checker.on_publish(ring, _event(clock=2, seq=1))
        checker.on_publish(ring, _event(clock=3, seq=1))  # replayed slot
        assert any("non-monotonic publish" in v
                   for v in checker.violations)

    def test_clock_gap_fires_dropped_event(self):
        """A new leader that skips part of the dead leader's backlog
        publishes with a too-large clock — the failover invariant."""
        checker = InvariantChecker()
        ring = FakeRing()
        checker.on_publish(ring, _event(clock=1, seq=0))
        checker.on_publish(ring, _event(clock=3, seq=1))  # clock 2 lost
        assert any("dropped or duplicated across failover" in v
                   for v in checker.violations)

    def test_clock_duplicate_fires_dropped_event(self):
        checker = InvariantChecker()
        ring = FakeRing()
        checker.on_publish(ring, _event(clock=1, seq=0))
        checker.on_publish(ring, _event(clock=1, seq=1))  # replayed
        assert any("dropped or duplicated" in v for v in checker.violations)

    def test_rings_are_tracked_independently(self):
        checker = InvariantChecker()
        ring_a, ring_b = FakeRing("ring0"), FakeRing("ring1")
        checker.on_publish(ring_a, _event(clock=1, seq=0))
        checker.on_publish(ring_b, _event(clock=1, seq=0))
        checker.on_publish(ring_a, _event(clock=2, seq=1))
        assert checker.violations == []


class TestConsumeInvariants:
    def test_in_order_consumption_is_silent(self):
        checker = InvariantChecker()
        ring = FakeRing()
        for i in range(4):
            checker.on_consume(ring, 1, _event(clock=i + 1, seq=i))
        assert checker.violations == []

    def test_stale_cursor_fires(self):
        """A consumer that re-reads an already-consumed slot (stale
        cursor) must be caught."""
        checker = InvariantChecker()
        ring = FakeRing()
        checker.on_consume(ring, 1, _event(clock=1, seq=0))
        checker.on_consume(ring, 1, _event(clock=1, seq=0))  # stale
        assert any("consumer 1 consumed seq 0, expected 1" in v
                   for v in checker.violations)

    def test_consume_gap_fires(self):
        checker = InvariantChecker()
        ring = FakeRing()
        checker.on_consume(ring, 2, _event(clock=1, seq=0))
        checker.on_consume(ring, 2, _event(clock=3, seq=2))  # skipped 1
        assert any("consumer 2 consumed seq 2, expected 1" in v
                   for v in checker.violations)

    def test_consumers_are_tracked_independently(self):
        checker = InvariantChecker()
        ring = FakeRing()
        checker.on_consume(ring, 1, _event(clock=1, seq=0))
        checker.on_consume(ring, 2, _event(clock=1, seq=0))
        checker.on_consume(ring, 1, _event(clock=2, seq=1))
        assert checker.violations == []


class TestLockstepInvariants:
    def test_uniform_round_is_silent(self):
        checker = InvariantChecker()
        checker.on_lockstep_round("strict", 1, ["read", "read", "read"])
        assert checker.violations == []

    def test_escaped_mixed_round_fires(self):
        checker = InvariantChecker()
        checker.on_lockstep_round("strict", 2, ["read", "write"])
        assert any("escaped the monitor" in v for v in checker.violations)

    def test_caught_mixed_round_is_conformant(self):
        """A mixed round the monitor itself flagged is the expected
        fatal-divergence path, not a checker finding."""
        checker = InvariantChecker()
        checker.on_lockstep_round("strict", 3, ["read", "write"],
                                  caught=True)
        assert checker.violations == []


class TestFinalCheck:
    def test_drained_followers_are_silent(self):
        checker = InvariantChecker()
        ring = FakeRing()
        ring.head = 10
        ring.cursors = {1: 10, 2: 10}
        checker.attach_session(FakeSession(ring))
        assert checker.final_check() == []

    def test_starved_follower_fires(self):
        """A live consumer parked behind the head at end-of-run means
        an event it was owed never arrived."""
        checker = InvariantChecker()
        ring = FakeRing()
        ring.head = 10
        ring.cursors = {1: 10, 2: 7}
        checker.attach_session(FakeSession(ring))
        checker.final_check()
        assert any("consumer 2 ended 3 events behind" in v
                   for v in checker.violations)

    def test_leaderless_survivors_fire(self):
        checker = InvariantChecker()
        ring = FakeRing()
        checker.attach_session(FakeSession(ring, leader=None))
        checker.final_check()
        assert any("live variants but no leader" in v
                   for v in checker.violations)

    def test_fully_dead_session_is_silent(self):
        checker = InvariantChecker()
        ring = FakeRing()
        session = FakeSession(ring, leader=None, n_alive=0)
        checker.attach_session(session)
        assert checker.final_check() == []


class TestRoundtripInvariant:
    def test_roundtrip_checks_run_and_pass_on_real_events(self):
        checker = InvariantChecker(roundtrip_every=1)
        ring = FakeRing()
        for i in range(3):
            checker.on_publish(ring, _event(clock=i + 1, seq=i))
        assert checker.roundtrips_checked == 3
        assert checker.violations == []

    def test_uncodable_event_fires(self):
        """An event the log codec cannot round-trip is a finding, not a
        crash."""
        checker = InvariantChecker(roundtrip_every=1)
        ring = FakeRing()
        event = _event(clock=1, seq=0)
        event.etype = "bogus"  # no wire code for this etype
        checker.on_publish(ring, event)
        assert any("codec failed" in v or "round-trip" in v
                   for v in checker.violations)


class TestProcessAccounting:
    def test_each_injection_bumps_process_counter(self):
        from repro.faults import invariants as mod
        before = mod.process_violations()
        checker = InvariantChecker()
        ring = FakeRing()
        checker.on_publish(ring, _event(clock=1, seq=0))
        checker.on_publish(ring, _event(clock=3, seq=2))  # two violations
        assert mod.process_violations() - before == 2
        assert len(checker.violations) == 2

    def test_summary_counts_violations(self):
        checker = InvariantChecker()
        ring = FakeRing()
        checker.on_publish(ring, _event(clock=1, seq=0))
        checker.on_publish(ring, _event(clock=3, seq=2))
        assert "2 violations" in checker.summary()
