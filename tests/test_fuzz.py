"""Acceptance tests for the scenario fuzzer (tier-1).

Pins the PR's contract: byte-identical journals per seed, ≥3 distinct
deduplicated divergence classes across the default adversary mix, and
at least one auto-synthesized BPF rule that verifies and demonstrably
absorbs its source divergence on re-run.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.bpf.rules import RewriteRules
from repro.clients.adversaries import ADVERSARIES, make_adversaries
from repro.fuzz import (
    Journal,
    Scenario,
    ScenarioGenerator,
    run_fuzz,
    run_scenario,
)
from repro.fuzz.journal import KINDS
from repro.fuzz.synthesis import attempt_absorb, synthesize_candidates

REPO_ROOT = Path(__file__).parent.parent

#: One seed/budget pair reused across the expensive assertions so the
#: autopilot runs once per test process, not once per test.
SEED, BUDGET = 1, 8


@pytest.fixture(scope="module")
def report():
    return run_fuzz(seed=SEED, budget=BUDGET)


class TestJournal:
    def test_dedup_by_content_hash(self):
        journal = Journal(seed=0, budget=0)
        assert journal.record("crash", "same detail", 0) is True
        assert journal.record("crash", "same detail", 5) is False
        assert journal.record("divergence", "same detail", 5) is True
        assert len(journal.entries) == 2
        assert journal.duplicates == 1

    def test_render_is_stable_and_fixed_shape(self):
        journal = Journal(seed=9, budget=3)
        journal.record("crash", "a", 0)
        text = journal.render()
        assert text == journal.render()
        assert text.startswith("# fuzz seed=9 budget=3\n")
        for kind in KINDS:
            assert f"{kind}=" in text

    def test_entry_digest_depends_on_kind_and_detail(self):
        journal = Journal(seed=0, budget=0)
        journal.record("crash", "x", 0)
        journal.record("mismatch", "x", 0)
        digests = {entry.digest for entry in journal.entries}
        assert len(digests) == 2


class TestGeneratorDeterminism:
    def test_same_seed_same_scenarios(self):
        a = ScenarioGenerator(seed=5)
        b = ScenarioGenerator(seed=5)
        for _ in range(12):
            assert a.next_scenario() == b.next_scenario()

    def test_different_seeds_diverge(self):
        a = [ScenarioGenerator(seed=5).next_scenario() for _ in range(1)]
        b = [ScenarioGenerator(seed=6).next_scenario() for _ in range(1)]
        assert a[0].sub_seed != b[0].sub_seed

    def test_novelty_bias_stays_deterministic(self):
        a, b = ScenarioGenerator(seed=3), ScenarioGenerator(seed=3)
        for _ in range(10):
            sa, sb = a.next_scenario(), b.next_scenario()
            assert sa == sb
            a.note_novel(sa)
            b.note_novel(sb)

    def test_frontier_covers_both_kinds(self):
        gen = ScenarioGenerator(seed=1)
        first = [gen.next_scenario() for _ in range(4)]
        kinds = {s.kind for s in first}
        assert kinds == {"workload", "server"}
        divergences = {s.divergence for s in first if s.kind == "workload"}
        assert {"follower-extra", "leader-extra"} <= divergences


class TestAdversaryDeterminism:
    def test_same_fleet_same_streams(self):
        pa, sa = make_adversaries(seed=4)
        pb, sb = make_adversaries(seed=4)
        assert [(m, n) for m, n, _ in pa] == [(m, n) for m, n, _ in pb]
        assert len(pa) == len(ADVERSARIES)

    def test_unknown_adversary_rejected(self):
        with pytest.raises(ValueError, match="unknown adversaries"):
            make_adversaries(mix=("slowloris", "nosuch"))


class TestAutopilotAcceptance:
    def test_journal_byte_identical_per_seed(self, report):
        again = run_fuzz(seed=SEED, budget=BUDGET)
        assert report.render() == again.render()

    def test_finds_three_distinct_divergence_classes(self, report):
        assert len(report.journal.kinds()) >= 3, report.render()

    def test_synthesizes_an_absorbing_rule(self, report):
        assert len(report.absorbed) >= 1, report.render()

    def test_journal_entries_name_their_scenario(self, report):
        budgets = {entry.scenario for entry in report.journal.entries}
        assert all(0 <= index < BUDGET for index in budgets)

    def test_different_seed_changes_the_journal(self, report):
        other = run_fuzz(seed=SEED + 1, budget=4, synthesis=False)
        assert other.render() != report.render()


class TestSynthesisAbsorption:
    def test_absorbed_rule_cleans_its_source_scenario(self, report):
        """Re-running a divergence scenario under its synthesized rule
        must be completely clean — the acceptance criterion."""
        assert report.absorbed, report.render()
        rule = report.absorbed[0]
        # Find the scenario that produced this divergence class.
        gen = ScenarioGenerator(seed=SEED)
        scenarios = [gen.next_scenario() for _ in range(BUDGET)]
        source = None
        for scenario in scenarios:
            result = run_scenario(scenario)
            if any(call == rule.call_name and event == rule.event_name
                   for _v, call, event in result.fatal_divergences):
                source = scenario
                assert not result.clean
                break
        assert source is not None
        rerun = run_scenario(source,
                             rules=RewriteRules([rule.program()]))
        assert rerun.clean, rerun.records
        assert rerun.fatal_divergences == []

    def test_candidates_order_allow_then_skip(self):
        candidates = synthesize_candidates("getuid", "open")
        assert [c.action for c in candidates] == ["allow", "skip"]

    def test_unknown_syscall_yields_no_candidates(self):
        assert synthesize_candidates("nosuchcall", "alsonot") == []

    def test_attempt_absorb_marks_winner(self):
        gen = ScenarioGenerator(seed=SEED)
        scenario = gen.next_scenario()  # frontier: follower-extra
        result = run_scenario(scenario)
        assert result.fatal_divergences
        _v, call, event = result.fatal_divergences[0]
        winner, candidates = attempt_absorb(scenario, call, event)
        assert winner is not None
        assert winner.absorbed is True
        assert candidates


class TestMetricsIntegration:
    def test_drain_exposes_fuzz_keys_as_deltas(self):
        from repro.obs import metrics as obs_metrics

        obs_metrics.start_collection()
        run_fuzz(seed=2, budget=2, synthesis=False)
        snapshot = obs_metrics.drain()
        counters = snapshot["counters"]
        for key in ("fuzz.scenarios", "fuzz.novel", "fuzz.duplicates",
                    "fuzz.divergences", "fuzz.crashes",
                    "fuzz.rules_synthesized", "fuzz.rules_absorbed"):
            assert key in counters
        assert counters["fuzz.scenarios"] == 2

    def test_drain_without_fuzzing_reports_zeroes(self):
        from repro.obs import metrics as obs_metrics

        obs_metrics.start_collection()
        snapshot = obs_metrics.drain()
        assert snapshot["counters"]["fuzz.scenarios"] == 0


class TestCli:
    def test_fuzz_command_round_trip(self, tmp_path):
        out = tmp_path / "journal.txt"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fuzz", "--seed", "3",
             "--budget", "4", "--no-synthesis", "--out", str(out)],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"})
        assert proc.returncode == 0, proc.stderr
        text = out.read_text()
        assert text.startswith("# fuzz seed=3 budget=4\n")
        assert "rules: 0 synthesized" in text

    def test_fuzz_summary_experiment_registered(self):
        from repro.experiments.registry import EXPERIMENTS, run_experiment

        assert "fuzz-summary" in EXPERIMENTS
        result = run_experiment("fuzz-summary")
        metrics = {row["metric"]: row["value"] for row in result.rows}
        assert metrics["distinct divergence classes"] >= 3
        assert metrics["rules absorbed (clean re-run)"] >= 1
