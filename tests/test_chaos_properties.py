"""Property-based chaos testing (Hypothesis).

The chaos harness (``repro.faults.chaos``) already pairs each randomly
drawn fault plan with a fault-free baseline of the same workload and
checks (a) every surviving variant's output digest equals the baseline's
and (b) the invariant checker stays silent.  Here Hypothesis drives the
seed space so the property is exercised across arbitrary (workload,
fault-plan) combinations rather than a fixed seed list.

These are slow (each example is two full NVX sessions), so the whole
module is ``slow``-marked and runs in the nightly suite.
"""

import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.chaos import run_plan

pytestmark = pytest.mark.slow

_SETTINGS = settings(
    max_examples=10,
    deadline=None,  # a single example is a pair of full DES sessions
    derandomize=True,  # deterministic example selection for CI stability
    suppress_health_check=[HealthCheck.too_slow],
)


class TestChaosProperties:
    @_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=2**16),
           index=st.integers(min_value=0, max_value=7))
    def test_survivors_match_fault_free_baseline(self, seed, index):
        """Any seeded fault plan leaves survivors output-identical to the
        fault-free run, with zero invariant violations."""
        lines, mismatches, violations = run_plan(seed, index)
        assert mismatches == 0, "\n".join(lines)
        assert violations == 0, "\n".join(lines)

    @_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=2**16),
           index=st.integers(min_value=0, max_value=7))
    def test_plan_runs_are_reproducible(self, seed, index):
        """The same (seed, index) yields a byte-identical journal."""
        first = run_plan(seed, index)
        second = run_plan(seed, index)
        assert first == second
