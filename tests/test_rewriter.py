"""Tests for selective binary rewriting (§3.2) and vDSO patching (§3.2.1)."""

import pytest

from repro.errors import ExecutionFault
from repro.isa import AddressSpace, Cpu, Segment, assemble, disassemble
from repro.rewriter import (
    KIND_INT,
    KIND_JMP,
    KIND_VDSO,
    BinaryRewriter,
    make_int0_handler,
    make_vmcall_handler,
    rewrite_vdso,
)
from repro.costmodel import DEFAULT_COSTS

TEXT = 0x1000
STACK_TOP = 0x20000


def build_world(source, auto=True):
    space = AddressSpace()
    rewriter = BinaryRewriter(space, auto=auto)
    space.map(Segment(STACK_TOP - 0x2000, bytes(0x2000), perms="rw",
                      name="stack"))
    code = assemble(source, origin=TEXT)
    text = space.map(Segment(TEXT, code, perms="rx", name="text"))
    return space, rewriter, text


def attach_cpu(space, rewriter, dispatch, entry=TEXT):
    cpu = Cpu(space, entry=entry, stack_top=STACK_TOP)
    cpu.vmcall_handler = make_vmcall_handler(rewriter.patchset, dispatch)
    cpu.int0_handler = make_int0_handler(rewriter.patchset, dispatch,
                                         DEFAULT_COSTS)
    return cpu


def recording_dispatch(calls, result_fn=lambda nr: 1000 + nr):
    def dispatch(cpu, site):
        nr = cpu.get("rax")
        calls.append((site.kind, nr))
        return result_fn(nr)
        yield  # pragma: no cover - generator marker

    return dispatch


SIMPLE = """
movi rax, 1
movi rdi, 5
syscall
mov rbx, rax
addi rbx, 100
mov rax, rbx
hlt
"""


class TestJmpPatching:
    def test_syscall_replaced_by_jmp(self):
        space, rewriter, text = build_world(SIMPLE)
        sites = rewriter.patchset.sites
        assert len(sites) == 1 and sites[0].kind == KIND_JMP
        # The patched text must still be fully decodable.
        insns = disassemble(bytes(text.data), base_addr=TEXT)
        mnemonics = [i.mnemonic for i in insns]
        assert "syscall" not in mnemonics
        assert "jmp" in mnemonics

    def test_execution_through_trampoline(self):
        space, rewriter, _ = build_world(SIMPLE)
        calls = []
        cpu = attach_cpu(space, rewriter, recording_dispatch(calls))
        result = cpu.run_sync()
        # dispatch returned 1001; displaced mov/addi still execute.
        assert result == 1101
        assert calls == [(KIND_JMP, 1)]

    def test_registers_preserved_across_entry(self):
        source = """
        movi rcx, 7777
        movi rax, 1
        syscall
        mov rbx, rax
        nop
        nop
        nop
        mov rax, rcx
        hlt
        """
        space, rewriter, _ = build_world(source)
        cpu = attach_cpu(space, rewriter, recording_dispatch([]))
        assert cpu.run_sync() == 7777

    def test_displaced_rel32_branch_fixed_up(self):
        # A displaced jmp must still reach its original target.
        source = """
        movi rbx, 0
        movi rax, 1
        syscall
        jmp target
        nop
        nop
        nop
        nop
        movi rbx, 111
        target:
        addi rbx, 5
        mov rax, rbx
        hlt
        """
        space, rewriter, _ = build_world(source)
        cpu = attach_cpu(space, rewriter, recording_dispatch([]))
        # jmp skips the movi rbx,111; rbx = 0 + 5.
        assert cpu.run_sync() == 5

    def test_wx_discipline_holds(self):
        space, rewriter, text = build_world(SIMPLE)
        for segment in space.segments:
            assert not ("w" in segment.perms and "x" in segment.perms)

    def test_rewrite_fires_on_late_mprotect(self):
        space, rewriter, _ = build_world("nop\nhlt")
        code = assemble("movi rax, 1\nsyscall\nnop\nnop\nnop\nnop\nhlt",
                        origin=0x3000)
        late = space.map(Segment(0x3000, code, perms="r", name="late"))
        assert len(rewriter.patchset.sites) == 0
        space.mprotect(late, "rx")
        assert len(rewriter.patchset.sites) == 1


class TestIntFallback:
    SOURCE = """
    movi rcx, 2
    movi rax, 3
    syscall
    after:
    nop
    nop
    nop
    nop
    subi rcx, 1
    jnz after
    hlt
    """

    def test_branch_target_in_window_forces_int(self):
        space, rewriter, _ = build_world(self.SOURCE)
        sites = rewriter.patchset.sites
        assert len(sites) == 1 and sites[0].kind == KIND_INT
        assert rewriter.patchset.stats.int_patched == 1
        assert rewriter.patchset.stats.jmp_patched == 0

    def test_execution_through_interrupt(self):
        space, rewriter, _ = build_world(self.SOURCE)
        calls = []
        cpu = attach_cpu(space, rewriter, recording_dispatch(calls))
        result = cpu.run_sync()
        assert calls == [(KIND_INT, 3)]
        assert result == 1003  # handler result in rax, loop preserves it

    def test_syscall_at_segment_end_forces_int(self):
        # No room for the 5-byte window: falls back to INT0.
        space, rewriter, _ = build_world("movi rax, 9\nsyscall")
        sites = rewriter.patchset.sites
        assert len(sites) == 1 and sites[0].kind == KIND_INT


class TestAdjacentSyscalls:
    SOURCE = """
    movi rax, 1
    syscall
    syscall
    nop
    nop
    nop
    nop
    hlt
    """

    def test_second_syscall_relocated_as_int(self):
        space, rewriter, _ = build_world(self.SOURCE)
        kinds = sorted(s.kind for s in rewriter.patchset.sites)
        assert kinds == [KIND_INT, KIND_JMP]

    def test_both_calls_dispatched(self):
        space, rewriter, _ = build_world(self.SOURCE)
        calls = []
        cpu = attach_cpu(space, rewriter, recording_dispatch(calls))
        result = cpu.run_sync()
        assert len(calls) == 2
        assert calls[0][0] == KIND_JMP
        assert calls[1][0] == KIND_INT
        # Second dispatch saw rax = result of the first (1001).
        assert calls[1][1] == 1001
        assert result == 2001


def build_vdso_segment(base=0x5000):
    # Two functions, 16 bytes apart: time (vsys 0), gettimeofday (vsys 1).
    source = """
    time:
    vsys 0
    ret
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    gettimeofday:
    vsys 1
    ret
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    """
    code = assemble(source, origin=base)
    symbols = {"time": base, "gettimeofday": base + 16}
    return code, symbols


class TestVdsoRewriting:
    def test_vdso_entry_redirected(self):
        space = AddressSpace()
        rewriter = BinaryRewriter(space)
        space.map(Segment(STACK_TOP - 0x2000, bytes(0x2000), perms="rw",
                          name="stack"))
        code, symbols = build_vdso_segment()
        vdso = space.map(Segment(0x5000, code, perms="rx", name="vdso"))
        sites = rewrite_vdso(rewriter, vdso, symbols)
        assert {s.vdso_symbol for s in sites} == {"time", "gettimeofday"}
        assert all(s.kind == KIND_VDSO for s in sites)
        assert rewriter.patchset.stats.vdso_patched == 2

        # Calling the patched function dispatches through the monitor.
        caller = assemble(
            f"movi rbx, {symbols['time']}\ncallr rbx\nhlt", origin=TEXT)
        space.map(Segment(TEXT, caller, perms="rx", name="text"))
        calls = []

        def dispatch(cpu, site):
            calls.append(site.vdso_symbol)
            return 424242
            yield  # pragma: no cover

        cpu = attach_cpu(space, rewriter, dispatch)
        assert cpu.run_sync() == 424242
        assert calls == ["time"]

    def test_original_trampoline_still_native(self):
        space = AddressSpace()
        rewriter = BinaryRewriter(space)
        space.map(Segment(STACK_TOP - 0x2000, bytes(0x2000), perms="rw",
                          name="stack"))
        code, symbols = build_vdso_segment()
        vdso = space.map(Segment(0x5000, code, perms="rx", name="vdso"))
        sites = rewrite_vdso(rewriter, vdso, symbols)
        time_site = [s for s in sites if s.vdso_symbol == "time"][0]

        caller = assemble(
            f"movi rbx, {time_site.original_entry_trampoline}\n"
            "callr rbx\nhlt", origin=TEXT)
        space.map(Segment(TEXT, caller, perms="rx", name="text"))
        cpu = Cpu(space, entry=TEXT, stack_top=STACK_TOP)

        def vsys(cpu_, idx):
            return 5000 + idx
            yield  # pragma: no cover

        cpu.vsys_handler = vsys
        assert cpu.run_sync() == 5000  # vsys 0 == time, genuine fast path


class TestStatsAndSafety:
    def test_stats_counters(self):
        space, rewriter, _ = build_world(SIMPLE)
        stats = rewriter.patchset.stats
        assert stats.segments_scanned >= 1
        assert stats.sites_found == 1
        assert stats.jmp_patched == 1
        assert stats.relocated_insns >= 1

    def test_unknown_vmcall_site_faults(self):
        space, rewriter, _ = build_world("nop\nhlt")
        bad = assemble("vmcall\nhlt", origin=0x4000)
        space.map(Segment(0x4000, bad, perms="rx", name="rogue"))
        cpu = attach_cpu(space, rewriter, recording_dispatch([]),
                         entry=0x4000)
        with pytest.raises(ExecutionFault):
            cpu.run_sync()

    def test_own_segments_never_rewritten(self):
        space, rewriter, _ = build_world(SIMPLE)
        before = len(rewriter.patchset.sites)
        # Trampolines were mapped during the first rewrite; re-protecting
        # one must not create new sites.
        tramp = space.find_by_name("varan.trampoline")
        assert tramp is not None
        space.mprotect(tramp, "rx")
        assert len(rewriter.patchset.sites) == before


class TestTranslationCacheCoherence:
    def test_patch_after_translate_dispatches_through_trampoline(self):
        # Translate the unrewritten text first (raw syscall terminator in
        # the cached block), then rewrite it in place.  If the rewriter's
        # patch did not evict the stale block, the second run would replay
        # the raw syscall instead of entering the trampoline.
        space, rewriter, text = build_world(SIMPLE, auto=False)
        calls = []
        cpu = attach_cpu(space, rewriter, recording_dispatch(calls))

        def raw_syscall(inner):
            calls.append(("raw", inner.get("rax")))
            return 555
            yield  # pragma: no cover - generator marker

        cpu.syscall_handler = raw_syscall
        assert cpu.run_sync() == 655  # 555 + 100, no trampoline involved
        assert calls == [("raw", 1)]

        rewriter.rewrite_segment(text)
        cpu.rip = TEXT
        cpu.halted = False
        del calls[:]
        assert cpu.run_sync() == 1101  # dispatch result 1001 + 100
        assert calls == [(KIND_JMP, 1)]
        assert (cpu.tcache.stats.invalidations >= 1
                or cpu.tcache.stats.misses >= 2)
