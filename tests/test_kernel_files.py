"""Kernel tests: filesystem, descriptors, basic syscalls."""

import pytest

from repro.kernel.uapi import (
    EBADF,
    ENOENT,
    F_GETFD,
    F_SETFD,
    FD_CLOEXEC,
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    SysError,
)
from repro.world import World


def run_program(main, files=None, world=None):
    """Run one task to completion; returns (result, world)."""
    w = world or World()
    if files:
        fs = w.kernel.fs(w.server)
        for path, data in files.items():
            fs.create(path, data)
    task = w.spawn(main, name="prog")
    w.run()
    thread = task.threads[0]
    if thread.exception is not None:
        raise thread.exception
    return thread.result, w


class TestOpenReadWrite:
    def test_read_existing_file(self):
        def main(ctx):
            fd = yield from ctx.open("/tmp/a.txt")
            data = yield from ctx.read(fd, 100)
            yield from ctx.close(fd)
            return data

        result, _ = run_program(main, files={"/tmp/a.txt": b"hello world"})
        assert result == b"hello world"

    def test_open_missing_file_raises_enoent(self):
        def main(ctx):
            yield from ctx.open("/tmp/missing")

        with pytest.raises(SysError) as err:
            run_program(main)
        assert err.value.errno == ENOENT

    def test_create_write_read_back(self):
        def main(ctx):
            fd = yield from ctx.open("/tmp/new", O_CREAT | O_RDWR)
            yield from ctx.write(fd, b"abcdef")
            yield from ctx.lseek(fd, 0)
            data = yield from ctx.read(fd, 6)
            yield from ctx.close(fd)
            return data

        result, _ = run_program(main)
        assert result == b"abcdef"

    def test_sequential_reads_advance_offset(self):
        def main(ctx):
            fd = yield from ctx.open("/tmp/a")
            first = yield from ctx.read(fd, 3)
            second = yield from ctx.read(fd, 3)
            return first, second

        result, _ = run_program(main, files={"/tmp/a": b"abcdef"})
        assert result == (b"abc", b"def")

    def test_append_mode(self):
        def main(ctx):
            fd = yield from ctx.open("/tmp/a", O_WRONLY | O_APPEND)
            yield from ctx.write(fd, b"XYZ")
            yield from ctx.close(fd)
            fd = yield from ctx.open("/tmp/a")
            return (yield from ctx.read(fd, 100))

        result, _ = run_program(main, files={"/tmp/a": b"abc"})
        assert result == b"abcXYZ"

    def test_trunc_clears_file(self):
        def main(ctx):
            fd = yield from ctx.open("/tmp/a", O_WRONLY | O_TRUNC)
            yield from ctx.write(fd, b"new")
            yield from ctx.close(fd)
            fd = yield from ctx.open("/tmp/a")
            return (yield from ctx.read(fd, 100))

        result, _ = run_program(main, files={"/tmp/a": b"old content"})
        assert result == b"new"

    def test_write_to_readonly_fd_fails(self):
        def main(ctx):
            fd = yield from ctx.open("/tmp/a", O_RDONLY)
            yield from ctx.write(fd, b"nope")

        with pytest.raises(SysError) as err:
            run_program(main, files={"/tmp/a": b"x"})
        assert err.value.errno == EBADF

    def test_dev_null_swallows_and_eofs(self):
        def main(ctx):
            fd = yield from ctx.open("/dev/null", O_RDWR)
            n = yield from ctx.write(fd, b"x" * 512)
            data = yield from ctx.read(fd, 512)
            return n, data

        result, _ = run_program(main)
        assert result == (512, b"")

    def test_dev_urandom_deterministic_per_seed(self):
        def main(ctx):
            fd = yield from ctx.open("/dev/urandom")
            return (yield from ctx.read(fd, 16))

        first, _ = run_program(main)
        second, _ = run_program(main)
        assert first == second  # seeded: reproducible across runs
        assert len(first) == 16

    def test_pread_does_not_move_offset(self):
        def main(ctx):
            fd = yield from ctx.open("/tmp/a")
            at4 = yield from ctx.pread(fd, 2, 4)
            seq = yield from ctx.read(fd, 2)
            return at4, seq

        result, _ = run_program(main, files={"/tmp/a": b"0123456789"})
        assert result == (b"45", b"01")


class TestDescriptors:
    def test_close_then_use_is_ebadf(self):
        def main(ctx):
            fd = yield from ctx.open("/dev/null", O_RDWR)
            yield from ctx.close(fd)
            yield from ctx.write(fd, b"x")

        with pytest.raises(SysError) as err:
            run_program(main)
        assert err.value.errno == EBADF

    def test_double_close_returns_ebadf(self):
        def main(ctx):
            fd = yield from ctx.open("/dev/null")
            first = yield from ctx.close(fd)
            second = yield from ctx.close(fd)
            return first, second

        result, _ = run_program(main)
        assert result == (0, -EBADF)

    def test_dup_shares_offset(self):
        def main(ctx):
            fd = yield from ctx.open("/tmp/a")
            result = yield from ctx.syscall("dup", fd)
            dup_fd = result.retval
            yield from ctx.read(fd, 3)
            return (yield from ctx.read(dup_fd, 3))

        result, _ = run_program(main, files={"/tmp/a": b"abcdef"})
        assert result == b"def"  # offset shared through the description

    def test_fd_numbers_are_reused_lowest_first(self):
        def main(ctx):
            a = yield from ctx.open("/dev/null")
            b = yield from ctx.open("/dev/zero")
            yield from ctx.close(a)
            c = yield from ctx.open("/dev/urandom")
            return a, b, c

        result, _ = run_program(main)
        a, b, c = result
        assert c == a  # lowest free fd reused

    def test_cloexec_flag_via_fcntl(self):
        def main(ctx):
            fd = yield from ctx.open("/dev/null")
            yield from ctx.fcntl(fd, F_SETFD, FD_CLOEXEC)
            return (yield from ctx.fcntl(fd, F_GETFD))

        result, _ = run_program(main)
        assert result == FD_CLOEXEC


class TestPaths:
    def test_unlink_removes_file(self):
        def main(ctx):
            yield from ctx.unlink("/tmp/a")
            return (yield from ctx.access("/tmp/a"))

        result, _ = run_program(main, files={"/tmp/a": b"x"})
        assert result == -ENOENT

    def test_stat_reports_size(self):
        def main(ctx):
            result = yield from ctx.stat("/tmp/a")
            return result

        result, _ = run_program(main, files={"/tmp/a": b"12345"})
        import struct

        kind, size = struct.unpack("<qq", result.data)
        assert size == 5

    def test_rename(self):
        def main(ctx):
            yield from ctx.syscall("rename", "/tmp/a", "/tmp/b")
            fd = yield from ctx.open("/tmp/b")
            return (yield from ctx.read(fd, 10))

        result, _ = run_program(main, files={"/tmp/a": b"moved"})
        assert result == b"moved"

    def test_sendfile_copies_between_fds(self):
        def main(ctx):
            src = yield from ctx.open("/tmp/a")
            dst = yield from ctx.open("/tmp/b", O_CREAT | O_RDWR)
            n = yield from ctx.sendfile(dst, src, 5)
            yield from ctx.lseek(dst, 0)
            return n, (yield from ctx.read(dst, 10))

        result, _ = run_program(main, files={"/tmp/a": b"hello"})
        assert result == (5, b"hello")


class TestTimeAndIdentity:
    def test_time_advances_with_virtual_clock(self):
        def main(ctx):
            before = yield from ctx.time()
            yield from ctx.nanosleep(2_000_000_000_000)  # 2 s
            after = yield from ctx.time()
            return after - before

        result, _ = run_program(main)
        assert result == 2

    def test_gettimeofday_microseconds(self):
        def main(ctx):
            sec, usec = yield from ctx.gettimeofday()
            return sec, usec

        result, _ = run_program(main)
        assert result[0] >= 1_426_291_200  # the paper's epoch
        assert 0 <= result[1] < 1_000_000

    def test_identity_calls(self):
        def main(ctx):
            uid = yield from ctx.getuid()
            euid = yield from ctx.geteuid()
            gid = yield from ctx.getgid()
            egid = yield from ctx.getegid()
            setugid = yield from ctx.issetugid()
            return uid, euid, gid, egid, setugid

        result, _ = run_program(main)
        assert result == (1000, 1000, 1000, 1000, 0)

    def test_getrandom_is_deterministic(self):
        def main(ctx):
            return (yield from ctx.getrandom(8))

        first, _ = run_program(main)
        second, _ = run_program(main)
        assert first == second and len(first) == 8


class TestCosts:
    def test_syscalls_consume_calibrated_time(self):
        from repro.costmodel import DEFAULT_COSTS, cycles

        def main(ctx):
            yield from ctx.syscall("close", -1)

        w = World()
        task = w.spawn(main, name="t")
        w.run()
        # close(-1) should cost about its native price (1261 cycles).
        assert abs(w.now - cycles(1261)) < cycles(50)

    def test_vdso_time_is_cheap(self):
        def main(ctx):
            yield from ctx.time()

        w = World()
        w.spawn(main, name="t")
        w.run()
        from repro.costmodel import cycles

        assert w.now <= cycles(60)  # 49-cycle vDSO call
