"""Tests for the prior-work baselines: ptrace lockstep and Scribe."""

import pytest

from repro.core.coordinator import VersionSpec
from repro.costmodel import SEC_PS
from repro.errors import DivergenceError
from repro.kernel.uapi import O_RDWR
from repro.nvx import (
    MX_PROFILE,
    ORCHESTRA_PROFILE,
    TACHYON_PROFILE,
    LockstepSession,
    ScribeSession,
    lockstep_overhead_profile,
)
from repro.world import World


def simple_app(tag):
    def main(ctx):
        fd = yield from ctx.open("/dev/null", O_RDWR)
        total = 0
        for _ in range(5):
            total += (yield from ctx.write(fd, b"x" * 100))
        data = yield from ctx.read(fd, 100)
        yield from ctx.close(fd)
        return (tag, total, data)

    return main


class TestLockstep:
    def test_versions_agree_on_results(self):
        world = World()
        session = LockstepSession(
            world, [VersionSpec("a", simple_app("a")),
                    VersionSpec("b", simple_app("b"))]).start()
        world.run()
        results = [t.threads[0].result for t in session.tasks]
        assert results[0][1] == results[1][1] == 500

    def test_lockstep_is_slower_than_native(self):
        def run_once(monitored):
            world = World()
            if monitored:
                LockstepSession(world,
                                [VersionSpec("a", simple_app("a")),
                                 VersionSpec("b", simple_app("b"))]).start()
            else:
                world.spawn(simple_app("solo"), name="solo")
            world.run()
            return world.now

        native = run_once(False)
        lockstep = run_once(True)
        # Two ptrace stops per call with context switches: much slower.
        assert lockstep > 3 * native

    def test_divergence_is_fatal(self):
        def deviant(ctx):
            yield from ctx.getuid()  # different first syscall
            return "deviant"

        world = World()
        session = LockstepSession(
            world, [VersionSpec("a", simple_app("a")),
                    VersionSpec("d", deviant)]).start()
        world.run(until_ps=SEC_PS)
        assert session.divergence is not None
        failures = [t.threads[0].exception for t in session.tasks]
        assert any(isinstance(e, DivergenceError) for e in failures)

    def test_vdso_calls_invisible_to_ptrace(self):
        # Virtual syscalls execute natively in each version — the
        # §3.2.1 limitation: results may differ across versions.
        def timed(ctx):
            yield from ctx.nanosleep(1_000_000)
            return (yield from ctx.syscall("time")).retval

        world = World()
        session = LockstepSession(
            world, [VersionSpec("a", timed), VersionSpec("b", timed)],
        ).start()
        world.run()
        assert session.stats_syscalls > 0
        # nanosleep went through the monitor, time did not.
        assert all(t.threads[0].result is not None
                   for t in session.tasks)

    def test_profiles_lookup(self):
        assert lockstep_overhead_profile("mx") is MX_PROFILE
        assert lockstep_overhead_profile("orchestra") is ORCHESTRA_PROFILE
        assert lockstep_overhead_profile("tachyon") is TACHYON_PROFILE
        with pytest.raises(Exception):
            lockstep_overhead_profile("nonesuch")

    def test_monitor_serialises_stops(self):
        world = World()
        session = LockstepSession(
            world, [VersionSpec("a", simple_app("a")),
                    VersionSpec("b", simple_app("b"))]).start()
        world.run()
        # Every syscall from every version passed two stops through the
        # centralized monitor.
        assert session.stats_stops == 2 * session.stats_syscalls


class TestScribe:
    def test_recording_overhead_charged(self):
        def run_once(monitored):
            world = World()
            if monitored:
                session = ScribeSession(
                    world, [VersionSpec("a", simple_app("a"))]).start()
            else:
                session = None
                world.spawn(simple_app("solo"), name="solo")
            world.run()
            return world.now, session

        native, _ = run_once(False)
        scribe, session = run_once(True)
        assert scribe > native
        assert session.events_recorded == 8  # open+5 writes+read+close

    def test_results_unchanged_by_recording(self):
        world = World()
        session = ScribeSession(
            world, [VersionSpec("a", simple_app("a"))]).start()
        world.run()
        assert session.tasks[0].threads[0].result[1] == 500
