"""Integration tests for the Varan NVX session: replay fidelity, fd
transfer, failover, divergence handling, threads and forks."""

import pytest

from repro.bpf import NVX_RET_SKIP, RewriteRules, assemble_bpf
from repro.core import NvxSession, VersionSpec
from repro.kernel.uapi import O_RDWR, SYSCALL_NUMBERS, Segfault
from repro.world import World

LISTING_1 = """
ld event[0]
jeq #108, getegid /* __NR_getegid */
jeq #2, open /* __NR_open */
jmp bad
getegid:
ld [0]
jeq #102, good /* __NR_getuid */
open:
ld [0]
jeq #104, good /* __NR_getgid */
bad: ret #0
good: ret #0x7fff0000
"""


def run_session(specs, world=None, files=None, **kwargs):
    w = world or World()
    if files:
        fs = w.kernel.fs(w.server)
        for path, data in files.items():
            fs.create(path, data)
    session = NvxSession(w, specs, **kwargs).start()
    w.run()
    return session, w


def result_of(variant):
    thread = variant.root_task.threads[0]
    if thread.exception is not None:
        raise thread.exception
    return thread.result


class TestReplayFidelity:
    def test_all_variants_see_identical_results(self):
        def app(ctx):
            fd = yield from ctx.open("/tmp/f")
            data = yield from ctx.read(fd, 32)
            t = yield from ctx.time()
            sec, usec = yield from ctx.gettimeofday()
            yield from ctx.close(fd)
            return (fd, data, t, sec, usec)

        session, _ = run_session(
            [VersionSpec("a", app), VersionSpec("b", app),
             VersionSpec("c", app)],
            files={"/tmp/f": b"identical-bytes"})
        results = [result_of(v) for v in session.variants]
        assert results[0] == results[1] == results[2]
        assert results[0][1] == b"identical-bytes"

    def test_followers_do_not_touch_the_environment(self):
        def app(ctx):
            fd = yield from ctx.open("/tmp/log", O_RDWR)
            yield from ctx.write(fd, b"exactly-once")
            yield from ctx.close(fd)
            return True

        session, world = run_session(
            [VersionSpec("a", app), VersionSpec("b", app)],
            files={"/tmp/log": b""})
        inode = world.kernel.fs(world.server).lookup("/tmp/log")
        # Two variants ran the write; the file received it exactly once.
        assert bytes(inode.data) == b"exactly-once"

    def test_urandom_payload_replayed_not_reread(self):
        def app(ctx):
            return (yield from ctx.getrandom(16))

        session, _ = run_session(
            [VersionSpec("a", app), VersionSpec("b", app)])
        assert result_of(session.variants[0]) == \
            result_of(session.variants[1])

    def test_followers_lag_behind_leader(self):
        def app(ctx):
            for _ in range(20):
                yield from ctx.time()
            return True

        session, _ = run_session(
            [VersionSpec("a", app), VersionSpec("b", app)],
            sample_distances=True)
        stats = session.root_tuple.ring.stats
        assert stats.published >= 21  # 20 times + exit
        assert stats.median_distance() >= 1

    def test_event_counts_scale_with_followers(self):
        def app(ctx):
            yield from ctx.time()
            return True

        session, _ = run_session([VersionSpec(c, app) for c in "abcd"])
        stats = session.root_tuple.ring.stats
        assert stats.consumed == 3 * stats.published


class TestFdTransfer:
    def test_follower_fd_table_mirrors_leader(self):
        def app(ctx):
            fd_a = yield from ctx.open("/dev/null")
            fd_b = yield from ctx.open("/dev/zero")
            yield from ctx.close(fd_a)
            fd_c = yield from ctx.open("/dev/urandom")
            return (fd_a, fd_b, fd_c)

        session, _ = run_session(
            [VersionSpec("a", app), VersionSpec("b", app)])
        assert result_of(session.variants[0]) == \
            result_of(session.variants[1])
        leader_fds = session.variants[0].root_task.fdtable.fds()
        follower_fds = session.variants[1].root_task.fdtable.fds()
        assert leader_fds == follower_fds

    def test_transferred_description_is_shared(self):
        def app(ctx):
            fd = yield from ctx.open("/tmp/f")
            yield from ctx.read(fd, 4)
            return fd

        session, _ = run_session(
            [VersionSpec("a", app), VersionSpec("b", app)],
            files={"/tmp/f": b"abcdefgh"})
        fd = result_of(session.variants[0])
        leader_desc = session.variants[0].root_task.fdtable.get(fd)
        follower_desc = session.variants[1].root_task.fdtable.get(fd)
        assert leader_desc is follower_desc  # dup of the same description

    def test_fds_sent_once_per_follower(self):
        def app(ctx):
            yield from ctx.open("/dev/null")
            return True

        session, _ = run_session(
            [VersionSpec(c, app) for c in "abc"])
        sent = sum(ch.fds_sent
                   for ch in session.root_tuple.channels.values())
        assert sent == 2  # one fd, two followers


class TestFailover:
    def make_apps(self):
        def good(ctx):
            fd = yield from ctx.open("/tmp/f")
            data = yield from ctx.read(fd, 16)
            out = yield from ctx.open("/tmp/out", O_RDWR)
            yield from ctx.write(out, data)
            yield from ctx.close(out)
            yield from ctx.close(fd)
            return data

        def buggy(ctx):
            fd = yield from ctx.open("/tmp/f")
            data = yield from ctx.read(fd, 16)
            raise Segfault("bad pointer")
            yield  # pragma: no cover

        return good, buggy

    def test_follower_crash_does_not_disturb_leader(self):
        good, buggy = self.make_apps()
        session, world = run_session(
            [VersionSpec("good", good), VersionSpec("buggy", buggy)],
            files={"/tmp/f": b"precious", "/tmp/out": b""})
        assert result_of(session.variants[0]) == b"precious"
        assert session.stats.promotions == 0
        assert not session.variants[1].alive
        assert len(session.stats.crashes) == 1

    def test_leader_crash_promotes_follower(self):
        good, buggy = self.make_apps()
        session, world = run_session(
            [VersionSpec("buggy", buggy), VersionSpec("good", good)],
            files={"/tmp/f": b"precious", "/tmp/out": b""})
        assert session.stats.promotions == 1
        assert session.variants[1].is_leader
        assert result_of(session.variants[1]) == b"precious"
        # The promoted leader completed the write for real.
        inode = world.kernel.fs(world.server).lookup("/tmp/out")
        assert bytes(inode.data) == b"precious"

    def test_smallest_id_follower_elected(self):
        good, buggy = self.make_apps()
        session, _ = run_session(
            [VersionSpec("buggy", buggy), VersionSpec("g1", good),
             VersionSpec("g2", good)],
            files={"/tmp/f": b"x", "/tmp/out": b""})
        assert session.variants[1].is_leader
        assert not session.variants[2].is_leader
        assert session.variants[2].alive

    def test_surviving_follower_still_replays_after_promotion(self):
        good, buggy = self.make_apps()
        session, _ = run_session(
            [VersionSpec("buggy", buggy), VersionSpec("g1", good),
             VersionSpec("g2", good)],
            files={"/tmp/f": b"x", "/tmp/out": b""})
        assert result_of(session.variants[1]) == b"x"
        assert result_of(session.variants[2]) == b"x"


class TestDivergence:
    def test_unfiltered_divergence_kills_follower(self):
        def leader(ctx):
            yield from ctx.time()
            return "leader"

        def rogue(ctx):
            yield from ctx.getuid()  # different syscall
            return "rogue"

        session, _ = run_session(
            [VersionSpec("l", leader), VersionSpec("r", rogue)])
        assert result_of(session.variants[0]) == "leader"
        assert not session.variants[1].alive
        assert session.stats.fatal_divergences

    def test_listing1_allows_added_calls(self):
        def rev2435(ctx):
            a = yield from ctx.geteuid()
            b = yield from ctx.getegid()
            fd = yield from ctx.open("/dev/null")
            yield from ctx.close(fd)
            return (a, b)

        def rev2436(ctx):
            a = yield from ctx.geteuid()
            yield from ctx.getuid()
            b = yield from ctx.getegid()
            yield from ctx.getgid()
            fd = yield from ctx.open("/dev/null")
            yield from ctx.close(fd)
            return (a, b)

        rules = RewriteRules([assemble_bpf(LISTING_1)])
        session, _ = run_session(
            [VersionSpec("2435", rev2435), VersionSpec("2436", rev2436)],
            rules=rules)
        assert result_of(session.variants[0]) == \
            result_of(session.variants[1])
        assert session.stats.divergences == 2
        assert session.stats.divergences_allowed == 2
        assert session.variants[1].alive

    def test_skip_rule_tolerates_leader_extra_calls(self):
        # Leader (newer rev) issues getuid/getgid the follower lacks.
        def newer(ctx):
            yield from ctx.geteuid()
            yield from ctx.getuid()
            yield from ctx.getegid()
            yield from ctx.getgid()
            fd = yield from ctx.open("/dev/null")
            yield from ctx.close(fd)
            return "newer"

        def older(ctx):
            yield from ctx.geteuid()
            yield from ctx.getegid()
            fd = yield from ctx.open("/dev/null")
            yield from ctx.close(fd)
            return "older"

        skip_rule = assemble_bpf(
            f"""
            ld event[0]
            jeq #{SYSCALL_NUMBERS['getuid']}, skip
            jeq #{SYSCALL_NUMBERS['getgid']}, skip
            ret #0
            skip: ret #{NVX_RET_SKIP:#x}
            """,
            name="skip-uid-calls")
        session, _ = run_session(
            [VersionSpec("newer", newer), VersionSpec("older", older)],
            rules=RewriteRules([skip_rule]))
        assert result_of(session.variants[1]) == "older"
        assert session.variants[1].alive
        assert session.stats.divergences_skipped == 2


class TestThreadsAndForks:
    def test_thread_tids_virtualised(self):
        def app(ctx):
            def worker(tctx):
                yield from tctx.time()
                return None

            tid = yield from ctx.spawn_thread(worker)
            yield from ctx.nanosleep(10_000_000)
            return tid

        session, _ = run_session(
            [VersionSpec("a", app), VersionSpec("b", app)])
        assert result_of(session.variants[0]) == \
            result_of(session.variants[1])

    def test_fork_creates_tuple_with_own_ring(self):
        def app(ctx):
            def child(cctx):
                yield from cctx.time()
                yield from cctx.exit(9)

            pid = yield from ctx.fork(child)
            _, status = yield from ctx.wait4(pid)
            return status

        session, _ = run_session(
            [VersionSpec("a", app), VersionSpec("b", app)])
        assert result_of(session.variants[0]) == 9
        assert result_of(session.variants[1]) == 9
        assert len(session.tuples) == 2
        child_ring = session.tuples[1].ring
        assert child_ring.stats.published == child_ring.stats.consumed

    def test_multithreaded_ordering_enforced(self):
        # Two threads each do distinct syscalls; followers must replay
        # them in the leader's publication order without deadlock.
        def app(ctx):
            seen = []

            def worker(tctx):
                for _ in range(10):
                    t = yield from tctx.time()
                    seen.append(("w", t))
                return None

            yield from ctx.spawn_thread(worker)
            for _ in range(10):
                sec, _usec = yield from ctx.gettimeofday()
                seen.append(("m", sec))
            yield from ctx.nanosleep(50_000_000)
            return len(seen)

        session, _ = run_session(
            [VersionSpec("a", app), VersionSpec("b", app)])
        assert result_of(session.variants[0]) == 20
        assert result_of(session.variants[1]) == 20


class TestSetup:
    def test_setup_costs_charged(self):
        def app(ctx):
            yield from ctx.time()
            return True

        session, world = run_session(
            [VersionSpec("a", app), VersionSpec("b", app)])
        # Setup includes at least two fork()s (zygote + versions).
        assert session.stats.setup_ps > 0
        assert session.ready

    def test_single_version_session_works(self):
        def app(ctx):
            yield from ctx.time()
            return "solo"

        session, _ = run_session([VersionSpec("only", app)])
        assert result_of(session.variants[0]) == "solo"
