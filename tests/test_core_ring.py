"""Unit tests for the ring buffer, pool allocator and event layout."""

import pytest

from repro.core import (
    BUCKET_SIZES,
    DEFAULT_CAPACITY,
    Event,
    RingBuffer,
    SharedMemoryPool,
    syscall_event,
)
from repro.costmodel import DEFAULT_COSTS
from repro.errors import NvxError
from repro.sim import Machine, Simulator


def world():
    sim = Simulator()
    machine = Machine(sim, name="m")
    return sim, machine


def drive(machine, gen, name="driver"):
    return machine.spawn(gen, name=name)


class TestEventLayout:
    def test_event_rejects_too_many_args(self):
        with pytest.raises(NvxError):
            Event("syscall", 1, "write", 0, 1, args=tuple(range(7)))

    def test_six_args_fit_one_cache_line(self):
        event = syscall_event("write", 0, 1, 512, args=(1, 2, 3, 4, 5, 6))
        assert event.args == (1, 2, 3, 4, 5, 6)

    def test_words_view_starts_with_nr(self):
        event = syscall_event("open", 0, 1, 3, args=(7,))
        assert event.words()[0] == 2  # __NR_open
        assert event.words()[1] == 7

    def test_default_ring_capacity_is_paper_value(self):
        assert DEFAULT_CAPACITY == 256

    def test_packed_slot_is_one_cache_line(self):
        from repro.core.events import EVENT_SIZE, pack_event
        event = syscall_event("write", 1, 9, 512, args=(1, 2, 3, 4, 5, 6))
        assert len(pack_event(event)) == EVENT_SIZE

    def test_pack_unpack_roundtrip(self):
        from repro.core.events import pack_event, unpack_event
        event = syscall_event("read", 2, 41, -9, args=(3, 512))
        back = unpack_event(pack_event(event))
        assert back.etype == event.etype
        assert back.nr == event.nr and back.name == "read"
        assert back.tindex == 2 and back.clock == 41
        assert back.retval == -9
        # args travel as raw u64 slots
        assert back.args == (3, 512)

    def test_seal_packs_by_value_fields(self):
        from repro.core.events import pack_event
        from repro.core.ringbuffer import event_seal
        event = syscall_event("close", 0, 7, 0, args=(4,))
        seal = event_seal(event)
        assert seal[0] == pack_event(event)
        event.retval ^= 0x5A5A  # the injector's slot-corruption flip
        assert event_seal(event) != seal

    def test_seal_falls_back_for_non_slot_args(self):
        # Simulation-level events may carry string args (paths); those
        # cannot ride the fixed slot layout and seal as a field tuple.
        from repro.core.ringbuffer import event_seal
        event = syscall_event("open", 0, 3, 4, args=("/tmp/f", 0))
        seal = event_seal(event)
        assert isinstance(seal[0], tuple) and "/tmp/f" in seal[0][-1]
        event.retval = 5
        assert event_seal(event) != seal


class TestRingBuffer:
    def test_publish_then_consume(self):
        sim, machine = world()
        ring = RingBuffer(sim, DEFAULT_COSTS, capacity=8)
        ring.add_consumer(1)
        got = {}

        def producer():
            for i in range(5):
                yield from ring.publish(
                    syscall_event("close", 0, i + 1, 0))

        def consumer():
            events = []
            for _ in range(5):
                while ring.peek(1) is None:
                    yield from ring.wait_published(
                        False, lambda: ring.peek(1) is not None)
                events.append(ring.peek(1))
                ring.advance(1)
            got["events"] = events

        drive(machine, producer())
        drive(machine, consumer())
        sim.run()
        assert [e.clock for e in got["events"]] == [1, 2, 3, 4, 5]
        assert ring.stats.published == 5 and ring.stats.consumed == 5

    def test_backpressure_stalls_producer(self):
        sim, machine = world()
        ring = RingBuffer(sim, DEFAULT_COSTS, capacity=4)
        ring.add_consumer(1)
        progress = {}

        def producer():
            for i in range(10):
                yield from ring.publish(syscall_event("close", 0, i + 1, 0))
            progress["done_at"] = sim.now

        def slow_consumer():
            from repro.sim.core import Sleep

            for _ in range(10):
                yield Sleep(1_000_000)  # 1 µs per event
                while ring.peek(1) is None:
                    yield from ring.wait_published(
                        False, lambda: ring.peek(1) is not None)
                ring.advance(1)

        drive(machine, producer())
        drive(machine, slow_consumer())
        sim.run()
        assert ring.stats.producer_stalls > 0
        # Producer cannot finish before the consumer frees slots.
        assert progress["done_at"] >= 5 * 1_000_000

    def test_multiple_consumers_each_see_every_event(self):
        sim, machine = world()
        ring = RingBuffer(sim, DEFAULT_COSTS, capacity=8)
        seen = {1: [], 2: [], 3: []}
        for vid in seen:
            ring.add_consumer(vid)

        def producer():
            for i in range(6):
                yield from ring.publish(syscall_event("write", 0, i + 1, i))

        def consumer(vid):
            for _ in range(6):
                while ring.peek(vid) is None:
                    yield from ring.wait_published(
                        False, lambda: ring.peek(vid) is not None)
                seen[vid].append(ring.peek(vid).retval)
                ring.advance(vid)

        drive(machine, producer())
        for vid in seen:
            drive(machine, consumer(vid), name=f"c{vid}")
        sim.run()
        assert seen[1] == seen[2] == seen[3] == list(range(6))

    def test_remove_consumer_unblocks_producer(self):
        sim, machine = world()
        ring = RingBuffer(sim, DEFAULT_COSTS, capacity=2)
        ring.add_consumer(1)
        done = {}

        def producer():
            for i in range(6):
                yield from ring.publish(syscall_event("close", 0, i + 1, 0))
            done["ok"] = True

        def dropper():
            from repro.sim.core import Sleep

            yield Sleep(10_000_000)
            ring.remove_consumer(1)

        drive(machine, producer())
        drive(machine, dropper())
        sim.run()
        assert done.get("ok")

    def test_lag_accounting(self):
        sim, machine = world()
        ring = RingBuffer(sim, DEFAULT_COSTS, capacity=16)
        ring.add_consumer(1)

        def producer():
            for i in range(4):
                yield from ring.publish(syscall_event("close", 0, i + 1, 0))

        drive(machine, producer())
        sim.run()
        assert ring.lag_of(1) == 4
        ring.advance(1)
        assert ring.lag_of(1) == 3

    def test_zero_capacity_rejected(self):
        sim, _ = world()
        with pytest.raises(NvxError):
            RingBuffer(sim, DEFAULT_COSTS, capacity=0)

    def test_advance_by_stranger_rejected(self):
        sim, _ = world()
        ring = RingBuffer(sim, DEFAULT_COSTS)
        with pytest.raises(NvxError):
            ring.advance(99)


class TestSharedMemoryPool:
    def test_bucket_selection(self):
        sim, _ = world()
        pool = SharedMemoryPool(sim, DEFAULT_COSTS)
        assert pool.bucket_for(1).chunk_size == 64
        assert pool.bucket_for(64).chunk_size == 64
        assert pool.bucket_for(65).chunk_size == 128
        assert pool.bucket_for(65536).chunk_size == 65536

    def test_oversized_allocation_rejected(self):
        sim, _ = world()
        pool = SharedMemoryPool(sim, DEFAULT_COSTS)
        with pytest.raises(NvxError):
            pool.bucket_for(65537)

    def test_alloc_copy_consume_roundtrip(self):
        sim, machine = world()
        pool = SharedMemoryPool(sim, DEFAULT_COSTS)
        out = {}

        def main():
            chunk = yield from pool.alloc(b"payload", readers=2)
            first = yield from pool.consume(chunk)
            second = yield from pool.consume(chunk)
            out["reads"] = (first, second)

        drive(machine, main())
        sim.run()
        assert out["reads"] == (b"payload", b"payload")
        assert pool.allocs == 1 and pool.frees == 1

    def test_chunks_recycled_through_free_list(self):
        sim, machine = world()
        pool = SharedMemoryPool(sim, DEFAULT_COSTS)

        def main():
            for _ in range(40):
                chunk = yield from pool.alloc(b"x" * 100, readers=1)
                yield from pool.consume(chunk)

        drive(machine, main())
        sim.run()
        bucket = pool.bucket_for(100)
        # 40 allocations but only one segment's worth of chunks needed.
        assert bucket.segments_allocated == 1
        assert bucket.live_chunks == 0

    def test_live_bytes_tracks_outstanding(self):
        sim, machine = world()
        pool = SharedMemoryPool(sim, DEFAULT_COSTS)
        holder = {}

        def main():
            holder["chunk"] = yield from pool.alloc(b"y" * 1000, readers=1)

        drive(machine, main())
        sim.run()
        assert pool.live_bytes() == 1024

    def test_bucket_sizes_cover_cache_line_to_64k(self):
        assert BUCKET_SIZES[0] == 64
        assert BUCKET_SIZES[-1] == 65536


class TestRingStatsMedian:
    def test_lower_median_on_even_reservoir(self):
        from repro.core.ringbuffer import RingStats

        stats = RingStats()
        for value in (9, 1, 7, 3):
            stats.record_distance(value)
        # Even-length reservoir: the lower of the two middle elements
        # (3, not the 5.0 midpoint) — the EXPERIMENTS.md convention, and
        # always an actually-observed distance.
        assert stats.median_distance() == 3

    def test_odd_reservoir_is_plain_median(self):
        from repro.core.ringbuffer import RingStats

        stats = RingStats()
        for value in (10, 2, 6):
            stats.record_distance(value)
        assert stats.median_distance() == 6

    def test_empty_reservoir(self):
        from repro.core.ringbuffer import RingStats

        assert RingStats().median_distance() == 0
