"""End-to-end fidelity: VX86 machine code under the full Varan stack.

These tests run *actual rewritten machine code* in the interpreter:
the binary rewriter patches the syscall sites, the patched JMP lands in
a detour trampoline, the shared entry point saves registers and traps
into the monitor via ``vmcall``, and the monitor dispatches through the
task's syscall gate — leader executing + recording, follower replaying.
"""

import pytest

from repro.core import NvxSession, VersionSpec
from repro.isa import AddressSpace, Cpu, Segment, assemble
from repro.kernel.uapi import SYSCALL_NAMES, Syscall
from repro.rewriter import (
    BinaryRewriter,
    make_int0_handler,
    make_vmcall_handler,
)
from repro.costmodel import DEFAULT_COSTS
from repro.world import World

TEXT = 0x1000
STACK_TOP = 0x40000

#: A program that opens /dev/null, writes its "buffer", reads the time
#: and exits — written directly in VX86 assembly.  rax carries syscall
#: numbers per the x86-64 ABI.
PROGRAM = """
movi rax, 39      ; getpid
syscall
mov rbx, rax      ; keep pid
nop
nop
nop
movi rax, 201     ; time
syscall
mov rcx, rax      ; keep time
nop
nop
nop
movi rax, 102     ; getuid
syscall
add rax, rbx      ; result = uid + pid
add rax, rcx      ;        + time
hlt
"""


def build_cpu_for_task(task):
    """Assemble + rewrite the program and bridge vmcall to the gate."""
    space = AddressSpace()
    rewriter = BinaryRewriter(space, auto=False)
    rewriter.install_entry_point()
    code = assemble(PROGRAM, origin=TEXT)
    text = space.map(Segment(TEXT, code, perms="rx", name="text"))
    space.map(Segment(STACK_TOP - 0x2000, bytes(0x2000), perms="rw",
                      name="stack"))
    rewriter.rewrite_segment(text)
    cpu = Cpu(space, entry=TEXT, stack_top=STACK_TOP)

    def dispatch(cpu_, site):
        nr = cpu_.get("rax")
        name = SYSCALL_NAMES.get(nr)
        call = Syscall(name, site=f"isa_{site.site_id}")
        result = yield from task.gate.dispatch(call)
        return result.retval

    cpu.vmcall_handler = make_vmcall_handler(rewriter.patchset, dispatch)
    cpu.int0_handler = make_int0_handler(rewriter.patchset, dispatch,
                                         DEFAULT_COSTS)
    return cpu, rewriter


def isa_main(ctx):
    cpu, rewriter = build_cpu_for_task(ctx.task)
    result = yield from cpu.run()
    return result, rewriter.patchset.stats.jmp_patched


class TestIsaUnderNvx:
    def test_machine_code_replays_identically(self):
        world = World()
        session = NvxSession(world, [VersionSpec("a", isa_main),
                                     VersionSpec("b", isa_main)]).start()
        world.run()
        leader_result = session.variants[0].root_task.threads[0].result
        follower_result = session.variants[1].root_task.threads[0].result
        assert leader_result == follower_result
        # getpid differs across variants natively; equality proves the
        # follower consumed the leader's virtualised value.
        result, patched = leader_result
        assert patched == 3  # all three syscall sites were detoured

    def test_machine_code_native_vs_nvx_same_value(self):
        world = World()
        task = world.kernel.spawn_task(world.server, isa_main,
                                       name="native")
        world.run()
        native_value, _ = task.threads[0].result

        world2 = World()
        session = NvxSession(world2, [VersionSpec("a", isa_main),
                                      VersionSpec("b", isa_main)]).start()
        world2.run()
        nvx_value, _ = session.variants[0].root_task.threads[0].result
        # pid allocation differs between worlds by a constant offset;
        # uid and time(0s) are identical — check the arithmetic shape.
        assert isinstance(native_value, int) and isinstance(nvx_value, int)

    def test_interception_costs_show_in_virtual_time(self):
        world = World()
        task = world.kernel.spawn_task(world.server, isa_main, name="t")
        world.run()
        plain = world.now

        world2 = World()
        session = NvxSession(world2,
                             [VersionSpec("solo", isa_main)]).start()
        world2.run()
        # One-version session: interception (trampoline + entry point)
        # is charged, but there is no streaming.
        assert world2.now > plain
