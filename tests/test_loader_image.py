"""Tests for image building and the loader's rewrite pipeline."""

import pytest

from repro.errors import RewriteError
from repro.rewriter.patchset import KIND_INT, KIND_JMP, KIND_VDSO
from repro.runtime.image import SiteSpec, build_image, image_for_syscalls
from repro.runtime.loader import load_image


class TestImageBuilder:
    def test_patchable_site_gets_jmp(self):
        image = build_image("t", [SiteSpec("a", "close")])
        loaded = load_image(image)
        assert loaded.patch_kinds == {"a": KIND_JMP}

    def test_forced_int_site(self):
        image = build_image("t", [SiteSpec("a", "close", force_int=True)])
        loaded = load_image(image)
        assert loaded.patch_kinds == {"a": KIND_INT}

    def test_vdso_site(self):
        image = build_image("t", [SiteSpec("a", vdso="time")])
        loaded = load_image(image)
        assert loaded.patch_kinds == {"a": KIND_VDSO}

    def test_mixed_sites(self):
        image = build_image("t", [
            SiteSpec("fast", "read"),
            SiteSpec("slow", "write", force_int=True),
            SiteSpec("clock", vdso="gettimeofday"),
        ])
        loaded = load_image(image)
        assert loaded.patch_kinds == {"fast": KIND_JMP,
                                      "slow": KIND_INT,
                                      "clock": KIND_VDSO}

    def test_unknown_vdso_symbol_rejected(self):
        with pytest.raises(RewriteError):
            build_image("t", [SiteSpec("a", vdso="nonesuch")])

    def test_image_for_syscalls_helper(self):
        image = image_for_syscalls("t", ["read", "write", "time"])
        loaded = load_image(image)
        assert loaded.patch_kinds["time"] == KIND_VDSO
        assert loaded.patch_kinds["read"] == KIND_JMP


class TestLoader:
    def test_vdso_base_randomised_by_seed(self):
        image = build_image("t", [SiteSpec("a", vdso="time")])
        first = load_image(image, seed=1)
        second = load_image(image, seed=2)
        assert first.vdso_symbols["time"] != second.vdso_symbols["time"]

    def test_wx_discipline_in_loaded_space(self):
        image = image_for_syscalls("t", ["read", "write"])
        loaded = load_image(image)
        for segment in loaded.space.segments:
            assert not ("w" in segment.perms and "x" in segment.perms)

    def test_rewrite_stats_populated(self):
        image = image_for_syscalls("t", ["read", "write", "open"])
        loaded = load_image(image)
        stats = loaded.rewriter.patchset.stats
        assert stats.sites_found == 3
        assert stats.jmp_patched == 3
        assert stats.vdso_patched == len(loaded.vdso_symbols)

    def test_text_is_decodable_after_patching(self):
        from repro.isa.disassembler import disassemble

        image = image_for_syscalls("t", ["read", "write", "close"])
        loaded = load_image(image)
        text = loaded.space.find_by_name("text")
        insns = disassemble(bytes(text.data), base_addr=text.start)
        assert all(i.mnemonic != "syscall" for i in insns)

    def test_site_addresses_reported(self):
        image = build_image("t", [SiteSpec("a", "close"),
                                  SiteSpec("b", "read")])
        loaded = load_image(image)
        assert set(loaded.site_addrs) == {"a", "b"}
        assert loaded.site_addrs["a"] != loaded.site_addrs["b"]
