"""Tests for the simulated sanitizers and live sanitization (§5.3)."""

import pytest

from repro.core import NvxSession, VersionSpec
from repro.sanitizers import (
    ASAN,
    MSAN,
    TSAN,
    SanitizerAbort,
    SimHeap,
    sanitized_spec,
)
from repro.sanitizers.build import SanitizedContext
from repro.world import World


def run_sanitized(body, sanitizer=ASAN, halt=False):
    """Run ``body(ctx, heap)`` under a sanitized context; returns
    (reports, thread)."""
    world = World()
    reports = []

    def main(ctx):
        instrumented = SanitizedContext(ctx.task, sanitizer, reports,
                                        halt_on_error=halt)
        heap = SimHeap(instrumented)
        result = yield from body(instrumented, heap)
        return result

    task = world.spawn(main, name="sanitized")
    world.run()
    return reports, task.threads[0]


class TestAsan:
    def test_clean_code_produces_no_reports(self):
        def body(ctx, heap):
            addr = yield from heap.malloc(64)
            yield from heap.store(addr, 8)
            value = yield from heap.load(addr, 8)
            yield from heap.free(addr)
            return value

        reports, thread = run_sanitized(body)
        assert reports == [] and thread.exception is None

    def test_use_after_free_detected(self):
        def body(ctx, heap):
            addr = yield from heap.malloc(32)
            yield from heap.free(addr)
            yield from heap.load(addr)
            return None

        reports, _ = run_sanitized(body)
        assert [r.kind for r in reports] == ["heap-use-after-free"]

    def test_buffer_overflow_detected(self):
        def body(ctx, heap):
            addr = yield from heap.malloc(8)
            yield from heap.store(addr + 4, 8)  # crosses the end
            return None

        reports, _ = run_sanitized(body)
        assert "heap-buffer-overflow" in [r.kind for r in reports]

    def test_double_free_detected(self):
        def body(ctx, heap):
            addr = yield from heap.malloc(8)
            yield from heap.free(addr)
            yield from heap.free(addr)
            return None

        reports, _ = run_sanitized(body)
        assert "double-free" in [r.kind for r in reports]

    def test_halt_on_error_aborts(self):
        def body(ctx, heap):
            addr = yield from heap.malloc(8)
            yield from heap.free(addr)
            yield from heap.load(addr)
            return "survived"

        reports, thread = run_sanitized(body, halt=True)
        assert isinstance(thread.exception, SanitizerAbort)

    def test_unsanitized_heap_never_reports(self):
        world = World()

        def main(ctx):
            heap = SimHeap(ctx)  # plain build: no checks
            addr = yield from heap.malloc(8)
            yield from heap.free(addr)
            yield from heap.load(addr)
            return heap.reports

        task = world.spawn(main, name="plain")
        world.run()
        assert task.threads[0].result == []


class TestMsanTsan:
    def test_uninitialized_read_detected_by_msan(self):
        def body(ctx, heap):
            addr = yield from heap.malloc(16)
            yield from heap.load(addr)  # never written
            return None

        reports, _ = run_sanitized(body, sanitizer=MSAN)
        assert "uninitialized-read" in [r.kind for r in reports]

    def test_msan_misses_use_after_free(self):
        def body(ctx, heap):
            addr = yield from heap.malloc(8)
            yield from heap.store(addr)
            yield from heap.free(addr)
            yield from heap.load(addr)
            return None

        reports, _ = run_sanitized(body, sanitizer=MSAN)
        assert "heap-use-after-free" not in [r.kind for r in reports]

    def test_incompatibility_matrix(self):
        assert not ASAN.compatible_with(MSAN)
        assert not MSAN.compatible_with(TSAN)
        assert ASAN.compatible_with(ASAN)


class TestSlowdown:
    def test_sanitized_compute_is_slower(self):
        def make_main(sanitizer):
            def main(ctx):
                if sanitizer is not None:
                    ctx = SanitizedContext(ctx.task, sanitizer, [])
                yield from ctx.compute(1_000_000)
                return True

            return main

        world_a = World()
        world_a.spawn(make_main(None), name="plain")
        world_a.run()
        plain = world_a.now

        world_b = World()
        world_b.spawn(make_main(ASAN), name="asan")
        world_b.run()
        assert abs(world_b.now - 2 * plain) < plain * 0.01

    def test_live_sanitization_leader_unaffected(self):
        from repro.apps import ServerStats, make_redis

        def run_once(with_asan):
            world = World()
            reports = []
            specs = [VersionSpec("plain",
                                 make_redis(stats=ServerStats(),
                                            background_thread=False))]
            if with_asan:
                specs.append(sanitized_spec(
                    "redis", make_redis(stats=ServerStats(),
                                        background_thread=False),
                    ASAN, reports))
            else:
                specs.append(VersionSpec(
                    "plain2", make_redis(stats=ServerStats(),
                                         background_thread=False)))
            NvxSession(world, specs, daemon=True).start()

            from repro.clients import make_redis_benchmark

            mains, report = make_redis_benchmark(clients=5, requests=100,
                                                 scale=1.0)
            for main in mains:
                world.kernel.spawn_task(world.client, main, name="cli")
            world.run(until_ps=20_000_000_000_000)
            return report.throughput_rps

        baseline = run_once(False)
        sanitized = run_once(True)
        assert sanitized > 0.9 * baseline  # "no additional slowdown"
