"""Hypothesis properties for the BPF layer the rule synthesizer leans on.

The synthesis loop (``repro.fuzz.synthesis``) is only sound if two
things hold unconditionally:

* every rule it can emit passes ``bpf/verifier.py`` — synthesis must
  never hand the monitor an unverifiable program;
* a verified program never crashes ``bpf/interpreter.py``, whatever
  divergence payload (follower nr/args × leader event words) it is
  evaluated against — byzantine inputs may only change the *verdict*,
  never raise.

Hypothesis drives both over the full input space rather than the
handful of divergences the fuzzer happens to find.
"""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bpf.assembler import assemble_bpf
from repro.bpf.rules import (
    ACTION_ALLOW,
    ACTION_KILL,
    ACTION_SKIP,
    RewriteRules,
)
from repro.bpf.verifier import verify
from repro.fuzz.synthesis import synthesize_candidates
from repro.kernel.uapi import SYSCALL_NUMBERS

_SETTINGS = settings(max_examples=200, deadline=None, derandomize=True)

_names = st.sampled_from(sorted(SYSCALL_NUMBERS))
_u32 = st.integers(min_value=0, max_value=2**32 - 1)
_u64 = st.integers(min_value=0, max_value=2**64 - 1)
_nr = st.integers(min_value=-1, max_value=2**31 - 1)
_args = st.lists(_u64, min_size=0, max_size=6)
_event_words = st.lists(_u32, min_size=0, max_size=8)


class TestSynthesizedRulesAlwaysVerify:
    @_SETTINGS
    @given(call=_names, event=_names)
    def test_candidates_verify_and_are_total(self, call, event):
        """Every candidate the synthesizer can emit re-verifies from
        source and covers both rule directions."""
        candidates = synthesize_candidates(call, event)
        assert len(candidates) == 2
        assert [c.action for c in candidates] == ["allow", "skip"]
        for candidate in candidates:
            program = candidate.program()  # assembles → verifies
            verify(program.insns)          # and explicitly again

    @_SETTINGS
    @given(call=_names, event=_names, nr=_nr, args=_args,
           words=_event_words)
    def test_candidate_verdicts_are_exact(self, call, event, nr, args,
                                          words):
        """A synthesized rule fires exactly on its target divergence:
        the ALLOW rule keys on the follower's call nr, the SKIP rule on
        the leader's event word 0 — anything else stays KILL."""
        allow, skip = synthesize_candidates(call, event)
        rules = RewriteRules([allow.program()])
        verdict = rules.evaluate(nr, args, words)
        assert verdict == (ACTION_ALLOW if nr == SYSCALL_NUMBERS[call]
                           else ACTION_KILL)
        rules = RewriteRules([skip.program()])
        verdict = rules.evaluate(nr, args, words)
        expected = (ACTION_SKIP
                    if words and words[0] == SYSCALL_NUMBERS[event]
                    else ACTION_KILL)
        assert verdict == expected


@st.composite
def _random_verified_program(draw):
    """A random straight-line filter through the real assembler: loads
    from seccomp_data or the event view, optional jeq, a RET — the
    grammar synthesis and operators actually write."""
    lines = []
    source = draw(st.sampled_from(["data", "event"]))
    if source == "data":
        offset = draw(st.integers(min_value=0, max_value=7)) * 8
        lines.append(f"ld [{offset}]")
    else:
        lines.append(f"ld event[{draw(st.integers(0, 7))}]")
    if draw(st.booleans()):
        k = draw(_u32)
        lines.append(f"jeq #{k}, hit")
        lines.append("ret #0")
        lines.append(f"hit: ret #{draw(st.sampled_from([0, 0x7fff0000, 0x7ffe0000]))}")
    else:
        lines.append(f"ret #{draw(st.sampled_from([0, 0x7fff0000, 0x7ffe0000]))}")
    return "\n".join(lines) + "\n"


class TestVerifiedRulesNeverCrash:
    @_SETTINGS
    @given(source=_random_verified_program(), nr=_nr, args=_args,
           words=_event_words)
    def test_interpreter_total_on_random_payloads(self, source, nr,
                                                  args, words):
        """A verified program evaluated against arbitrary divergence
        payloads returns a verdict — never raises."""
        program = assemble_bpf(source, name="prop")
        rules = RewriteRules([program])
        verdict = rules.evaluate(nr, args, words)
        assert verdict in (ACTION_ALLOW, ACTION_SKIP, ACTION_KILL)

    @_SETTINGS
    @given(call=_names, event=_names, nr=_nr, args=_args,
           words=_event_words)
    def test_synthesized_rules_total_on_random_payloads(
            self, call, event, nr, args, words):
        """Both synthesized candidates together: still total."""
        candidates = synthesize_candidates(call, event)
        rules = RewriteRules([c.program() for c in candidates])
        verdict = rules.evaluate(nr, args, words)
        assert verdict in (ACTION_ALLOW, ACTION_SKIP, ACTION_KILL)
