"""Property-based tests (hypothesis) on core data structures."""

from hypothesis import given, settings, strategies as st

from repro.bpf import assemble_bpf, pack_seccomp_data
from repro.core.events import Event, syscall_event
from repro.core.ringbuffer import RingBuffer
from repro.core.shm import BUCKET_SIZES, SharedMemoryPool
from repro.costmodel import DEFAULT_COSTS
from repro.isa import assemble, disassemble
from repro.recordreplay.logfile import decode_records, encode_event
from repro.sim import Machine, Simulator


# -- VX86 assembler/disassembler roundtrip -----------------------------------

_REGS = st.sampled_from(["rax", "rbx", "rcx", "rdx", "rsi", "rdi",
                         "r8", "r9", "r10", "r11"])
_IMM32 = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)
_IMM64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)


@st.composite
def _instruction(draw):
    choice = draw(st.integers(0, 6))
    if choice == 0:
        return f"movi {draw(_REGS)}, {draw(_IMM64)}"
    if choice == 1:
        return f"addi {draw(_REGS)}, {draw(_IMM32)}"
    if choice == 2:
        return f"mov {draw(_REGS)}, {draw(_REGS)}"
    if choice == 3:
        return "nop"
    if choice == 4:
        return "syscall"
    if choice == 5:
        return f"cmpi {draw(_REGS)}, {draw(_IMM32)}"
    return f"push {draw(_REGS)}"


class TestIsaRoundtrip:
    @given(st.lists(_instruction(), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_assemble_disassemble_identity(self, lines):
        source = "\n".join(lines)
        code = assemble(source)
        insns = disassemble(code)
        assert len(insns) == len(lines)
        assert sum(i.length for i in insns) == len(code)

    @given(st.lists(_instruction(), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_reassembling_disassembly_is_stable(self, lines):
        code = assemble("\n".join(lines))
        rendered = []
        for insn in disassemble(code):
            text = str(insn).split(": ", 1)[1]
            rendered.append(text)
        assert assemble("\n".join(rendered)) == code


# -- shared-memory pool invariants ---------------------------------------------


class TestPoolInvariants:
    @given(st.lists(st.integers(min_value=1, max_value=65536),
                    min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_alloc_consume_conserves_chunks(self, sizes):
        sim = Simulator()
        machine = Machine(sim, name="m")
        pool = SharedMemoryPool(sim, DEFAULT_COSTS)

        def main():
            for size in sizes:
                chunk = yield from pool.alloc(b"x" * size, readers=1)
                data = yield from pool.consume(chunk)
                assert len(data) == size

        machine.spawn(main(), name="p")
        sim.run()
        assert pool.allocs == pool.frees == len(sizes)
        assert pool.live_bytes() == 0

    @given(st.integers(min_value=1, max_value=65536))
    @settings(max_examples=60, deadline=None)
    def test_bucket_always_fits(self, size):
        sim = Simulator()
        pool = SharedMemoryPool(sim, DEFAULT_COSTS)
        bucket = pool.bucket_for(size)
        assert bucket.chunk_size >= size
        assert bucket.chunk_size in BUCKET_SIZES


# -- ring buffer FIFO invariant ---------------------------------------------------


class TestRingInvariants:
    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=1, max_value=100),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_every_consumer_sees_fifo_order(self, capacity, count,
                                            consumers):
        sim = Simulator()
        machine = Machine(sim, name="m")
        ring = RingBuffer(sim, DEFAULT_COSTS, capacity=capacity)
        seen = {vid: [] for vid in range(1, consumers + 1)}
        for vid in seen:
            ring.add_consumer(vid)

        def producer():
            for i in range(count):
                yield from ring.publish(
                    syscall_event("close", 0, i + 1, i))

        def consumer(vid):
            for _ in range(count):
                while ring.peek(vid) is None:
                    yield from ring.wait_published(
                        False, lambda: ring.peek(vid) is not None)
                seen[vid].append(ring.peek(vid).retval)
                ring.advance(vid)

        machine.spawn(producer(), name="prod")
        for vid in seen:
            machine.spawn(consumer(vid), name=f"c{vid}")
        sim.run()
        for vid in seen:
            assert seen[vid] == list(range(count))


# -- record-replay log roundtrip ---------------------------------------------------

_EVENT = st.builds(
    syscall_event,
    name=st.sampled_from(["read", "write", "open", "close", "accept"]),
    tindex=st.integers(0, 5),
    clock=st.integers(1, 2 ** 32),
    retval=st.integers(-4096, 2 ** 31 - 1),
    args=st.lists(st.integers(0, 2 ** 40), max_size=6).map(tuple),
)


class TestLogRoundtrip:
    @given(st.lists(st.tuples(_EVENT, st.binary(max_size=600)),
                    min_size=1, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_encode_decode_identity(self, items):
        blob = b"".join(encode_event(e, p) for e, p in items)
        decoded = list(decode_records(blob))
        assert len(decoded) == len(items)
        for (orig, payload), (back, back_payload) in zip(items, decoded):
            assert back.name == orig.name
            assert back.clock == orig.clock
            assert back.retval == orig.retval
            assert back.args == orig.args
            assert back_payload == payload


# -- BPF: the verifier accepts whatever the assembler emits -------------------------


class TestBpfProperties:
    @given(st.integers(0, 400), st.integers(0, 400))
    @settings(max_examples=50, deadline=None)
    def test_listing1_style_filter_total(self, follower_nr, leader_nr):
        source = """
        ld event[0]
        jeq #108, getegid
        jeq #2, open
        jmp bad
        getegid:
        ld [0]
        jeq #102, good
        open:
        ld [0]
        jeq #104, good
        bad: ret #0
        good: ret #0x7fff0000
        """
        program = assemble_bpf(source)
        verdict = program.run(pack_seccomp_data(follower_nr),
                              [leader_nr])
        assert verdict in (0, 0x7FFF0000)
        expected_allow = (leader_nr == 108 and follower_nr == 102) or (
            leader_nr == 2 and follower_nr == 104)
        assert (verdict == 0x7FFF0000) == expected_allow
