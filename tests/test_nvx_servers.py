"""NVX correctness on the real server applications (macro integration)."""

import pytest

from repro.apps import (
    LIGHTTPD,
    ServerStats,
    httpd_image,
    make_beanstalkd,
    make_httpd,
    make_memcached,
    make_nginx,
    make_redis,
    nginx_image,
    redis_image,
)
from repro.clients import (
    make_beanstalkd_benchmark,
    make_memslap,
    make_redis_benchmark,
    make_wrk,
)
from repro.core import NvxSession, VersionSpec
from repro.costmodel import SEC_PS
from repro.world import World


def run_nvx_server(server_factory, client_factory, followers=2,
                   image_factory=None, until_s=25.0):
    world = World()
    world.kernel.fs(world.server).create("/var/www/index.html",
                                         b"n" * 4096)
    specs = [VersionSpec(f"v{i}", server_factory(),
                         image=image_factory() if image_factory else None)
             for i in range(followers + 1)]
    session = NvxSession(world, specs, daemon=True).start()
    mains, report = client_factory()
    for index, main in enumerate(mains):
        world.kernel.spawn_task(world.client, main, name=f"cli{index}")
    world.run(until_ps=int(until_s * SEC_PS))
    return session, report


class TestServersUnderVaran:
    def test_lighttpd_two_followers(self):
        session, report = run_nvx_server(
            lambda: make_httpd(LIGHTTPD, stats=ServerStats()),
            lambda: make_wrk(clients=4, duration_ps=SEC_PS // 100),
            image_factory=lambda: httpd_image(LIGHTTPD))
        assert report.errors == 0 and report.requests > 20
        assert not session.stats.fatal_divergences
        ring = session.root_tuple.ring
        assert ring.stats.consumed == 2 * ring.stats.published

    def test_redis_under_varan_no_divergence(self):
        session, report = run_nvx_server(
            lambda: make_redis(stats=ServerStats()),
            lambda: make_redis_benchmark(clients=4, requests=56,
                                         scale=1.0),
            image_factory=redis_image)
        assert report.errors == 0
        assert not session.stats.fatal_divergences

    def test_beanstalkd_int_sites_patched(self):
        from repro.apps import beanstalkd_image

        session, report = run_nvx_server(
            lambda: make_beanstalkd(stats=ServerStats()),
            lambda: make_beanstalkd_benchmark(workers=3, pushes=10,
                                              scale=1.0),
            followers=1, image_factory=beanstalkd_image)
        assert report.errors == 0
        leader = session.variants[0]
        # The hot read site fell back to INT0 during rewriting.
        assert leader.patch_kinds["srv_read"] == "int"
        assert leader.patch_kinds["srv_write"] == "jmp"

    def test_memcached_multithreaded_replay(self):
        session, report = run_nvx_server(
            lambda: make_memcached(stats=ServerStats()),
            lambda: make_memslap(initial_load=24, executions=24,
                                 concurrency=4, scale=1.0),
            followers=2)
        assert report.errors == 0
        assert not session.stats.fatal_divergences
        # Each variant spun up its worker threads.
        for variant in session.variants:
            assert len(variant.root_task.threads) == 3

    def test_nginx_multiprocess_replay(self):
        session, report = run_nvx_server(
            lambda: make_nginx(port=8080, stats=ServerStats(), workers=2),
            lambda: make_wrk(port=8080, clients=4,
                             duration_ps=SEC_PS // 200),
            followers=1, image_factory=nginx_image)
        assert report.errors == 0 and report.requests > 5
        assert not session.stats.fatal_divergences
        # master tuple + one tuple per worker fork
        assert len(session.tuples) == 3
        # The worker tuples carried the request traffic.
        worker_published = sum(t.ring.stats.published
                               for t in session.tuples[1:])
        assert worker_published > session.tuples[0].ring.stats.published
        # Every variant forked its two workers.
        for variant in session.variants:
            assert len(variant.tasks) == 3
