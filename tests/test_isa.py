"""Unit tests for the VX86 assembler, disassembler and interpreter."""

import pytest

from repro.errors import AssemblyError, DisassemblyError, ExecutionFault
from repro.isa import (
    AddressSpace,
    Cpu,
    Segment,
    assemble,
    branch_targets,
    decode_one,
    disassemble,
)


def make_cpu(source, origin=0x1000, stack=0x8000, extra_segments=()):
    space = AddressSpace()
    code = assemble(source, origin=origin)
    space.map(Segment(origin, code, perms="rx", name="text"))
    space.map(Segment(stack - 0x1000, bytes(0x1000), perms="rw", name="stack"))
    for seg in extra_segments:
        space.map(seg)
    return Cpu(space, entry=origin, stack_top=stack)


class TestAssembler:
    def test_roundtrip_simple(self):
        code = assemble("movi rax, 42\nhlt\n")
        insns = disassemble(code)
        assert [i.mnemonic for i in insns] == ["movi", "hlt"]
        assert insns[0].operands[1] == 42

    def test_labels_and_branches(self):
        code = assemble(
            """
            movi rbx, 3
            loop:
            subi rbx, 1
            jnz loop
            hlt
            """
        )
        insns = disassemble(code)
        jnz = [i for i in insns if i.mnemonic == "jnz"][0]
        assert jnz.branch_target() == insns[1].addr

    def test_origin_affects_absolute_labels(self):
        code = assemble("target:\nmovi rax, target\nhlt", origin=0x4000)
        insns = disassemble(code, base_addr=0x4000)
        assert insns[0].operands[1] == 0x4000

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate rax, 1")

    def test_unknown_register(self):
        with pytest.raises(AssemblyError):
            assemble("movi xyz, 1")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            assemble("a:\na:\nhlt")

    def test_undefined_label(self):
        with pytest.raises(AssemblyError):
            assemble("jmp nowhere")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("movi rax")

    def test_comments_ignored(self):
        code = assemble("nop ; this is a comment\nhlt")
        assert [i.mnemonic for i in disassemble(code)] == ["nop", "hlt"]

    def test_memory_operands(self):
        code = assemble("load rax, [rbx+16]\nstore [rbx-8], rax\nhlt")
        insns = disassemble(code)
        assert insns[0].operands == (0, 1, 16)
        assert insns[1].operands == (0, 1, -8)


class TestDisassembler:
    def test_syscall_is_one_byte(self):
        code = assemble("syscall")
        assert len(code) == 1

    def test_jmp_is_five_bytes(self):
        code = assemble("skip:\njmp skip")
        assert len(code) == 5

    def test_int0_is_one_byte(self):
        assert len(assemble("int0")) == 1

    def test_undecodable_byte(self):
        with pytest.raises(DisassemblyError):
            decode_one(b"\x07", 0)

    def test_truncated_instruction(self):
        with pytest.raises(DisassemblyError):
            disassemble(assemble("movi rax, 1")[:-2])

    def test_branch_targets(self):
        code = assemble(
            """
            start:
            jmp after
            nop
            after:
            jz start
            hlt
            """
        )
        insns = disassemble(code)
        targets = branch_targets(insns)
        assert insns[0].addr in targets  # start
        assert insns[2].addr in targets  # after


class TestInterpreter:
    def test_arithmetic_loop(self):
        cpu = make_cpu(
            """
            movi rax, 0
            movi rbx, 10
            loop:
            addi rax, 7
            subi rbx, 1
            jnz loop
            hlt
            """
        )
        result = cpu.run_sync()
        assert result == 70

    def test_call_and_ret(self):
        cpu = make_cpu(
            """
            call fn
            hlt
            fn:
            movi rax, 99
            ret
            """
        )
        assert cpu.run_sync() == 99

    def test_push_pop(self):
        cpu = make_cpu(
            """
            movi rax, 5
            push rax
            movi rax, 0
            pop rbx
            mov rax, rbx
            hlt
            """
        )
        assert cpu.run_sync() == 5

    def test_pusha_popa_preserve_registers(self):
        cpu = make_cpu(
            """
            movi rcx, 1234
            movi rdx, 5678
            pusha
            movi rcx, 0
            movi rdx, 0
            popa
            mov rax, rcx
            add rax, rdx
            hlt
            """
        )
        assert cpu.run_sync() == 1234 + 5678

    def test_load_store(self):
        data = Segment(0x9000, bytes(64), perms="rw", name="data")
        cpu = make_cpu(
            """
            movi rbx, 0x9000
            movi rax, 777
            store [rbx+8], rax
            movi rax, 0
            load rax, [rbx+8]
            hlt
            """,
            extra_segments=[data],
        )
        assert cpu.run_sync() == 777

    def test_callr_indirect(self):
        cpu = make_cpu(
            """
            movi rbx, fn
            callr rbx
            hlt
            fn:
            movi rax, 31337
            ret
            """
        )
        assert cpu.run_sync() == 31337

    def test_syscall_handler_invoked_with_convention(self):
        seen = {}

        def handler(cpu):
            seen["nr"] = cpu.get("rax")
            seen["arg0"] = cpu.get_signed("rdi")
            return 123
            yield  # pragma: no cover - makes this a generator

        cpu = make_cpu(
            """
            movi rax, 3
            movi rdi, -1
            syscall
            hlt
            """
        )
        cpu.syscall_handler = handler
        assert cpu.run_sync() == 123
        assert seen == {"nr": 3, "arg0": -1}

    def test_missing_handler_faults(self):
        cpu = make_cpu("syscall\nhlt")
        with pytest.raises(ExecutionFault):
            cpu.run_sync()

    def test_execute_from_non_exec_segment_faults(self):
        space = AddressSpace()
        space.map(Segment(0x1000, assemble("hlt"), perms="rw", name="noexec"))
        space.map(Segment(0x7000, bytes(0x1000), perms="rw", name="stack"))
        cpu = Cpu(space, entry=0x1000, stack_top=0x8000)
        with pytest.raises(ExecutionFault):
            cpu.run_sync()

    def test_runaway_detected(self):
        cpu = make_cpu("loop:\njmp loop")
        with pytest.raises(ExecutionFault):
            cpu.run_sync(max_insns=1000)

    def test_cycle_accounting_counts_instructions(self):
        cpu = make_cpu("nop\nnop\nnop\nhlt")
        cpu.run_sync()
        assert cpu.cycles == 4  # 3 nops + hlt, 1 cycle each

    def test_vsys_handler(self):
        def handler(cpu, idx):
            return 1000 + idx
            yield  # pragma: no cover

        cpu = make_cpu("vsys 2\nhlt")
        cpu.vsys_handler = handler
        assert cpu.run_sync() == 1002


class TestAddressSpace:
    def test_overlap_rejected(self):
        space = AddressSpace()
        space.map(Segment(0x1000, bytes(0x100), name="a"))
        with pytest.raises(ExecutionFault):
            space.map(Segment(0x1080, bytes(0x100), name="b"))

    def test_unmapped_access(self):
        space = AddressSpace()
        with pytest.raises(ExecutionFault):
            space.read(0x5000, 1)

    def test_wx_violation_rejected(self):
        space = AddressSpace()
        seg = space.map(Segment(0x1000, bytes(16), perms="rw", name="a"))
        from repro.errors import RewriteError

        with pytest.raises(RewriteError):
            space.mprotect(seg, "rwx")

    def test_exec_hook_fires_on_map_and_mprotect(self):
        space = AddressSpace()
        fired = []
        space.exec_hooks.append(lambda seg: fired.append(seg.name))
        space.map(Segment(0x1000, b"\x90", perms="rx", name="text"))
        seg = space.map(Segment(0x2000, b"\x90", perms="r", name="later"))
        assert fired == ["text"]
        space.mprotect(seg, "rx")
        assert fired == ["text", "later"]

    def test_write_perm_enforced(self):
        space = AddressSpace()
        space.map(Segment(0x1000, bytes(16), perms="r", name="ro"))
        with pytest.raises(ExecutionFault):
            space.write(0x1000, b"x")
