"""Observability stack (repro.obs): trace determinism, Chrome export,
metrics merging across sweep fragments, the SessionConfig shim and the
World session facade."""

import json
import warnings

import pytest

from repro import obs
from repro.core import NvxSession, VersionSpec
from repro.core.config import SessionConfig
import repro.core.config as core_config
from repro.errors import NvxError
from repro.experiments import figure4, runner
from repro.obs import metrics as obs_metrics
from repro.world import World


def _traced_figure4_lines():
    """One tiny figure4 run under a fresh tracer, as JSONL lines."""
    with obs.tracing(obs.Tracer()) as tracer:
        figure4.run(iterations=20, warmup=2)
        return [obs.jsonl_line(rec) for rec in tracer.records], \
            obs.chrome_trace_json(tracer.records)


def _micro_session(tracer=None, **kwargs):
    """Two-version session issuing a handful of syscalls."""

    def app(ctx):
        fd = yield from ctx.open("/tmp/f")
        yield from ctx.read(fd, 8)
        yield from ctx.close(fd)
        return True

    world = World(tracer=tracer)
    world.kernel.fs(world.server).create("/tmp/f", b"payload!")
    specs = [VersionSpec("a", app), VersionSpec("b", app)]
    session = world.nvx(specs, **kwargs).start()
    world.run()
    return session


class TestTraceDeterminism:
    def test_two_runs_same_seed_identical_bytes(self):
        lines_a, chrome_a = _traced_figure4_lines()
        lines_b, chrome_b = _traced_figure4_lines()
        assert lines_a == lines_b
        assert chrome_a == chrome_b
        assert len(lines_a) > 100  # actually traced something

    def test_trace_covers_all_categories(self):
        with obs.tracing() as tracer:
            _micro_session()
        cats = {rec.cat for rec in tracer.records}
        assert {"syscall", "ring", "session"} <= cats

    def test_no_tracer_no_records(self):
        session = _micro_session()
        assert session.tracer is None
        assert session.world.sim.tracer is None


class TestChromeExport:
    def test_valid_trace_event_document(self):
        with obs.tracing() as tracer:
            _micro_session()
        doc = json.loads(obs.chrome_trace_json(tracer.records))
        events = doc["traceEvents"]
        assert events, "no events exported"
        phases = {e["ph"] for e in events}
        assert "M" in phases  # process/thread name metadata
        assert phases & {"X", "i"}
        for event in events:
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        # Instants are thread-scoped; complete events carry a duration.
        for event in events:
            if event["ph"] == "i":
                assert event["s"] == "t"
            if event["ph"] == "X":
                assert "dur" in event

    def test_world_tags_separate_processes(self):
        with obs.tracing() as tracer:
            _micro_session()
        machines = {rec.machine for rec in tracer.records}
        assert any(m.startswith("w0:") for m in machines)

    def test_jsonl_roundtrip(self):
        with obs.tracing() as tracer:
            _micro_session()
        for rec in tracer.records[:50]:
            parsed = json.loads(obs.jsonl_line(rec))
            assert parsed["ts"] == rec.ts
            assert parsed["seq"] == rec.seq


class TestMetrics:
    def test_session_snapshot_counts_ring_traffic(self):
        session = _micro_session()
        snap = session.metrics_snapshot()
        assert snap["counters"]["ring.published"] > 0
        assert (snap["counters"]["ring.consumed"]
                == snap["counters"]["ring.published"])

    def test_merge_snapshots_sums_counters_and_buckets(self):
        a = obs_metrics.MetricsRegistry()
        a.inc("x", 3)
        a.gauge_max("g", 5)
        a.observe("h", 10)
        b = obs_metrics.MetricsRegistry()
        b.inc("x", 4)
        b.gauge_max("g", 2)
        b.observe("h", 100)
        merged = obs_metrics.merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["x"] == 7
        assert merged["gauges"]["g"] == 5
        hist = merged["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["min"] == 10 and hist["max"] == 100

    def test_sweep_metrics_parallel_matches_serial(self):
        points = [("figure6", part,
                   (("follower_counts", (0, 1)), ("scale", 0.002)))
                  for part in ("apache-ab", "thttpd-ab")]
        serial = runner.merge_results(
            points, runner.run_points(points, 1, collect_metrics=True))
        parallel = runner.merge_results(
            points, runner.run_points(points, 2, collect_metrics=True))
        assert serial[0].metrics == parallel[0].metrics
        assert serial[0].metrics["counters"]["ring.published"] > 0

    def test_collection_off_registers_nothing(self):
        _micro_session()
        snap = obs_metrics.drain()
        # No session counters leak in; only the always-present
        # translation-cache, network-transport and fuzz keys appear
        # (and this point ran no guest code after start_collection, so
        # they are deltas over nothing).
        assert all(name.startswith(("tcache.", "net.", "fuzz."))
                   for name in snap["counters"])
        from repro.core.netring import NetStats
        from repro.fuzz.journal import FuzzStats
        from repro.isa.translator import CacheStats
        assert set(snap["counters"]) == (set(CacheStats().as_dict())
                                         | set(NetStats().as_dict())
                                         | set(FuzzStats().as_dict()))
        # The chaining/fusion counters and the superblock length
        # histogram ride along as always-present keys.
        assert "tcache.chain_follows" in snap["counters"]
        assert "tcache.chains_linked" in snap["counters"]
        assert "tcache.chains_broken" in snap["counters"]
        assert "tcache.dispatch_blocks" in snap["counters"]
        assert "tcache.fused_blocks" in snap["counters"]
        assert "tcache.sb_len_p2_0" in snap["counters"]
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}


class TestSessionConfigShim:
    def test_config_fields_applied(self):
        session = _micro_session(config=SessionConfig(ring_capacity=32))
        assert session.ring_capacity == 32
        assert session.root_tuple.ring.capacity == 32

    def test_legacy_kwargs_warn_once_then_stay_quiet(self):
        core_config._legacy_warned = False
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _micro_session(ring_capacity=64)
            _micro_session(ring_capacity=64)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "SessionConfig" in str(deprecations[0].message)

    def test_legacy_kwargs_still_take_effect(self):
        session = _micro_session(ring_capacity=16)
        assert session.ring_capacity == 16

    def test_unknown_kwarg_raises_type_error(self):
        with pytest.raises(TypeError, match="bogus"):
            _micro_session(bogus=1)

    def test_config_must_be_session_config(self):
        world = World()
        with pytest.raises(NvxError, match="SessionConfig"):
            NvxSession(world, [VersionSpec("a", lambda ctx: iter(()))],
                       config={"daemon": True})


class TestWorldFacade:
    def test_missing_machine_raises_named_error(self):
        world = World(machine_names=("primary", "backup"))
        with pytest.raises(NvxError) as excinfo:
            world.machine("server")
        message = str(excinfo.value)
        assert "'server'" in message
        assert "backup" in message and "primary" in message
        with pytest.raises(NvxError):
            _ = world.server

    def test_factories_build_matching_sessions(self):
        from repro.nvx.lockstep import LockstepSession
        from repro.nvx.scribe import ScribeSession

        def app(ctx):
            yield from ctx.time()
            return True

        world = World()
        specs = [VersionSpec("a", app), VersionSpec("b", app)]
        assert isinstance(world.nvx(specs), NvxSession)
        assert isinstance(world.lockstep(specs), LockstepSession)
        assert isinstance(world.scribe(specs), ScribeSession)
