"""Distributed NVX integration: remote followers over the networked
transport, cross-machine failover under whole-machine crash and
partition, and the transport-equivalence property — a session on the
local shared-memory ring and one on the networked ring with all network
costs zeroed must produce identical divergence outcomes and final
application state for any seed."""

import random
from dataclasses import replace

import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import VersionSpec, net_transport
from repro.core.config import SessionConfig
from repro.costmodel import DEFAULT_COSTS, NetworkSpec, US_PS
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import (
    CRASH,
    MACHINE_CRASH,
    PARTITION,
    Fault,
    FaultPlan,
)
from repro.kernel.uapi import O_CREAT, O_WRONLY
from repro.world import World

MACHINES = ("server", "client", "replica1", "replica2")
DATA = bytes((i * 37) & 0xFF for i in range(2048))

#: Network costs zeroed: frames and acks still flow through the full
#: NetRing protocol, they just take no virtual time — so any outcome
#: difference against the local transport is a protocol bug, not flow
#: control timing.
ZERO_COST = replace(
    DEFAULT_COSTS,
    network=NetworkSpec(latency_ps=0, ps_per_byte=0),
    stream=replace(DEFAULT_COSTS.stream, net_pack_event=0,
                   net_compress_per_byte=0.0))


def make_world(costs=DEFAULT_COSTS):
    world = World(costs=costs, machine_names=MACHINES)
    for name in ("server", "replica1", "replica2"):
        world.kernel.fs(world.machine(name)).create("/d/data", DATA)
    return world


def workload_from_seed(seed: int):
    """A deterministic pread/write mix drawn from the seed.

    Digests only syscall data and deterministic retvals — never
    wall-clock-like values — so a legitimate failover (or zero-cost
    network timing skew) cannot change the expected output.
    """
    rng = random.Random(seed)
    reads = [(rng.randrange(0, len(DATA) - 64), rng.randint(1, 64))
             for _ in range(rng.randint(3, 7))]
    writes = [bytes([rng.randrange(256)]) * rng.randint(1, 48)
              for _ in range(rng.randint(1, 4))]

    def main(ctx):
        parts = []
        fd = yield from ctx.open("/d/data")
        out = yield from ctx.open("/d/out", O_WRONLY | O_CREAT)
        for (off, size), chunk in zip(reads, writes * 8):
            parts.append((yield from ctx.pread(fd, size, off)))
            parts.append((yield from ctx.write(out, chunk)))
            parts.append((yield from ctx.getuid()))
        yield from ctx.close(out)
        yield from ctx.close(fd)
        return tuple(parts)

    return main


def run_session(n_variants, placement=None, transport=None, plan=None,
                costs=DEFAULT_COSTS, seed=1, capacity=16):
    world = make_world(costs)
    main = workload_from_seed(seed)
    specs = [VersionSpec(f"v{i}", main) for i in range(n_variants)]
    checker = InvariantChecker(roundtrip_every=1)
    config = SessionConfig(placement=placement, transport=transport,
                           fault_plan=plan, invariants=checker,
                           ring_capacity=capacity)
    session = world.nvx(specs, config=config).start()
    world.run()
    checker.final_check()
    return session, world, checker


def outcome_of(session, checker):
    """The transport-independent outcome summary of one session."""
    survivors = {}
    for variant in session.variants:
        if not variant.alive:
            continue
        thread = variant.root_task.threads[0]
        survivors[variant.vid] = (thread.exception is None, thread.result)
    return {
        "survivors": survivors,
        "promotions": session.stats.promotions,
        "crashes": len(session.stats.crashes),
        "divergences": session.stats.divergences,
        "violations": tuple(checker.violations),
    }


REMOTE_MAP = {1: "replica1", 2: "replica2"}


class TestRemoteFailover:
    def horizon(self):
        session, world, _ = run_session(3, placement=REMOTE_MAP)
        assert all(v.alive for v in session.variants)
        return world.sim.now

    def test_whole_machine_crash_promotes_remote_follower(self):
        plan = FaultPlan((Fault(MACHINE_CRASH, machine="server",
                                at_ps=int(self.horizon() * 0.6)),))
        session, world, checker = run_session(3, placement=REMOTE_MAP,
                                              plan=plan)
        assert session.stats.promotions == 1
        assert session.leader.machine.name in ("replica1", "replica2")
        assert not session.variants[0].alive
        assert checker.violations == []
        # No event lost: both survivors completed with the full result.
        expected = run_session(1)[0].variants[0].root_task.threads[0].result
        for variant in session.variants[1:]:
            thread = variant.root_task.threads[0]
            assert thread.exception is None
            assert thread.result == expected

    def test_dead_machine_never_wins_reelection(self):
        # Crash the leader's machine, then the promoted leader: the
        # second election must skip the dead server machine.
        horizon = self.horizon()
        plan = FaultPlan((
            Fault(MACHINE_CRASH, machine="server",
                  at_ps=int(horizon * 0.5)),
            Fault(CRASH, variant=1, at_ps=int(horizon * 2) + 1),
        ))
        session, world, checker = run_session(3, placement=REMOTE_MAP,
                                              plan=plan)
        assert "server" in session.dead_machines
        for variant in session.variants:
            if variant.alive:
                assert variant.machine.name != "server"

    def test_partition_delays_but_never_loses_events(self):
        horizon = self.horizon()
        plan = FaultPlan((Fault(PARTITION, at_ps=int(horizon * 0.3),
                                duration_ps=int(horizon * 0.5)),))
        session, world, checker = run_session(3, placement=REMOTE_MAP,
                                              plan=plan)
        assert all(v.alive for v in session.variants)
        assert checker.violations == []
        results = {v.root_task.threads[0].result
                   for v in session.variants}
        assert len(results) == 1
        assert session.injector.network_faults.messages_held > 0
        # The partition stretched the run past the fault-free horizon.
        assert world.sim.now > horizon

    def test_machine_crash_plus_partition_together(self):
        horizon = self.horizon()
        plan = FaultPlan((
            Fault(MACHINE_CRASH, machine="server",
                  at_ps=int(horizon * 0.55)),
            Fault(PARTITION, at_ps=int(horizon * 0.2),
                  duration_ps=int(horizon * 0.3)),
        ))
        session, world, checker = run_session(3, placement=REMOTE_MAP,
                                              plan=plan)
        assert session.stats.promotions == 1
        assert checker.violations == []
        expected = run_session(1)[0].variants[0].root_task.threads[0].result
        for variant in session.variants:
            if variant.alive:
                assert variant.root_task.threads[0].result == expected


class TestDescriptorRegeneration:
    """Sole-survivor failover: a descriptor transfer that died with the
    leader's machine, with no surviving replica to rescue from, is
    recovered by natively re-executing the originating call."""

    def lost_transfer_rig(self):
        from repro.core.events import EV_SYSCALL, Event

        session, world, _ = run_session(2)
        monitor = session.root_tuple.replicas[1]
        # Fabricate the loss: the dead regime's boundary covers the
        # event, the channel is gone, and no replica has reached the
        # event's clock (so mirror rescue finds no candidate).
        monitor.tuple.regime_boundary = 10 ** 9
        monitor.tuple.channels.pop(1, None)
        event = Event(EV_SYSCALL, 2, "open", 0, clock=10 ** 8,
                      retval=77, fd_count=1, fd_numbers=(77,))
        return session, monitor, event

    @staticmethod
    def drive(gen):
        try:
            while True:
                next(gen)
        except StopIteration as stop:
            return stop.value

    def test_regenerates_descriptor_at_leader_number(self):
        from repro.kernel.uapi import Syscall

        session, monitor, event = self.lost_transfer_rig()
        call = Syscall("open", ("/d/data", 0))
        installed = self.drive(monitor.receive_fds(event, call=call))
        assert installed == (77,)
        assert monitor.task.fdtable.get(77) is not None
        assert session.stats.fds_regenerated == 1

    def test_without_call_still_raises(self):
        from repro.errors import NvxError

        _, monitor, event = self.lost_transfer_rig()
        with pytest.raises(NvxError, match="lost in failover"):
            self.drive(monitor.receive_fds(event))

    def test_unregenerable_call_raises(self):
        from repro.errors import NvxError
        from repro.kernel.uapi import Syscall

        _, monitor, event = self.lost_transfer_rig()
        call = Syscall("open", ("/no/such/file", 0))
        with pytest.raises(NvxError, match="native re-execution"):
            self.drive(monitor.receive_fds(event, call=call))

    def test_chaos_repro_seed_3465(self):
        # End-to-end regression: this seeded plan machine-crashes the
        # leader mid-fd-transfer and syscall-crashes the only other
        # replica, leaving a sole survivor with no rescue mirror.
        from repro.faults.chaos import run_plan

        lines, mismatches, violations = run_plan(3465, 3,
                                                 placement="remote")
        assert mismatches == 0, "\n".join(lines)
        assert violations == 0, "\n".join(lines)


class TestTransportEquivalence:
    def pair(self, seed, plan=None):
        local = run_session(3, plan=plan, seed=seed)
        remote = run_session(
            3, placement=REMOTE_MAP, plan=plan, costs=ZERO_COST,
            transport=net_transport(coalesce_ps=0), seed=seed)
        return (outcome_of(local[0], local[2]),
                outcome_of(remote[0], remote[2]))

    def test_fault_free_outcomes_identical(self):
        local, remote = self.pair(7)
        assert local == remote
        assert local["violations"] == ()

    def test_leader_crash_outcomes_identical(self):
        # Syscall-index trigger: fires at the same logical point on
        # both transports regardless of virtual-time skew.
        plan = FaultPlan((Fault(CRASH, variant=0, at_syscall=5),))
        local, remote = self.pair(11, plan=plan)
        assert local == remote
        assert local["promotions"] == 1

    def test_follower_crash_outcomes_identical(self):
        plan = FaultPlan((Fault(CRASH, variant=2, at_syscall=3),))
        local, remote = self.pair(13, plan=plan)
        assert local == remote
        assert set(local["survivors"]) == {0, 1}

    def test_remote_journal_deterministic(self):
        from repro.faults.chaos import run_plan
        assert run_plan(3, 1, placement="remote") == \
            run_plan(3, 1, placement="remote")


@pytest.mark.slow
class TestTransportEquivalenceProperty:
    """Hypothesis sweep of the equivalence property across seeds and
    fault points (slow: each example is two full DES sessions)."""

    @settings(max_examples=10, deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**16),
           crash_variant=st.integers(min_value=-1, max_value=2),
           at_syscall=st.integers(min_value=1, max_value=10))
    def test_local_equals_zero_cost_remote(self, seed, crash_variant,
                                           at_syscall):
        plan = None
        if crash_variant >= 0:
            plan = FaultPlan((Fault(CRASH, variant=crash_variant,
                                    at_syscall=at_syscall),))
        local = run_session(3, plan=plan, seed=seed)
        remote = run_session(
            3, placement=REMOTE_MAP, plan=plan, costs=ZERO_COST,
            transport=net_transport(coalesce_ps=0), seed=seed)
        assert outcome_of(local[0], local[2]) == \
            outcome_of(remote[0], remote[2])

    @settings(max_examples=10, deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**16),
           index=st.integers(min_value=0, max_value=5))
    def test_remote_chaos_survivors_match_baseline(self, seed, index):
        from repro.faults.chaos import run_plan
        lines, mismatches, violations = run_plan(seed, index,
                                                 placement="remote")
        assert mismatches == 0, "\n".join(lines)
        assert violations == 0, "\n".join(lines)
