"""Legacy setup shim: keeps ``pip install -e .`` working offline.

The execution environment has no network access and no ``wheel`` package,
so PEP 517 editable installs cannot build; this shim lets pip fall back to
``setup.py develop``. All real metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Varan the Unbelievable (ASPLOS 2015) reproduced: an N-version "
        "execution framework on a deterministic simulated-OS substrate"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
