"""Varan the Unbelievable, reproduced.

A complete Python reproduction of the N-version execution framework
from *"Varan the Unbelievable: An Efficient N-version Execution
Framework"* (Hosek & Cadar, ASPLOS 2015), built on a deterministic
simulated-OS substrate.

Quick start::

    from repro import World, VersionSpec

    def app(ctx):
        fd = yield from ctx.open("/dev/null")
        t = yield from ctx.time()
        yield from ctx.close(fd)
        return t

    world = World()
    session = world.nvx([VersionSpec("a", app),
                         VersionSpec("b", app)]).start()
    world.run()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.bpf import RewriteRules, assemble_bpf
from repro.core import NvxSession, VersionSpec
from repro.costmodel import CostModel, DEFAULT_COSTS, cycles
from repro.errors import ReproError
from repro.nvx import (
    LockstepSession,
    MX_PROFILE,
    ORCHESTRA_PROFILE,
    ScribeSession,
    TACHYON_PROFILE,
)
from repro.recordreplay import Recorder, ReplaySession
from repro.sanitizers import ASAN, MSAN, TSAN, sanitized_spec
from repro.world import SessionConfig, World

__version__ = "1.0.0"

__all__ = [
    "RewriteRules",
    "assemble_bpf",
    "NvxSession",
    "VersionSpec",
    "CostModel",
    "DEFAULT_COSTS",
    "cycles",
    "ReproError",
    "LockstepSession",
    "MX_PROFILE",
    "ORCHESTRA_PROFILE",
    "ScribeSession",
    "TACHYON_PROFILE",
    "Recorder",
    "ReplaySession",
    "ASAN",
    "MSAN",
    "TSAN",
    "sanitized_spec",
    "SessionConfig",
    "World",
    "__version__",
]
