"""Linear-sweep disassembler for VX86.

This is the "simple x86 disassembler" of §3.2: the binary rewriter uses it
to scan executable pages for system-call instructions and to reason about
instruction boundaries and branch targets around each call site.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Set, Tuple

from repro.errors import DisassemblyError
from repro.isa.opcodes import (
    BRANCH_MNEMONICS,
    OPCODE_TO_ID,
    OP_SPECS,
    OpSpec,
    REGISTERS,
)


@dataclass(frozen=True)
class Insn:
    """One decoded instruction."""

    addr: int
    spec: OpSpec
    raw: bytes
    #: Decoded operands, shape-dependent (see opcodes.OPERAND SHAPES).
    operands: Tuple
    #: Dense numeric instruction id (see opcodes.OP_ID): interpreter and
    #: translator dispatch on this instead of the mnemonic string.
    op_id: int = -1

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    @property
    def length(self) -> int:
        return self.spec.length

    @property
    def end(self) -> int:
        return self.addr + self.spec.length

    def branch_target(self) -> Optional[int]:
        """Absolute target for rel32 control transfers, else None."""
        if self.mnemonic in BRANCH_MNEMONICS:
            return self.end + self.operands[0]
        return None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        ops = ", ".join(self._format_operands())
        return f"{self.addr:#08x}: {self.mnemonic} {ops}".rstrip()

    def _format_operands(self) -> List[str]:  # pragma: no cover
        shape = self.spec.operands
        if shape in ("r",):
            return [REGISTERS[self.operands[0]]]
        if shape == "rr":
            return [REGISTERS[self.operands[0]], REGISTERS[self.operands[1]]]
        if shape in ("ri32", "ri64"):
            return [REGISTERS[self.operands[0]], str(self.operands[1])]
        if shape == "i32":
            return [f"{self.branch_target():#x}"]
        if shape == "u8":
            return [str(self.operands[0])]
        if shape == "rm":
            return [REGISTERS[self.operands[0]],
                    f"[{REGISTERS[self.operands[1]]}+{self.operands[2]}]"]
        return []


def decode_one(code: bytes, offset: int, base_addr: int = 0) -> Insn:
    """Decode the instruction starting at ``code[offset]``."""
    if offset >= len(code):
        raise DisassemblyError(f"decode past end at offset {offset}")
    opcode = code[offset]
    op_id = OPCODE_TO_ID[opcode]
    if op_id is None:
        raise DisassemblyError(
            f"undecodable byte {opcode:#04x} at offset {offset}")
    spec = OP_SPECS[op_id]
    if offset + spec.length > len(code):
        raise DisassemblyError(
            f"truncated {spec.mnemonic} at offset {offset}")
    raw = bytes(code[offset:offset + spec.length])
    body = raw[1:]
    shape = spec.operands
    operands: Tuple
    if shape == "":
        operands = ()
    elif shape == "u8":
        operands = (body[0],)
    elif shape == "r":
        operands = (body[0] & 0x0F,)
    elif shape == "rr":
        operands = ((body[0] >> 4) & 0x0F, body[0] & 0x0F)
    elif shape == "ri32":
        operands = (body[0] & 0x0F, struct.unpack("<i", body[1:5])[0])
    elif shape == "ri64":
        operands = (body[0] & 0x0F, struct.unpack("<q", body[1:9])[0])
    elif shape == "i32":
        operands = (struct.unpack("<i", body[0:4])[0],)
    elif shape == "rm":
        operands = (body[0] & 0x0F, body[1] & 0x0F,
                    struct.unpack("<i", body[2:6])[0])
    else:  # pragma: no cover - spec table is closed
        raise DisassemblyError(f"unhandled shape {shape!r}")
    return Insn(addr=base_addr + offset, spec=spec, raw=raw,
                operands=operands, op_id=op_id)


def linear_sweep(code: bytes, base_addr: int = 0) -> Iterator[Insn]:
    """Decode instructions sequentially from the start of ``code``."""
    offset = 0
    while offset < len(code):
        insn = decode_one(code, offset, base_addr)
        yield insn
        offset += insn.length


def disassemble(code: bytes, base_addr: int = 0) -> List[Insn]:
    """Decode the whole buffer (raises on undecodable bytes)."""
    return list(linear_sweep(code, base_addr))


def disassemble_prefix(code: bytes, offset: int, nbytes: int,
                       base_addr: int = 0) -> List[Insn]:
    """Decode whole instructions from ``offset`` covering ≥ ``nbytes``.

    Used by the rewriter to find how many instructions a patch window
    displaces.
    """
    insns: List[Insn] = []
    covered = 0
    while covered < nbytes:
        insn = decode_one(code, offset + covered, base_addr)
        insns.append(insn)
        covered += insn.length
    return insns


def branch_targets(insns: List[Insn]) -> Set[int]:
    """Absolute addresses any decoded instruction may jump to."""
    targets = set()
    for insn in insns:
        tgt = insn.branch_target()
        if tgt is not None:
            targets.add(tgt)
    return targets
