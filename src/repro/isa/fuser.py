"""Fused code generation for hot superblocks (the translator's tier 2).

A translated :class:`~repro.isa.translator.CodeBlock` executes as a list
of per-instruction closures; every op pays a Python call and a
``regs[i]`` list access per operand.  Once a block runs hot (see
``TranslationCache.fuse_threshold``) it is *fused*: the instruction
sequence is compiled — ``compile``/``exec`` of generated source — into a
single function with the touched guest registers held in Python locals
and spilled back to ``cpu.regs`` only at block exit and at every point
the per-step interpreter could observe partial state:

* every faulting memory access spills the registers written so far (in
  interpreter update order: e.g. ``push`` spills the decremented rsp,
  ``pop`` the un-incremented one), then records the faulting rip and
  pre-fault cycles exactly like the closure path;
* every self-modification check (``store``/``push``/spanned ``call``
  into the block's own segment) spills before raising its pre-built
  :class:`~repro.isa.translator.BlockExit`;
* ``pusha``/``popa`` — bulk ops whose cost is dominated by 15 memory
  accesses anyway — spill, delegate to the original closure, and reload.

The generated function is observably identical to running the closure
list: same registers, zf, rip, cycles and exceptions at every exit,
which the differential property in ``tests/test_translator.py`` checks
against the per-step interpreter with fusion forced on.
"""

from __future__ import annotations

from typing import List, Optional

from repro.isa.memory import _U64
from repro.isa.opcodes import (
    OP_ADD,
    OP_ADDI,
    OP_CALL,
    OP_CALLR,
    OP_CMP,
    OP_CMPI,
    OP_JMP,
    OP_JNZ,
    OP_JZ,
    OP_LOAD,
    OP_MOV,
    OP_MOVI,
    OP_NOP,
    OP_POP,
    OP_POPA,
    OP_PUSH,
    OP_PUSHA,
    OP_RET,
    OP_STORE,
    OP_SUB,
    OP_SUBI,
    REG_INDEX,
)
from repro.isa.translator import T_BRANCH, BlockExit

_MASK = 2 ** 64 - 1
_RSP = REG_INDEX["rsp"]

#: Ops executed through their original closure even in fused code.
_CLOSURE_OP_IDS = frozenset({OP_PUSHA, OP_POPA})

#: Ops that read zf (conditional terminators) or write it.
_ZF_WRITERS = frozenset({OP_SUB, OP_SUBI, OP_CMP, OP_CMPI})
_ZF_READERS = frozenset({OP_JZ, OP_JNZ})


def _insn_regs(insn) -> List[int]:
    """Guest registers an instruction touches through locals."""
    op_id = insn.op_id
    ops = insn.operands
    if op_id in (OP_MOV, OP_ADD, OP_SUB, OP_CMP):
        return [ops[0], ops[1]]
    if op_id in (OP_MOVI, OP_ADDI, OP_SUBI, OP_CMPI):
        return [ops[0]]
    if op_id in (OP_PUSH, OP_POP):
        return [ops[0], _RSP]
    if op_id in (OP_LOAD, OP_STORE):
        return [ops[0], ops[1]]
    if op_id == OP_CALLR:
        return [ops[0], _RSP]
    if op_id in (OP_CALL, OP_RET):
        return [_RSP]
    return []  # nop, jmp, jz, jnz, pusha/popa (closure-run)


class _Emitter:
    """Builds the fused function source, tracking which locals are dirty
    so fault-site spills restore exactly the interpreter-visible state."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.dirty: set = set()
        self.zf_dirty = False
        #: Extra indent applied to every emit (self-loop bodies sit one
        #: level inside a ``while``).
        self.base = 0
        #: Set to the block's total cycles when emitting a self-loop
        #: body; fault/bail accounting then scales by the completed
        #: iteration count ``_it``.
        self.loop_total: Optional[int] = None

    def emit(self, line: str, indent: int = 1) -> None:
        self.lines.append("    " * (indent + self.base) + line)

    def _cyc_expr(self, cyc_before: int) -> str:
        if self.loop_total is not None:
            return f"{cyc_before} + _it * {self.loop_total}"
        return str(cyc_before)

    def spills(self) -> List[str]:
        out = [f"regs[{i}] = r{i}" for i in sorted(self.dirty)]
        if self.zf_dirty:
            out.append("cpu.zf = zf")
        return out

    def emit_fault_guard(self, body: str, addr: int, cyc_before: int,
                         indent: int = 1) -> None:
        """``try: <body>`` with the closure-identical fault epilogue."""
        self.emit("try:", indent)
        self.emit(body, indent + 1)
        self.emit("except BaseException:", indent)
        for line in self.spills():
            self.emit(line, indent + 1)
        self.emit(f"cpu.rip = {addr}", indent + 1)
        self.emit(f"cpu._fault_cycles = {self._cyc_expr(cyc_before)}",
                  indent + 1)
        self.emit("raise", indent + 1)

    # The u64 fast paths of AddressSpace.read_u64/write_u64, inlined:
    # same page-cache lookup, same bounds + permission re-checks, with
    # the real accessor (and the fault epilogue) as the fallback — so a
    # fused access is observably identical to the closure path while a
    # hit costs no Python call at all.

    def emit_load(self, dest: str, addr_expr: str, addr: int,
                  cyc_before: int) -> None:
        self.emit(f"_a = {addr_expr}")
        self.emit("_s = pages.get(_a >> 12)")
        self.emit("if (_s is not None and _s.r_ok and _s.start <= _a "
                  "and _a + 8 <= _s.end):")
        self.emit(f"{dest} = unpack(_s.data, _a - _s.start)[0]", 2)
        self.emit("else:")
        self.emit_fault_guard(f"{dest} = read_u64(_a)", addr, cyc_before,
                              indent=2)

    def emit_store(self, addr_expr: str, value: str, addr: int,
                   cyc_before: int) -> None:
        self.emit(f"_a = {addr_expr}")
        self.emit("_s = pages.get(_a >> 12)")
        self.emit("if (_s is not None and _s.w_ok and _s.start <= _a "
                  "and _a + 8 <= _s.end):")
        self.emit(f"pack(_s.data, _a - _s.start, {value})", 2)
        self.emit("_s.version += 1", 2)
        self.emit("else:")
        self.emit_fault_guard(f"write_u64(_a, {value})", addr, cyc_before,
                              indent=2)

    def emit_bail_check(self, version: int, bail_index: int,
                        next_rip: int, cyc_after: int, n_done: int,
                        block_n: int) -> None:
        self.emit(f"if seg.version != {version}:")
        for line in self.spills():
            self.emit(line, 2)
        if self.loop_total is not None:
            # Iteration-aware exit: cycles/insns retired so far are the
            # completed iterations plus this iteration's prefix.
            self.emit(f"raise BlockExit({next_rip}, "
                      f"{cyc_after} + _it * {self.loop_total}, "
                      f"{n_done} + _it * {block_n})", 2)
        else:
            self.emit(f"raise bails[{bail_index}]", 2)


def fuse_block(cpu, block):
    """Compile ``block`` into a single callable; see module docstring."""
    insns = block.insns
    n = len(insns)
    terminator = block.terminator
    version = block.version
    cum = block.cum

    localized: set = set()
    zf_used = False
    for insn in insns:
        localized.update(_insn_regs(insn))
        if insn.op_id in _ZF_WRITERS or insn.op_id in _ZF_READERS:
            zf_used = True

    # A block whose terminating branch can target its own entry is a
    # *self-loop*: the fused function iterates in place (bounded by the
    # caller-supplied insn budget and cycle batch), so a hot loop costs
    # one Python call per ~batch instead of one per iteration.  All
    # accounting at fault/bail sites scales by the completed iteration
    # count, keeping rip/cycles/insns exactly per-step-identical.
    is_loop = False
    if n and terminator == T_BRANCH:
        last = insns[-1]
        if last.op_id == OP_JMP:
            is_loop = last.end + last.operands[0] == block.entry
        elif last.op_id in (OP_JZ, OP_JNZ):
            is_loop = (last.end + last.operands[0] == block.entry
                       or last.end == block.entry)

    bails: List[Optional[BlockExit]] = [None] * n
    em = _Emitter()
    for i in sorted(localized):
        em.emit(f"r{i} = regs[{i}]")
    if zf_used:
        em.emit("zf = cpu.zf")
    if is_loop:
        em.emit(f"_k = (remaining - 1) // {n}")
        em.emit(f"_kb = budget // {block.cycles}")
        em.emit("if _kb < _k:")
        em.emit("_k = _kb", 2)
        em.emit("if _k < 1:")
        em.emit("_k = 1", 2)
        em.emit("_it = 0")
        em.emit("while True:")
        em.base = 1
        em.loop_total = block.cycles
        # Inside a self-loop every localized register may carry state
        # from completed iterations, no matter where its writer sits in
        # program order — a fault site emitted *before* the writer still
        # needs its spill (the locals are the truth; writing back an
        # unmodified one is a no-op).  Seed the dirty set with the whole
        # localized universe so every guard in the body spills it all.
        em.dirty = set(localized)
        em.zf_dirty = zf_used

    for i, insn in enumerate(insns):
        op_id = insn.op_id
        opnd = insn.operands
        addr = insn.addr
        cyc_before = cum[i - 1] if i else 0
        is_term = i == n - 1 and terminator == T_BRANCH

        if op_id == OP_NOP:
            continue
        if op_id == OP_MOV:
            d, s = opnd
            if d != s:
                em.emit(f"r{d} = r{s}")
                em.dirty.add(d)
        elif op_id == OP_MOVI:
            d, imm = opnd
            em.emit(f"r{d} = {imm & _MASK}")
            em.dirty.add(d)
        elif op_id == OP_ADD:
            d, s = opnd
            em.emit(f"r{d} = (r{d} + r{s}) & {_MASK}")
            em.dirty.add(d)
        elif op_id == OP_ADDI:
            d, imm = opnd
            em.emit(f"r{d} = (r{d} + {imm}) & {_MASK}")
            em.dirty.add(d)
        elif op_id == OP_SUB:
            d, s = opnd
            em.emit(f"r{d} = (r{d} - r{s}) & {_MASK}")
            em.emit(f"zf = r{d} == 0")
            em.dirty.add(d)
            em.zf_dirty = True
        elif op_id == OP_SUBI:
            d, imm = opnd
            em.emit(f"r{d} = (r{d} - {imm}) & {_MASK}")
            em.emit(f"zf = r{d} == 0")
            em.dirty.add(d)
            em.zf_dirty = True
        elif op_id == OP_CMP:
            d, s = opnd
            em.emit(f"zf = r{d} == r{s}")
            em.zf_dirty = True
        elif op_id == OP_CMPI:
            d, imm = opnd
            em.emit(f"zf = r{d} == {imm & _MASK}")
            em.zf_dirty = True
        elif op_id == OP_PUSH:
            s = opnd[0]
            # Source read before rsp moves (matters for `push rsp`).
            if s == _RSP:
                em.emit(f"_t = r{_RSP}")
                value = "_t"
            else:
                value = f"r{s}"
            em.emit(f"r{_RSP} = (r{_RSP} - 8) & {_MASK}")
            em.dirty.add(_RSP)
            em.emit_store(f"r{_RSP}", value, addr, cyc_before)
            bails[i] = BlockExit(block.bounds[i + 1], cum[i], i + 1)
            em.emit_bail_check(version, i, block.bounds[i + 1], cum[i],
                               i + 1, n)
        elif op_id == OP_POP:
            d = opnd[0]
            em.emit_load("_t", f"r{_RSP}", addr, cyc_before)
            em.emit(f"r{_RSP} = (r{_RSP} + 8) & {_MASK}")
            em.dirty.add(_RSP)
            em.emit(f"r{d} = _t")
            em.dirty.add(d)
        elif op_id == OP_LOAD:
            d, b, disp = opnd
            em.emit_load(f"r{d}", f"r{b} + {disp}", addr, cyc_before)
            em.dirty.add(d)
        elif op_id == OP_STORE:
            s, b, disp = opnd
            em.emit_store(f"r{b} + {disp}", f"r{s}", addr, cyc_before)
            bails[i] = BlockExit(block.bounds[i + 1], cum[i], i + 1)
            em.emit_bail_check(version, i, block.bounds[i + 1], cum[i],
                               i + 1, n)
        elif op_id in _CLOSURE_OP_IDS:
            # Delegate to the original closure: spill so it sees (and on
            # a fault leaves) exact state, then reload every local.
            for line in em.spills():
                em.emit(line)
            em.dirty.clear()
            em.zf_dirty = False
            em.emit(f"ops[{i}]()")
            for r in sorted(localized):
                em.emit(f"r{r} = regs[{r}]")
        elif op_id == OP_JMP:
            if is_term:
                # In a self-loop (where the target is the entry) rip
                # lives in the `_nr` local until the loop exits.
                rip = "_nr" if is_loop else "cpu.rip"
                em.emit(f"{rip} = {insn.end + opnd[0]}")
            # else: spanned — pure accounting, no state moves.
        elif op_id == OP_JZ:
            taken = insn.end + opnd[0]
            rip = "_nr" if is_loop and is_term else "cpu.rip"
            em.emit(f"{rip} = {taken} if zf else {insn.end}")
        elif op_id == OP_JNZ:
            taken = insn.end + opnd[0]
            rip = "_nr" if is_loop and is_term else "cpu.rip"
            em.emit(f"{rip} = {insn.end} if zf else {taken}")
        elif op_id == OP_CALL:
            em.emit(f"r{_RSP} = (r{_RSP} - 8) & {_MASK}")
            em.dirty.add(_RSP)
            em.emit_store(f"r{_RSP}", str(insn.end), addr, cyc_before)
            if is_term:
                em.emit(f"cpu.rip = {insn.end + opnd[0]}")
            else:
                # Spanned call: bail to the *callee* if the push rewrote
                # this block's own code (bounds[i+1] is the target).
                bails[i] = BlockExit(block.bounds[i + 1], cum[i], i + 1)
                em.emit_bail_check(version, i, block.bounds[i + 1],
                                   cum[i], i + 1, n)
        elif op_id == OP_CALLR:
            r = opnd[0]
            em.emit(f"r{_RSP} = (r{_RSP} - 8) & {_MASK}")
            em.dirty.add(_RSP)
            em.emit_store(f"r{_RSP}", str(insn.end), addr, cyc_before)
            # Target read after the push, like the interpreter (matters
            # for callr rsp).
            em.emit(f"cpu.rip = r{r}")
        elif op_id == OP_RET:
            em.emit_load("_t", f"r{_RSP}", addr, cyc_before)
            em.emit(f"r{_RSP} = (r{_RSP} + 8) & {_MASK}")
            em.dirty.add(_RSP)
            em.emit("cpu.rip = _t")
        else:  # pragma: no cover - closed opcode table
            raise AssertionError(f"unfusable op id {op_id}")

    if is_loop:
        em.emit("_it += 1")
        em.emit(f"if _it >= _k or _nr != {block.entry}:")
        em.emit("cpu.rip = _nr", 2)
        em.emit("break", 2)
        em.base = 0
        em.loop_total = None
    for line in em.spills():
        em.emit(line)
    em.emit("return _it" if is_loop else "return 1")

    header = ("def _fused(remaining, budget, cpu=_cpu, regs=_regs, "
              "read_u64=_read_u64, write_u64=_write_u64, seg=_seg, "
              "ops=_ops, bails=_bails, pages=_pages, unpack=_unpack, "
              "pack=_pack, BlockExit=_BlockExit):")
    source = header + "\n" + "\n".join(em.lines) + "\n"
    namespace = {
        "_cpu": cpu,
        "_regs": cpu.regs,
        "_read_u64": cpu.space.read_u64,
        "_write_u64": cpu.space.write_u64,
        "_seg": block.segment,
        "_ops": block.ops,
        "_bails": tuple(bails),
        "_pages": cpu.space._pages,
        "_unpack": _U64.unpack_from,
        "_pack": _U64.pack_into,
        "_BlockExit": BlockExit,
    }
    exec(compile(source, f"<fused:{block.entry:#x}>", "exec"), namespace)
    return namespace["_fused"]
