"""VX86 interpreter with cycle accounting.

The interpreter is generator-based so it can run inside a simulated
process: it yields :class:`~repro.sim.core.Compute` batches for plain
instructions and delegates to pluggable *handlers* for ``syscall``,
``int0``, ``vsys`` and ``vmcall`` instructions.  Handlers are themselves
generators (so they may block on kernel objects or Varan's ring buffer)
and return the value to place in RAX.

Execution normally runs through a :class:`~repro.isa.translator.
TranslationCache`: code is decoded once into basic blocks of pre-bound
micro-ops and each block's cycles are charged as one batch.  Pass
``translate=False`` to get the original decode-every-instruction loop —
the two are observably identical (same registers, cycles, faults and
sim-time totals; only wall-clock speed and Compute chunking differ),
which ``tests/test_translator.py`` checks differentially.

For handler-free unit tests, :meth:`Cpu.run_sync` drives execution
without a simulator.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.costmodel import CYCLE_PS
from repro.errors import ExecutionFault
from repro.isa.disassembler import decode_one
from repro.isa.fuser import fuse_block
from repro.isa.memory import AddressSpace
from repro.isa.opcodes import (
    HANDLER_OP_IDS,
    OP_ADD,
    OP_ADDI,
    OP_CALL,
    OP_CALLR,
    OP_CMP,
    OP_CMPI,
    OP_HLT,
    OP_INT0,
    OP_JMP,
    OP_JNZ,
    OP_JZ,
    OP_LOAD,
    OP_MOV,
    OP_MOVI,
    OP_NOP,
    OP_POP,
    OP_POPA,
    OP_PUSH,
    OP_PUSHA,
    OP_RET,
    OP_STORE,
    OP_SUB,
    OP_SUBI,
    OP_SYSCALL,
    OP_VSYS,
    REG_INDEX,
    REGISTERS,
)
from repro.isa.translator import (
    BlockExit,
    GLOBAL_STATS,
    T_BRANCH,
    T_FALL,
    T_HLT,
    T_INT0,
    T_SYSCALL,
    T_VMCALL,
    T_VSYS,
    TranslationCache,
)
from repro.sim.core import Block, Compute

_U64 = 2 ** 64
_MASK = _U64 - 1
_RAX = REG_INDEX["rax"]
_RSP = REG_INDEX["rsp"]


def _wrap(value: int) -> int:
    return value & (_U64 - 1)


class Cpu:
    """One hardware thread executing VX86 code."""

    def __init__(self, space: AddressSpace, entry: int, stack_top: int,
                 name: str = "cpu", translate=True) -> None:
        self.space = space
        self.regs = [0] * len(REGISTERS)
        self.rip = entry
        self.zf = False
        self.name = name
        self.cycles = 0  # total retired instruction cycles
        self.halted = False
        self.insns_retired = 0
        self.regs[_RSP] = stack_top
        # translate=True: superblocks + chaining + fused hot blocks.
        # translate="blocks": PR 3 basic-block cache (the benchmark
        # baseline the CI speedup ratio is measured against).
        # translate=False: per-step decode (the differential oracle).
        self.tcache: Optional[TranslationCache] = (
            TranslationCache(space, superblocks=translate != "blocks")
            if translate else None)
        self._fault_cycles = 0
        # Handler hooks — generator functions taking (cpu,) or (cpu, idx).
        self.syscall_handler: Optional[Callable] = None
        self.int0_handler: Optional[Callable] = None
        self.vsys_handler: Optional[Callable] = None
        self.vmcall_handler: Optional[Callable] = None
        #: Scratch slot handlers can use to pass per-site context.
        self.handler_context = None

    # -- register helpers ------------------------------------------------

    def get(self, reg: str) -> int:
        return self.regs[REG_INDEX[reg]]

    def set(self, reg: str, value: int) -> None:
        self.regs[REG_INDEX[reg]] = _wrap(value)

    def get_signed(self, reg: str) -> int:
        value = self.get(reg)
        return value - _U64 if value >= _U64 // 2 else value

    def push(self, value: int) -> None:
        rsp = (self.regs[_RSP] - 8) & (_U64 - 1)
        self.regs[_RSP] = rsp
        self.space.write_u64(rsp, value)

    def pop(self) -> int:
        rsp = self.regs[_RSP]
        value = self.space.read_u64(rsp)
        self.regs[_RSP] = (rsp + 8) & (_U64 - 1)
        return value

    def snapshot_regs(self) -> list:
        return list(self.regs)

    def restore_regs(self, saved: list) -> None:
        # In place: translated micro-ops hold a reference to this list.
        self.regs[:] = saved

    # -- execution ---------------------------------------------------------

    def step_decode(self):
        segment = self.space.find(self.rip)
        if not segment.x_ok:
            raise ExecutionFault(
                f"{self.name}: rip {self.rip:#x} not executable")
        return decode_one(bytes(segment.data), self.rip - segment.start,
                          segment.start)

    def run(self, max_insns: int = 10_000_000,
            batch_cycles: int = 20_000) -> Generator:
        """Execute until HLT, yielding sim commands (returns a generator)."""
        if self.tcache is not None:
            return self._run_cached(max_insns, batch_cycles)
        return self._run_interp(max_insns, batch_cycles)

    def run_sync(self, max_insns: int = 10_000_000) -> int:
        """Drive :meth:`run` outside a simulator (tests, tools).

        Compute/Sleep commands are swallowed; a Block (a handler trying
        to wait) is an error in sync mode.
        """
        gen = self.run(max_insns=max_insns)
        try:
            cmd = next(gen)
            while True:
                if isinstance(cmd, Block):
                    raise ExecutionFault("handler blocked in run_sync()")
                cmd = gen.send(None)
        except StopIteration as stop:
            return stop.value

    # -- the translated hot loop -------------------------------------------

    def _run_cached(self, max_insns: int, batch_cycles: int) -> Generator:
        """Chained block-at-a-time execution through the translation
        cache.

        Retired-instruction and cycle accounting are per-instruction
        exact (see translator docstring); only the Compute chunking is
        coarser — one batch per block run instead of per instruction.
        The inner loop follows direct-threaded chain links (validated
        against segment version and mapping generation at every follow,
        because a Compute yield can hand the sim to code that remaps or
        rewrites memory), so hot loops never return to the dispatch
        lookup; each exit taken through the dispatch loop patches a new
        chain link into its predecessor.  Blocks that stay hot are
        promoted to fused compiled bodies (repro.isa.fuser).
        """
        pending = 0
        executed = 0
        tcache = self.tcache
        lookup = tcache.lookup
        stats = tcache.stats
        space = self.space
        superblocks = tcache.superblocks
        fuse_threshold = tcache.fuse_threshold
        # Chain/dispatch tallies accumulate in locals and flush in the
        # finally, keeping the per-block path free of attribute stores.
        follows = 0
        dispatches = 0
        chain_src = None
        try:
            while not self.halted:
                if executed >= max_insns:
                    self.insns_retired = executed
                    raise ExecutionFault(
                        f"{self.name}: exceeded {max_insns} insns")
                block = lookup(self)
                dispatches += 1
                if chain_src is not None:
                    # Patch the predecessor's exit straight to this
                    # block; nothing can have invalidated either since
                    # the exit (no yields in between).
                    chain_src.chain[self.rip] = block
                    stats.chains_linked += 1
                    GLOBAL_STATS.chains_linked += 1
                    chain_src = None
                while True:
                    n = block.n_ops
                    remaining = max_insns - executed
                    if remaining <= n:
                        # The max_insns budget expires inside this
                        # block: run micro-ops one by one so the fault
                        # carries the exact rip/cycles the per-step
                        # interpreter would report.
                        ops = block.ops
                        i = 0
                        try:
                            while i < remaining:
                                ops[i]()
                                i += 1
                        except BlockExit as bx:
                            executed += bx.n_done
                            self.cycles += bx.cycles_done
                            pending += bx.cycles_done
                            self.rip = bx.next_rip
                            if pending >= batch_cycles:
                                yield Compute(pending * CYCLE_PS)
                                pending = 0
                            break
                        except BaseException:
                            self.cycles += self._fault_cycles
                            self.insns_retired = executed + i
                            raise
                        executed += remaining
                        if remaining:
                            self.cycles += block.cum[remaining - 1]
                        if not (block.terminator == T_BRANCH
                                and remaining == n):
                            self.rip = block.bounds[remaining]
                        self.insns_retired = executed
                        raise ExecutionFault(
                            f"{self.name}: exceeded {max_insns} insns")
                    fn = block.fn
                    if fn is None and superblocks and n:
                        hot = block.hot = block.hot + 1
                        if hot >= fuse_threshold:
                            fn = block.fn = fuse_block(self, block)
                            stats.fused_blocks += 1
                            GLOBAL_STATS.fused_blocks += 1
                    try:
                        if fn is not None:
                            # Fused bodies return how many times they ran
                            # the block: a self-loop block iterates in
                            # place until its branch leaves the entry,
                            # the insn budget nears expiry, or the cycle
                            # batch fills (see repro.isa.fuser).
                            it = fn(remaining, batch_cycles - pending)
                        else:
                            it = 1
                            for op in block.ops:
                                op()
                    except BlockExit as bx:
                        # A store rewrote this block's own code: retire
                        # what ran and resume at the next instruction,
                        # which will re-translate against the new bytes.
                        executed += bx.n_done
                        self.cycles += bx.cycles_done
                        pending += bx.cycles_done
                        self.rip = bx.next_rip
                        if pending >= batch_cycles:
                            yield Compute(pending * CYCLE_PS)
                            pending = 0
                        break
                    except BaseException:
                        self.cycles += self._fault_cycles
                        self.insns_retired = executed
                        raise
                    executed += n * it
                    self.cycles += block.cycles * it
                    pending += block.cycles * it
                    # In-place iterations are self-chain-follows: count
                    # them so dispatches + follows still equals block
                    # entries.
                    follows += it - 1
                    term = block.terminator
                    if term == T_BRANCH:
                        pass  # the last micro-op set rip
                    elif term == T_FALL:
                        self.rip = block.end_rip
                    elif term == T_HLT:
                        self.halted = True
                        self.rip = block.term_addr
                        executed += 1
                        self.cycles += block.term_cycles
                        pending += block.term_cycles
                        break
                    else:
                        # Like hardware: rip points past the instruction
                        # while the handler runs (and is where sigreturn
                        # resumes for int0).
                        self.rip = block.term_end
                        executed += 1
                        if pending:
                            yield Compute(pending * CYCLE_PS)
                            pending = 0
                        if term == T_SYSCALL:
                            yield from self._invoke(self.syscall_handler,
                                                    "syscall")
                        elif term == T_INT0:
                            yield from self._invoke(self.int0_handler,
                                                    "int0")
                        elif term == T_VSYS:
                            yield from self._invoke(self.vsys_handler,
                                                    "vsys",
                                                    block.term_arg)
                        else:
                            yield from self._invoke(self.vmcall_handler,
                                                    "vmcall")
                        # The handler may have moved rip anywhere
                        # (sigreturn): never chain across it.
                        break
                    if pending >= batch_cycles:
                        yield Compute(pending * CYCLE_PS)
                        pending = 0
                    nxt = block.chain.get(self.rip)
                    if (nxt is not None
                            and nxt.version == nxt.segment.version
                            and space.mapping_gen == tcache._mapping_gen):
                        follows += 1
                        block = nxt
                        continue
                    if superblocks:
                        chain_src = block
                    break
            if pending:
                yield Compute(pending * CYCLE_PS)
            self.insns_retired = executed
            return self.regs[_RAX]
        finally:
            stats.chain_follows += follows
            stats.dispatch_blocks += dispatches
            GLOBAL_STATS.chain_follows += follows
            GLOBAL_STATS.dispatch_blocks += dispatches

    # -- the reference per-step loop -----------------------------------------

    def _run_interp(self, max_insns: int, batch_cycles: int) -> Generator:
        """Original decode-every-instruction loop (reference semantics)."""
        pending = 0
        executed = 0
        while not self.halted:
            if executed >= max_insns:
                self.insns_retired = executed
                raise ExecutionFault(
                    f"{self.name}: exceeded {max_insns} insns")
            insn = self.step_decode()
            executed += 1
            op_id = insn.op_id
            if op_id == OP_HLT:
                self.halted = True
            elif op_id in HANDLER_OP_IDS:
                # Like hardware: rip points past the instruction while the
                # handler runs (and is where sigreturn resumes for int0).
                self.rip = insn.end
                pending = yield from self._flush(pending)
                if op_id == OP_SYSCALL:
                    yield from self._invoke(self.syscall_handler, "syscall")
                elif op_id == OP_INT0:
                    yield from self._invoke(self.int0_handler, "int0")
                elif op_id == OP_VSYS:
                    yield from self._invoke(self.vsys_handler, "vsys",
                                            insn.operands[0])
                else:
                    yield from self._invoke(self.vmcall_handler, "vmcall")
            else:
                self._execute_plain(insn)
            cyc = insn.spec.cycles
            self.cycles += cyc
            pending += cyc
            if pending >= batch_cycles:
                pending = yield from self._flush(pending)
        yield from self._flush(pending)
        self.insns_retired = executed
        return self.regs[_RAX]

    # -- internals ---------------------------------------------------------

    def _flush(self, pending: int):
        if pending:
            yield Compute(pending * CYCLE_PS)
        return 0

    def _invoke(self, handler, kind: str, *args):
        if handler is None:
            raise ExecutionFault(f"{self.name}: no {kind} handler installed")
        result = yield from handler(self, *args)
        if result is not None:
            self.regs[_RAX] = _wrap(result)

    def _execute_plain(self, insn) -> None:
        # Numeric-id dispatch with regs hoisted to a local: the per-step
        # loop is the differential oracle and runs in every CI job, so
        # its constant factor matters too (≈15% over the mnemonic-string
        # chain, see PR notes).
        op_id = insn.op_id
        ops = insn.operands
        regs = self.regs
        next_rip = insn.end
        if op_id == OP_MOV:
            regs[ops[0]] = regs[ops[1]]
        elif op_id == OP_MOVI:
            regs[ops[0]] = ops[1] & _MASK
        elif op_id == OP_ADD:
            regs[ops[0]] = (regs[ops[0]] + regs[ops[1]]) & _MASK
        elif op_id == OP_ADDI:
            regs[ops[0]] = (regs[ops[0]] + ops[1]) & _MASK
        elif op_id == OP_SUB:
            result = (regs[ops[0]] - regs[ops[1]]) & _MASK
            regs[ops[0]] = result
            self.zf = result == 0
        elif op_id == OP_SUBI:
            result = (regs[ops[0]] - ops[1]) & _MASK
            regs[ops[0]] = result
            self.zf = result == 0
        elif op_id == OP_CMP:
            self.zf = regs[ops[0]] == regs[ops[1]]
        elif op_id == OP_CMPI:
            self.zf = regs[ops[0]] == ops[1] & _MASK
        elif op_id == OP_LOAD:
            regs[ops[0]] = self.space.read_u64(regs[ops[1]] + ops[2])
        elif op_id == OP_STORE:
            self.space.write_u64(regs[ops[1]] + ops[2], regs[ops[0]])
        elif op_id == OP_PUSH:
            self.push(regs[ops[0]])
        elif op_id == OP_POP:
            regs[ops[0]] = self.pop()
        elif op_id == OP_JMP:
            next_rip = insn.end + ops[0]
        elif op_id == OP_JZ:
            if self.zf:
                next_rip = insn.end + ops[0]
        elif op_id == OP_JNZ:
            if not self.zf:
                next_rip = insn.end + ops[0]
        elif op_id == OP_CALL:
            self.push(insn.end)
            next_rip = insn.end + ops[0]
        elif op_id == OP_CALLR:
            self.push(insn.end)
            next_rip = regs[ops[0]]
        elif op_id == OP_RET:
            next_rip = self.pop()
        elif op_id == OP_NOP:
            pass
        elif op_id == OP_PUSHA:
            for i, value in enumerate(regs):
                if i != _RSP:
                    self.push(value)
        elif op_id == OP_POPA:
            for i in reversed(range(len(regs))):
                if i != _RSP:
                    regs[i] = self.pop()
        else:  # pragma: no cover - closed opcode table
            raise ExecutionFault(f"unhandled mnemonic {insn.mnemonic}")
        self.rip = next_rip
