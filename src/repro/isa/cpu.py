"""VX86 interpreter with cycle accounting.

The interpreter is generator-based so it can run inside a simulated
process: it yields :class:`~repro.sim.core.Compute` batches for plain
instructions and delegates to pluggable *handlers* for ``syscall``,
``int0``, ``vsys`` and ``vmcall`` instructions.  Handlers are themselves
generators (so they may block on kernel objects or Varan's ring buffer)
and return the value to place in RAX.

Execution normally runs through a :class:`~repro.isa.translator.
TranslationCache`: code is decoded once into basic blocks of pre-bound
micro-ops and each block's cycles are charged as one batch.  Pass
``translate=False`` to get the original decode-every-instruction loop —
the two are observably identical (same registers, cycles, faults and
sim-time totals; only wall-clock speed and Compute chunking differ),
which ``tests/test_translator.py`` checks differentially.

For handler-free unit tests, :meth:`Cpu.run_sync` drives execution
without a simulator.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.costmodel import CYCLE_PS
from repro.errors import ExecutionFault
from repro.isa.disassembler import decode_one
from repro.isa.memory import AddressSpace
from repro.isa.opcodes import REG_INDEX, REGISTERS
from repro.isa.translator import (
    BlockExit,
    T_BRANCH,
    T_FALL,
    T_HLT,
    T_INT0,
    T_SYSCALL,
    T_VMCALL,
    T_VSYS,
    TranslationCache,
)
from repro.sim.core import Block, Compute

_U64 = 2 ** 64
_RAX = REG_INDEX["rax"]
_RSP = REG_INDEX["rsp"]


def _wrap(value: int) -> int:
    return value & (_U64 - 1)


class Cpu:
    """One hardware thread executing VX86 code."""

    def __init__(self, space: AddressSpace, entry: int, stack_top: int,
                 name: str = "cpu", translate: bool = True) -> None:
        self.space = space
        self.regs = [0] * len(REGISTERS)
        self.rip = entry
        self.zf = False
        self.name = name
        self.cycles = 0  # total retired instruction cycles
        self.halted = False
        self.insns_retired = 0
        self.regs[_RSP] = stack_top
        self.tcache: Optional[TranslationCache] = (
            TranslationCache(space) if translate else None)
        self._fault_cycles = 0
        # Handler hooks — generator functions taking (cpu,) or (cpu, idx).
        self.syscall_handler: Optional[Callable] = None
        self.int0_handler: Optional[Callable] = None
        self.vsys_handler: Optional[Callable] = None
        self.vmcall_handler: Optional[Callable] = None
        #: Scratch slot handlers can use to pass per-site context.
        self.handler_context = None

    # -- register helpers ------------------------------------------------

    def get(self, reg: str) -> int:
        return self.regs[REG_INDEX[reg]]

    def set(self, reg: str, value: int) -> None:
        self.regs[REG_INDEX[reg]] = _wrap(value)

    def get_signed(self, reg: str) -> int:
        value = self.get(reg)
        return value - _U64 if value >= _U64 // 2 else value

    def push(self, value: int) -> None:
        rsp = (self.regs[_RSP] - 8) & (_U64 - 1)
        self.regs[_RSP] = rsp
        self.space.write_u64(rsp, value)

    def pop(self) -> int:
        rsp = self.regs[_RSP]
        value = self.space.read_u64(rsp)
        self.regs[_RSP] = (rsp + 8) & (_U64 - 1)
        return value

    def snapshot_regs(self) -> list:
        return list(self.regs)

    def restore_regs(self, saved: list) -> None:
        # In place: translated micro-ops hold a reference to this list.
        self.regs[:] = saved

    # -- execution ---------------------------------------------------------

    def step_decode(self):
        segment = self.space.find(self.rip)
        if "x" not in segment.perms:
            raise ExecutionFault(
                f"{self.name}: rip {self.rip:#x} not executable")
        return decode_one(bytes(segment.data), self.rip - segment.start,
                          segment.start)

    def run(self, max_insns: int = 10_000_000,
            batch_cycles: int = 20_000) -> Generator:
        """Execute until HLT, yielding sim commands (returns a generator)."""
        if self.tcache is not None:
            return self._run_cached(max_insns, batch_cycles)
        return self._run_interp(max_insns, batch_cycles)

    def run_sync(self, max_insns: int = 10_000_000) -> int:
        """Drive :meth:`run` outside a simulator (tests, tools).

        Compute/Sleep commands are swallowed; a Block (a handler trying
        to wait) is an error in sync mode.
        """
        gen = self.run(max_insns=max_insns)
        try:
            cmd = next(gen)
            while True:
                if isinstance(cmd, Block):
                    raise ExecutionFault("handler blocked in run_sync()")
                cmd = gen.send(None)
        except StopIteration as stop:
            return stop.value

    # -- the translated hot loop -------------------------------------------

    def _run_cached(self, max_insns: int, batch_cycles: int) -> Generator:
        """Block-at-a-time execution through the translation cache.

        Retired-instruction and cycle accounting are per-instruction
        exact (see translator docstring); only the Compute chunking is
        coarser — one batch per block run instead of per instruction.
        """
        pending = 0
        executed = 0
        lookup = self.tcache.lookup
        while not self.halted:
            if executed >= max_insns:
                self.insns_retired = executed
                raise ExecutionFault(
                    f"{self.name}: exceeded {max_insns} insns")
            block = lookup(self)
            n = block.n_ops
            remaining = max_insns - executed
            if remaining > n:
                try:
                    for op in block.ops:
                        op()
                except BlockExit as bx:
                    # A store rewrote this block's own code: retire what
                    # ran and resume at the next instruction, which will
                    # re-translate against the new bytes.
                    executed += bx.n_done
                    self.cycles += bx.cycles_done
                    pending += bx.cycles_done
                    self.rip = bx.next_rip
                    if pending >= batch_cycles:
                        yield Compute(pending * CYCLE_PS)
                        pending = 0
                    continue
                except BaseException:
                    self.cycles += self._fault_cycles
                    self.insns_retired = executed
                    raise
                executed += n
                self.cycles += block.cycles
                pending += block.cycles
                term = block.terminator
                if term == T_BRANCH:
                    pass  # the last micro-op set rip
                elif term == T_FALL:
                    self.rip = block.end_rip
                elif term == T_HLT:
                    self.halted = True
                    self.rip = block.term_addr
                    executed += 1
                    self.cycles += block.term_cycles
                    pending += block.term_cycles
                    break
                else:
                    # Like hardware: rip points past the instruction
                    # while the handler runs (and is where sigreturn
                    # resumes for int0).
                    self.rip = block.term_end
                    executed += 1
                    if pending:
                        yield Compute(pending * CYCLE_PS)
                        pending = 0
                    if term == T_SYSCALL:
                        yield from self._invoke(self.syscall_handler,
                                                "syscall")
                    elif term == T_INT0:
                        yield from self._invoke(self.int0_handler, "int0")
                    elif term == T_VSYS:
                        yield from self._invoke(self.vsys_handler, "vsys",
                                                block.term_arg)
                    else:
                        yield from self._invoke(self.vmcall_handler,
                                                "vmcall")
                    continue
                if pending >= batch_cycles:
                    yield Compute(pending * CYCLE_PS)
                    pending = 0
            else:
                # The max_insns budget expires inside this block: run
                # micro-ops one by one so the fault carries the exact
                # rip/cycles the per-step interpreter would report.
                ops = block.ops
                i = 0
                try:
                    while i < remaining:
                        ops[i]()
                        i += 1
                except BlockExit as bx:
                    executed += bx.n_done
                    self.cycles += bx.cycles_done
                    pending += bx.cycles_done
                    self.rip = bx.next_rip
                    if pending >= batch_cycles:
                        yield Compute(pending * CYCLE_PS)
                        pending = 0
                    continue
                except BaseException:
                    self.cycles += self._fault_cycles
                    self.insns_retired = executed + i
                    raise
                executed += remaining
                if remaining:
                    self.cycles += block.cum[remaining - 1]
                if not (block.terminator == T_BRANCH and remaining == n):
                    self.rip = block.bounds[remaining]
                self.insns_retired = executed
                raise ExecutionFault(
                    f"{self.name}: exceeded {max_insns} insns")
        if pending:
            yield Compute(pending * CYCLE_PS)
        self.insns_retired = executed
        return self.regs[_RAX]

    # -- the reference per-step loop -----------------------------------------

    def _run_interp(self, max_insns: int, batch_cycles: int) -> Generator:
        """Original decode-every-instruction loop (reference semantics)."""
        pending = 0
        executed = 0
        while not self.halted:
            if executed >= max_insns:
                self.insns_retired = executed
                raise ExecutionFault(
                    f"{self.name}: exceeded {max_insns} insns")
            insn = self.step_decode()
            executed += 1
            mnemonic = insn.mnemonic
            if mnemonic == "hlt":
                self.halted = True
            elif mnemonic in ("syscall", "int0", "vsys", "vmcall"):
                # Like hardware: rip points past the instruction while the
                # handler runs (and is where sigreturn resumes for int0).
                self.rip = insn.end
                pending = yield from self._flush(pending)
                if mnemonic == "syscall":
                    yield from self._invoke(self.syscall_handler, "syscall")
                elif mnemonic == "int0":
                    yield from self._invoke(self.int0_handler, "int0")
                elif mnemonic == "vsys":
                    yield from self._invoke(self.vsys_handler, "vsys",
                                            insn.operands[0])
                else:
                    yield from self._invoke(self.vmcall_handler, "vmcall")
            else:
                self._execute_plain(insn)
            self.cycles += insn.spec.cycles
            pending += insn.spec.cycles
            if pending >= batch_cycles:
                pending = yield from self._flush(pending)
        yield from self._flush(pending)
        self.insns_retired = executed
        return self.regs[_RAX]

    # -- internals ---------------------------------------------------------

    def _flush(self, pending: int):
        if pending:
            yield Compute(pending * CYCLE_PS)
        return 0

    def _invoke(self, handler, kind: str, *args):
        if handler is None:
            raise ExecutionFault(f"{self.name}: no {kind} handler installed")
        result = yield from handler(self, *args)
        if result is not None:
            self.regs[_RAX] = _wrap(result)

    def _execute_plain(self, insn) -> bool:
        m = insn.mnemonic
        ops = insn.operands
        next_rip = insn.end
        if m == "nop":
            pass
        elif m == "jmp":
            next_rip = insn.end + ops[0]
        elif m == "jz":
            if self.zf:
                next_rip = insn.end + ops[0]
        elif m == "jnz":
            if not self.zf:
                next_rip = insn.end + ops[0]
        elif m == "call":
            self.push(insn.end)
            next_rip = insn.end + ops[0]
        elif m == "callr":
            self.push(insn.end)
            next_rip = self.regs[ops[0]]
        elif m == "ret":
            next_rip = self.pop()
        elif m == "mov":
            self.regs[ops[0]] = self.regs[ops[1]]
        elif m == "movi":
            self.regs[ops[0]] = _wrap(ops[1])
        elif m == "add":
            self.regs[ops[0]] = _wrap(self.regs[ops[0]] + self.regs[ops[1]])
        elif m == "addi":
            self.regs[ops[0]] = _wrap(self.regs[ops[0]] + ops[1])
        elif m == "sub":
            result = _wrap(self.regs[ops[0]] - self.regs[ops[1]])
            self.regs[ops[0]] = result
            self.zf = result == 0
        elif m == "subi":
            result = _wrap(self.regs[ops[0]] - ops[1])
            self.regs[ops[0]] = result
            self.zf = result == 0
        elif m == "cmp":
            self.zf = self.regs[ops[0]] == self.regs[ops[1]]
        elif m == "cmpi":
            self.zf = self.regs[ops[0]] == _wrap(ops[1])
        elif m == "push":
            self.push(self.regs[ops[0]])
        elif m == "pop":
            self.regs[ops[0]] = self.pop()
        elif m == "load":
            addr = self.regs[ops[1]] + ops[2]
            self.regs[ops[0]] = self.space.read_u64(addr)
        elif m == "store":
            addr = self.regs[ops[1]] + ops[2]
            self.space.write_u64(addr, self.regs[ops[0]])
        elif m == "pusha":
            for i, value in enumerate(self.regs):
                if i != _RSP:
                    self.push(value)
        elif m == "popa":
            for i in reversed(range(len(self.regs))):
                if i != _RSP:
                    self.regs[i] = self.pop()
        else:  # pragma: no cover - closed opcode table
            raise ExecutionFault(f"unhandled mnemonic {m}")
        self.rip = next_rip
