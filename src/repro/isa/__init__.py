"""VX86: the miniature x86-64-like ISA the binary rewriter operates on."""

from repro.isa.assembler import assemble
from repro.isa.cpu import Cpu
from repro.isa.disassembler import (
    Insn,
    branch_targets,
    decode_one,
    disassemble,
    linear_sweep,
)
from repro.isa.memory import AddressSpace, Segment
from repro.isa.opcodes import (
    BRANCH_MNEMONICS,
    BY_MNEMONIC,
    BY_OPCODE,
    OP_ID,
    OPCODE_TO_ID,
    REG_INDEX,
    REGISTERS,
    SYSCALL_ARG_REGS,
    OpSpec,
)
from repro.isa.translator import CodeBlock, TranslationCache

__all__ = [
    "assemble",
    "Cpu",
    "Insn",
    "branch_targets",
    "decode_one",
    "disassemble",
    "linear_sweep",
    "AddressSpace",
    "Segment",
    "BRANCH_MNEMONICS",
    "BY_MNEMONIC",
    "BY_OPCODE",
    "OP_ID",
    "OPCODE_TO_ID",
    "REG_INDEX",
    "REGISTERS",
    "SYSCALL_ARG_REGS",
    "OpSpec",
    "CodeBlock",
    "TranslationCache",
]
