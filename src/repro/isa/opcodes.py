"""VX86: a compact x86-64-flavoured instruction encoding.

The reproduction needs *real bytes* for the selective binary rewriter to
scan and patch, with the same geometry the paper relies on:

* a system-call instruction is **one byte** long (``SYSCALL``),
* a relative jump is **five bytes** (``JMP rel32``),
* there is a **one-byte** interrupt (``INT0``) for call sites where detour
  relocation is impossible,

so rewriting a syscall into a jump necessarily clobbers the four following
bytes and forces relocation of neighbouring instructions into a trampoline
— exactly the §3.2 problem.

Registers follow the x86-64 syscall convention: the syscall number lives
in RAX and arguments in RDI, RSI, RDX, R10, R8, R9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

# -- registers ----------------------------------------------------------

REGISTERS: Tuple[str, ...] = (
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)

REG_INDEX: Dict[str, int] = {name: i for i, name in enumerate(REGISTERS)}

#: Argument registers of the x86-64 syscall ABI, in order.
SYSCALL_ARG_REGS: Tuple[str, ...] = ("rdi", "rsi", "rdx", "r10", "r8", "r9")


# -- opcode map ----------------------------------------------------------

@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode."""

    mnemonic: str
    opcode: int
    length: int  # total encoded length in bytes
    operands: str  # encoding shape, see OPERAND SHAPES below
    cycles: int = 1  # base interpreter cost


# OPERAND SHAPES
#   ""        no operands
#   "r"       one register byte
#   "rr"      one byte packing dst<<4 | src
#   "ri32"    register byte + signed 32-bit immediate
#   "ri64"    register byte + signed 64-bit immediate
#   "i32"     signed 32-bit relative displacement
#   "u8"      one unsigned byte
#   "rm"      register byte + base register byte + signed 32-bit disp

_SPECS = (
    OpSpec("nop", 0x90, 1, ""),
    OpSpec("syscall", 0x05, 1, "", cycles=0),  # cost charged by the gate
    OpSpec("int0", 0xCC, 1, "", cycles=0),
    OpSpec("vsys", 0x0B, 2, "u8", cycles=0),  # vDSO fast routine
    OpSpec("vmcall", 0x0F, 1, "", cycles=0),  # bridge into monitor logic
    OpSpec("hlt", 0xF4, 1, ""),
    OpSpec("jmp", 0xE9, 5, "i32"),
    OpSpec("jz", 0x84, 5, "i32"),
    OpSpec("jnz", 0x85, 5, "i32"),
    OpSpec("call", 0xE8, 5, "i32", cycles=2),
    OpSpec("callr", 0xFF, 2, "r", cycles=2),
    OpSpec("ret", 0xC3, 1, "", cycles=2),
    OpSpec("mov", 0x89, 2, "rr"),
    OpSpec("movi", 0xB8, 10, "ri64"),
    OpSpec("add", 0x01, 2, "rr"),
    OpSpec("addi", 0x81, 6, "ri32"),
    OpSpec("sub", 0x29, 2, "rr"),
    OpSpec("subi", 0x2D, 6, "ri32"),
    OpSpec("cmp", 0x39, 2, "rr"),
    OpSpec("cmpi", 0x3D, 6, "ri32"),
    OpSpec("push", 0x50, 2, "r", cycles=2),
    OpSpec("pop", 0x58, 2, "r", cycles=2),
    OpSpec("load", 0x8B, 7, "rm", cycles=3),
    OpSpec("store", 0x8A, 7, "rm", cycles=3),
    OpSpec("pusha", 0x60, 1, "", cycles=16),
    OpSpec("popa", 0x61, 1, "", cycles=16),
)

BY_MNEMONIC: Dict[str, OpSpec] = {s.mnemonic: s for s in _SPECS}
BY_OPCODE: Dict[int, OpSpec] = {s.opcode: s for s in _SPECS}

if len(BY_OPCODE) != len(_SPECS):  # pragma: no cover - sanity at import
    raise AssertionError("duplicate opcode in VX86 spec")

# -- numeric dispatch ---------------------------------------------------
#
# Dense instruction ids for table dispatch: the translation cache indexes
# a compiler table by these instead of comparing mnemonic strings.  The
# id of a mnemonic is its position in _SPECS; OPCODE_TO_ID maps the raw
# opcode byte straight to the id (None for undecodable bytes).

OP_ID: Dict[str, int] = {s.mnemonic: i for i, s in enumerate(_SPECS)}
OP_SPECS: Tuple[OpSpec, ...] = _SPECS

OPCODE_TO_ID: Tuple = tuple(
    {s.opcode: i for i, s in enumerate(_SPECS)}.get(byte)
    for byte in range(256))

OP_NOP = OP_ID["nop"]
OP_SYSCALL = OP_ID["syscall"]
OP_INT0 = OP_ID["int0"]
OP_VSYS = OP_ID["vsys"]
OP_VMCALL = OP_ID["vmcall"]
OP_HLT = OP_ID["hlt"]
OP_JMP = OP_ID["jmp"]
OP_JZ = OP_ID["jz"]
OP_JNZ = OP_ID["jnz"]
OP_CALL = OP_ID["call"]
OP_CALLR = OP_ID["callr"]
OP_RET = OP_ID["ret"]
OP_MOV = OP_ID["mov"]
OP_MOVI = OP_ID["movi"]
OP_ADD = OP_ID["add"]
OP_ADDI = OP_ID["addi"]
OP_SUB = OP_ID["sub"]
OP_SUBI = OP_ID["subi"]
OP_CMP = OP_ID["cmp"]
OP_CMPI = OP_ID["cmpi"]
OP_PUSH = OP_ID["push"]
OP_POP = OP_ID["pop"]
OP_LOAD = OP_ID["load"]
OP_STORE = OP_ID["store"]
OP_PUSHA = OP_ID["pusha"]
OP_POPA = OP_ID["popa"]

#: Ids that terminate a translated block by entering a handler (or halt):
#: the block must stop *before* executing them so handler semantics and
#: ``max_insns`` accounting stay per-instruction exact.
HANDLER_OP_IDS = frozenset(
    {OP_SYSCALL, OP_INT0, OP_VSYS, OP_VMCALL, OP_HLT})

#: Ids that transfer control — always the last micro-op of their block.
CONTROL_OP_IDS = frozenset(
    {OP_JMP, OP_JZ, OP_JNZ, OP_CALL, OP_CALLR, OP_RET})

#: Direct transfers whose target is a translate-time constant: a
#: superblock may continue *through* them instead of ending (jmp spans
#: to its target, call spans to the callee after pushing the return
#: address).  Conditionals stay terminators — both outcomes are covered
#: by direct-threaded chaining instead.
DIRECT_SPAN_OP_IDS = frozenset({OP_JMP, OP_CALL})

#: Indirect transfers — the target is only known at run time, so they
#: always terminate a superblock.
INDIRECT_OP_IDS = frozenset({OP_CALLR, OP_RET})

#: Per-id cycle cost, indexable by instruction id (avoids the
#: ``insn.spec.cycles`` attribute chain on the dispatch path).
OP_CYCLES: Tuple[int, ...] = tuple(s.cycles for s in _SPECS)

#: Opcodes that transfer control (their rel32 targets are branch targets).
BRANCH_MNEMONICS = frozenset({"jmp", "jz", "jnz", "call"})

#: Instructions that may not be relocated into a trampoline because their
#: encoding is position-dependent (rel32) — moving them requires fixing
#: up the displacement, which the rewriter knows how to do — versus ones
#: that can never move.  In VX86 every instruction is either position-
#: independent or rel32-relative, so relocation is always *mechanically*
#: possible; what makes a site unpatchable is a branch target inside the
#: patch window (see repro.rewriter.scanner).
REL32_MNEMONICS = BRANCH_MNEMONICS
