"""Two-pass assembler for VX86 source.

Source syntax, one instruction or label per line::

    loop:
        movi rax, 3        ; close
        movi rdi, -1
        syscall
        subi rbx, 1
        cmpi rbx, 0
        jnz loop
        hlt

Labels resolve to byte offsets; ``jmp/jz/jnz/call`` take a label (or an
integer displacement) and are encoded rel32 against the *end* of the
instruction, like x86.
"""

from __future__ import annotations

import re
import struct
from typing import Dict, List, Tuple, Union

from repro.errors import AssemblyError
from repro.isa.opcodes import BY_MNEMONIC, REG_INDEX

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _parse_int(text: str) -> int:
    try:
        return int(text, 0)
    except ValueError as exc:
        raise AssemblyError(f"bad integer operand: {text!r}") from exc


def _encode_reg(name: str) -> int:
    try:
        return REG_INDEX[name]
    except KeyError as exc:
        raise AssemblyError(f"unknown register: {name!r}") from exc


def _split_line(line: str) -> str:
    return line.split(";", 1)[0].strip()


def assemble(source: str, origin: int = 0) -> bytes:
    """Assemble VX86 source into bytes loaded at address ``origin``."""
    code, _labels = assemble_with_symbols(source, origin)
    return code


def assemble_with_symbols(source: str, origin: int = 0):
    """Assemble and also return the label → absolute-address map."""
    lines = source.splitlines()
    parsed: List[Tuple[str, List[str]]] = []
    labels: Dict[str, int] = {}

    # Pass 1: measure and collect labels.
    offset = 0
    for lineno, raw in enumerate(lines, 1):
        line = _split_line(raw)
        if not line:
            continue
        if line.endswith(":"):
            name = line[:-1].strip()
            if not _LABEL_RE.match(name):
                raise AssemblyError(f"line {lineno}: bad label {name!r}")
            if name in labels:
                raise AssemblyError(f"line {lineno}: duplicate label {name!r}")
            labels[name] = offset
            continue
        mnemonic, _, rest = line.partition(" ")
        mnemonic = mnemonic.lower()
        spec = BY_MNEMONIC.get(mnemonic)
        if spec is None:
            raise AssemblyError(f"line {lineno}: unknown mnemonic {mnemonic!r}")
        operands = [op.strip() for op in rest.split(",")] if rest.strip() else []
        parsed.append((mnemonic, operands))
        offset += spec.length

    # Pass 2: encode.
    out = bytearray()
    for mnemonic, operands in parsed:
        spec = BY_MNEMONIC[mnemonic]
        out.append(spec.opcode)
        shape = spec.operands
        try:
            if shape == "":
                _expect(operands, 0, mnemonic)
            elif shape == "u8":
                _expect(operands, 1, mnemonic)
                out.append(_parse_int(operands[0]) & 0xFF)
            elif shape == "r":
                _expect(operands, 1, mnemonic)
                out.append(_encode_reg(operands[0]))
            elif shape == "rr":
                _expect(operands, 2, mnemonic)
                out.append((_encode_reg(operands[0]) << 4)
                           | _encode_reg(operands[1]))
            elif shape == "ri32":
                _expect(operands, 2, mnemonic)
                out.append(_encode_reg(operands[0]))
                out += struct.pack("<i", _parse_int(operands[1]))
            elif shape == "ri64":
                _expect(operands, 2, mnemonic)
                out.append(_encode_reg(operands[0]))
                out += struct.pack("<q", _resolve(operands[1], labels, origin,
                                                  absolute=True))
            elif shape == "i32":
                _expect(operands, 1, mnemonic)
                end = origin + len(out) - 1 + spec.length
                target = _resolve(operands[0], labels, origin, absolute=True)
                out += struct.pack("<i", target - end)
            elif shape == "rm":
                _expect(operands, 2, mnemonic)
                reg, mem = operands
                if mnemonic == "store":
                    reg, mem = mem, reg  # store [base+disp], src
                base, disp = _parse_mem(mem)
                out.append(_encode_reg(reg))
                out.append(_encode_reg(base))
                out += struct.pack("<i", disp)
            else:  # pragma: no cover - spec table is closed
                raise AssemblyError(f"unhandled shape {shape!r}")
        except struct.error as exc:
            raise AssemblyError(f"{mnemonic}: operand out of range") from exc
    return bytes(out), {name: origin + off for name, off in labels.items()}


def _expect(operands: List[str], count: int, mnemonic: str) -> None:
    if len(operands) != count:
        raise AssemblyError(
            f"{mnemonic}: expected {count} operand(s), got {len(operands)}")


def _resolve(text: str, labels: Dict[str, int], origin: int,
             absolute: bool) -> int:
    if _LABEL_RE.match(text) and text not in REG_INDEX:
        if text not in labels:
            raise AssemblyError(f"undefined label: {text!r}")
        return labels[text] + (origin if absolute else 0)
    return _parse_int(text)


def _parse_mem(text: str) -> Tuple[str, int]:
    """Parse ``[reg+disp]`` / ``[reg-disp]`` / ``[reg]``."""
    text = text.strip()
    if not (text.startswith("[") and text.endswith("]")):
        raise AssemblyError(f"bad memory operand: {text!r}")
    inner = text[1:-1].strip()
    match = re.match(r"^([a-z0-9]+)\s*([+-]\s*\d+)?$", inner)
    if not match:
        raise AssemblyError(f"bad memory operand: {text!r}")
    base = match.group(1)
    disp = int(match.group(2).replace(" ", "")) if match.group(2) else 0
    return base, disp
