"""Segmented address space for VX86 images.

Mirrors the parts of a Linux process image the paper cares about: text
segments of the application and dynamic linker, the vDSO, Varan's
injected monitor library, stack and heap — each with page permissions,
so the rewriter can honour the W^X discipline of §3.2.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from repro.errors import ExecutionFault, RewriteError

_MASK64 = 2 ** 64 - 1
_U64 = struct.Struct("<Q")


class Segment:
    """A contiguous mapped region."""

    def __init__(self, start: int, data: bytes, perms: str = "rw",
                 name: str = "seg") -> None:
        if not set(perms) <= set("rwx"):
            raise ExecutionFault(f"bad perms {perms!r}")
        self.start = start
        self.data = bytearray(data)
        self.perms = perms
        self.name = name
        #: Bumped on every mutation of :attr:`data` (stores and rewriter
        #: patches alike).  Translated code blocks record the version they
        #: were decoded from and are evicted when it no longer matches.
        self.version = 0
        # Segment length is fixed after construction (every mutation is
        # an equal-length splice), so the end is a plain attribute — this
        # sits on the per-access path of every find/read/write.
        self.end = start + len(self.data)
        # Permission booleans mirror :attr:`perms` (kept in sync by
        # mprotect): the u64 fast paths test these instead of scanning
        # the permission string per access.
        self.r_ok = "r" in perms
        self.w_ok = "w" in perms
        self.x_ok = "x" in perms

    def _sync_perm_flags(self) -> None:
        perms = self.perms
        self.r_ok = "r" in perms
        self.w_ok = "w" in perms
        self.x_ok = "x" in perms

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Segment {self.name} {self.start:#x}-{self.end:#x} "
                f"{self.perms}>")


class AddressSpace:
    """Collection of non-overlapping segments with permission checks."""

    def __init__(self) -> None:
        self.segments: List[Segment] = []
        #: Observers called as fn(segment) when a segment becomes
        #: executable — the hook the rewriter uses to catch code loaded
        #: or re-protected at runtime (§3.2 "whenever code is loaded").
        self.exec_hooks: List = []
        #: Bumped whenever the segment *layout* changes (map/unmap), so
        #: address-keyed caches can drop blocks whose address may now
        #: resolve to a different segment.  Also bumped when mprotect
        #: removes execute permission: directly-chained translated blocks
        #: skip the per-dispatch perms check, so losing "x" must force a
        #: full translation-cache flush to keep de-executed code from
        #: running through a stale chain.
        self.mapping_gen = 0
        #: page (addr >> 12) → segment, fed by :meth:`find` and consumed
        #: by the u64 fast paths.  Entries are only trusted after a full
        #: bounds + permission re-check, so the only invalidation needed
        #: is on unmap.
        self._pages: Dict[int, Segment] = {}

    def map(self, segment: Segment) -> Segment:
        for other in self.segments:
            if segment.start < other.end and other.start < segment.end:
                raise ExecutionFault(
                    f"mapping {segment.name} overlaps {other.name}")
        self.segments.append(segment)
        self.mapping_gen += 1
        if "x" in segment.perms:
            self._fire_exec_hooks(segment)
        return segment

    def unmap(self, segment: Segment) -> None:
        self.segments.remove(segment)
        self.mapping_gen += 1
        self._pages.clear()

    def find(self, addr: int) -> Segment:
        for segment in self.segments:
            if segment.contains(addr):
                self._pages[addr >> 12] = segment
                return segment
        raise ExecutionFault(f"unmapped address {addr:#x}")

    def find_by_name(self, name: str) -> Optional[Segment]:
        for segment in self.segments:
            if segment.name == name:
                return segment
        return None

    def mprotect(self, segment: Segment, perms: str) -> None:
        """Change permissions, enforcing W^X."""
        if "w" in perms and "x" in perms:
            raise RewriteError(
                f"{segment.name}: W^X violation (requested {perms!r})")
        newly_executable = "x" in perms and "x" not in segment.perms
        lost_execute = "x" not in perms and "x" in segment.perms
        segment.perms = perms
        segment._sync_perm_flags()
        if lost_execute:
            # Chained translated blocks bypass the per-dispatch perms
            # check; treat losing "x" like a layout change so caches
            # flush and the next dispatch faults exactly like per-step
            # decode would.
            self.mapping_gen += 1
        if newly_executable:
            self._fire_exec_hooks(segment)

    # -- typed accessors ------------------------------------------------

    def read(self, addr: int, size: int) -> bytes:
        segment = self.find(addr)
        if "r" not in segment.perms:
            raise ExecutionFault(f"read from non-readable {segment.name}")
        if addr + size > segment.end:
            raise ExecutionFault(f"read crosses segment end at {addr:#x}")
        off = addr - segment.start
        return bytes(segment.data[off:off + size])

    def write(self, addr: int, data: bytes) -> None:
        segment = self.find(addr)
        if "w" not in segment.perms:
            raise ExecutionFault(f"write to non-writable {segment.name}")
        if addr + len(data) > segment.end:
            raise ExecutionFault(f"write crosses segment end at {addr:#x}")
        off = addr - segment.start
        segment.data[off:off + len(data)] = data
        segment.version += 1

    def read_u64(self, addr: int) -> int:
        # Page-cache fast path: every condition the slow path enforces is
        # re-checked here (containment, readability, no segment-end
        # crossing), so the two paths are observably identical and the
        # slow path keeps sole ownership of fault messages.
        seg = self._pages.get(addr >> 12)
        if (seg is not None and seg.r_ok and seg.start <= addr
                and addr + 8 <= seg.end):
            return _U64.unpack_from(seg.data, addr - seg.start)[0]
        return _U64.unpack(self.read(addr, 8))[0]

    def write_u64(self, addr: int, value: int) -> None:
        seg = self._pages.get(addr >> 12)
        if (seg is not None and seg.w_ok and seg.start <= addr
                and addr + 8 <= seg.end):
            _U64.pack_into(seg.data, addr - seg.start, value & _MASK64)
            seg.version += 1
            return
        self.write(addr, _U64.pack(value & _MASK64))

    def fetch_code(self, addr: int, size: int) -> bytes:
        """Instruction fetch: requires execute permission."""
        segment = self.find(addr)
        if "x" not in segment.perms:
            raise ExecutionFault(
                f"execute from non-executable {segment.name} at {addr:#x}")
        off = addr - segment.start
        return bytes(segment.data[off:off + size])

    def patch_code(self, addr: int, data: bytes) -> None:
        """Rewriter-only mutation of an executable segment.

        Models the rewriter's temporary re-protection cycle: it never
        leaves a segment writable+executable, so the patch is applied
        through a privileged path rather than a plain store.
        """
        segment = self.find(addr)
        if addr + len(data) > segment.end:
            raise RewriteError(f"patch crosses segment end at {addr:#x}")
        off = addr - segment.start
        segment.data[off:off + len(data)] = data
        segment.version += 1

    def bitflip(self, addr: int, bit: int) -> bool:
        """Flip one bit of mapped memory (fault injection).

        Bypasses permission checks — a cosmic ray does not consult the
        page tables — but bumps the segment version so translated code
        caching the old bytes is invalidated, exactly as any other
        mutation would.  Returns False when ``addr`` is unmapped (the
        injector journals the skip instead of faulting).
        """
        for segment in self.segments:
            if segment.contains(addr):
                off = addr - segment.start
                segment.data[off] ^= 1 << (bit & 7)
                segment.version += 1
                return True
        return False

    def _fire_exec_hooks(self, segment: Segment) -> None:
        for hook in list(self.exec_hooks):
            hook(segment)
