"""Translation cache for the VX86 interpreter.

This is the interpreter-side analogue of the paper's load-time binary
rewriting (§3.2): pay the decode cost *once* per basic block instead of
once per retired instruction.  Each executable region is decoded into
basic blocks of pre-bound micro-ops — Python closures with operands,
register indices and memory accessors resolved at translate time,
selected through a numeric opcode table rather than a mnemonic string
chain — keyed by entry address and looked up by ``Cpu.run``.

Semantics are preserved per instruction, not per block:

* blocks end at control transfers and *before* any ``syscall`` /
  ``int0`` / ``vsys`` / ``vmcall`` / ``hlt``, so handler invocation
  order, ``max_insns`` accounting and sim-time interleavings are exactly
  those of per-step decode;
* every micro-op that can fault records the faulting instruction's
  address and the cycles retired before it, so a fault leaves ``rip``
  and ``cycles`` exactly as the per-step interpreter would;
* micro-ops that write memory re-check their segment's version after
  the store and bail out of the block if the code under it changed
  (self-modifying guest code), resuming at the next instruction.

Invalidation is driven by the write-tracking in
:mod:`repro.isa.memory`: every mutation of a segment bumps
``Segment.version`` (plain stores and the rewriter's ``patch_code``
text patches alike) and every map/unmap bumps
``AddressSpace.mapping_gen``.  A cached block is only reused while both
still match what it was translated from.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import DisassemblyError, ExecutionFault
from repro.isa.disassembler import decode_one
from repro.isa.opcodes import (
    CONTROL_OP_IDS,
    HANDLER_OP_IDS,
    OPCODE_TO_ID,
    OP_ADD,
    OP_ADDI,
    OP_CALL,
    OP_CALLR,
    OP_CMP,
    OP_CMPI,
    OP_HLT,
    OP_INT0,
    OP_JMP,
    OP_JNZ,
    OP_JZ,
    OP_LOAD,
    OP_MOV,
    OP_MOVI,
    OP_NOP,
    OP_POP,
    OP_POPA,
    OP_PUSH,
    OP_PUSHA,
    OP_RET,
    OP_SPECS,
    OP_STORE,
    OP_SUB,
    OP_SUBI,
    OP_SYSCALL,
    OP_VSYS,
    REG_INDEX,
)

_MASK = 2 ** 64 - 1
_RSP = REG_INDEX["rsp"]
_PUSHA_ORDER = tuple(i for i in range(16) if i != _RSP)
_POPA_ORDER = tuple(i for i in reversed(range(16)) if i != _RSP)

# Block terminator kinds.
T_FALL = 0      # block ended at the insn cap or a decode boundary
T_BRANCH = 1    # last micro-op transferred control (set cpu.rip)
T_HLT = 2
T_SYSCALL = 3
T_INT0 = 4
T_VSYS = 5
T_VMCALL = 6


class BlockExit(Exception):
    """Internal: a micro-op detected self-modified code mid-block.

    Carries exact resume state so the executor retires precisely the
    micro-ops that ran (including the store that did the modifying).
    """

    def __init__(self, next_rip: int, cycles_done: int,
                 n_done: int) -> None:
        super().__init__("block invalidated mid-execution")
        self.next_rip = next_rip
        self.cycles_done = cycles_done
        self.n_done = n_done


#: Superblock length histogram buckets: lengths land in bucket
#: ``bit_length`` (same power-of-two rule as obs.metrics.Histogram), and
#: the insn cap of 128 bounds the exponent at 8.
SB_LEN_BUCKETS = 9


class CacheStats:
    """Hit/miss/invalidation counters for one cache (or the process)."""

    __slots__ = ("hits", "misses", "invalidations", "blocks_translated",
                 "insns_translated", "chains_linked", "chains_broken",
                 "chain_follows", "dispatch_blocks", "fused_blocks",
                 "sb_len_buckets")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.blocks_translated = 0
        self.insns_translated = 0
        #: Direct-threaded chaining: exit→entry links patched in (linked),
        #: dropped by invalidation (broken), and block entries reached by
        #: following a link (chain_follows) versus through the dispatch
        #: loop's full lookup (dispatch_blocks).
        self.chains_linked = 0
        self.chains_broken = 0
        self.chain_follows = 0
        self.dispatch_blocks = 0
        #: Blocks promoted to a fused (compiled) body after going hot.
        self.fused_blocks = 0
        self.sb_len_buckets = [0] * SB_LEN_BUCKETS

    def observe_length(self, n_insns: int) -> None:
        bucket = n_insns.bit_length() if n_insns > 0 else 0
        self.sb_len_buckets[min(bucket, SB_LEN_BUCKETS - 1)] += 1

    def as_dict(self) -> Dict[str, int]:
        counters = {
            "tcache.hits": self.hits,
            "tcache.misses": self.misses,
            "tcache.invalidations": self.invalidations,
            "tcache.blocks_translated": self.blocks_translated,
            "tcache.insns_translated": self.insns_translated,
            "tcache.chains_linked": self.chains_linked,
            "tcache.chains_broken": self.chains_broken,
            "tcache.chain_follows": self.chain_follows,
            "tcache.dispatch_blocks": self.dispatch_blocks,
            "tcache.fused_blocks": self.fused_blocks,
        }
        for exp, count in enumerate(self.sb_len_buckets):
            counters[f"tcache.sb_len_p2_{exp}"] = count
        return counters


#: Process-wide aggregate over every cache; ``repro.obs.metrics`` reads
#: deltas of this so ``sweep --metrics`` surfaces translation activity.
GLOBAL_STATS = CacheStats()


class CodeBlock:
    """One translated superblock (or basic block in ``blocks`` mode)."""

    __slots__ = ("entry", "ops", "n_ops", "cycles", "cum", "bounds",
                 "terminator", "term_arg", "term_addr", "term_end",
                 "term_cycles", "end_rip", "segment", "version", "insns",
                 "chain", "hot", "fn")

    def __init__(self, entry, ops, cycles, cum, bounds, terminator,
                 term_arg, term_addr, term_end, term_cycles, end_rip,
                 segment, version, insns=()) -> None:
        self.entry = entry
        self.ops = ops
        self.n_ops = len(ops)
        self.cycles = cycles          # total cycles of the straight ops
        self.cum = cum                # cumulative cycles after op i
        self.bounds = bounds          # addr of op i; bounds[n] = end
        self.terminator = terminator
        self.term_arg = term_arg      # vsys index operand
        self.term_addr = term_addr    # address of the terminator insn
        self.term_end = term_end      # rip while its handler runs
        self.term_cycles = term_cycles
        self.end_rip = end_rip        # resume address for T_FALL
        self.segment = segment
        self.version = version
        #: Decoded instructions behind ``ops`` (same indexing), kept for
        #: the fused-code generator.
        self.insns = insns
        #: Direct-threaded chain: successor rip → successor CodeBlock,
        #: patched in on first execution of each exit and dropped when
        #: the successor is invalidated.  Validity is re-checked at every
        #: follow (segment version + mapping generation).
        self.chain: Dict[int, "CodeBlock"] = {}
        #: Executions seen; promotion to a fused body happens at the
        #: cache's fuse threshold.
        self.hot = 0
        #: Fused compiled body (see repro.isa.fuser), or None while cold.
        self.fn = None


class _OpCtx:
    """Translate-time context handed to each micro-op compiler."""

    __slots__ = ("cpu", "regs", "read_u64", "write_u64", "segment",
                 "version", "cyc_before", "cyc_after", "n_done",
                 "next_addr")

    def __init__(self, cpu, regs, read_u64, write_u64, segment, version,
                 cyc_before, cyc_after, n_done, next_addr) -> None:
        self.cpu = cpu
        self.regs = regs
        self.read_u64 = read_u64
        self.write_u64 = write_u64
        self.segment = segment
        self.version = version
        self.cyc_before = cyc_before
        self.cyc_after = cyc_after
        self.n_done = n_done
        self.next_addr = next_addr


# -- micro-op compilers --------------------------------------------------
#
# One entry per instruction id; each returns a zero-argument closure with
# everything pre-bound.  Handler/hlt ids stay None: they terminate blocks
# and are interpreted by the executor in Cpu._run_cached.

_COMPILERS: List = [None] * len(OP_SPECS)


def _compiles(op_id: int):
    def register(fn):
        _COMPILERS[op_id] = fn
        return fn
    return register


@_compiles(OP_NOP)
def _c_nop(insn, ctx):
    def op():
        pass
    return op


@_compiles(OP_MOV)
def _c_mov(insn, ctx):
    regs = ctx.regs
    d, s = insn.operands

    def op():
        regs[d] = regs[s]
    return op


@_compiles(OP_MOVI)
def _c_movi(insn, ctx):
    regs = ctx.regs
    d = insn.operands[0]
    value = insn.operands[1] & _MASK

    def op():
        regs[d] = value
    return op


@_compiles(OP_ADD)
def _c_add(insn, ctx):
    regs = ctx.regs
    d, s = insn.operands

    def op():
        regs[d] = (regs[d] + regs[s]) & _MASK
    return op


@_compiles(OP_ADDI)
def _c_addi(insn, ctx):
    regs = ctx.regs
    d, imm = insn.operands

    def op():
        regs[d] = (regs[d] + imm) & _MASK
    return op


@_compiles(OP_SUB)
def _c_sub(insn, ctx):
    cpu, regs = ctx.cpu, ctx.regs
    d, s = insn.operands

    def op():
        result = (regs[d] - regs[s]) & _MASK
        regs[d] = result
        cpu.zf = result == 0
    return op


@_compiles(OP_SUBI)
def _c_subi(insn, ctx):
    cpu, regs = ctx.cpu, ctx.regs
    d, imm = insn.operands

    def op():
        result = (regs[d] - imm) & _MASK
        regs[d] = result
        cpu.zf = result == 0
    return op


@_compiles(OP_CMP)
def _c_cmp(insn, ctx):
    cpu, regs = ctx.cpu, ctx.regs
    d, s = insn.operands

    def op():
        cpu.zf = regs[d] == regs[s]
    return op


@_compiles(OP_CMPI)
def _c_cmpi(insn, ctx):
    cpu, regs = ctx.cpu, ctx.regs
    d = insn.operands[0]
    value = insn.operands[1] & _MASK

    def op():
        cpu.zf = regs[d] == value
    return op


@_compiles(OP_JMP)
def _c_jmp(insn, ctx):
    cpu = ctx.cpu
    target = insn.end + insn.operands[0]

    def op():
        cpu.rip = target
    return op


@_compiles(OP_JZ)
def _c_jz(insn, ctx):
    cpu = ctx.cpu
    taken = insn.end + insn.operands[0]
    fallthrough = insn.end

    def op():
        cpu.rip = taken if cpu.zf else fallthrough
    return op


@_compiles(OP_JNZ)
def _c_jnz(insn, ctx):
    cpu = ctx.cpu
    taken = insn.end + insn.operands[0]
    fallthrough = insn.end

    def op():
        cpu.rip = fallthrough if cpu.zf else taken
    return op


@_compiles(OP_CALL)
def _c_call(insn, ctx):
    cpu, regs, write_u64 = ctx.cpu, ctx.regs, ctx.write_u64
    ret_addr = insn.end
    target = insn.end + insn.operands[0]
    fault_addr = insn.addr
    cyc_before = ctx.cyc_before

    def op():
        rsp = (regs[_RSP] - 8) & _MASK
        regs[_RSP] = rsp
        try:
            write_u64(rsp, ret_addr)
        except BaseException:
            cpu.rip = fault_addr
            cpu._fault_cycles = cyc_before
            raise
        cpu.rip = target
    return op


@_compiles(OP_CALLR)
def _c_callr(insn, ctx):
    cpu, regs, write_u64 = ctx.cpu, ctx.regs, ctx.write_u64
    ret_addr = insn.end
    r = insn.operands[0]
    fault_addr = insn.addr
    cyc_before = ctx.cyc_before

    def op():
        rsp = (regs[_RSP] - 8) & _MASK
        regs[_RSP] = rsp
        try:
            write_u64(rsp, ret_addr)
        except BaseException:
            cpu.rip = fault_addr
            cpu._fault_cycles = cyc_before
            raise
        # Read after the push, like the interpreter (matters for r==rsp).
        cpu.rip = regs[r]
    return op


@_compiles(OP_RET)
def _c_ret(insn, ctx):
    cpu, regs, read_u64 = ctx.cpu, ctx.regs, ctx.read_u64
    fault_addr = insn.addr
    cyc_before = ctx.cyc_before

    def op():
        rsp = regs[_RSP]
        try:
            value = read_u64(rsp)
        except BaseException:
            cpu.rip = fault_addr
            cpu._fault_cycles = cyc_before
            raise
        regs[_RSP] = (rsp + 8) & _MASK
        cpu.rip = value
    return op


@_compiles(OP_PUSH)
def _c_push(insn, ctx):
    cpu, regs, write_u64 = ctx.cpu, ctx.regs, ctx.write_u64
    s = insn.operands[0]
    fault_addr = insn.addr
    cyc_before = ctx.cyc_before
    seg, version = ctx.segment, ctx.version
    bail = BlockExit(ctx.next_addr, ctx.cyc_after, ctx.n_done)

    def op():
        # Read the source before moving rsp, like the interpreter does
        # (matters for `push rsp`, which stores the *old* value).
        value = regs[s]
        rsp = (regs[_RSP] - 8) & _MASK
        regs[_RSP] = rsp
        try:
            write_u64(rsp, value)
        except BaseException:
            cpu.rip = fault_addr
            cpu._fault_cycles = cyc_before
            raise
        if seg.version != version:
            raise bail
    return op


@_compiles(OP_POP)
def _c_pop(insn, ctx):
    cpu, regs, read_u64 = ctx.cpu, ctx.regs, ctx.read_u64
    d = insn.operands[0]
    fault_addr = insn.addr
    cyc_before = ctx.cyc_before

    def op():
        rsp = regs[_RSP]
        try:
            value = read_u64(rsp)
        except BaseException:
            cpu.rip = fault_addr
            cpu._fault_cycles = cyc_before
            raise
        regs[_RSP] = (rsp + 8) & _MASK
        regs[d] = value
    return op


@_compiles(OP_LOAD)
def _c_load(insn, ctx):
    cpu, regs, read_u64 = ctx.cpu, ctx.regs, ctx.read_u64
    d, b, disp = insn.operands
    fault_addr = insn.addr
    cyc_before = ctx.cyc_before

    def op():
        try:
            regs[d] = read_u64(regs[b] + disp)
        except BaseException:
            cpu.rip = fault_addr
            cpu._fault_cycles = cyc_before
            raise
    return op


@_compiles(OP_STORE)
def _c_store(insn, ctx):
    cpu, regs, write_u64 = ctx.cpu, ctx.regs, ctx.write_u64
    s, b, disp = insn.operands
    fault_addr = insn.addr
    cyc_before = ctx.cyc_before
    seg, version = ctx.segment, ctx.version
    bail = BlockExit(ctx.next_addr, ctx.cyc_after, ctx.n_done)

    def op():
        try:
            write_u64(regs[b] + disp, regs[s])
        except BaseException:
            cpu.rip = fault_addr
            cpu._fault_cycles = cyc_before
            raise
        if seg.version != version:
            raise bail
    return op


@_compiles(OP_PUSHA)
def _c_pusha(insn, ctx):
    cpu, regs, write_u64 = ctx.cpu, ctx.regs, ctx.write_u64
    fault_addr = insn.addr
    cyc_before = ctx.cyc_before
    seg, version = ctx.segment, ctx.version
    bail = BlockExit(ctx.next_addr, ctx.cyc_after, ctx.n_done)

    def op():
        try:
            for i in _PUSHA_ORDER:
                rsp = (regs[_RSP] - 8) & _MASK
                regs[_RSP] = rsp
                write_u64(rsp, regs[i])
        except BaseException:
            cpu.rip = fault_addr
            cpu._fault_cycles = cyc_before
            raise
        if seg.version != version:
            raise bail
    return op


@_compiles(OP_POPA)
def _c_popa(insn, ctx):
    cpu, regs, read_u64 = ctx.cpu, ctx.regs, ctx.read_u64
    fault_addr = insn.addr
    cyc_before = ctx.cyc_before

    def op():
        try:
            for i in _POPA_ORDER:
                rsp = regs[_RSP]
                value = read_u64(rsp)
                regs[_RSP] = (rsp + 8) & _MASK
                regs[i] = value
        except BaseException:
            cpu.rip = fault_addr
            cpu._fault_cycles = cyc_before
            raise
    return op


# -- spanned direct transfers (superblock formation) ----------------------
#
# When a superblock continues *through* a direct jmp, the jump costs its
# cycle but moves no architectural state the trace doesn't already know:
# the op is an accounting placeholder so ops/bounds/cum stay parallel
# arrays.  A spanned call does real work (pushes the return address) and
# must bail to its *target* if the push modified this block's own code.


def _noop():
    pass


def _c_call_span(insn, ctx):
    """A direct call spanned mid-trace: push the return address and keep
    going at the translate-time target (``ctx.next_addr``)."""
    cpu, regs, write_u64 = ctx.cpu, ctx.regs, ctx.write_u64
    ret_addr = insn.end
    fault_addr = insn.addr
    cyc_before = ctx.cyc_before
    seg, version = ctx.segment, ctx.version
    bail = BlockExit(ctx.next_addr, ctx.cyc_after, ctx.n_done)

    def op():
        rsp = (regs[_RSP] - 8) & _MASK
        regs[_RSP] = rsp
        try:
            write_u64(rsp, ret_addr)
        except BaseException:
            cpu.rip = fault_addr
            cpu._fault_cycles = cyc_before
            raise
        if seg.version != version:
            raise bail
    return op


# -- the cache -----------------------------------------------------------


#: Executions of a block before it is promoted to a fused compiled body.
#: Low enough that any loop fuses almost immediately; high enough that
#: straight-line code executed once never pays the compile.
FUSE_THRESHOLD = 8

#: Superblock formation never crosses a 4 KiB page boundary from its
#: entry — the paper-side invalidation granularity.
_PAGE_MASK = ~0xFFF


class TranslationCache:
    """Entry-address-keyed cache of :class:`CodeBlock` for one Cpu.

    ``superblocks=True`` (the default) builds traces that span direct
    branches and fall-throughs, chains block exits directly to successor
    blocks, and promotes hot blocks to fused compiled bodies.
    ``superblocks=False`` reproduces the PR 3 behaviour — one basic
    block per control transfer, every entry through the dispatch loop —
    and is kept as the machine-independent benchmark baseline
    (``Cpu(translate="blocks")``).
    """

    __slots__ = ("space", "blocks", "by_segment", "stats",
                 "max_block_insns", "superblocks", "fuse_threshold",
                 "_mapping_gen")

    def __init__(self, space, max_block_insns: int = 128,
                 superblocks: bool = True) -> None:
        self.space = space
        self.blocks: Dict[int, CodeBlock] = {}
        self.by_segment: Dict[int, Set[int]] = {}
        self.stats = CacheStats()
        self.max_block_insns = max_block_insns
        self.superblocks = superblocks
        self.fuse_threshold = FUSE_THRESHOLD
        self._mapping_gen = space.mapping_gen

    def lookup(self, cpu) -> CodeBlock:
        """Return a valid block for ``cpu.rip``, translating on miss.

        Raises exactly what per-step decode would raise at this address:
        ``ExecutionFault`` for unmapped/non-executable rips,
        ``DisassemblyError`` for undecodable first bytes.
        """
        space = self.space
        if space.mapping_gen != self._mapping_gen:
            self.flush()
            self._mapping_gen = space.mapping_gen
        rip = cpu.rip
        block = self.blocks.get(rip)
        if block is not None:
            segment = block.segment
            if segment.version == block.version:
                if "x" not in segment.perms:
                    raise ExecutionFault(
                        f"{cpu.name}: rip {rip:#x} not executable")
                self.stats.hits += 1
                GLOBAL_STATS.hits += 1
                return block
            self._evict_segment(segment)
        self.stats.misses += 1
        GLOBAL_STATS.misses += 1
        block = self.translate(cpu, rip)
        self.blocks[rip] = block
        self.by_segment.setdefault(id(block.segment), set()).add(rip)
        return block

    def flush(self) -> None:
        """Drop every cached block (segment layout changed)."""
        dropped = len(self.blocks)
        broken = 0
        for block in self.blocks.values():
            broken += len(block.chain)
        self.stats.invalidations += dropped
        self.stats.chains_broken += broken
        GLOBAL_STATS.invalidations += dropped
        GLOBAL_STATS.chains_broken += broken
        self.blocks.clear()
        self.by_segment.clear()

    def _evict_segment(self, segment) -> None:
        """Drop all blocks translated from a now-stale segment, and
        eagerly unlink every chain edge into them so no survivor can
        reach an evicted block without a fresh dispatch."""
        entries = self.by_segment.pop(id(segment), None)
        if not entries:
            return
        broken = 0
        for entry in entries:
            evicted = self.blocks.pop(entry, None)
            if evicted is not None:
                broken += len(evicted.chain)
        for block in self.blocks.values():
            chain = block.chain
            if not chain:
                continue
            stale = [rip for rip, succ in chain.items()
                     if succ.segment is segment]
            for rip in stale:
                del chain[rip]
            broken += len(stale)
        self.stats.invalidations += len(entries)
        self.stats.chains_broken += broken
        GLOBAL_STATS.invalidations += len(entries)
        GLOBAL_STATS.chains_broken += broken

    def translate(self, cpu, rip: int) -> CodeBlock:
        """Decode one superblock (or basic block) starting at ``rip``.

        In superblock mode the trace continues *through* direct
        ``jmp``/``call`` (the jump becomes an accounting no-op, the call
        pushes its return address and resumes decoding at the callee)
        and ends only at conditionals and indirect transfers (covered by
        chaining), handler/hlt instructions, the insn cap, a revisited
        address, or the edge of the entry's 4 KiB page.  In basic-block
        mode (``superblocks=False``) every control transfer ends the
        block — the PR 3 shape, byte-for-byte.
        """
        space = self.space
        segment = space.find(rip)
        if "x" not in segment.perms:
            raise ExecutionFault(
                f"{cpu.name}: rip {rip:#x} not executable")
        code = bytes(segment.data)
        base = segment.start
        version = segment.version
        regs = cpu.regs
        read_u64 = space.read_u64
        write_u64 = space.write_u64

        ops: List = []
        insns: List = []
        bounds: List[int] = []
        cum: List[int] = []
        total = 0
        terminator = T_FALL
        term_arg = 0
        term_addr = 0
        term_end = 0
        term_cycles = 0
        offset = rip - base
        addr = rip
        limit = self.max_block_insns
        span = self.superblocks
        page_start = rip & _PAGE_MASK
        page_end = page_start + 0x1000
        visited: Set[int] = set()
        while len(ops) < limit:
            try:
                insn = decode_one(code, offset, base)
            except DisassemblyError:
                if not ops:
                    # The per-step interpreter would fault right here,
                    # with nothing retired; re-raise its exact error.
                    raise
                # Otherwise stop the block *before* the bad bytes: the
                # fault fires only if execution actually reaches them.
                break
            op_id = insn.op_id
            if op_id in HANDLER_OP_IDS:
                if op_id == OP_HLT:
                    terminator = T_HLT
                elif op_id == OP_SYSCALL:
                    terminator = T_SYSCALL
                elif op_id == OP_INT0:
                    terminator = T_INT0
                elif op_id == OP_VSYS:
                    terminator = T_VSYS
                    term_arg = insn.operands[0]
                else:
                    terminator = T_VMCALL
                term_addr = insn.addr
                term_end = insn.end
                term_cycles = insn.spec.cycles
                break
            cycles = insn.spec.cycles
            next_addr = insn.end
            compiler = _COMPILERS[op_id]
            spanned = False
            if span and (op_id == OP_JMP or op_id == OP_CALL):
                target = insn.end + insn.operands[0]
                if (base <= target < segment.end
                        and page_start <= target < page_end
                        and target not in visited
                        and len(ops) + 1 < limit):
                    # Continue the trace through the direct transfer.
                    spanned = True
                    next_addr = target
                    compiler = None if op_id == OP_JMP else _c_call_span
            ctx = _OpCtx(cpu, regs, read_u64, write_u64, segment,
                         version, total, total + cycles, len(ops) + 1,
                         next_addr)
            total += cycles
            ops.append(_noop if compiler is None else compiler(insn, ctx))
            insns.append(insn)
            bounds.append(insn.addr)
            cum.append(total)
            visited.add(insn.addr)
            if op_id in CONTROL_OP_IDS and not spanned:
                terminator = T_BRANCH
                addr = insn.end
                break
            addr = next_addr
            offset = addr - base
            if span and (addr in visited
                         or not page_start <= addr < page_end):
                # Loop closed or page edge: stop here and let chaining
                # thread this exit to the successor block.
                break

        stats = self.stats
        stats.blocks_translated += 1
        stats.insns_translated += len(ops)
        stats.observe_length(len(ops))
        GLOBAL_STATS.blocks_translated += 1
        GLOBAL_STATS.insns_translated += len(ops)
        GLOBAL_STATS.observe_length(len(ops))
        return CodeBlock(rip, tuple(ops), total, tuple(cum),
                         tuple(bounds) + (addr,), terminator, term_arg,
                         term_addr, term_end, term_cycles, addr, segment,
                         version, tuple(insns))
