"""Calibrated cycle-cost model for the simulated substrate.

Every timing in the reproduction flows through this module.  The constants
below are calibrated once against the numbers reported in the paper
(Figure 4 microbenchmarks, Table 2 prior-system overheads) and then kept
frozen; experiments are expected to reproduce the paper's *shape*, not its
absolute cycle counts.

All durations handed to the simulator are integer picoseconds.  The paper's
test machine is a 3.50 GHz Xeon E3-1280, so one cycle is 285.7 ps; we round
to 286 ps which keeps the arithmetic integral without affecting any ratio
by more than 0.2%.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

#: Picoseconds per CPU cycle at the paper's 3.50 GHz clock.
CYCLE_PS = 286

#: Picoseconds per microsecond, handy for latency assertions in tests.
US_PS = 1_000_000

#: Picoseconds per millisecond.
MS_PS = 1_000_000_000

#: Picoseconds per second.
SEC_PS = 1_000_000_000_000


def cycles(n: float) -> int:
    """Convert a cycle count to integer picoseconds."""
    return int(n * CYCLE_PS)


def to_cycles(ps: float) -> float:
    """Convert picoseconds back to (fractional) cycles."""
    return ps / CYCLE_PS


@dataclass(frozen=True)
class MachineSpec:
    """Hardware parameters of a simulated machine.

    The defaults describe the paper's testbed: a four-core/eight-thread
    3.50 GHz Xeon E3-1280 with 16 GB RAM, two of them in one rack joined
    by a 1 Gb Ethernet link.
    """

    name: str = "xeon-e3-1280"
    logical_cores: int = 8
    physical_cores: int = 4
    freq_ghz: float = 3.5
    ram_bytes: int = 16 * 1024 ** 3


@dataclass(frozen=True)
class NetworkSpec:
    """Link parameters between the client and server machines."""

    #: One-way propagation + switching latency for a same-rack hop.
    latency_ps: int = 12 * US_PS
    #: 1 Gb Ethernet ~ 125 MB/s ~ 8 ns per byte.
    ps_per_byte: int = 8000


@dataclass(frozen=True)
class SyscallCosts:
    """Native execution cost of each syscall class, in cycles.

    Values for the five microbenchmark calls are taken directly from the
    ``native`` bars of Figure 4; the remaining entries are interpolated
    from published Linux syscall latency studies and only influence the
    macro-benchmarks through their (calibrated) aggregate mixes.
    """

    table: Dict[str, int] = field(
        default_factory=lambda: {
            "default": 1300,
            "close": 1261,
            "write": 1430,
            "read": 1486,
            "open": 2583,
            "openat": 2583,
            "time": 49,  # vDSO
            "gettimeofday": 55,  # vDSO
            "clock_gettime": 55,  # vDSO
            "getcpu": 45,  # vDSO
            "socket": 2900,
            "bind": 1500,
            "listen": 1400,
            "accept": 9000,
            "accept4": 9000,
            "connect": 12000,
            "send": 7000,
            "sendto": 7000,
            "recv": 6500,
            "recvfrom": 6500,
            "sendmsg": 2100,
            "recvmsg": 2050,
            "epoll_create": 1800,
            "epoll_ctl": 1250,
            "epoll_wait": 5200,
            "poll": 1700,
            "select": 1750,
            "stat": 1900,
            "fstat": 1300,
            "lstat": 1900,
            "lseek": 1100,
            "mmap": 2400,
            "munmap": 2100,
            "mprotect": 1900,
            "brk": 1200,
            "dup": 1150,
            "dup2": 1200,
            "fcntl": 1100,
            "ioctl": 1300,
            "pipe": 2300,
            "socketpair": 3000,
            "fork": 45000,
            "clone": 38000,
            "execve": 250000,
            "exit": 8000,
            "exit_group": 9000,
            "wait4": 2600,
            "kill": 1900,
            "tgkill": 1900,
            "rt_sigaction": 1350,
            "rt_sigprocmask": 1200,
            "rt_sigreturn": 1600,
            "sigaltstack": 1250,
            "futex": 1800,
            "sched_yield": 1100,
            "nanosleep": 1900,
            "getpid": 1050,
            "gettid": 1050,
            "getuid": 1030,
            "geteuid": 1030,
            "getgid": 1030,
            "getegid": 1030,
            "setsockopt": 1350,
            "getsockopt": 1350,
            "getsockname": 1300,
            "getpeername": 1300,
            "shutdown": 1600,
            "unlink": 2200,
            "rename": 2600,
            "mkdir": 2500,
            "rmdir": 2300,
            "getdents": 2200,
            "readlink": 1900,
            "access": 1700,
            "chmod": 2000,
            "chown": 2000,
            "umask": 1050,
            "getrlimit": 1150,
            "setrlimit": 1250,
            "getrusage": 1400,
            "sysinfo": 1500,
            "uname": 1250,
            "sendfile": 2600,
            "writev": 1700,
            "readv": 1700,
            "pread": 1550,
            "pwrite": 1500,
            "ftruncate": 1800,
            "fsync": 15000,
            "fdatasync": 12000,
            "chdir": 1600,
            "getcwd": 1400,
            "setuid": 1300,
            "setgid": 1300,
            "setsid": 1500,
            "prctl": 1250,
            "arch_prctl": 1100,
            "set_tid_address": 1050,
            "set_robust_list": 1050,
            "eventfd": 1900,
            "timerfd_create": 2000,
            "timerfd_settime": 1500,
            "signalfd": 2000,
            "inotify_init": 2100,
            "madvise": 1500,
            "mlock": 1900,
            "shmget": 2500,
            "shmat": 2400,
            "shmdt": 2200,
            "times": 1200,
            "getpriority": 1150,
            "setpriority": 1250,
            "sched_getaffinity": 1300,
            "sched_setaffinity": 1400,
            "epoll_create1": 1800,
            "pipe2": 2300,
            "getrandom": 1700,
            "issetugid": 1030,
        }
    )

    #: Additional cost per byte moved through read/write style calls, on
    #: top of the base cost (which already covers the first 512 bytes).
    per_byte: float = 0.55
    #: Bytes already covered by the base cost of an I/O syscall.
    base_bytes: int = 512

    def native(self, name: str, nbytes: int = 0) -> int:
        """Native cost (cycles) of one syscall moving ``nbytes`` bytes."""
        base = self.table.get(name, self.table["default"])
        extra = max(0, nbytes - self.base_bytes) * self.per_byte
        return int(base + extra)


@dataclass(frozen=True)
class InterceptCosts:
    """Costs of Varan's binary-rewriting dispatch path, in cycles."""

    #: Patched ``JMP`` + detour trampoline to the entry point and back.
    trampoline: int = 25
    #: ``INT 0x0`` fallback: interrupt, signal delivery, sigreturn.
    int_fallback: int = 1750
    #: System call entry point: save all registers / restore + return.
    save_restore: int = 30
    #: Internal syscall table consultation and handler dispatch.
    table_lookup: int = 15
    #: Extra work to enter a rewritten vDSO function through the generated
    #: stub (stack setup + call into the entry point).
    vdso_stub: int = 73

    @property
    def fast_path(self) -> int:
        """Cycles added by interception at a JMP-patched site."""
        return self.trampoline + self.save_restore + self.table_lookup

    @property
    def slow_path(self) -> int:
        """Cycles added by interception at an INT-patched site."""
        return self.int_fallback + self.save_restore + self.table_lookup


@dataclass(frozen=True)
class StreamCosts:
    """Costs of Varan's event-streaming machinery, in cycles."""

    #: Claim a slot, fill one 64-byte cache-line event, bump the Lamport
    #: clock, publish the producer cursor.
    ring_publish: int = 400
    #: Spot a published event, validate the timestamp, copy the line out,
    #: advance the consumer gating sequence.
    ring_consume: int = 190
    #: Allocate a chunk from the shared pool allocator (bucket free list).
    shm_alloc: int = 150
    #: Return a chunk to its bucket free list.
    shm_free: int = 80
    #: Copy payload bytes to/from shared memory, per byte.
    copy_per_byte: float = 2.4
    #: Send one file descriptor over the data channel (sendmsg with
    #: SCM_RIGHTS), charged to the leader per follower.
    fd_send: int = 5400
    #: Receive + install one duplicated descriptor, charged to a follower.
    fd_recv: int = 6900
    #: Futex-based waitlock: going to sleep on an empty ring.
    waitlock_sleep: int = 1400
    #: Futex wake issued by the leader when a sleeper is present.
    waitlock_wake: int = 1100
    #: One check of the ring cursor while busy-waiting.
    spin_check: int = 12
    #: Leader-side stall charge when the ring is full and it must wait for
    #: the slowest follower's gating sequence (per check).
    ring_full_check: int = 40
    #: Running one BPF rewrite-rule filter over a divergence.
    bpf_per_insn: int = 4
    #: Networked transport: appending one packed 64-byte event line to
    #: the outgoing frame (leader side, per event with remote followers).
    net_pack_event: int = 90
    #: Networked transport: per-byte cost of compressing a frame body
    #: before transmission (LZ4-class, leader side).
    net_compress_per_byte: float = 0.35


@dataclass(frozen=True)
class PtraceCosts:
    """Cost profile of a classical ptrace-based lockstep monitor.

    Two ptrace stops per syscall (entry and exit); at each stop the
    traced thread is descheduled, the monitor wakes, inspects registers,
    and copies any indirect arguments word-by-word with PTRACE_PEEKDATA /
    POKEDATA — each peek being itself a full syscall for the monitor.
    """

    #: Deschedule tracee + schedule monitor (or back): one context
    #: switch *including scheduler wakeup latency* — the dominant cost
    #: of a ptrace stop in practice (~10 us).
    context_switch: int = 35000
    #: Monitor-side PTRACE_GETREGS / SETREGS per stop.
    regs_access: int = 900
    #: Monitor-side bookkeeping per stop (lookup, state machine).
    monitor_logic: int = 350
    #: Moving 8 bytes of indirect arguments (PEEKDATA, amortised with
    #: /proc/pid/mem bulk reads for large buffers, as Mx does).
    peek_poke: int = 180
    #: Nullifying the syscall in all-but-one version (extra SETREGS).
    nullify: int = 900

    def stop_cost(self) -> int:
        """Cycles for one ptrace stop (two context switches + regs)."""
        return 2 * self.context_switch + self.regs_access + self.monitor_logic

    def copy_cost(self, nbytes: int) -> int:
        """Cycles for the monitor to move ``nbytes`` via peek/poke."""
        words = (nbytes + 7) // 8
        return words * self.peek_poke


@dataclass(frozen=True)
class FailoverCosts:
    """Costs on the transparent-failover path (§5.1), in cycles."""

    #: SIGSEGV delivery, the kernel starting crashed-process teardown,
    #: and the monitor's signal handler assembling the crash report.
    detect_signal: int = 70000
    #: Crash notification over the coordinator's UNIX socket plus the
    #: coordinator being scheduled, unsubscribing the dead version and
    #: running its restart strategy.
    coordinator_handling: int = 160000
    #: Per-tuple work to promote a follower: switching the system call
    #: table and waking every parked thread.
    promote_per_tuple: int = 30000
    #: The promoted leader's -ERESTARTSYS handling of the in-flight call.
    restart_syscall: int = 10000


@dataclass(frozen=True)
class ScribeCosts:
    """Cost profile of a Scribe-style in-kernel record-replay system.

    Scribe logs from inside the kernel, so there are no monitor context
    switches, but every syscall pays serialisation into the log plus a
    per-byte copy, and the log is flushed to (virtual-machine) storage.
    """

    per_event: int = 2600
    per_byte: float = 4.2


@dataclass(frozen=True)
class CostModel:
    """Aggregate cost model used by every experiment."""

    machine: MachineSpec = field(default_factory=MachineSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    syscalls: SyscallCosts = field(default_factory=SyscallCosts)
    intercept: InterceptCosts = field(default_factory=InterceptCosts)
    stream: StreamCosts = field(default_factory=StreamCosts)
    ptrace: PtraceCosts = field(default_factory=PtraceCosts)
    failover: FailoverCosts = field(default_factory=FailoverCosts)
    scribe: ScribeCosts = field(default_factory=ScribeCosts)

    #: Disk log append cost for user-space record-replay (per event),
    #: covering the amortised write syscall issued by the recorder client.
    record_log_per_event: int = 520
    record_log_per_byte: float = 0.8

    def with_(self, **kwargs) -> "CostModel":
        """Return a copy with some sections replaced (for ablations)."""
        return replace(self, **kwargs)


#: The default, calibrated model. Treat as immutable.
DEFAULT_COSTS = CostModel()
