"""§5.2 — Multi-revision execution with BPF rewrite rules.

Three Lighttpd revision pairs whose system-call sequences differ are run
together: the paper's Listing 1 filter resolves the 2435/2436 pair, and
analogous filters resolve 2523/2524 (extra /dev/urandom read) and
2577/2578 (extra fcntl).  A classical lockstep monitor is also run on
the first pair to demonstrate that it cannot tolerate the divergence.
"""

from __future__ import annotations

from repro.apps import ServerStats
from repro.apps.httpd import lighttpd_revision
from repro.bpf import RewriteRules, assemble_bpf
from repro.clients import make_apachebench
from repro.core.config import SessionConfig
from repro.core.coordinator import VersionSpec
from repro.errors import DivergenceError
from repro.experiments.harness import ExperimentResult
from repro.kernel.uapi import SYSCALL_NUMBERS
from repro.nvx.lockstep import MX_PROFILE
from repro.world import World

#: Listing 1 of the paper, verbatim.
LISTING_1 = """
ld event[0]
jeq #108, getegid /* __NR_getegid */
jeq #2, open /* __NR_open */
jmp bad
getegid:
ld [0] /* offsetof(struct seccomp_data, nr) */
jeq #102, good /* __NR_getuid */
open:
ld [0] /* offsetof(struct seccomp_data, nr) */
jeq #104, good /* __NR_getgid */
bad: ret #0 /* SECCOMP_RET_KILL */
good: ret #0x7fff0000 /* SECCOMP_RET_ALLOW */
"""

#: r2524 adds a read of /dev/urandom (open/read/close) during startup.
FILTER_2524 = f"""
ld [0]
jeq #{SYSCALL_NUMBERS['open']}, good
jeq #{SYSCALL_NUMBERS['read']}, good
jeq #{SYSCALL_NUMBERS['close']}, good
ret #0
good: ret #0x7fff0000
"""

#: r2578 adds an fcntl(F_SETFD, FD_CLOEXEC).
FILTER_2578 = f"""
ld [0]
jeq #{SYSCALL_NUMBERS['fcntl']}, good
ret #0
good: ret #0x7fff0000
"""

PAIRS = (
    ("2435", "2436", LISTING_1, "getuid/getgid added (Listing 1)"),
    ("2523", "2524", FILTER_2524, "extra /dev/urandom read"),
    ("2577", "2578", FILTER_2578, "extra fcntl FD_CLOEXEC"),
)


def _serve_requests(world, port=80, requests=20):
    mains, report = make_apachebench(requests=requests, concurrency=2,
                                     scale=1.0)
    for main in mains:
        world.kernel.spawn_task(world.client, main, name="ab")
    return report


def run_pair(old_rev: str, new_rev: str, filter_source: str,
             leader: str = "old"):
    """Run one revision pair under Varan with the rewrite filter."""
    world = World()
    world.kernel.fs(world.server).create("/var/www/index.html",
                                         b"p" * 4096)
    revisions = ([old_rev, new_rev] if leader == "old"
                 else [new_rev, old_rev])
    specs = [VersionSpec(f"lighttpd-r{rev}",
                         lighttpd_revision(rev, stats=ServerStats()))
             for rev in revisions]
    rules = RewriteRules([assemble_bpf(filter_source,
                                       name=f"r{old_rev}-r{new_rev}")])
    session = world.nvx(specs, config=SessionConfig(
        rules=rules, daemon=True)).start()
    report = _serve_requests(world)
    world.run()
    return session, report


def run_pair_lockstep(old_rev: str, new_rev: str):
    """The same pair under a classical lockstep monitor: must diverge."""
    world = World()
    world.kernel.fs(world.server).create("/var/www/index.html",
                                         b"p" * 4096)
    specs = [VersionSpec(f"lighttpd-r{rev}",
                         lighttpd_revision(rev, stats=ServerStats()))
             for rev in (old_rev, new_rev)]
    session = world.lockstep(specs, config=SessionConfig(daemon=True),
                             profile=MX_PROFILE).start()
    report = _serve_requests(world, requests=5)
    try:
        world.run(until_ps=2_000_000_000_000)
    except DivergenceError:
        pass
    return session, report


def run(config=None) -> ExperimentResult:
    result = ExperimentResult(
        "multirevision-5.2",
        "Multi-revision execution across syscall-sequence divergences")
    for old_rev, new_rev, filter_source, description in PAIRS:
        session, report = run_pair(old_rev, new_rev, filter_source)
        result.rows.append({
            "pair": f"r{old_rev}/r{new_rev}",
            "monitor": "varan+bpf",
            "divergences_resolved": session.stats.divergences_allowed
            + session.stats.divergences_skipped,
            "followers_alive": len(session.followers),
            "requests_served": report.requests,
            "note": description,
        })
    # Lockstep cannot run the 2435/2436 pair at all.
    session, report = run_pair_lockstep("2435", "2436")
    result.rows.append({
        "pair": "r2435/r2436",
        "monitor": "ptrace-lockstep",
        "divergences_resolved": 0,
        "followers_alive": 0 if session.divergence else 1,
        "requests_served": report.requests,
        "note": (session.divergence or "no divergence?!"),
    })
    result.notes = ("prior lockstep systems cannot run these revision "
                    "pairs (§5.2)")
    return result
