"""Table 1 — the server applications used in the evaluation."""

from __future__ import annotations

from repro.apps import TABLE_1
from repro.experiments.harness import ExperimentResult


def run(config=None) -> ExperimentResult:
    result = ExperimentResult(
        "table1", "Server applications used in the evaluation",
        paper_reference={row["application"]: row for row in TABLE_1})
    for row in TABLE_1:
        result.rows.append(dict(row))
    result.notes = ("sizes are the upstream projects' lines of code as "
                    "reported by cloc in the paper")
    return result
