"""Figure 4 — system call microbenchmarks.

For each of {close, write, read, open, time} measure the per-call cost
under four regimes: native, intercept-only (binary rewriting, immediate
execution), leader (intercept + execute + record) and follower
(intercept + replay from the ring).
"""

from __future__ import annotations

import statistics
from typing import Dict, List

from repro.core.config import SessionConfig
from repro.core.coordinator import VersionSpec
from repro.costmodel import to_cycles
from repro.experiments.expconfig import apply_config
from repro.experiments.harness import ExperimentResult
from repro.kernel.uapi import O_RDONLY, O_RDWR
from repro.runtime.image import SiteSpec, build_image
from repro.runtime.loader import load_image
from repro.world import World

#: Paper values (cycles) for EXPERIMENTS.md comparison.
PAPER_FIGURE4 = {
    "native": {"close": 1261, "write": 1430, "read": 1486,
               "open": 2583, "time": 49},
    "intercept": {"close": 1330, "write": 1564, "read": 1528,
                  "open": 2976, "time": 122},
    "leader": {"close": 1718, "write": 1994, "read": 3290,
               "open": 8788, "time": 429},
    "follower": {"close": 257, "write": 291, "read": 1969,
                 "open": 7342, "time": 189},
}

MICRO_SITES = [
    SiteSpec("ub_close", "close"),
    SiteSpec("ub_write", "write"),
    SiteSpec("ub_read", "read"),
    SiteSpec("ub_open", "open"),
    SiteSpec("ub_time", "time", vdso="time"),
    SiteSpec("ub_aux", "close"),  # untimed bookkeeping calls
]


def micro_image():
    return build_image("microbench", MICRO_SITES)


def _bench_main(iterations: int, sink: Dict[str, List[int]],
                warmup: int):
    """The microbenchmark program: iterate each call, recording per-call
    virtual-time deltas (the RDTSC loop of §4.1)."""

    def main(ctx):
        devnull = yield from ctx.open("/dev/null", O_RDWR, site="ub_aux")
        devzero = yield from ctx.open("/dev/zero", O_RDONLY,
                                      site="ub_aux")

        def monitor_wait():
            monitor = ctx.task.monitor_state
            return monitor.wait_ps if monitor is not None else 0

        def timed(name):
            # Per-call cost excludes flow-control wait (the paper times
            # the RDTSC processing cost, not leader/follower skew).
            def wrap(gen_factory):
                def runner():
                    for index in range(iterations + warmup):
                        start = ctx.sim.now
                        wait_before = monitor_wait()
                        yield from gen_factory()
                        if index >= warmup:
                            waited = monitor_wait() - wait_before
                            sink.setdefault(name, []).append(
                                ctx.sim.now - start - waited)
                return runner
            return wrap

        @timed("close")
        def bench_close():
            yield from ctx.syscall("close", -1, site="ub_close")

        @timed("write")
        def bench_write():
            yield from ctx.syscall("write", devnull, 512,
                                   data=b"w" * 512, site="ub_write")

        @timed("read")
        def bench_read():
            # /dev/zero so 512 result bytes genuinely flow through the
            # shared-memory payload path.
            yield from ctx.syscall("read", devzero, 512, nbytes=512,
                                   site="ub_read")

        @timed("time")
        def bench_time():
            yield from ctx.syscall("time", site="ub_time")

        yield from bench_close()
        yield from bench_write()
        yield from bench_read()
        yield from bench_time()
        # open: timed open, untimed close to recycle the descriptor.
        for index in range(iterations + warmup):
            start = ctx.sim.now
            wait_before = monitor_wait()
            result = yield from ctx.syscall("open", "/dev/null", O_RDONLY,
                                            site="ub_open")
            if index >= warmup:
                waited = monitor_wait() - wait_before
                sink.setdefault("open", []).append(
                    ctx.sim.now - start - waited)
            yield from ctx.syscall("close", result.retval, site="ub_aux")
        return True

    return main


def _measure_native(iterations, warmup) -> Dict[str, float]:
    world = World()
    sink: Dict[str, List[int]] = {}
    world.spawn(_bench_main(iterations, sink, warmup), name="micro")
    world.run()
    return _medians(sink)


def _measure_intercept(iterations, warmup) -> Dict[str, float]:
    """Binary rewriting armed, calls executed immediately (no handler)."""
    world = World()
    sink: Dict[str, List[int]] = {}
    loaded = load_image(micro_image())
    task = world.kernel.spawn_task(world.server,
                                   _bench_main(iterations, sink, warmup),
                                   name="micro")
    task.gate.intercepting = True
    task.gate.patch_kinds = loaded.patch_kinds
    world.run()
    return _medians(sink)


def _measure_nvx(iterations, warmup):
    """Leader and follower costs from a live two-version session."""
    world = World()
    leader_sink: Dict[str, List[int]] = {}
    follower_sink: Dict[str, List[int]] = {}
    specs = [
        VersionSpec("leader",
                    _bench_main(iterations, leader_sink, warmup),
                    image=micro_image()),
        VersionSpec("follower",
                    _bench_main(iterations, follower_sink, warmup),
                    image=micro_image()),
    ]
    # A ring larger than the iteration count: the paper's leader numbers
    # exclude backpressure stalls.
    session = world.nvx(specs, config=SessionConfig(
        ring_capacity=8 * (iterations + warmup) + 64))
    session.start()
    world.run()
    return _medians(leader_sink), _medians(follower_sink)


def _medians(sink: Dict[str, List[int]]) -> Dict[str, float]:
    return {name: to_cycles(statistics.median(values))
            for name, values in sink.items()}


def run(config=None, iterations: int = 300,
        warmup: int = 30) -> ExperimentResult:
    """Regenerate Figure 4 (iteration count scaled from the paper's 1M —
    the simulation is deterministic, so medians converge immediately)."""
    opts = apply_config(config, iterations=iterations, warmup=warmup)
    iterations, warmup = opts["iterations"], opts["warmup"]
    native = _measure_native(iterations, warmup)
    intercept = _measure_intercept(iterations, warmup)
    leader, follower = _measure_nvx(iterations, warmup)

    result = ExperimentResult(
        "figure4", "System call microbenchmarks (cycles per call)",
        paper_reference=PAPER_FIGURE4,
        notes="medians over %d calls after %d warmup" % (iterations,
                                                         warmup))
    for call in ("close", "write", "read", "open", "time"):
        result.rows.append({
            "syscall": call,
            "native": native[call],
            "intercept": intercept[call],
            "leader": leader[call],
            "follower": follower[call],
            "paper_native": PAPER_FIGURE4["native"][call],
            "paper_leader": PAPER_FIGURE4["leader"][call],
            "paper_follower": PAPER_FIGURE4["follower"][call],
        })
    return result
