"""Parallel experiment sweeps.

Regenerating the paper's full evaluation is embarrassingly parallel:
every (figure × app × follower-count) cell builds its own seeded
:class:`~repro.sim.core.Simulator` from scratch and shares nothing with
any other cell.  This module decomposes each experiment driver into
independent *sweep points*, fans them out over a
:class:`concurrent.futures.ProcessPoolExecutor`, and merges the
fragments back in a fixed canonical order — so a ``--jobs N`` run is
**bit-for-bit identical** to the serial run (asserted by
``tests/test_runner.py::test_parallel_sweep_matches_serial``).

Usage::

    python -m repro sweep --jobs 4 --scale 0.008 --out sweep.txt
    python -m repro sweep --jobs 4 --scale 0.008 --check-reference
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.harness import ExperimentResult

#: Experiments whose drivers accept a workload ``scale`` kwarg (the
#: same set ``python -m repro all --scale`` forwards to).
SCALED_EXPERIMENTS = frozenset({
    "figure5", "figure6", "table2", "figure7", "figure8",
    "sanitization-5.3", "recordreplay-5.4",
})

#: The scale the committed ``benchmarks/reference_sweep.txt`` was
#: generated at.
REFERENCE_SCALE = 0.008

#: A sweep point: (experiment id, part key or None for the whole
#: driver, driver kwargs as a tuple of (name, value) pairs).
#: Deliberately plain tuples/strings so points pickle cheaply into
#: worker processes.
SweepPoint = Tuple[str, Optional[str], Tuple[Tuple[str, object], ...]]


def _figure5_parts() -> List[str]:
    from repro.experiments.figure5 import PAPER_FIGURE5

    return sorted(PAPER_FIGURE5)


def _figure6_parts() -> List[str]:
    from repro.experiments.figure6 import _ROWS

    return [name for name, _profile, _client in _ROWS]


def _figure7_parts() -> List[str]:
    from repro.apps.spec import CPU2000

    return [b.name for b in CPU2000]


def _figure8_parts() -> List[str]:
    from repro.apps.spec import CPU2006

    return [b.name for b in CPU2006]


def _table2_parts() -> List[str]:
    from repro.experiments.table2 import _SERVER_ROWS, _SPEC_ROWS

    parts = [f"server:{system}:{name}"
             for system, name, *_rest in _SERVER_ROWS]
    parts += [f"spec:{system}:{suite}" for system, suite, _ in _SPEC_ROWS]
    return parts


#: experiment id → callable returning its ordered part keys.  Drivers
#: absent here run as a single point.
_PART_MAKERS = {
    "figure5": _figure5_parts,
    "figure6": _figure6_parts,
    "figure7": _figure7_parts,
    "figure8": _figure8_parts,
    "table2": _table2_parts,
}


def sweep_points(scale: Optional[float] = None,
                 experiments: Optional[Sequence[str]] = None
                 ) -> List[SweepPoint]:
    """The full sweep as an ordered list of independent points."""
    from repro.experiments.registry import EXPERIMENTS

    ids = sorted(EXPERIMENTS) if experiments is None else list(experiments)
    unknown = [eid for eid in ids if eid not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments {unknown}; "
                       f"known: {sorted(EXPERIMENTS)}")
    points: List[SweepPoint] = []
    for eid in ids:
        kwargs: Tuple[Tuple[str, object], ...] = ()
        if scale is not None and eid in SCALED_EXPERIMENTS:
            kwargs = (("scale", scale),)
        maker = _PART_MAKERS.get(eid)
        if maker is None:
            points.append((eid, None, kwargs))
        else:
            points.extend((eid, part, kwargs) for part in maker())
    return points


def run_point(point: SweepPoint) -> ExperimentResult:
    """Run one sweep point in isolation (top-level: pickles for the pool).

    Every path below constructs a fresh World/Simulator, so the result
    depends only on the point itself — never on which process ran it or
    in what order.
    """
    eid, part, kwargs_items = point
    kwargs = dict(kwargs_items)
    if part is None:
        from repro.experiments.registry import run_experiment

        return run_experiment(eid, **kwargs)
    if eid == "figure5":
        from repro.experiments import figure5

        return figure5.run(servers=(part,), **kwargs)
    if eid == "figure6":
        from repro.experiments import figure6

        return figure6.run(rows=(part,), **kwargs)
    if eid in ("figure7", "figure8"):
        from repro.apps.spec import ALL_SPEC
        from repro.experiments import figure7, figure8

        module = figure7 if eid == "figure7" else figure8
        return module.run(benchmarks=(ALL_SPEC[part],), **kwargs)
    if eid == "table2":
        from repro.experiments import table2

        kind, system, name = part.split(":", 2)
        if kind == "server":
            return table2.run(rows=((system, name),), suites=(), **kwargs)
        return table2.run(rows=(), suites=((system, name),), **kwargs)
    raise KeyError(f"no part decomposition for {eid!r}")


def merge_results(points: Sequence[SweepPoint],
                  fragments: Sequence[ExperimentResult]
                  ) -> List[ExperimentResult]:
    """Stitch per-point fragments back into whole experiment results.

    Deterministic by construction: fragments are concatenated in point
    order, which is fixed by :func:`sweep_points` regardless of which
    worker finished first.
    """
    merged: Dict[str, ExperimentResult] = {}
    order: List[str] = []
    for (eid, _part, _kwargs), fragment in zip(points, fragments):
        if eid not in merged:
            merged[eid] = fragment
            order.append(eid)
        else:
            merged[eid].rows.extend(fragment.rows)
    return [merged[eid] for eid in order]


def run_sweep(jobs: int = 1, scale: Optional[float] = None,
              experiments: Optional[Sequence[str]] = None
              ) -> List[ExperimentResult]:
    """Run the sweep, fanning points out over ``jobs`` processes.

    ``jobs <= 1`` runs every point in-process; both paths execute the
    identical point list through :func:`run_point` and merge in the
    identical order, which is what makes them bit-for-bit comparable.
    """
    points = sweep_points(scale=scale, experiments=experiments)
    return merge_results(points, run_points(points, jobs))


def run_points(points: Sequence[SweepPoint],
               jobs: int) -> List[ExperimentResult]:
    """Execute a point list serially (``jobs <= 1``) or over a pool."""
    if jobs <= 1:
        return [run_point(point) for point in points]
    workers = min(jobs, len(points)) or 1
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(run_point, points))


def render_sweep(results: Iterable[ExperimentResult],
                 scale: Optional[float] = None) -> str:
    """Canonical sweep report: deterministic, no wall-clock timestamps."""
    header = "# reference sweep"
    if scale is not None:
        header += f" (scale={scale})"
    header += " — regenerate with: python -m repro sweep --scale {}".format(
        scale if scale is not None else "<scale>")
    blocks = [header, ""]
    for result in results:
        blocks.append(result.render())
        blocks.append("")
    return "\n".join(blocks)


def _normalise(text: str) -> List[str]:
    """Comparison view of a sweep report: drop comment lines, wall-clock
    '[x regenerated in Ys]' markers and trailing whitespace."""
    lines = []
    for line in text.splitlines():
        line = line.rstrip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and "regenerated in" in line:
            continue
        lines.append(line)
    return lines


def compare_reports(left: str, right: str) -> List[str]:
    """Differences between two sweep reports, empty when equivalent."""
    left_lines = _normalise(left)
    right_lines = _normalise(right)
    diffs = []
    for i, (a, b) in enumerate(zip(left_lines, right_lines)):
        if a != b:
            diffs.append(f"line {i}: {a!r} != {b!r}")
    if len(left_lines) != len(right_lines):
        diffs.append(f"line counts differ: {len(left_lines)} vs "
                     f"{len(right_lines)}")
    return diffs


def reference_path() -> str:
    return os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))), "benchmarks",
        "reference_sweep.txt")
