"""Parallel experiment sweeps.

Regenerating the paper's full evaluation is embarrassingly parallel:
every (figure × app × follower-count) cell builds its own seeded
:class:`~repro.sim.core.Simulator` from scratch and shares nothing with
any other cell.  This module decomposes each experiment driver into
independent *sweep points*, fans them out over a
:class:`concurrent.futures.ProcessPoolExecutor`, and merges the
fragments back in a fixed canonical order — so a ``--jobs N`` run is
**bit-for-bit identical** to the serial run (asserted by
``tests/test_runner.py::test_parallel_sweep_matches_serial``).

Usage::

    python -m repro sweep --jobs 4 --scale 0.008 --out sweep.txt
    python -m repro sweep --jobs 4 --scale 0.008 --check-reference
"""

from __future__ import annotations

import functools
import json
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.expconfig import ExperimentConfig
from repro.experiments.harness import ExperimentResult
from repro.obs import metrics as obs_metrics

#: Experiments whose drivers accept a workload ``scale`` kwarg (the
#: same set ``python -m repro all --scale`` forwards to).
SCALED_EXPERIMENTS = frozenset({
    "figure5", "figure6", "table2", "figure7", "figure8",
    "loadcurve", "sanitization-5.3", "recordreplay-5.4",
})

#: The scale the committed ``benchmarks/reference_sweep.txt`` was
#: generated at.
REFERENCE_SCALE = 0.008

#: A sweep point: (experiment id, part key or None for the whole
#: driver, driver kwargs as a tuple of (name, value) pairs).
#: Deliberately plain tuples/strings so points pickle cheaply into
#: worker processes.
SweepPoint = Tuple[str, Optional[str], Tuple[Tuple[str, object], ...]]


def sweep_points(scale: Optional[float] = None,
                 experiments: Optional[Sequence[str]] = None
                 ) -> List[SweepPoint]:
    """The full sweep as an ordered list of independent points.

    Part decomposition comes from each driver's own ``parts()`` hook
    (via :func:`repro.experiments.registry.experiment_parts`); drivers
    without one run as a single point.
    """
    from repro.experiments.registry import EXPERIMENTS, experiment_parts

    ids = sorted(EXPERIMENTS) if experiments is None else list(experiments)
    unknown = [eid for eid in ids if eid not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments {unknown}; "
                       f"known: {sorted(EXPERIMENTS)}")
    points: List[SweepPoint] = []
    for eid in ids:
        kwargs: Tuple[Tuple[str, object], ...] = ()
        if scale is not None and eid in SCALED_EXPERIMENTS:
            kwargs = (("scale", scale),)
        parts = experiment_parts(eid)
        if parts is None:
            points.append((eid, None, kwargs))
        else:
            points.extend((eid, part, kwargs) for part in parts)
    return points


def run_point(point: SweepPoint,
              collect_metrics: bool = False) -> ExperimentResult:
    """Run one sweep point in isolation (top-level: pickles for the pool).

    Every path constructs a fresh World/Simulator, so the result depends
    only on the point itself — never on which process ran it or in what
    order.  With ``collect_metrics`` every session the point creates
    registers with ``repro.obs`` and the merged snapshot is attached to
    the fragment's ``metrics``.
    """
    from repro.experiments.registry import run_experiment
    from repro.faults import invariants as _invariants

    eid, part, kwargs_items = point
    kwargs = dict(kwargs_items)
    config = ExperimentConfig(
        scale=kwargs.pop("scale", None),
        parts=None if part is None else (part,),
        options=tuple(sorted(kwargs.items())))
    if collect_metrics:
        obs_metrics.start_collection()
    # Every session a point creates runs with the NVX conformance oracle
    # enabled; the process-wide counter catches violations regardless of
    # which checker instance (or worker process) observed them.
    violations_before = _invariants.process_violations()
    result = run_experiment(eid, config=config)
    fresh = _invariants.process_violations() - violations_before
    if fresh:
        raise AssertionError(
            f"sweep point {eid}/{part or 'all'}: {fresh} NVX invariant "
            f"violation(s) during a reference experiment")
    if collect_metrics:
        result.metrics = obs_metrics.drain()
    return result


def merge_results(points: Sequence[SweepPoint],
                  fragments: Sequence[ExperimentResult]
                  ) -> List[ExperimentResult]:
    """Stitch per-point fragments back into whole experiment results.

    Deterministic by construction: fragments are concatenated in point
    order, which is fixed by :func:`sweep_points` regardless of which
    worker finished first.  Metrics snapshots merge through
    :func:`repro.obs.metrics.merge_snapshots` (associative, so fragment
    grouping cannot change the outcome).
    """
    merged: Dict[str, ExperimentResult] = {}
    order: List[str] = []
    for (eid, _part, _kwargs), fragment in zip(points, fragments):
        if eid not in merged:
            merged[eid] = fragment
            order.append(eid)
        else:
            merged[eid].rows.extend(fragment.rows)
            if fragment.metrics:
                merged[eid].metrics = obs_metrics.merge_snapshots(
                    [merged[eid].metrics, fragment.metrics])
    return [merged[eid] for eid in order]


def run_sweep(jobs: int = 1, scale: Optional[float] = None,
              experiments: Optional[Sequence[str]] = None,
              collect_metrics: bool = False) -> List[ExperimentResult]:
    """Run the sweep, fanning points out over ``jobs`` processes.

    ``jobs <= 1`` runs every point in-process; both paths execute the
    identical point list through :func:`run_point` and merge in the
    identical order, which is what makes them bit-for-bit comparable.
    """
    points = sweep_points(scale=scale, experiments=experiments)
    return merge_results(
        points, run_points(points, jobs, collect_metrics=collect_metrics))


def run_points(points: Sequence[SweepPoint], jobs: int,
               collect_metrics: bool = False) -> List[ExperimentResult]:
    """Execute a point list serially (``jobs <= 1``) or over a pool."""
    worker = functools.partial(run_point, collect_metrics=collect_metrics)
    if jobs <= 1:
        return [worker(point) for point in points]
    workers = min(jobs, len(points)) or 1
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(worker, points))


def render_metrics(results: Iterable[ExperimentResult]) -> str:
    """Deterministic JSON view of the merged per-experiment metrics."""
    payload = {result.experiment_id: result.metrics for result in results
               if result.metrics}
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sweep(results: Iterable[ExperimentResult],
                 scale: Optional[float] = None) -> str:
    """Canonical sweep report: deterministic, no wall-clock timestamps."""
    header = "# reference sweep"
    if scale is not None:
        header += f" (scale={scale})"
    header += " — regenerate with: python -m repro sweep --scale {}".format(
        scale if scale is not None else "<scale>")
    blocks = [header, ""]
    for result in results:
        blocks.append(result.render())
        blocks.append("")
    return "\n".join(blocks)


def _normalise(text: str) -> List[str]:
    """Comparison view of a sweep report: drop comment lines, wall-clock
    '[x regenerated in Ys]' markers and trailing whitespace."""
    lines = []
    for line in text.splitlines():
        line = line.rstrip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and "regenerated in" in line:
            continue
        lines.append(line)
    return lines


def compare_reports(left: str, right: str) -> List[str]:
    """Differences between two sweep reports, empty when equivalent."""
    left_lines = _normalise(left)
    right_lines = _normalise(right)
    diffs = []
    for i, (a, b) in enumerate(zip(left_lines, right_lines)):
        if a != b:
            diffs.append(f"line {i}: {a!r} != {b!r}")
    if len(left_lines) != len(right_lines):
        diffs.append(f"line counts differ: {len(left_lines)} vs "
                     f"{len(right_lines)}")
    return diffs


def reference_path() -> str:
    return os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))), "benchmarks",
        "reference_sweep.txt")
