"""Figure 8 — SPEC CPU2006 overhead for 0-6 followers (see Figure 7)."""

from __future__ import annotations

from repro.apps.spec import CPU2006
from repro.experiments import figure7
from repro.experiments.harness import ExperimentResult


def run(follower_counts=(0, 1, 2, 3, 4, 5, 6),
        scale: float = 0.2, benchmarks=CPU2006) -> ExperimentResult:
    result = figure7.run(follower_counts=follower_counts, scale=scale,
                         benchmarks=benchmarks)
    result.experiment_id = "figure8"
    result.title = "SPEC CPU2006 overhead vs follower count"
    return result
