"""Figure 8 — SPEC CPU2006 overhead for 0-6 followers (see Figure 7)."""

from __future__ import annotations

from repro.apps.spec import CPU2006
from repro.experiments import figure7
from repro.experiments.harness import ExperimentResult


def parts():
    """Sweep decomposition: one part per benchmark."""
    return [b.name for b in CPU2006]


def run(config=None, follower_counts=(0, 1, 2, 3, 4, 5, 6),
        scale: float = 0.2, benchmarks=CPU2006) -> ExperimentResult:
    return figure7.run(config=config, follower_counts=follower_counts,
                       scale=scale, benchmarks=benchmarks,
                       experiment_id="figure8",
                       title="SPEC CPU2006 overhead vs follower count")
