"""Figure 7 — SPEC CPU2000 overhead for 0-6 followers.

These applications scale poorly with followers: the paper attributes it
to memory pressure and caching effects on a machine with only four
physical cores (§4.3).
"""

from __future__ import annotations

from repro.apps.spec import CPU2000
from repro.experiments.expconfig import apply_config
from repro.experiments.harness import ExperimentResult
from repro.experiments.spec_common import run_spec_native, run_spec_varan

#: The paper reports per-benchmark bars; for EXPERIMENTS.md we track the
#: headline anchors: overheads stay small through ~3 followers for
#: cache-light kernels and climb steeply (up to ~6x for mcf-class) at 6.
PAPER_NOTES = ("mcf-class benchmarks degrade steeply beyond 4 variants; "
               "eon/crafty-class stay near 1x; suite average at "
               "1 follower ~11-18%")


def parts():
    """Sweep decomposition: one part per benchmark."""
    return [b.name for b in CPU2000]


def _select_benchmarks(config, default):
    """Resolve ``config.parts`` (benchmark names) back to spec objects."""
    if config is None or config.parts is None:
        return default
    from repro.apps.spec import ALL_SPEC

    return tuple(ALL_SPEC[name] for name in config.parts)


def run(config=None, follower_counts=(0, 1, 2, 3, 4, 5, 6),
        scale: float = 0.2, benchmarks=CPU2000,
        experiment_id: str = "figure7",
        title: str = "SPEC CPU2000 overhead vs follower count"
        ) -> ExperimentResult:
    opts = apply_config(config, follower_counts=follower_counts,
                        scale=scale, benchmarks=benchmarks)
    follower_counts = opts["follower_counts"]
    scale = opts["scale"]
    benchmarks = _select_benchmarks(config, opts["benchmarks"])
    result = ExperimentResult(
        experiment_id, title, paper_reference={"notes": PAPER_NOTES})
    for benchmark in benchmarks:
        native = run_spec_native(benchmark, scale)
        row = {"benchmark": benchmark.name}
        for followers in follower_counts:
            monitored = run_spec_varan(benchmark, followers, scale)
            row[f"f{followers}"] = monitored / native
        result.rows.append(row)
    return result
