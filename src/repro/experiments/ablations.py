"""Ablations of Varan's design choices (§2.2, §3.3.1, §6).

Three studies, one per design decision the paper motivates:

* **Event pump vs shared ring** — the authors' initial design used one
  queue per follower with the coordinator as an event pump; it "worked
  well for a low system call rate, but at higher rates the event pump
  quickly became a bottleneck" (§3.3.1).  We model both and measure the
  virtual time to stream a fixed event count to N consumers.
* **Ring capacity** — §6: buffering is essential for performance but
  delays divergence detection; capacity 1 (the security configuration)
  vs the default 256.
* **Waitlock vs pure busy-waiting** — §3.3.1: followers that never
  degrade to the futex waitlock burn a hardware thread while blocked.
"""

from __future__ import annotations

from typing import Dict

from repro.core.events import syscall_event
from repro.core.ringbuffer import RingBuffer
from repro.costmodel import DEFAULT_COSTS, cycles
from repro.experiments.harness import ExperimentResult
from repro.sim import Machine, Simulator
from repro.sim.core import Compute
from repro.sim.sync import WaitQueue


# -- shared plumbing ----------------------------------------------------------


def _stream_through_ring(events: int, consumers: int,
                         capacity: int = 256,
                         consumer_work_cycles: int = 100) -> int:
    """Virtual time to push ``events`` through a shared ring."""
    sim = Simulator()
    machine = Machine(sim, name="m")
    ring = RingBuffer(sim, DEFAULT_COSTS, capacity=capacity)
    for vid in range(1, consumers + 1):
        ring.add_consumer(vid)

    def producer():
        for i in range(events):
            yield from ring.publish(syscall_event("close", 0, i + 1, 0))

    def consumer(vid):
        for _ in range(events):
            while ring.peek(vid) is None:
                yield from ring.wait_published(
                    False, lambda: ring.peek(vid) is not None)
            yield Compute(cycles(consumer_work_cycles))
            ring.advance(vid)

    machine.spawn(producer(), name="prod")
    for vid in range(1, consumers + 1):
        machine.spawn(consumer(vid), name=f"c{vid}")
    sim.run()
    return sim.now


def _stream_through_pump(events: int, consumers: int,
                         consumer_work_cycles: int = 100) -> int:
    """The rejected design: per-follower queues fed by an event pump.

    The pump is a separate process that pops each event from the
    leader's queue and *copies* it into every follower's queue — N
    copies per event, serialised through one process.
    """
    sim = Simulator()
    machine = Machine(sim, name="m")
    leader_queue = []
    follower_queues = {vid: [] for vid in range(1, consumers + 1)}
    pump_wake = WaitQueue(sim)
    follower_wakes = {vid: WaitQueue(sim) for vid in follower_queues}
    publish_cost = cycles(DEFAULT_COSTS.stream.ring_publish)
    copy_cost = cycles(DEFAULT_COSTS.stream.ring_publish
                       + DEFAULT_COSTS.stream.ring_consume)

    def producer():
        for i in range(events):
            yield Compute(publish_cost)
            leader_queue.append(syscall_event("close", 0, i + 1, 0))
            pump_wake.notify_all()

    def pump():
        dispatched = 0
        while dispatched < events:
            if not leader_queue:
                yield from pump_wake.wait()
                continue
            event = leader_queue.pop(0)
            dispatched += 1
            for vid, queue in follower_queues.items():
                yield Compute(copy_cost)  # dispatch into each queue
                queue.append(event)
                follower_wakes[vid].notify_all()

    def consumer(vid):
        consumed = 0
        queue = follower_queues[vid]
        while consumed < events:
            if not queue:
                yield from follower_wakes[vid].wait()
                continue
            queue.pop(0)
            consumed += 1
            yield Compute(cycles(consumer_work_cycles))

    machine.spawn(producer(), name="prod")
    machine.spawn(pump(), name="pump")
    for vid in follower_queues:
        machine.spawn(consumer(vid), name=f"c{vid}")
    sim.run()
    return sim.now


# -- the three studies -----------------------------------------------------------


def pump_vs_ring(events: int = 2000,
                 consumer_counts=(1, 2, 4, 6)) -> ExperimentResult:
    result = ExperimentResult(
        "ablation-pump", "Event pump vs shared ring buffer (§3.3.1)")
    for consumers in consumer_counts:
        ring_ps = _stream_through_ring(events, consumers)
        pump_ps = _stream_through_pump(events, consumers)
        result.rows.append({
            "consumers": consumers,
            "ring_us": ring_ps / 1e6,
            "pump_us": pump_ps / 1e6,
            "pump_penalty": pump_ps / ring_ps,
        })
    result.notes = ("the pump's per-follower dispatch serialises: its "
                    "penalty grows with the number of followers")
    return result


def ring_capacity(events: int = 1500,
                  capacities=(1, 16, 256)) -> ExperimentResult:
    result = ExperimentResult(
        "ablation-capacity", "Ring capacity vs producer stalls (§6)")
    for capacity in capacities:
        sim_ps = _stream_through_ring(events, consumers=2,
                                      capacity=capacity,
                                      consumer_work_cycles=600)
        result.rows.append({
            "capacity": capacity,
            "time_us": sim_ps / 1e6,
        })
    result.notes = ("capacity 1 = the no-buffering security "
                    "configuration: divergence detection is immediate "
                    "but the leader stalls on every event")
    return result


def waitlock(events: int = 300) -> ExperimentResult:
    """Cost of waking waitlocked vs busy-waiting followers."""
    result = ExperimentResult(
        "ablation-waitlock", "Waitlock wake cost vs spin (§3.3.1)")
    # Blocking-hint consumers take the waitlock immediately; non-blocking
    # ones spin first. The leader pays the futex wake only for sleepers.
    for hint, label in ((True, "waitlock"), (False, "spin-first")):
        sim = Simulator()
        machine = Machine(sim, name="m")
        ring = RingBuffer(sim, DEFAULT_COSTS, capacity=256)
        ring.add_consumer(1)

        def producer():
            from repro.sim.core import Sleep

            for i in range(events):
                yield Sleep(3_000_000)  # slow producer: 3 µs apart
                yield from ring.publish(
                    syscall_event("close", 0, i + 1, 0))

        def consumer(blocking_hint):
            for _ in range(events):
                while ring.peek(1) is None:
                    yield from ring.wait_published(
                        blocking_hint,
                        lambda: ring.peek(1) is not None)
                ring.advance(1)

        machine.spawn(producer(), name="p")
        machine.spawn(consumer(hint), name="c")
        sim.run()
        result.rows.append({
            "mode": label,
            "time_us": sim.now / 1e6,
            "waitlock_sleeps": ring.stats.waitlock_sleeps,
            "spin_waits": ring.stats.spin_waits,
        })
    result.notes = ("with a slow producer, spinning degrades to the "
                    "waitlock after the spin budget — both modes "
                    "converge, but pure spinning would burn a core")
    return result


def run(config=None) -> ExperimentResult:
    """All three ablations merged into one report."""
    merged = ExperimentResult("ablations",
                              "Design-choice ablations (§2.2/§3.3.1/§6)")
    for sub in (pump_vs_ring(), ring_capacity(), waitlock()):
        merged.rows.append({"study": sub.title})
        merged.rows.extend(sub.rows)
    return merged
