"""Shared experiment harness: run a (server, client) pair under a chosen
monitor and report client-side throughput, as the paper does."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.clients.base import ClientReport
from repro.core.config import SessionConfig
from repro.core.coordinator import VersionSpec
from repro.costmodel import SEC_PS
from repro.nvx.lockstep import MonitorProfile
from repro.world import World

#: Monitor selector values accepted by :func:`run_server_benchmark`.
MONITOR_NATIVE = "native"
MONITOR_VARAN = "varan"
MONITOR_SCRIBE = "scribe"


@dataclass
class BenchmarkRun:
    """Outcome of one server/client configuration."""

    monitor: str
    versions: int
    report: ClientReport
    session: object = None
    world: object = None

    @property
    def throughput(self) -> float:
        return self.report.throughput_rps

    @property
    def latency_us(self) -> float:
        return self.report.latency_avg_us()


def run_server_benchmark(server_factory: Callable[[], Callable],
                         client_factory: Callable[[], tuple],
                         monitor: str = MONITOR_NATIVE,
                         followers: int = 0,
                         image_factory: Optional[Callable] = None,
                         lockstep_profile: Optional[MonitorProfile] = None,
                         server_files: Optional[Dict[str, bytes]] = None,
                         ring_capacity: int = 256,
                         max_virtual_s: float = 30.0,
                         sample_distances: bool = False) -> BenchmarkRun:
    """Run one configuration to completion and return the measurements.

    ``server_factory()`` must return a fresh server main per call (one
    per version); ``client_factory()`` returns ``(mains, report)``.
    """
    world = World()
    if server_files:
        fs = world.kernel.fs(world.server)
        for path, data in server_files.items():
            fs.create(path, data)

    versions = followers + 1
    session = None
    if monitor == MONITOR_NATIVE:
        world.spawn(server_factory(), name="server", daemon=True)
    elif monitor == MONITOR_VARAN:
        specs = [
            VersionSpec(f"v{i}", server_factory(),
                        image=image_factory() if image_factory else None)
            for i in range(versions)
        ]
        session = world.nvx(specs, config=SessionConfig(
            daemon=True, ring_capacity=ring_capacity,
            sample_distances=sample_distances)).start()
    elif monitor == MONITOR_SCRIBE:
        specs = [VersionSpec(f"v{i}", server_factory())
                 for i in range(versions)]
        session = world.scribe(
            specs, config=SessionConfig(daemon=True)).start()
    elif lockstep_profile is not None:
        specs = [VersionSpec(f"v{i}", server_factory())
                 for i in range(versions)]
        session = world.lockstep(
            specs, config=SessionConfig(daemon=True),
            profile=lockstep_profile).start()
    else:
        raise ValueError(f"unknown monitor {monitor!r}")

    mains, report = client_factory()
    for index, main in enumerate(mains):
        world.kernel.spawn_task(world.client, main,
                                name=f"client{index}")
    world.run(until_ps=int(max_virtual_s * SEC_PS))
    return BenchmarkRun(monitor=monitor, versions=versions, report=report,
                        session=session, world=world)


def overhead(native: BenchmarkRun, monitored: BenchmarkRun) -> float:
    """Normalized runtime overhead, as plotted in Figures 5-8:
    native throughput divided by monitored throughput."""
    if monitored.throughput == 0:
        return float("inf")
    return native.throughput / monitored.throughput


@dataclass
class ExperimentResult:
    """Uniform result record for every table/figure reproduction."""

    experiment_id: str
    title: str
    rows: List[Dict] = field(default_factory=list)
    #: Values the paper reports, keyed like rows, for EXPERIMENTS.md.
    paper_reference: Dict = field(default_factory=dict)
    notes: str = ""
    #: Merged ``repro.obs`` metrics snapshot, populated when a sweep ran
    #: with metrics collection on (``--metrics``); {} otherwise.
    metrics: Dict = field(default_factory=dict)

    def render(self) -> str:
        """Format rows as the kind of table the paper prints."""
        if not self.rows:
            return f"[{self.experiment_id}] {self.title}: no data"
        columns = []
        for row in self.rows:  # union, preserving first-seen order
            for key in row:
                if key not in columns:
                    columns.append(key)
        widths = {c: max(len(str(c)), *(len(_fmt(r.get(c))) for r in
                                        self.rows)) for c in columns}
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(str(c).ljust(widths[c]) for c in columns))
        for row in self.rows:
            lines.append("  ".join(
                _fmt(row.get(c)).ljust(widths[c]) for c in columns))
        if self.notes:
            lines.append(f"-- {self.notes}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
