"""§5.1 — Transparent failover.

Experiment A: eight consecutive Redis revisions 9a22de8..7fb16ba run in
parallel; the last revision segfaults on a particular HMGET.  We measure
the latency of the triggering command with the buggy version as a
follower (no increase expected) and as the leader (latency covers crash
detection + promotion), plus the throughput of subsequent commands.

Experiment B: Lighttpd revisions 2437/2438, the latter with a crash bug;
latency of the triggering request must not increase in either order.
"""

from __future__ import annotations

from repro.apps import ServerStats, make_httpd, make_redis, redis_image
from repro.apps.httpd import LIGHTTPD
from repro.apps.redis import BUGGY_REVISION, REVISIONS
from repro.clients import make_redis_command_probe, make_wrk
from repro.clients.base import connect_with_retry, recv_until
from repro.core.config import SessionConfig
from repro.core.coordinator import VersionSpec
from repro.costmodel import US_PS
from repro.experiments.harness import ExperimentResult
from repro.world import World

PAPER_FAILOVER = {
    "redis_baseline_us": 42.36,
    "redis_leader_crash_us": 122.62,
    "redis_follower_crash_increase": 0.0,
    "lighttpd_latency_change_ms": 0.0,
}


def _run_redis_probe(buggy_position: str):
    """Run 8 Redis revisions and probe the crash-triggering HMGET.

    ``buggy_position``: 'leader', 'follower' or 'absent' (baseline).
    """
    world = World()
    if buggy_position == "leader":
        order = (BUGGY_REVISION,) + REVISIONS[:-1]
    elif buggy_position == "follower":
        order = REVISIONS[:-1] + (BUGGY_REVISION,)
    else:
        order = REVISIONS[:-1] + (REVISIONS[0],)
    specs = [VersionSpec(f"redis-{rev}-{i}",
                         make_redis(stats=ServerStats(), revision=rev,
                                    background_thread=False),
                         image=redis_image())
             for i, rev in enumerate(order)]
    session = world.nvx(specs, config=SessionConfig(daemon=True)).start()
    mains, report = make_redis_command_probe(b"HMGET missinghash f1 f2\r\n")
    for main in mains:
        world.kernel.spawn_task(world.client, main, name="probe")
    world.run()
    probe_us = report.command_avg_us("probe")
    after_us = report.command_avg_us("after")
    return probe_us, after_us, session


def _run_lighttpd_pair(buggy_first: bool):
    """Lighttpd 2437/2438 with a request-triggered crash in 2438.

    The paper's triggering request takes ~5 ms, so even a leader-side
    failover (~80 µs) disappears in the noise — we reproduce that regime
    with a correspondingly heavy request handler.
    """
    from dataclasses import replace

    world = World()
    world.kernel.fs(world.server).create("/var/www/index.html",
                                         b"p" * 4096)
    trigger = b"GET /crash"
    heavy = replace(LIGHTTPD, respond_cycles=17_000_000)  # ~5 ms

    def rev2437():
        return make_httpd(heavy, stats=ServerStats())

    def rev2438():
        return make_httpd(heavy, stats=ServerStats(),
                          crash_on=trigger)

    factories = ([rev2438, rev2437] if buggy_first
                 else [rev2437, rev2438])
    specs = [VersionSpec(f"lighttpd-{i}", factory())
             for i, factory in enumerate(factories)]
    world.nvx(specs, config=SessionConfig(daemon=True)).start()
    timings = {}

    def client(ctx):
        fd = yield from connect_with_retry(ctx, ("server", 80))
        # Normal request first.
        start = ctx.sim.now
        yield from ctx.send(fd, b"GET / HTTP/1.1\r\n\r\n")
        yield from recv_until(ctx, fd, b"\r\n\r\n")
        timings["normal_us"] = (ctx.sim.now - start) / US_PS
        # The crash-triggering request.
        start = ctx.sim.now
        yield from ctx.send(fd, trigger + b" HTTP/1.1\r\n\r\n")
        response = yield from recv_until(ctx, fd, b"\r\n\r\n")
        timings["trigger_us"] = (ctx.sim.now - start) / US_PS
        timings["served"] = bool(response)
        yield from ctx.close(fd)
        return timings

    world.kernel.spawn_task(world.client, client, name="probe")
    world.run()
    return timings


def run(config=None) -> ExperimentResult:
    result = ExperimentResult("failover-5.1", "Transparent failover",
                              paper_reference=PAPER_FAILOVER)

    baseline_us, baseline_after, _ = _run_redis_probe("absent")
    follower_us, follower_after, fsession = _run_redis_probe("follower")
    leader_us, leader_after, lsession = _run_redis_probe("leader")

    result.rows.append({
        "scenario": "redis HMGET baseline (no buggy version)",
        "latency_us": baseline_us, "after_us": baseline_after,
        "crashes": 0, "promotions": 0,
    })
    result.rows.append({
        "scenario": "redis buggy revision as follower",
        "latency_us": follower_us, "after_us": follower_after,
        "crashes": len(fsession.stats.crashes),
        "promotions": fsession.stats.promotions,
    })
    result.rows.append({
        "scenario": "redis buggy revision as leader",
        "latency_us": leader_us, "after_us": leader_after,
        "crashes": len(lsession.stats.crashes),
        "promotions": lsession.stats.promotions,
    })

    for buggy_first in (False, True):
        timings = _run_lighttpd_pair(buggy_first)
        result.rows.append({
            "scenario": ("lighttpd buggy as leader" if buggy_first
                         else "lighttpd buggy as follower"),
            "latency_us": timings["trigger_us"],
            "after_us": timings["normal_us"],
            "crashes": 1, "promotions": int(buggy_first),
        })
    result.notes = ("paper: 42.36us -> 122.62us when the buggy version "
                    "leads; no increase when it follows")
    return result
