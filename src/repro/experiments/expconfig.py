"""Driver-agnostic experiment run parameters.

Separate from :mod:`repro.experiments.registry` so drivers can import
the config helpers without creating an import cycle (the registry
imports every driver module).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class ExperimentConfig:
    """One uniform parameter block for every experiment driver.

    ``scale`` applies only to drivers that take a workload scale (the
    others ignore it, matching ``python -m repro all --scale``).
    ``parts`` restricts a decomposable driver to a subset of its part
    keys.  ``options`` are (name, value) pairs overriding driver
    keywords by name; unknown names are an error.
    """

    scale: Optional[float] = None
    parts: Optional[Tuple[str, ...]] = None
    options: Tuple[Tuple[str, object], ...] = ()


def apply_config(config: Optional[ExperimentConfig], parts_key=None,
                 **values) -> Dict:
    """Fold a config over a driver's default keyword values.

    ``values`` are the driver's effective kwargs; ``parts_key`` names
    the one that selects parts (None when the driver handles parts
    itself, e.g. compound part keys).  Returns the updated dict.
    """
    if config is None:
        return values
    if config.scale is not None and "scale" in values:
        values["scale"] = config.scale
    if config.parts is not None and parts_key is not None:
        values[parts_key] = tuple(config.parts)
    for key, value in config.options:
        if key not in values:
            raise TypeError(
                f"unknown experiment option {key!r}; "
                f"driver accepts: {sorted(values)}")
        values[key] = value
    return values
