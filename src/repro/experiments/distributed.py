"""Distributed NVX: followers on remote machines (the dMVX trade-off).

Varan's ring assumes shared memory; dMVX (Voulimeneas et al., 2020)
moves followers to other machines for isolation and pays for it in
network bandwidth, then claws most of it back with *selective
replication* — only externally-visible results are shipped, while
locally-regenerable ones (file reads, stat) are re-executed on the
follower's replica of the environment.

This driver measures the same trade-off on our substrate: a
syscall-heavy workload under (a) the local shared-memory transport,
(b) the networked transport with full replication, (c) selective
replication, (d) selective replication plus frame compression — plus a
cross-machine failover run where the *leader's whole machine* is
crashed mid-workload and a remote follower is promoted.
"""

from __future__ import annotations

from repro.core.config import SessionConfig
from repro.core.coordinator import VersionSpec
from repro.core.netring import (
    REPLICATE_FULL,
    REPLICATE_SELECTIVE,
    net_transport,
)
from repro.costmodel import US_PS
from repro.experiments.expconfig import apply_config
from repro.experiments.harness import ExperimentResult
from repro.faults.plan import Fault, FaultPlan, MACHINE_CRASH
from repro.world import World

#: dMVX (arXiv:2011.02091) headline shape: naive cross-machine
#: replication is ruinous; selective replication recovers most of it
#: (their geomean overhead drops from ~3.5x to ~1.5x on lighttpd-class
#: workloads, with network volume cut by more than half).
PAPER_DMVX = {
    "remote_full_worse_than_local": True,
    "selective_bytes_saved_fraction_at_least": 0.3,
}

DATA_PATH = "/dmvx/data"
DATA_SIZE = 4096

MACHINES = ("server", "client", "replica1", "replica2")


def _workload(iters: int):
    """A pread-heavy loop: mostly locally-regenerable syscalls, with a
    write mixed in so selective replication still ships something."""

    def main(ctx):
        from repro.kernel.uapi import O_CREAT, O_WRONLY

        acc = 0
        fd = yield from ctx.open(DATA_PATH)
        log = yield from ctx.open("/dmvx/log", O_WRONLY | O_CREAT)
        for i in range(iters):
            data = yield from ctx.pread(fd, 64, (i * 97) % (DATA_SIZE - 64))
            acc = (acc + data[0]) & 0xFFFF
            if i % 8 == 0:
                yield from ctx.write(log, b"tick %d\n" % i)
            yield from ctx.compute(2_000)
        yield from ctx.close(log)
        yield from ctx.close(fd)
        return acc

    return main


def _make_world() -> World:
    world = World(machine_names=MACHINES)
    data = bytes((i * 31) & 0xFF for i in range(DATA_SIZE))
    # Every machine that may host (or inherit) the leader needs its own
    # replica of the data file: a promoted remote follower re-executes
    # reads natively against local state.
    for name in ("server", "replica1", "replica2"):
        world.kernel.fs(world.machine(name)).create(DATA_PATH, data)
    return world


def _run(iters: int, followers: int, placement=None, transport=None,
         fault_plan=None):
    """One session run; returns (session, elapsed_us, expected_acc)."""
    world = _make_world()
    main = _workload(iters)
    specs = [VersionSpec(f"v{i}", main) for i in range(followers + 1)]
    config = SessionConfig(placement=placement, transport=transport,
                           fault_plan=fault_plan)
    session = world.nvx(specs, config=config).start()
    world.run()
    return session, world.sim.now / US_PS


def _run_native(iters: int) -> float:
    world = _make_world()
    world.spawn(_workload(iters), name="native")
    world.run()
    return world.sim.now / US_PS


def _net_row(session):
    """Network counters of the session's transport ({} when local)."""
    net = getattr(session.root_tuple.ring, "net", None)
    if net is None:
        return {"net_frames": 0, "net_kb": 0.0, "saved_kb": 0.0}
    return {"net_frames": net.frames,
            "net_kb": net.bytes / 1024.0,
            "saved_kb": net.bytes_saved / 1024.0}


def run(config=None, iters: int = 48, followers: int = 2,
        placement: str = "remote") -> ExperimentResult:
    values = apply_config(config, iters=iters, followers=followers,
                          placement=placement)
    iters = values["iters"]
    followers = values["followers"]
    placement = values["placement"]

    result = ExperimentResult(
        "distributed", "Distributed NVX (dMVX selective replication)",
        paper_reference=PAPER_DMVX)

    native_us = _run_native(iters)
    result.rows.append({"scenario": "native", "time_us": native_us,
                        "overhead": 1.0, "net_frames": 0,
                        "net_kb": 0.0, "saved_kb": 0.0})

    remote_map = {i: ("replica1", "replica2")[(i - 1) % 2]
                  for i in range(1, followers + 1)}
    scenarios = [("varan local", None, None)]
    if placement == "remote":
        scenarios += [
            ("remote full", remote_map,
             net_transport(replicate=REPLICATE_FULL)),
            ("remote selective", remote_map,
             net_transport(replicate=REPLICATE_SELECTIVE)),
            ("remote selective+zip", remote_map,
             net_transport(replicate=REPLICATE_SELECTIVE, compress=True)),
        ]
    remote_full_us = None
    for scenario, pmap, transport in scenarios:
        session, elapsed_us = _run(iters, followers, placement=pmap,
                                   transport=transport)
        if scenario == "remote full":
            remote_full_us = elapsed_us
        row = {"scenario": scenario, "time_us": elapsed_us,
               "overhead": elapsed_us / native_us}
        row.update(_net_row(session))
        result.rows.append(row)

    if placement == "remote":
        # Cross-machine failover: kill the leader's whole machine at
        # half the fault-free remote runtime (well past session setup,
        # well before completion); a remote follower must take over
        # and finish.
        plan = FaultPlan((Fault(MACHINE_CRASH, machine="server",
                                at_ps=int(remote_full_us * US_PS) // 2),))
        fsession, failover_us = _run(iters, followers,
                                     placement=remote_map,
                                     transport=net_transport(),
                                     fault_plan=plan)
        survivors = [v for v in fsession.variants if v.alive]
        row = {"scenario": "remote machine-crash failover",
               "time_us": failover_us,
               "overhead": failover_us / native_us,
               "promotions": fsession.stats.promotions,
               "survivors": len(survivors)}
        row.update(_net_row(fsession))
        result.rows.append(row)

    result.notes = ("remote full ships every event cross-machine; "
                    "selective elides locally-regenerable payloads "
                    "(pread/stat), reproducing dMVX's bandwidth claw-back")
    return result
