"""Table 2 — comparison with prior NVX systems on their own benchmarks.

Each row runs the benchmark its original paper used, under (a) the
ptrace-lockstep monitor calibrated for that system and (b) Varan with
one follower (prior systems only handle two versions).
"""

from __future__ import annotations

from repro.apps import (
    APACHE_HTTPD,
    LIGHTTPD,
    THTTPD,
    ServerStats,
    httpd_image,
    make_httpd,
    make_redis,
    redis_image,
)
from repro.clients import (
    make_apachebench,
    make_http_load,
    make_redis_benchmark,
)
from repro.experiments.expconfig import apply_config
from repro.experiments.harness import (
    MONITOR_NATIVE,
    MONITOR_VARAN,
    ExperimentResult,
    overhead,
    run_server_benchmark,
)
from repro.experiments.spec_common import spec_overheads
from repro.nvx.lockstep import MX_PROFILE, ORCHESTRA_PROFILE, TACHYON_PROFILE

#: Table 2 as printed in the paper: (system, benchmark) → (their
#: overhead, Varan's overhead).  Ratios are ×, percentages are /100.
PAPER_TABLE2 = {
    ("mx", "lighttpd-http_load"): (3.49, 1.01),
    ("mx", "redis-benchmark"): (16.72, 1.06),
    ("mx", "spec-cpu2006"): (1.179, 1.142),
    ("orchestra", "apache-ab"): (1.50, 1.024),
    ("orchestra", "spec-cpu2000"): (1.17, 1.113),
    ("tachyon", "lighttpd-ab"): (3.72, 1.00),
    ("tachyon", "thttpd-ab"): (1.17, 1.00),
}

_SERVER_ROWS = (
    # (system, row name, profile, server factory, image, client factory)
    ("mx", "lighttpd-http_load", MX_PROFILE,
     lambda: make_httpd(LIGHTTPD, stats=ServerStats()),
     lambda: httpd_image(LIGHTTPD),
     lambda scale: make_http_load(parallel=2, scale=scale)),
    ("mx", "redis-benchmark", MX_PROFILE,
     lambda: make_redis(stats=ServerStats(), background_thread=False),
     redis_image,
     lambda scale: make_redis_benchmark(scale=scale * 4)),
    ("orchestra", "apache-ab", ORCHESTRA_PROFILE,
     lambda: make_httpd(APACHE_HTTPD, stats=ServerStats()),
     lambda: httpd_image(APACHE_HTTPD),
     lambda scale: make_apachebench(concurrency=2, scale=scale)),
    ("tachyon", "lighttpd-ab", TACHYON_PROFILE,
     lambda: make_httpd(LIGHTTPD, stats=ServerStats()),
     lambda: httpd_image(LIGHTTPD),
     lambda scale: make_apachebench(concurrency=2, scale=scale)),
    ("tachyon", "thttpd-ab", TACHYON_PROFILE,
     lambda: make_httpd(THTTPD, stats=ServerStats()),
     lambda: httpd_image(THTTPD),
     lambda scale: make_apachebench(concurrency=2, scale=scale)),
)


#: SPEC suite rows: (system, suite, lockstep profile).
_SPEC_ROWS = (
    ("mx", "cpu2006", MX_PROFILE),
    ("orchestra", "cpu2000", ORCHESTRA_PROFILE),
)


def run_server_row(system, name, profile, server, image, client,
                   scale: float = 0.05):
    """One Table 2 server row: prior-system vs Varan overhead."""
    native = run_server_benchmark(server, lambda: client(scale),
                                  monitor=MONITOR_NATIVE)
    prior = run_server_benchmark(server, lambda: client(scale),
                                 monitor="lockstep", followers=1,
                                 lockstep_profile=profile)
    varan = run_server_benchmark(server, lambda: client(scale),
                                 monitor=MONITOR_VARAN, followers=1,
                                 image_factory=image)
    return overhead(native, prior), overhead(native, varan)


def parts():
    """Sweep decomposition: compound ``kind:system:name`` part keys."""
    keys = [f"server:{system}:{name}"
            for system, name, *_rest in _SERVER_ROWS]
    keys += [f"spec:{system}:{suite}" for system, suite, _ in _SPEC_ROWS]
    return keys


def run(config=None, scale: float = 0.05, spec_scale: float = 0.2,
        rows=None, suites=None) -> ExperimentResult:
    """``rows``/``suites`` select subsets of the server rows / SPEC
    suite rows by (system, name) pairs (sweep-runner decomposition);
    None means all of them, in table order."""
    opts = apply_config(config, scale=scale, spec_scale=spec_scale,
                        rows=rows, suites=suites)
    scale, spec_scale = opts["scale"], opts["spec_scale"]
    rows, suites = opts["rows"], opts["suites"]
    if config is not None and config.parts is not None:
        # Compound part keys: split back into row/suite selectors.
        rows, suites = [], []
        for part in config.parts:
            kind, system, name = part.split(":", 2)
            (rows if kind == "server" else suites).append((system, name))
    if rows is None:
        server_rows = _SERVER_ROWS
    else:
        wanted = set(rows)
        server_rows = tuple(entry for entry in _SERVER_ROWS
                            if (entry[0], entry[1]) in wanted)
    if suites is None:
        spec_rows = _SPEC_ROWS
    else:
        wanted = set(suites)
        spec_rows = tuple(entry for entry in _SPEC_ROWS
                          if (entry[0], entry[1]) in wanted)
    result = ExperimentResult(
        "table2", "Comparison with Mx, Orchestra and Tachyon",
        paper_reference=PAPER_TABLE2,
        notes="two versions, as prior systems support")
    for system, name, profile, server, image, client in server_rows:
        prior_oh, varan_oh = run_server_row(system, name, profile,
                                            server, image, client, scale)
        paper_prior, paper_varan = PAPER_TABLE2[(system, name)]
        result.rows.append({
            "system": system, "benchmark": name,
            "prior": prior_oh, "varan": varan_oh,
            "paper_prior": paper_prior, "paper_varan": paper_varan,
        })

    # SPEC suite rows: geometric-mean overheads across the suite.
    for system, suite, profile in spec_rows:
        prior_oh, varan_oh = spec_overheads(suite, profile,
                                            scale=spec_scale)
        paper_prior, paper_varan = PAPER_TABLE2[(system, f"spec-{suite}")]
        result.rows.append({
            "system": system, "benchmark": f"spec-{suite}",
            "prior": prior_oh, "varan": varan_oh,
            "paper_prior": paper_prior, "paper_varan": paper_varan,
        })
    return result
