"""§5.4 — Record-replay.

Redis runs the redis-benchmark workload while its execution is recorded
to persistent storage, once by Varan's record client (an artificial
follower draining the ring to disk) and once by a Scribe-style in-kernel
recorder.  The paper measured 14% overhead for Varan vs 53% for Scribe.
The recorded log is then replayed against candidate versions to triage
a crash, as §5.4 suggests.
"""

from __future__ import annotations

from repro.apps import ServerStats, make_redis, redis_image
from repro.apps.redis import BUGGY_REVISION, REVISIONS
from repro.clients import make_redis_benchmark
from repro.core.config import SessionConfig
from repro.core.coordinator import VersionSpec
from repro.experiments.expconfig import apply_config
from repro.experiments.harness import (
    MONITOR_NATIVE,
    MONITOR_SCRIBE,
    ExperimentResult,
    overhead,
    run_server_benchmark,
)
from repro.recordreplay import Recorder, ReplaySession
from repro.world import World

PAPER_RECORD = {"scribe_overhead": 1.53, "varan_overhead": 1.14}


def _run_varan_record(scale: float):
    world = World()
    session = world.nvx(
        [VersionSpec("redis", make_redis(stats=ServerStats(),
                                         background_thread=False),
                     image=redis_image())],
        config=SessionConfig(daemon=True))
    recorder = Recorder(session, "/var/varan.log")
    session.start()
    mains, report = make_redis_benchmark(scale=scale)
    for main in mains:
        world.kernel.spawn_task(world.client, main, name="bench")
    world.run()
    return report, recorder


def run(config=None, scale: float = 0.05) -> ExperimentResult:
    scale = apply_config(config, scale=scale)["scale"]
    result = ExperimentResult(
        "recordreplay-5.4", "Record-replay overhead vs Scribe",
        paper_reference=PAPER_RECORD)

    server = lambda: make_redis(stats=ServerStats(),
                                background_thread=False)
    client = lambda: make_redis_benchmark(scale=scale)
    native = run_server_benchmark(server, client, monitor=MONITOR_NATIVE)
    scribe = run_server_benchmark(server, client, monitor=MONITOR_SCRIBE)
    varan_report, recorder = _run_varan_record(scale)

    varan_overhead = (native.throughput
                      / max(1.0, varan_report.throughput_rps))
    result.rows.append({
        "system": "scribe (in-kernel)",
        "overhead": overhead(native, scribe),
        "paper": PAPER_RECORD["scribe_overhead"],
        "events_recorded": scribe.session.events_recorded,
    })
    result.rows.append({
        "system": "varan record client",
        "overhead": varan_overhead,
        "paper": PAPER_RECORD["varan_overhead"],
        "events_recorded": recorder.events_recorded,
    })
    result.notes = (f"log size {recorder.bytes_written} bytes; "
                    "recorded inside the same 'virtual machine' as the "
                    "paper's comparison")
    return result


def triage_crash(scale: float = 0.01):
    """Replay one production log against many revisions to find which
    introduced the crash — the multi-version replay use case of §5.4."""
    world = World()
    session = world.nvx(
        [VersionSpec("redis-prod",
                     make_redis(stats=ServerStats(),
                                revision=REVISIONS[0],
                                background_thread=False),
                     image=redis_image())],
        config=SessionConfig(daemon=True))
    recorder = Recorder(session, "/var/crash.log")
    session.start()
    mains, _report = make_redis_benchmark(
        scale=scale, commands=(b"PING", b"SET", b"GET", b"HMGET"))
    for main in mains:
        world.kernel.spawn_task(world.client, main, name="bench")
    world.run()

    replay_world = World()
    candidates = [
        VersionSpec(f"candidate-{rev}",
                    make_redis(stats=ServerStats(), revision=rev,
                               background_thread=False))
        for rev in REVISIONS
    ]
    replay = ReplaySession(replay_world, candidates, recorder.log_bytes,
                           daemon=True)
    replay.start()
    replay_world.run()
    return {
        "events_replayed": replay.events_replayed,
        "crashed_revisions": sorted(
            {name.split("-", 2)[-1] for name in replay.crashed}),
        "expected_buggy": BUGGY_REVISION,
    }
