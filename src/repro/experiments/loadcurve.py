"""Load curves: the open-loop client plane against NVX'd servers.

Two curves the paper's closed-loop tools cannot draw:

* **throughput-vs-followers** — achieved throughput and latency tails
  for the simulated redis under no monitor, Varan with 1..N local
  followers, and Varan with followers on remote machines (the dMVX
  placement), all at the same offered load; and
* **latency-vs-offered-load** — p50/p99/p999 against a sweep of offered
  loads under Varan, showing where the monitored server's latency knee
  sits relative to native.

Both are driven by :mod:`repro.clients.loadgen`: open-loop arrivals
with seeded determinism, so every cell is byte-stable across runs,
engines ("heap" vs "sharded") and sweep parallelism.
"""

from __future__ import annotations

from repro.apps.redis import make_redis
from repro.clients.loadgen import OpenLoopConfig, make_open_loop, spawn_pool
from repro.clients.topology import LoadTopology
from repro.core.config import SessionConfig
from repro.core.coordinator import VersionSpec
from repro.core.netring import REPLICATE_SELECTIVE, net_transport
from repro.costmodel import SEC_PS
from repro.experiments.expconfig import apply_config
from repro.experiments.harness import ExperimentResult
from repro.world import World

#: Varan's own server results (§4.3): per-syscall monitor cost stays
#: small, so monitored latency tails should stay the same shape as
#: native until the offered load reaches the (lower) monitored knee.
PAPER_LOADCURVE = {
    "monitored_tail_same_shape": True,
    "remote_worse_than_local": True,
}

_REPLICAS = ("replica1", "replica2")

_PARTS = ("followers", "offered")


def parts():
    """Sweep decomposition: the two curves run independently."""
    return list(_PARTS)


def _run_cell(scenario: str, followers: int, remote: bool,
              clients: int, machines: int, rate_rps: float,
              duration_ps: int, seed: int) -> dict:
    """One (server monitor, offered load) cell; returns its row."""
    topology = LoadTopology(
        clients=clients, machines=machines,
        extra_machines=_REPLICAS if remote else ())
    world = World(machine_names=topology.machine_names())
    if followers == 0:
        world.spawn(make_redis(), name="redis", daemon=True)
    else:
        specs = [VersionSpec(f"v{i}", make_redis())
                 for i in range(followers + 1)]
        placement = None
        transport = None
        if remote:
            placement = {i: _REPLICAS[(i - 1) % len(_REPLICAS)]
                         for i in range(1, followers + 1)}
            transport = net_transport(replicate=REPLICATE_SELECTIVE)
        world.nvx(specs, config=SessionConfig(
            daemon=True, placement=placement,
            transport=transport)).start()
    config = OpenLoopConfig(rate_rps=rate_rps, duration_ps=duration_ps,
                            seed=seed)
    placements, report, stats = make_open_loop(topology, config)
    spawn_pool(world, placements)
    # Arrivals stop at the duration; the slack drains in-flight
    # responses so the tail is measured, not truncated.
    world.run(until_ps=2 * duration_ps + SEC_PS)
    return {
        "scenario": scenario,
        "clients": clients,
        "offered_rps": rate_rps,
        "achieved_rps": report.throughput_rps,
        "p50_us": report.latency_percentile_us(50),
        "p99_us": report.latency_percentile_us(99),
        "p999_us": report.latency_percentile_us(99.9),
        "errors": report.errors,
        "timeouts": stats.timeouts,
        "reconnects": stats.reconnects,
    }


def run(config=None, clients: int = 1000, machines: int = 8,
        rate_rps: float = 20_000.0, followers: int = 2,
        offered_multipliers=(0.25, 0.5, 1.0, 2.0),
        duration_s: float = 1.0, seed: int = 0,
        scale: float = 1.0, curves=None) -> ExperimentResult:
    """``curves`` selects "followers" / "offered" (sweep decomposition);
    ``scale`` shrinks both the pool and the offered load together, so a
    sweep cell stays small while per-client behaviour is unchanged."""
    opts = apply_config(config, parts_key="curves", curves=curves,
                        clients=clients, machines=machines,
                        rate_rps=rate_rps, followers=followers,
                        offered_multipliers=offered_multipliers,
                        duration_s=duration_s, seed=seed, scale=scale)
    scale = opts["scale"]
    clients = max(4, int(round(opts["clients"] * scale)))
    machines = max(1, min(opts["machines"], clients))
    rate_rps = max(200.0, opts["rate_rps"] * scale)
    followers = opts["followers"]
    offered_multipliers = opts["offered_multipliers"]
    duration_ps = int(opts["duration_s"] * SEC_PS)
    seed = opts["seed"]
    selected = _PARTS if opts["curves"] is None else tuple(opts["curves"])

    result = ExperimentResult(
        "loadcurve", "Open-loop load curves vs monitor and placement",
        paper_reference=PAPER_LOADCURVE)

    if "followers" in selected:
        cells = [("native", 0, False)]
        cells += [(f"varan local f{n}", n, False)
                  for n in range(1, followers + 1)]
        cells += [(f"varan remote f{followers}", followers, True)]
        for scenario, n, remote in cells:
            result.rows.append(_run_cell(
                scenario, n, remote, clients, machines, rate_rps,
                duration_ps, seed))

    if "offered" in selected:
        for multiplier in offered_multipliers:
            row = _run_cell(
                f"varan local f{followers} x{multiplier:g}", followers,
                False, clients, machines, rate_rps * multiplier,
                duration_ps, seed)
            result.rows.append(row)

    result.notes = ("open-loop arrivals; latency charged from scheduled "
                    "arrival (coordinated-omission corrected); "
                    "p999 from power-of-2 digest")
    return result
