"""§5.3 — Live sanitization.

Redis revision 7f77235 built twice — once plain, once with
AddressSanitizer — and run together under Varan, the sanitized build as
the follower.  Expectations from the paper: no measurable slowdown of
the leader compared to running two unsanitized versions, and a median
log distance of only a few events (the paper measured six).

We also demonstrate running *several mutually-incompatible* sanitizers
concurrently (one follower each) and that a sanitized follower really
detects an injected use-after-free.
"""

from __future__ import annotations

from repro.apps import ServerStats, make_redis, redis_image
from repro.clients import make_redis_benchmark
from repro.core.config import SessionConfig
from repro.core.coordinator import VersionSpec
from repro.experiments.expconfig import apply_config
from repro.experiments.harness import ExperimentResult
from repro.sanitizers import ASAN, MSAN, TSAN, sanitized_spec
from repro.world import World

PAPER_SANITIZATION = {
    "leader_slowdown": 1.0,  # "no additional slowdown measured"
    "median_log_distance_events": 6,
}


def _run(sanitizers, scale: float):
    world = World()
    reports = []
    specs = [VersionSpec("redis-7f77235",
                         make_redis(stats=ServerStats(),
                                    background_thread=False),
                         image=redis_image())]
    for sanitizer in sanitizers:
        specs.append(sanitized_spec(
            "redis-7f77235",
            make_redis(stats=ServerStats(), background_thread=False),
            sanitizer, reports))
    if not sanitizers:  # comparison baseline: two plain versions
        specs.append(VersionSpec("redis-7f77235-b",
                                 make_redis(stats=ServerStats(),
                                            background_thread=False),
                                 image=redis_image()))
    session = world.nvx(specs, config=SessionConfig(
        daemon=True, sample_distances=True)).start()
    mains, report = make_redis_benchmark(scale=scale)
    for main in mains:
        world.kernel.spawn_task(world.client, main, name="bench")
    world.run()
    return session, report, reports


def run(config=None, scale: float = 0.05) -> ExperimentResult:
    scale = apply_config(config, scale=scale)["scale"]
    result = ExperimentResult(
        "sanitization-5.3", "Live sanitization of Redis",
        paper_reference=PAPER_SANITIZATION)

    plain_session, plain_report, _ = _run([], scale)
    asan_session, asan_report, _ = _run([ASAN], scale)
    all_session, all_report, _ = _run([ASAN, MSAN, TSAN], scale)

    slowdown = (plain_report.throughput_rps
                / max(1.0, asan_report.throughput_rps))
    result.rows.append({
        "configuration": "plain leader + plain follower (baseline)",
        "throughput_rps": plain_report.throughput_rps,
        "leader_slowdown": 1.0,
        "median_log_distance":
            plain_session.root_tuple.ring.stats.median_distance(),
    })
    result.rows.append({
        "configuration": "plain leader + ASan follower",
        "throughput_rps": asan_report.throughput_rps,
        "leader_slowdown": slowdown,
        "median_log_distance":
            asan_session.root_tuple.ring.stats.median_distance(),
    })
    result.rows.append({
        "configuration": "plain leader + ASan + MSan + TSan followers",
        "throughput_rps": all_report.throughput_rps,
        "leader_slowdown": (plain_report.throughput_rps
                            / max(1.0, all_report.throughput_rps)),
        "median_log_distance":
            all_session.root_tuple.ring.stats.median_distance(),
    })
    result.notes = ("paper: no leader slowdown; median log distance 6 "
                    "events; incompatible sanitizers run side by side")
    return result


REVISION_PLAIN = "9a22de8"


def detect_use_after_free(scale: float = 0.02):
    """Evidence that a sanitized follower genuinely finds the bug: the
    buggy revision's HMGET handler frees and then touches a block."""
    from repro.apps.redis import BUGGY_REVISION
    from repro.clients import make_redis_command_probe

    world = World()
    reports = []
    specs = [
        VersionSpec("redis-buggy-leader",
                    make_redis(stats=ServerStats(),
                               revision=REVISION_PLAIN,
                               background_thread=False),
                    image=redis_image()),
        sanitized_spec("redis-buggy",
                       make_redis(stats=ServerStats(),
                                  revision=BUGGY_REVISION,
                                  background_thread=False),
                       ASAN, reports),
    ]
    session = world.nvx(specs, config=SessionConfig(daemon=True)).start()
    mains, _report = make_redis_command_probe(b"HMGET missing f1\r\n")
    for main in mains:
        world.kernel.spawn_task(world.client, main, name="probe")
    world.run()
    return reports, session
