"""Fuzz-summary experiment: one small deterministic autopilot run.

Not a paper table — an operational check that rides the sweep: the
scenario fuzzer (generator → executor → journal → rule synthesis,
:mod:`repro.fuzz`) runs a fixed-seed, fixed-budget campaign and the
sweep's reference comparison pins its findings, exactly like a figure's
numbers.  A behaviour change anywhere in the monitor — divergence
handling, failover, ring contracts, BPF rewrites — shows up here as a
changed journal, caught by ``sweep --check-reference``.

The whole run executes under always-on invariant checkers, and the
sweep runner independently asserts the point produced zero process-wide
violations.
"""

from __future__ import annotations

from repro.experiments.expconfig import apply_config
from repro.experiments.harness import ExperimentResult
from repro.fuzz import run_fuzz

__all__ = ["run"]


def run(config=None, seed: int = 1, budget: int = 6) -> ExperimentResult:
    values = apply_config(config, seed=seed, budget=budget)
    seed, budget = values["seed"], values["budget"]
    report = run_fuzz(seed=seed, budget=budget)
    journal = report.journal
    counts = journal.counts()
    result = ExperimentResult(
        "fuzz-summary", "Scenario fuzzer campaign summary",
        notes=(f"seed={seed} budget={budget}; journal is byte-identical "
               f"per seed (CI cmp-checks two runs)"))
    result.rows.append({
        "metric": "scenarios run", "value": budget,
    })
    result.rows.append({
        "metric": "novel journal entries", "value": len(journal.entries),
    })
    result.rows.append({
        "metric": "duplicate findings", "value": journal.duplicates,
    })
    result.rows.append({
        "metric": "distinct divergence classes",
        "value": len(journal.kinds()),
    })
    result.rows.append({
        "metric": "fatal divergences journaled",
        "value": counts["divergence"],
    })
    result.rows.append({
        "metric": "crashes journaled", "value": counts["crash"],
    })
    result.rows.append({
        "metric": "rules synthesized", "value": len(report.rules),
    })
    result.rows.append({
        "metric": "rules absorbed (clean re-run)",
        "value": len(report.absorbed),
    })
    return result
