"""Figure 5 — C10k server overhead under Varan, 0-6 followers.

Five servers, each driven by the same client tool as the paper:
Beanstalkd (beanstalkd-benchmark), Lighttpd (wrk), Memcached (memslap),
Nginx (wrk-like workload), Redis (redis-benchmark).  Overhead is
client-side throughput normalised to native execution.
"""

from __future__ import annotations

from typing import Dict

from repro.apps import (
    LIGHTTPD,
    ServerStats,
    beanstalkd_image,
    httpd_image,
    make_beanstalkd,
    make_httpd,
    make_memcached,
    make_nginx,
    make_redis,
    memcached_image,
    nginx_image,
    redis_image,
)
from repro.clients import (
    make_beanstalkd_benchmark,
    make_memslap,
    make_redis_benchmark,
    make_wrk,
)
from repro.costmodel import SEC_PS
from repro.experiments.expconfig import apply_config
from repro.experiments.harness import (
    MONITOR_NATIVE,
    MONITOR_VARAN,
    ExperimentResult,
    overhead,
    run_server_benchmark,
)

#: Paper Figure 5 values: overhead (normalized runtime) per follower
#: count 0..6.
PAPER_FIGURE5 = {
    "beanstalkd": (1.10, 1.52, 1.57, 1.64, 1.74, 1.73, 1.77),
    "lighttpd": (1.00, 1.12, 1.14, 1.14, 1.14, 1.15, 1.15),
    "memcached": (1.00, 1.14, 1.17, 1.18, 1.19, 1.30, 1.32),
    "nginx": (1.04, 1.28, 1.37, 1.41, 1.55, 1.58, 1.64),
    "redis": (1.00, 1.06, 1.11, 1.14, 1.24, 1.23, 1.25),
}

#: The C10k benchmark matrix: server factory, image, client factory.
def _configs(scale: float):
    return {
        "beanstalkd": dict(
            server=lambda: make_beanstalkd(stats=ServerStats(),
                                           binlog_path="/var/binlog"),
            image=beanstalkd_image,
            client=lambda: make_beanstalkd_benchmark(scale=scale),
        ),
        "lighttpd": dict(
            server=lambda: make_httpd(LIGHTTPD, stats=ServerStats()),
            image=lambda: httpd_image(LIGHTTPD),
            client=lambda: make_wrk(duration_ps=int(2 * SEC_PS * scale
                                                    * 10)),
        ),
        "memcached": dict(
            server=lambda: make_memcached(stats=ServerStats()),
            image=memcached_image,
            client=lambda: make_memslap(scale=scale),
        ),
        "nginx": dict(
            # Four worker processes (the paper-era default), driven by
            # the same 10-connection wrk workload as Lighttpd.  Note:
            # saturating 4 workers would need >8 cores once 6 follower
            # variants also run, so this configuration is latency-bound
            # and underestimates the paper's overhead (see
            # EXPERIMENTS.md).
            server=lambda: make_nginx(port=8080, stats=ServerStats()),
            image=nginx_image,
            client=lambda: make_wrk(port=8080,
                                    duration_ps=int(2 * SEC_PS * scale
                                                    * 10)),
        ),
        "redis": dict(
            server=lambda: make_redis(stats=ServerStats()),
            image=redis_image,
            client=lambda: make_redis_benchmark(scale=scale * 4),
        ),
    }


def run_server(name: str, follower_counts=(0, 1, 2, 3, 4, 5, 6),
               scale: float = 0.05) -> Dict[int, float]:
    """Measure one server's overhead across follower counts."""
    config = _configs(scale)[name]
    native = run_server_benchmark(config["server"], config["client"],
                                  monitor=MONITOR_NATIVE)
    overheads = {}
    for followers in follower_counts:
        varan = run_server_benchmark(config["server"], config["client"],
                                     monitor=MONITOR_VARAN,
                                     followers=followers,
                                     image_factory=config["image"])
        overheads[followers] = overhead(native, varan)
    return overheads


def parts():
    """Sweep decomposition: one part per server."""
    return sorted(PAPER_FIGURE5)


def run(config=None,
        servers=("beanstalkd", "lighttpd", "memcached", "nginx", "redis"),
        follower_counts=(0, 1, 2, 3, 4, 5, 6),
        scale: float = 0.05) -> ExperimentResult:
    opts = apply_config(config, parts_key="servers", servers=servers,
                        follower_counts=follower_counts, scale=scale)
    servers = opts["servers"]
    follower_counts = opts["follower_counts"]
    scale = opts["scale"]
    result = ExperimentResult(
        "figure5",
        "C10k server overhead vs follower count (normalized runtime)",
        paper_reference=PAPER_FIGURE5,
        notes=f"workloads scaled by {scale}; clients on the same rack")
    for name in servers:
        overheads = run_server(name, follower_counts, scale)
        row = {"server": name}
        for followers in follower_counts:
            row[f"f{followers}"] = overheads[followers]
            row[f"paper_f{followers}"] = PAPER_FIGURE5[name][followers]
        result.rows.append(row)
    return result
