"""Registry mapping every table/figure to its reproduction driver.

Every driver follows one contract::

    run(config: Optional[ExperimentConfig] = None, **kwargs)
        -> ExperimentResult

``config`` carries the three things a caller (serial CLI, sweep runner,
trace exporter) may want to vary without knowing a driver's private
keywords: the workload ``scale``, a ``parts`` subset for decomposable
drivers, and ``options`` — explicit keyword overrides folded over the
driver's defaults.  Decomposable drivers additionally expose a
module-level ``parts() -> list[str]`` returning their ordered part
keys, which is what the sweep runner fans out over.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.experiments.expconfig import ExperimentConfig, apply_config
from repro.experiments import (
    ablations,
    distributed,
    failover,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    fuzzsummary,
    loadcurve,
    multirevision,
    recordreplay_exp,
    sanitization,
    table1,
    table2,
)


__all__ = ["EXPERIMENTS", "ExperimentConfig", "MODULES", "apply_config",
           "experiment_parts", "run_experiment"]

#: experiment id → driver module (each exposing ``run`` and, when
#: decomposable, ``parts``).
MODULES = {
    "table1": table1,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "table2": table2,
    "figure7": figure7,
    "figure8": figure8,
    "failover-5.1": failover,
    "multirevision-5.2": multirevision,
    "sanitization-5.3": sanitization,
    "recordreplay-5.4": recordreplay_exp,
    "ablations": ablations,
    "distributed": distributed,
    "loadcurve": loadcurve,
    "fuzz-summary": fuzzsummary,
}

#: experiment id → driver callable (kept as the stable public surface).
EXPERIMENTS: Dict[str, Callable] = {
    eid: module.run for eid, module in MODULES.items()
}


def _lookup(experiment_id: str):
    try:
        return MODULES[experiment_id]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(MODULES)}") from exc


def experiment_parts(experiment_id: str) -> Optional[List[str]]:
    """Ordered part keys of a decomposable driver, else None."""
    module = _lookup(experiment_id)
    maker = getattr(module, "parts", None)
    return list(maker()) if maker is not None else None


def run_experiment(experiment_id: str,
                   config: Optional[ExperimentConfig] = None, **kwargs):
    driver = _lookup(experiment_id).run
    if config is not None:
        return driver(config=config, **kwargs)
    return driver(**kwargs)
