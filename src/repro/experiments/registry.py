"""Registry mapping every table/figure to its reproduction driver."""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments import (
    ablations,
    failover,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    multirevision,
    recordreplay_exp,
    sanitization,
    table1,
    table2,
)

#: experiment id → zero-argument callable returning an ExperimentResult.
EXPERIMENTS: Dict[str, Callable] = {
    "table1": table1.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "table2": table2.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "failover-5.1": failover.run,
    "multirevision-5.2": multirevision.run,
    "sanitization-5.3": sanitization.run,
    "recordreplay-5.4": recordreplay_exp.run,
    "ablations": ablations.run,
}


def run_experiment(experiment_id: str, **kwargs):
    try:
        driver = EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(EXPERIMENTS)}") from exc
    return driver(**kwargs)
