"""Figure 6 — prior-work servers under Varan, 0-6 followers.

Apache httpd, thttpd and Lighttpd (under both ApacheBench and
http_load), showing that on the workloads used to evaluate prior NVX
systems Varan scales essentially flat with the number of followers.
"""

from __future__ import annotations

from repro.apps import (
    APACHE_HTTPD,
    LIGHTTPD,
    THTTPD,
    ServerStats,
    httpd_image,
    make_httpd,
)
from repro.clients import make_apachebench, make_http_load
from repro.experiments.expconfig import apply_config
from repro.experiments.harness import (
    MONITOR_NATIVE,
    MONITOR_VARAN,
    ExperimentResult,
    overhead,
    run_server_benchmark,
)

PAPER_FIGURE6 = {
    "apache-ab": (1.00, 1.02, 1.04, 1.03, 1.04, 1.04, 1.04),
    "thttpd-ab": (1.00, 1.00, 1.00, 1.01, 1.01, 1.01, 1.02),
    "lighttpd-ab": (1.00, 1.00, 1.00, 1.02, 1.04, 1.05, 1.07),
    "lighttpd-http_load": (1.00, 1.01, 1.03, 1.05, 1.06, 1.08, 1.08),
}

#: ab/http_load drive one request per connection at low concurrency:
#: the servers are latency-bound, not saturated — which is why the
#: paper's Figure 6 lines stay essentially flat.
_AB_CONCURRENCY = 2

_ROWS = (
    ("apache-ab", APACHE_HTTPD,
     lambda scale: make_apachebench(concurrency=_AB_CONCURRENCY,
                                    scale=scale)),
    ("thttpd-ab", THTTPD,
     lambda scale: make_apachebench(concurrency=_AB_CONCURRENCY,
                                    scale=scale)),
    ("lighttpd-ab", LIGHTTPD,
     lambda scale: make_apachebench(concurrency=_AB_CONCURRENCY,
                                    scale=scale)),
    ("lighttpd-http_load", LIGHTTPD,
     lambda scale: make_http_load(parallel=_AB_CONCURRENCY,
                                  scale=scale)),
)


def run_row(name, profile, client, follower_counts, scale):
    server = lambda: make_httpd(profile, stats=ServerStats())
    image = lambda: httpd_image(profile)
    native = run_server_benchmark(server, lambda: client(scale),
                                  monitor=MONITOR_NATIVE)
    overheads = {}
    for followers in follower_counts:
        varan = run_server_benchmark(server, lambda: client(scale),
                                     monitor=MONITOR_VARAN,
                                     followers=followers,
                                     image_factory=image)
        overheads[followers] = overhead(native, varan)
    return overheads


def parts():
    """Sweep decomposition: one part per (server, client tool) row."""
    return [name for name, _profile, _client in _ROWS]


def run(config=None, follower_counts=(0, 1, 2, 3, 4, 5, 6),
        scale: float = 0.05, rows=None) -> ExperimentResult:
    """``rows`` selects a subset of server rows by name (sweep-runner
    decomposition); None means all of them, in table order."""
    opts = apply_config(config, parts_key="rows", rows=rows,
                        follower_counts=follower_counts, scale=scale)
    rows = opts["rows"]
    follower_counts = opts["follower_counts"]
    scale = opts["scale"]
    if rows is None:
        selected = _ROWS
    else:
        by_name = {name: entry for entry in _ROWS for name in (entry[0],)}
        selected = tuple(by_name[name] for name in rows)
    result = ExperimentResult(
        "figure6", "Prior-work servers under Varan vs follower count",
        paper_reference=PAPER_FIGURE6)
    for name, profile, client in selected:
        overheads = run_row(name, profile, client, follower_counts, scale)
        row = {"server": name}
        for followers in follower_counts:
            row[f"f{followers}"] = overheads[followers]
            row[f"paper_f{followers}"] = PAPER_FIGURE6[name][followers]
        result.rows.append(row)
    return result
