"""Experiment drivers: one module per table/figure of the paper."""

from repro.experiments.harness import (
    BenchmarkRun,
    ExperimentResult,
    MONITOR_NATIVE,
    MONITOR_SCRIBE,
    MONITOR_VARAN,
    overhead,
    run_server_benchmark,
)

__all__ = [
    "BenchmarkRun",
    "ExperimentResult",
    "MONITOR_NATIVE",
    "MONITOR_SCRIBE",
    "MONITOR_VARAN",
    "overhead",
    "run_server_benchmark",
]
