"""Shared SPEC CPU runner for Figures 7-8 and the Table 2 suite rows.

SPEC programs are CPU-bound: their NVX overhead is dominated by memory
pressure from co-running variants (modelled by
:func:`repro.apps.spec.memory_pressure_factor`) plus the per-syscall
monitor cost, which the DES measures directly.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Iterable, Optional, Tuple

from repro.apps.spec import (
    CPU2000,
    CPU2006,
    SpecBenchmark,
    make_spec,
    memory_pressure_factor,
    spec_image,
)
from repro.core.coordinator import VersionSpec
from repro.nvx.lockstep import MonitorProfile
from repro.world import World


def _scaled(benchmark: SpecBenchmark, scale: float) -> SpecBenchmark:
    return replace(benchmark,
                   compute_cycles=max(1_000_000,
                                      int(benchmark.compute_cycles * scale)))


def run_spec_native(benchmark: SpecBenchmark, scale: float = 1.0) -> int:
    """Virtual completion time (ps) of one native run."""
    world = World()
    bench = _scaled(benchmark, scale)
    task = world.spawn(make_spec(bench), name=bench.name)
    world.run()
    thread = task.threads[0]
    if thread.exception is not None:
        raise thread.exception
    return world.now


def run_spec_varan(benchmark: SpecBenchmark, followers: int,
                   scale: float = 1.0) -> int:
    """Virtual completion time (ps) of the leader under Varan."""
    world = World()
    bench = _scaled(benchmark, scale)
    versions = followers + 1
    pressure = memory_pressure_factor(bench, versions,
                                      world.server.spec)
    specs = [VersionSpec(f"v{i}",
                         make_spec(bench, compute_scale=pressure),
                         image=spec_image(bench))
             for i in range(versions)]
    session = world.nvx(specs).start()
    finish = {}

    def watch():
        # Wait for session setup, then arm a completion callback on the
        # leader's main thread — exact finish time, no polling error.
        from repro.sim.core import Sleep

        while not session.ready:
            yield Sleep(50_000_000)
        leader_thread = session.variants[0].tasks[0].threads[0]
        leader_thread.on_done(lambda _p: finish.setdefault("ps",
                                                           world.sim.now))

    world.server.spawn(watch(), name="watch", daemon=True)
    world.run()
    return finish.get("ps", world.now) - session.stats.setup_ps


def run_spec_lockstep(benchmark: SpecBenchmark,
                      profile: MonitorProfile,
                      scale: float = 1.0) -> int:
    """Virtual completion time (ps) under a ptrace lockstep monitor
    (two versions, like the prior systems)."""
    world = World()
    bench = _scaled(benchmark, scale)
    pressure = memory_pressure_factor(bench, 2, world.server.spec)
    specs = [VersionSpec(f"v{i}",
                         make_spec(bench, compute_scale=pressure))
             for i in range(2)]
    session = world.lockstep(specs, profile=profile).start()
    world.run()
    return world.now


def spec_suite(suite: str) -> Tuple[SpecBenchmark, ...]:
    return CPU2000 if suite == "cpu2000" else CPU2006


def spec_overheads(suite: str, profile: MonitorProfile,
                   scale: float = 0.2,
                   benchmarks: Optional[Iterable] = None):
    """(prior geomean overhead, Varan geomean overhead) over a suite."""
    chosen = tuple(benchmarks) if benchmarks else spec_suite(suite)
    prior_ratios = []
    varan_ratios = []
    for benchmark in chosen:
        native = run_spec_native(benchmark, scale)
        prior_ratios.append(
            run_spec_lockstep(benchmark, profile, scale) / native)
        varan_ratios.append(
            run_spec_varan(benchmark, followers=1, scale=scale) / native)
    return _geomean(prior_ratios), _geomean(varan_ratios)


def _geomean(values) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))
