"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list
    python -m repro figure4
    python -m repro figure5 --scale 0.01
    python -m repro all --scale 0.01
"""

from __future__ import annotations

import argparse
import sys
import time


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Varan paper's tables and figures")
    parser.add_argument("experiment",
                        help="experiment id (see 'list'), 'all' or 'list'")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale factor for server benchmarks")
    return parser


def main(argv=None) -> int:
    from repro.experiments.registry import EXPERIMENTS, run_experiment

    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0

    chosen = (sorted(EXPERIMENTS) if args.experiment == "all"
              else [args.experiment])
    scaled = {"figure5", "figure6", "table2", "figure7", "figure8",
              "sanitization-5.3", "recordreplay-5.4"}
    for experiment_id in chosen:
        if experiment_id not in EXPERIMENTS:
            print(f"unknown experiment {experiment_id!r}; "
                  f"try 'list'", file=sys.stderr)
            return 2
        kwargs = {}
        if args.scale is not None and experiment_id in scaled:
            kwargs["scale"] = args.scale
        started = time.time()
        result = run_experiment(experiment_id, **kwargs)
        print(result.render())
        print(f"[{experiment_id} regenerated in "
              f"{time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
