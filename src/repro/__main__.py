"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list
    python -m repro figure4
    python -m repro figure5 --scale 0.01
    python -m repro all --scale 0.01
    python -m repro sweep --jobs 4 --scale 0.008 --check-reference
    python -m repro sweep --jobs 4 --metrics
    python -m repro trace figure4 --out trace.json
    python -m repro trace distributed --placement remote --out trace.json
    python -m repro chaos --seed 7 --plans 20
    python -m repro chaos --seed 7 --plans 20 --placement remote
    python -m repro load --clients 1000 --rate 20000
    python -m repro load --scale 0.02 --engine sharded --out curves.txt
    python -m repro fuzz --seed 1 --budget 12
    python -m repro fuzz --seed 1 --budget 12 --out journal.txt
"""

from __future__ import annotations

import argparse
import sys
import time


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Varan paper's tables and figures")
    parser.add_argument("experiment",
                        help="experiment id (see 'list'), 'all', 'list', "
                             "'sweep', 'trace', 'chaos', 'load' or "
                             "'fuzz'")
    parser.add_argument("target", nargs="?", default=None,
                        help="(trace) experiment id to trace")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale factor for server benchmarks")
    parser.add_argument("--jobs", type=int, default=1,
                        help="(sweep) worker processes; 1 = serial")
    parser.add_argument("--out", default=None,
                        help="(sweep) write the report to this file "
                             "instead of stdout; (trace) write the "
                             "Chrome trace_event JSON here")
    parser.add_argument("--check-reference", action="store_true",
                        help="(sweep) diff the report against "
                             "benchmarks/reference_sweep.txt; non-zero "
                             "exit on mismatch")
    parser.add_argument("--metrics", action="store_true",
                        help="(sweep) collect per-session metrics and "
                             "print the merged JSON snapshot to stdout")
    parser.add_argument("--jsonl", default=None,
                        help="(trace) also stream raw trace records to "
                             "this JSONL file")
    parser.add_argument("--seed", type=int, default=7,
                        help="(chaos/fuzz) master seed for workloads, "
                             "fault plans and scenario sampling")
    parser.add_argument("--budget", type=int, default=12,
                        help="(fuzz) number of scenarios to run")
    parser.add_argument("--no-synthesis", action="store_true",
                        help="(fuzz) skip the BPF rule-synthesis pass")
    parser.add_argument("--plans", type=int, default=20,
                        help="(chaos) number of (workload, fault plan) "
                             "pairs to run")
    parser.add_argument("--placement", choices=("local", "remote"),
                        default=None,
                        help="(chaos/trace) follower placement: 'local' "
                             "(shared-memory ring, default) or 'remote' "
                             "(networked transport to replica machines)")
    parser.add_argument("--engine", choices=("heap", "sharded"),
                        default=None,
                        help="(load/chaos) DES engine: 'heap' (single "
                             "event heap, default) or 'sharded' "
                             "(per-machine-group shards; bit-identical "
                             "results, faster at high client counts)")
    parser.add_argument("--shards", type=int, default=None,
                        help="(load/chaos) shard count for "
                             "--engine sharded; default: one per "
                             "machine, capped at 8")
    parser.add_argument("--clients", type=int, default=None,
                        help="(load) open-loop client pool size before "
                             "--scale (default 1000)")
    parser.add_argument("--rate", type=float, default=None,
                        help="(load) aggregate offered load in requests "
                             "per virtual second before --scale "
                             "(default 20000)")
    return parser


def run_sweep_command(args) -> int:
    from repro.experiments import runner

    started = time.time()
    results = runner.run_sweep(jobs=args.jobs, scale=args.scale,
                               collect_metrics=args.metrics)
    report = runner.render_sweep(results, scale=args.scale)
    elapsed = time.time() - started
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
        print(f"[sweep written to {args.out} in {elapsed:.1f}s "
              f"with --jobs {args.jobs}]")
    else:
        print(report, end="")
        print(f"[sweep completed in {elapsed:.1f}s "
              f"with --jobs {args.jobs}]")
    if args.metrics:
        # Metrics go to stdout, never into --out: the report file must
        # stay byte-comparable against the committed reference.
        print(runner.render_metrics(results))
    if args.check_reference:
        with open(runner.reference_path()) as fh:
            reference = fh.read()
        diffs = runner.compare_reports(report, reference)
        if diffs:
            print(f"sweep DIFFERS from reference "
                  f"({len(diffs)} lines):", file=sys.stderr)
            for diff in diffs[:20]:
                print(f"  {diff}", file=sys.stderr)
            return 1
        print("sweep matches benchmarks/reference_sweep.txt")
    return 0


def run_chaos_command(args) -> int:
    """Randomized fault-injection runs under the invariant checker.

    The journal (stdout or --out) is byte-identical across runs of the
    same --seed/--plans; exit status is non-zero when any surviving
    variant's output diverged from the fault-free baseline or any NVX
    invariant was violated.
    """
    from repro.faults.chaos import run_chaos
    from repro.world import default_engine

    with default_engine(args.engine or "heap", shards=args.shards):
        journal, failures = run_chaos(args.seed, args.plans,
                                      placement=args.placement or "local")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(journal)
        print(f"[chaos journal written to {args.out}]")
    else:
        print(journal, end="")
    return 1 if failures else 0


def run_load_command(args) -> int:
    """Drive the open-loop load-generation plane and print its curves.

    Deterministic: the same flags produce a byte-identical report
    whichever engine runs it — CI compares --engine heap against
    --engine sharded output with cmp.
    """
    from repro.experiments.registry import ExperimentConfig, run_experiment
    from repro.world import default_engine

    options = [("seed", args.seed)]
    if args.clients is not None:
        options.append(("clients", args.clients))
    if args.rate is not None:
        options.append(("rate_rps", args.rate))
    config = ExperimentConfig(scale=args.scale,
                              options=tuple(sorted(options)))
    engine = args.engine or "heap"
    started = time.time()
    with default_engine(engine, shards=args.shards):
        result = run_experiment("loadcurve", config=config)
    report = result.render() + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
        print(f"[load curves written to {args.out} in "
              f"{time.time() - started:.1f}s with --engine {engine}]")
    else:
        print(report, end="")
    return 0


def run_fuzz_command(args) -> int:
    """Drive the scenario fuzzer's autopilot.

    The report (journal + synthesized rules) is byte-identical across
    runs of the same --seed/--budget — CI cmp-checks two runs.  Exit
    status is non-zero when any scenario produced an output mismatch or
    invariant violation that no synthesized rule absorbed.
    """
    from repro.fuzz import run_fuzz

    started = time.time()
    report = run_fuzz(seed=args.seed, budget=args.budget,
                      synthesis=not args.no_synthesis)
    text = report.render()
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"[fuzz report written to {args.out} in "
              f"{time.time() - started:.1f}s]")
    else:
        print(text, end="")
    counts = report.journal.counts()
    bad = counts["mismatch"] + counts["violation"] + counts["deadlock"]
    return 1 if bad else 0


def run_trace_command(args) -> int:
    """Run one experiment with tracing armed and export a Chrome trace.

    The trace derives from sim state only, so two runs with the same
    arguments produce byte-identical files.
    """
    from repro import obs
    from repro.experiments.registry import (
        EXPERIMENTS,
        ExperimentConfig,
        run_experiment,
    )

    if args.target is None:
        print("usage: python -m repro trace <experiment> --out trace.json",
              file=sys.stderr)
        return 2
    if args.target not in EXPERIMENTS:
        print(f"unknown experiment {args.target!r}; try 'list'",
              file=sys.stderr)
        return 2
    if args.out is None:
        print("trace requires --out <file>", file=sys.stderr)
        return 2
    sinks = [obs.MemorySink()]
    if args.jsonl:
        sinks.append(obs.JsonlSink(args.jsonl))
    tracer = obs.Tracer(sinks=sinks)
    # --placement is only forwarded when given explicitly: drivers that
    # take no placement keyword reject the option by name.
    options = (() if args.placement is None
               else (("placement", args.placement),))
    config = ExperimentConfig(scale=args.scale, options=options)
    with obs.tracing(tracer):
        run_experiment(args.target, config=config)
    records = tracer.records
    with open(args.out, "w") as fh:
        fh.write(obs.chrome_trace_json(records))
    tracer.close()
    print(f"[{args.target}: {len(records)} trace events -> {args.out}]")
    return 0


def main(argv=None) -> int:
    from repro.experiments.registry import EXPERIMENTS, run_experiment
    from repro.experiments.runner import SCALED_EXPERIMENTS as scaled

    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0
    if args.experiment == "sweep":
        return run_sweep_command(args)
    if args.experiment == "trace":
        return run_trace_command(args)
    if args.experiment == "chaos":
        return run_chaos_command(args)
    if args.experiment == "load":
        return run_load_command(args)
    if args.experiment == "fuzz":
        return run_fuzz_command(args)

    chosen = (sorted(EXPERIMENTS) if args.experiment == "all"
              else [args.experiment])
    for experiment_id in chosen:
        if experiment_id not in EXPERIMENTS:
            print(f"unknown experiment {experiment_id!r}; "
                  f"try 'list'", file=sys.stderr)
            return 2
        kwargs = {}
        if args.scale is not None and experiment_id in scaled:
            kwargs["scale"] = args.scale
        started = time.time()
        result = run_experiment(experiment_id, **kwargs)
        print(result.render())
        print(f"[{experiment_id} regenerated in "
              f"{time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
