"""Seeded scenario sampling for the fuzzer.

A :class:`Scenario` freezes one point in the space the autopilot
explores: workload scenarios (a chaos-family workload under an optional
fault plan, with an optional *divergence profile* that makes variants
intentionally issue benign extra system calls), and server scenarios
(an NVX Redis group — possibly with the §5.1 buggy revision leading —
under a byzantine client mix from :mod:`repro.clients.adversaries`).

The generator starts from a small fixed **frontier** — one scenario per
qualitatively distinct region, the fuzzing analogue of a seed corpus —
then samples freely, biased toward regions whose scenarios produced
novel journal entries (``note_novel``).  All draws come from one seeded
stream, so scenario ``i`` of a given seed is always the same scenario.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.apps.redis import BUGGY_REVISION, REVISIONS
from repro.clients.adversaries import ADVERSARIES

__all__ = ["Scenario", "ScenarioGenerator", "DIVERGENCE_PROFILES"]

#: How a workload scenario makes variants disagree on purpose: the
#: follower issues an extra benign call (the BPF "addition" direction,
#: absorbed by ALLOW) or the leader does (the "removal" direction,
#: absorbed by SKIP).
DIVERGENCE_PROFILES = ("none", "follower-extra", "leader-extra")

#: Names of the chaos workload family, index-aligned with
#: ``repro.faults.chaos.WORKLOADS``.
WORKLOAD_NAMES = ("pread-mix", "rw-cycle", "spin-sleep", "threads",
                  "fork-child")


@dataclass(frozen=True)
class Scenario:
    """One frozen point of the fuzz space (hashable, replayable)."""

    index: int
    sub_seed: int
    kind: str                      # "workload" | "server"
    # workload-kind fields
    workload: int = 0              # index into chaos.WORKLOADS
    n_variants: int = 2
    fault: bool = False
    divergence: str = "none"
    # server-kind fields
    revision: str = REVISIONS[0]
    followers: int = 2
    adversaries: Tuple[str, ...] = ()

    def region(self) -> Tuple:
        """The bias-weight key: which qualitative neighbourhood this
        scenario lives in (workload family × divergence profile ×
        faults, or revision × adversary mix)."""
        if self.kind == "workload":
            return ("workload", self.workload, self.divergence, self.fault)
        return ("server", self.revision == BUGGY_REVISION, self.adversaries)

    def describe(self) -> str:
        if self.kind == "workload":
            return (f"workload={WORKLOAD_NAMES[self.workload]} "
                    f"variants={self.n_variants} fault={self.fault} "
                    f"divergence={self.divergence}")
        return (f"server revision={self.revision} "
                f"followers={self.followers} "
                f"adversaries={','.join(self.adversaries)}")


class ScenarioGenerator:
    """Deterministic, novelty-biased scenario stream."""

    def __init__(self, seed: int,
                 mix: Tuple[str, ...] = ADVERSARIES) -> None:
        self.seed = seed
        self.mix = tuple(mix)
        self._rng = random.Random(seed * 0x9E3779B1 + 0xF022)
        #: region key -> novelty hits; drives biased sampling.
        self.weights: Dict[Tuple, int] = {}
        self._index = 0

    # -- feedback ----------------------------------------------------------

    def note_novel(self, scenario: Scenario) -> None:
        """A scenario produced a novel journal entry: weight its region
        up so sampling revisits that neighbourhood."""
        key = scenario.region()
        self.weights[key] = self.weights.get(key, 0) + 1

    # -- sampling ----------------------------------------------------------

    def next_scenario(self) -> Scenario:
        index = self._index
        self._index += 1
        rng = self._rng
        sub_seed = rng.getrandbits(32)
        frontier = self._frontier(index, sub_seed, rng)
        if frontier is not None:
            return frontier
        if self.weights and rng.random() < 0.5:
            return self._draw_in_region(index, sub_seed, rng,
                                        self._pick_region(rng))
        return self._draw_free(index, sub_seed, rng)

    def _frontier(self, index: int, sub_seed: int,
                  rng: random.Random) -> Optional[Scenario]:
        """The fixed seed corpus: the first scenarios cover each
        qualitative region once before free sampling begins."""
        if index == 0:
            return Scenario(index, sub_seed, "workload",
                            workload=rng.randrange(len(WORKLOAD_NAMES)),
                            n_variants=3, divergence="follower-extra")
        if index == 1:
            return Scenario(index, sub_seed, "workload",
                            workload=rng.randrange(len(WORKLOAD_NAMES)),
                            n_variants=3, divergence="leader-extra")
        if index == 2:
            return Scenario(index, sub_seed, "server",
                            revision=BUGGY_REVISION, followers=2,
                            adversaries=self.mix)
        if index == 3:
            return Scenario(index, sub_seed, "workload",
                            workload=rng.randrange(len(WORKLOAD_NAMES)),
                            n_variants=rng.randint(2, 3), fault=True)
        return None

    def _pick_region(self, rng: random.Random) -> Tuple:
        items = sorted(self.weights.items())
        total = sum(weight for _key, weight in items)
        point = rng.randrange(total)
        for key, weight in items:
            point -= weight
            if point < 0:
                return key
        return items[-1][0]  # pragma: no cover - randrange < total

    def _draw_in_region(self, index: int, sub_seed: int,
                        rng: random.Random, region: Tuple) -> Scenario:
        if region[0] == "workload":
            _tag, workload, divergence, fault = region
            return Scenario(index, sub_seed, "workload",
                            workload=workload,
                            n_variants=rng.randint(2, 4),
                            fault=fault, divergence=divergence)
        _tag, buggy, adversaries = region
        return Scenario(index, sub_seed, "server",
                        revision=BUGGY_REVISION if buggy else REVISIONS[0],
                        followers=rng.randint(1, 2),
                        adversaries=adversaries)

    def _draw_free(self, index: int, sub_seed: int,
                   rng: random.Random) -> Scenario:
        if rng.random() < 0.25:
            size = rng.randint(1, min(3, len(self.mix)))
            start = rng.randrange(len(self.mix))
            chosen = tuple(self.mix[(start + i) % len(self.mix)]
                           for i in range(size))
            return Scenario(
                index, sub_seed, "server",
                revision=(BUGGY_REVISION if rng.random() < 0.5
                          else REVISIONS[0]),
                followers=rng.randint(1, 2), adversaries=chosen)
        return Scenario(
            index, sub_seed, "workload",
            workload=rng.randrange(len(WORKLOAD_NAMES)),
            n_variants=rng.randint(2, 3),
            fault=rng.random() < 0.5,
            divergence=DIVERGENCE_PROFILES[rng.randrange(
                len(DIVERGENCE_PROFILES))])
