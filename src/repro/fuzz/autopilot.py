"""The fuzz autopilot: generator → executor → journal → rule synthesis.

``run_fuzz(seed, budget)`` drives ``budget`` scenarios from the seeded
generator through the executor, journals every novel finding, feeds
novelty back into the generator's region weights, and — for each
distinct fatal divergence — attempts to synthesize a BPF rewrite rule
that provably absorbs it (clean re-run of the same scenario).

Everything is a pure function of ``(seed, budget, mix)``: the report's
``render()`` is byte-identical across runs, which CI enforces with
``cmp`` on two back-to-back invocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.clients.adversaries import ADVERSARIES
from repro.fuzz.executor import run_scenario
from repro.fuzz.generator import ScenarioGenerator
from repro.fuzz.journal import GLOBAL_FUZZ_STATS, Journal
from repro.fuzz.synthesis import SynthesizedRule, attempt_absorb

__all__ = ["FuzzReport", "run_fuzz"]


@dataclass
class FuzzReport:
    """Everything one autopilot run produced."""

    journal: Journal
    scenarios: List[str] = field(default_factory=list)
    rules: List[SynthesizedRule] = field(default_factory=list)

    @property
    def absorbed(self) -> List[SynthesizedRule]:
        return [rule for rule in self.rules if rule.absorbed]

    def render(self) -> str:
        """Canonical report text: journal first, then the synthesized
        rules (byte-identical per seed)."""
        lines = [self.journal.render().rstrip("\n")]
        lines.append(f"rules: {len(self.rules)} synthesized, "
                     f"{len(self.absorbed)} absorbed")
        for rule in self.rules:
            verdict = "absorbed" if rule.absorbed else "not absorbed"
            lines.append(f"  {rule.describe()} [{verdict}]")
        return "\n".join(lines) + "\n"


def run_fuzz(seed: int, budget: int,
             mix: Tuple[str, ...] = ADVERSARIES,
             synthesis: bool = True) -> FuzzReport:
    """Run the autopilot: ``budget`` scenarios from ``seed``'s stream.

    Set ``synthesis=False`` to skip the rule-synthesis pass (each
    synthesis attempt re-runs its scenario up to twice, which dominates
    cost for workloads that only need the journal).
    """
    generator = ScenarioGenerator(seed, mix=mix)
    journal = Journal(seed=seed, budget=budget)
    report = FuzzReport(journal=journal)
    #: (call, event) pairs already fed to synthesis, so one divergence
    #: class costs at most one synthesis pass per run.
    attempted: Dict[Tuple[str, str], bool] = {}

    for _step in range(budget):
        scenario = generator.next_scenario()
        GLOBAL_FUZZ_STATS.scenarios += 1
        result = run_scenario(scenario)
        report.scenarios.append(scenario.describe())

        any_novel = False
        for kind, detail in result.records:
            if journal.record(kind, detail, scenario.index):
                any_novel = True
            if kind == "divergence":
                GLOBAL_FUZZ_STATS.divergences += 1
            elif kind == "crash":
                GLOBAL_FUZZ_STATS.crashes += 1
        if any_novel:
            generator.note_novel(scenario)

        if not synthesis:
            continue
        for _variant, call_name, event_name in result.fatal_divergences:
            key = (call_name, event_name)
            if key in attempted:
                continue
            attempted[key] = True
            winner, candidates = attempt_absorb(scenario, call_name,
                                                event_name)
            GLOBAL_FUZZ_STATS.rules_synthesized += len(candidates)
            if winner is not None:
                GLOBAL_FUZZ_STATS.rules_absorbed += 1
                report.rules.append(winner)
                journal.record(
                    "rule-synthesis",
                    f"{winner.action.upper()} rule absorbs follower "
                    f"call {call_name} vs leader event {event_name}",
                    scenario.index)
            elif candidates:
                report.rules.append(candidates[0])
                journal.record(
                    "rule-synthesis",
                    f"no candidate absorbs follower call {call_name} "
                    f"vs leader event {event_name}",
                    scenario.index)
    return report
