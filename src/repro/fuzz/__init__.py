"""Scenario fuzzer: seeded byzantine scenarios under the always-on
invariant checker, with a deduplicated journal and automatic BPF
rewrite-rule synthesis for observed benign divergences."""

from repro.fuzz.autopilot import FuzzReport, run_fuzz
from repro.fuzz.executor import ScenarioResult, run_scenario
from repro.fuzz.generator import (
    DIVERGENCE_PROFILES,
    Scenario,
    ScenarioGenerator,
    WORKLOAD_NAMES,
)
from repro.fuzz.journal import (
    GLOBAL_FUZZ_STATS,
    FuzzStats,
    Journal,
    JournalEntry,
)
from repro.fuzz.synthesis import (
    SynthesizedRule,
    attempt_absorb,
    synthesize_candidates,
)

__all__ = [
    "DIVERGENCE_PROFILES",
    "FuzzReport",
    "FuzzStats",
    "GLOBAL_FUZZ_STATS",
    "Journal",
    "JournalEntry",
    "Scenario",
    "ScenarioGenerator",
    "ScenarioResult",
    "SynthesizedRule",
    "WORKLOAD_NAMES",
    "attempt_absorb",
    "run_fuzz",
    "run_scenario",
    "synthesize_candidates",
]
