"""Scenario execution under the always-on invariant checker.

Both scenario kinds follow the chaos plane's baseline-diff discipline
(:mod:`repro.faults.chaos`): every scenario first runs a clean baseline
that defines the expected observable outputs, then the scenario proper
— divergence profiles, fault plans, byzantine clients — and everything
the run *changed* relative to that baseline becomes a ``(kind, detail)``
record for the journal.

Records derive only from sim state and seeds (variant names, syscall
names, digests), never from wall clock or object identity, so a
scenario replays to the identical record list — which is both what
makes the journal byte-identical per seed and what lets rule synthesis
re-run a scenario to prove a divergence was absorbed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.apps import ServerStats, make_redis
from repro.apps.redis import REVISIONS
from repro.clients.adversaries import make_adversaries
from repro.clients.base import connect_with_retry, recv_until
from repro.clients.loadgen import spawn_pool
from repro.core import NvxSession, VersionSpec
from repro.core.config import SessionConfig
from repro.costmodel import SEC_PS
from repro.errors import DeadlockError
from repro.faults.chaos import (
    DATA_PATH,
    DATA_SIZE,
    RING_CAPACITY,
    WORKLOADS,
)
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import FaultPlan
from repro.fuzz.generator import WORKLOAD_NAMES, Scenario
from repro.kernel.uapi import SysError
from repro.world import World

__all__ = ["ScenarioResult", "run_scenario"]

#: Sim-time horizon of a server scenario (adversaries run this long).
SERVER_HORIZON_PS = SEC_PS

#: The benign probe a server scenario measures: a deterministic request
#: script whose response bytes must match a clean native server's.
PROBE_SCRIPT = (b"SET fz:key v1\r\n", b"GET fz:key\r\n", b"PING\r\n",
                b"HSET fz:h f1 x\r\n", b"HMGET fz:h f1\r\n",
                b"GET fz:key\r\n")


@dataclass
class ScenarioResult:
    """Everything a scenario run observed, reduced for the journal."""

    scenario: Scenario
    #: Journal fodder: ordered (kind, detail) pairs.
    records: List[Tuple[str, str]] = field(default_factory=list)
    #: Raw fatal divergences, for rule synthesis:
    #: (variant_name, follower_call, leader_event).
    fatal_divergences: List[Tuple[str, str, str]] = field(
        default_factory=list)
    mismatches: int = 0
    violations: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing fatal, wrong or contract-breaking happened
        — the criterion rule synthesis uses for "absorbed"."""
        return (not self.fatal_divergences and not self.mismatches
                and not self.violations)


def run_scenario(scenario: Scenario, rules=None) -> ScenarioResult:
    """Run one scenario (baseline + scenario proper); deterministic in
    ``(scenario, rules)``.  ``rules`` installs a
    :class:`repro.bpf.RewriteRules` for the scenario run — the
    rule-synthesis re-run path."""
    if scenario.kind == "workload":
        return _run_workload_scenario(scenario, rules)
    return _run_server_scenario(scenario, rules)


# -- workload scenarios -------------------------------------------------------

def _wrap_divergence(build, profile: str):
    """Fold the divergence profile into a workload build: the chosen
    side issues one extra benign ``getuid`` before the real program.
    The retval is never digested, so outputs stay baseline-comparable
    whether the call is killed, allowed or skipped."""
    if profile == "none":
        return build

    def build_wrapped(outputs: Dict):
        inner = build(outputs)

        def main(ctx):
            vid = ctx.task.monitor_state.variant.vid
            if profile == "follower-extra" and vid != 0:
                yield from ctx.getuid()
            elif profile == "leader-extra" and vid == 0:
                yield from ctx.getuid()
            return (yield from inner(ctx))
        return main
    return build_wrapped


def _run_nvx_workload(build, data: bytes, n_variants: int, plan,
                      checker: InvariantChecker, rules):
    world = World()
    world.kernel.fs(world.server).create(DATA_PATH, data)
    outputs: Dict = {}
    main = build(outputs)
    specs = [VersionSpec(f"v{i}", main) for i in range(n_variants)]
    config = SessionConfig(fault_plan=plan, invariants=checker,
                           ring_capacity=RING_CAPACITY, rules=rules)
    session = NvxSession(world, specs, config=config).start()
    deadlock = None
    try:
        world.run()
    except DeadlockError as exc:
        deadlock = str(exc)
    checker.final_check()
    return session, outputs, deadlock


def _run_workload_scenario(scenario: Scenario, rules) -> ScenarioResult:
    result = ScenarioResult(scenario)
    name = WORKLOAD_NAMES[scenario.workload]
    rng = random.Random(scenario.sub_seed)
    data = bytes(rng.randrange(256) for _ in range(DATA_SIZE))
    # Parameters are drawn ONCE so baseline and scenario run the
    # identical program (the chaos discipline).
    _wl_name, build = WORKLOADS[scenario.workload](rng)

    base_checker = InvariantChecker(roundtrip_every=1)
    base_session, base_outputs, base_dead = _run_nvx_workload(
        build, data, scenario.n_variants, None, base_checker, None)
    horizon = max(2, base_session.world.sim.now)
    reference = {tag: digest
                 for (vid, tag), digest in sorted(base_outputs.items())
                 if vid == 0}
    if base_dead is not None:
        result.records.append(("deadlock", f"{name}: baseline: "
                               f"{base_dead}"))
        result.mismatches += 1

    plan = (FaultPlan.random(rng, scenario.n_variants, horizon)
            if scenario.fault else None)
    run_build = _wrap_divergence(build, scenario.divergence)
    checker = InvariantChecker(roundtrip_every=1)
    session, outputs, dead = _run_nvx_workload(
        run_build, data, scenario.n_variants, plan, checker, rules)

    for variant_name, call_name, event_name in \
            session.stats.fatal_divergences:
        result.fatal_divergences.append((variant_name, call_name,
                                         event_name))
        result.records.append(
            ("divergence", f"{name}: follower call {call_name} vs "
             f"leader event {event_name}"))
    for _variant, reason, _ps in session.stats.crashes:
        result.records.append(("crash", f"{name}: {reason}"))
    for _variant, message, _ps in session.stats.ring_faults:
        result.records.append(("ring-fault", f"{name}: {message}"))
    if dead is not None:
        result.records.append(("deadlock", f"{name}: {dead}"))
        result.mismatches += 1

    survivors = [v for v in session.variants if v.alive]
    for variant in survivors:
        for tag, expected in reference.items():
            got = outputs.get((variant.vid, tag))
            if got != expected:
                result.mismatches += 1
                result.records.append(
                    ("mismatch", f"{name}/v{variant.vid}/{tag}: "
                     f"{got} != {expected}"))
    for message in base_checker.violations + checker.violations:
        result.violations += 1
        result.records.append(("violation", f"{name}: {message}"))
    return result


# -- server scenarios ---------------------------------------------------------

def _probe_main(responses: List[bytes], port: int):
    """The benign probe: run the fixed script, retrying each request
    until a response arrives (a failover closes the connection; the
    re-sent request must still produce the native answer)."""

    def main(ctx):
        try:
            fd = yield from connect_with_retry(ctx, ("server", port))
        except SysError:
            return 0
        for line in PROBE_SCRIPT:
            got = b""
            for _attempt in range(8):
                try:
                    yield from ctx.send(fd, line)
                    got = yield from recv_until(ctx, fd, b"\r\n")
                except SysError:
                    got = b""
                if got:
                    break
                yield from ctx.close(fd)
                try:
                    fd = yield from connect_with_retry(
                        ctx, ("server", port), attempts=50)
                except SysError:
                    return len(responses)
            responses.append(got)
        yield from ctx.close(fd)
        return len(responses)
    return main


def _run_server(revisions: Tuple[str, ...], adversary_mix,
                sub_seed: int, checker: InvariantChecker, rules,
                port: int = 6379):
    world = World()
    specs = [VersionSpec(f"redis-{rev}-{i}",
                         make_redis(port=port, stats=ServerStats(),
                                    revision=rev,
                                    background_thread=False))
             for i, rev in enumerate(revisions)]
    config = SessionConfig(daemon=True, invariants=checker, rules=rules)
    session = NvxSession(world, specs, config=config).start()
    responses: List[bytes] = []
    world.kernel.spawn_task(world.client, _probe_main(responses, port),
                            name="probe")
    stats = None
    try:
        if adversary_mix:
            placements, stats = make_adversaries(
                mix=adversary_mix, seed=sub_seed, port=port,
                duration_ps=SERVER_HORIZON_PS)
            spawn_pool(world, placements)
            world.run(until_ps=SERVER_HORIZON_PS + SEC_PS // 2)
        else:
            world.run()
    except DeadlockError:
        # An adversary parked on a recv the server will never answer
        # (e.g. flood sent garbage and is waiting to drain) is the
        # *point* of byzantine traffic, not a finding; the probe's
        # response check is the health signal for server scenarios.
        pass
    checker.final_check()
    return session, responses, stats


def _run_server_scenario(scenario: Scenario, rules) -> ScenarioResult:
    result = ScenarioResult(scenario)
    mix = ",".join(scenario.adversaries)
    label = f"redis@{scenario.revision} mix={mix}"

    # Baseline: a clean single-variant group (effectively native), no
    # adversaries — the probe's native response bytes.
    base_checker = InvariantChecker(roundtrip_every=1)
    _s, base_responses, _none = _run_server(
        (REVISIONS[0],), (), scenario.sub_seed, base_checker, None)

    # Scenario: the chosen leader revision with good-revision followers,
    # under the byzantine mix.  The probe must still see native bytes.
    revisions = (scenario.revision,) + (REVISIONS[0],) * scenario.followers
    checker = InvariantChecker(roundtrip_every=1)
    session, responses, _stats = _run_server(
        revisions, scenario.adversaries, scenario.sub_seed, checker,
        rules)

    for _variant, reason, _ps in session.stats.crashes:
        result.records.append(("crash", f"{label}: {reason}"))
    if session.stats.promotions:
        result.records.append(
            ("promotion", f"{label}: leader failover kept the service "
             f"answering the benign probe"))
    for variant_name, call_name, event_name in \
            session.stats.fatal_divergences:
        result.fatal_divergences.append((variant_name, call_name,
                                         event_name))
        result.records.append(
            ("divergence", f"{label}: follower call {call_name} vs "
             f"leader event {event_name}"))
    for _variant, message, _ps in session.stats.ring_faults:
        result.records.append(("ring-fault", f"{label}: {message}"))
    if responses != base_responses:
        result.mismatches += 1
        result.records.append(
            ("mismatch", f"{label}: probe answers diverged from the "
             f"native baseline ({len(responses)}/{len(base_responses)} "
             f"responses)"))
    for message in base_checker.violations + checker.violations:
        result.violations += 1
        result.records.append(("violation", f"{label}: {message}"))
    return result
