"""Rule synthesis: turn observed benign divergences into BPF rewrite
rules and prove they absorb their source.

VARAN's rewrite rules (§4.4) are how operators paper over known-benign
divergences between revisions — a follower that issues one extra
``getuid``, a leader that logs where the follower doesn't.  Writing them
by hand requires staring at the event stream; the fuzzer already *has*
the event stream, so it closes the loop automatically:

1. a scenario run reports a fatal divergence ``(follower call X,
   leader event Y)``;
2. :func:`synthesize_candidates` emits the two canonical repairs — an
   ALLOW rule keyed on the follower's extra call nr, and a SKIP rule
   keyed on the leader's extra event nr — each assembled through the
   normal :mod:`repro.bpf` pipeline and re-checked by the verifier;
3. :func:`attempt_absorb` re-runs the *same* scenario (same sub-seed,
   same workload draw) under each candidate in turn; the rule wins only
   if the re-run is completely clean: no fatal divergences, no output
   mismatches, no invariant violations.

A rule that merely silences the kill but corrupts outputs or breaks the
ring contract fails step 3 — the invariant checker is the arbiter, not
the absence of the original symptom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bpf.assembler import assemble_bpf
from repro.bpf.rules import RewriteRules
from repro.fuzz.executor import run_scenario
from repro.fuzz.generator import Scenario
from repro.kernel.uapi import SYSCALL_NUMBERS

__all__ = ["SynthesizedRule", "synthesize_candidates", "attempt_absorb"]


@dataclass(frozen=True)
class SynthesizedRule:
    """One verified candidate repair for a specific divergence."""

    #: "allow" (follower's extra call executes locally) or "skip"
    #: (leader's extra event is consumed and discarded).
    action: str
    #: The divergence it targets: (follower call name, leader event name).
    call_name: str
    event_name: str
    source: str
    #: Set by attempt_absorb once the re-run came back clean.
    absorbed: bool = False

    @property
    def name(self) -> str:
        return f"synth-{self.action}-{self.call_name}-{self.event_name}"

    def program(self):
        """Assemble (and thereby verify) the rule program."""
        return assemble_bpf(self.source, name=self.name)

    def describe(self) -> str:
        return (f"{self.name}: {self.action.upper()} for follower call "
                f"{self.call_name} vs leader event {self.event_name}")


def synthesize_candidates(call_name: str, event_name: str
                          ) -> List[SynthesizedRule]:
    """Propose verified candidate rules for one observed divergence.

    ALLOW comes first: letting the follower run its extra benign call
    locally is the less invasive repair (nothing of the leader's stream
    is discarded), so absorption tries it before SKIP.  Candidates whose
    syscall has no number in the sim's table are skipped; candidates
    that fail verification are dropped (assembly verifies on
    construction, so surviving entries are verified by definition).
    """
    candidates: List[SynthesizedRule] = []
    call_nr = SYSCALL_NUMBERS.get(call_name)
    event_nr = SYSCALL_NUMBERS.get(event_name)
    if call_nr is not None:
        allow_src = (f"ld [0]\n"
                     f"jeq #{call_nr}, good\n"
                     f"ret #0\n"
                     f"good: ret #0x7fff0000\n")
        candidates.append(SynthesizedRule("allow", call_name, event_name,
                                          allow_src))
    if event_nr is not None:
        skip_src = (f"ld event[0]\n"
                    f"jeq #{event_nr}, good\n"
                    f"ret #0\n"
                    f"good: ret #0x7ffe0000\n")
        candidates.append(SynthesizedRule("skip", call_name, event_name,
                                          skip_src))
    verified = []
    for rule in candidates:
        try:
            rule.program()
        except Exception:
            continue
        verified.append(rule)
    return verified


def attempt_absorb(scenario: Scenario, call_name: str, event_name: str
                   ) -> Tuple[Optional[SynthesizedRule], List[SynthesizedRule]]:
    """Try each candidate against a re-run of ``scenario``.

    Returns ``(winner, candidates)`` — ``winner`` is the first candidate
    whose re-run is clean (marked ``absorbed=True``), or None if no
    candidate absorbs the divergence.
    """
    candidates = synthesize_candidates(call_name, event_name)
    for rule in candidates:
        rules = RewriteRules([rule.program()])
        rerun = run_scenario(scenario, rules=rules)
        if rerun.clean:
            winner = SynthesizedRule(rule.action, rule.call_name,
                                     rule.event_name, rule.source,
                                     absorbed=True)
            return winner, candidates
    return None, candidates
