"""The fuzzer's divergence journal: deduplicated, content-hashed,
byte-identical per seed.

Every scenario run reduces to a stream of ``(kind, detail)`` records —
fatal divergences, crashes, promotions, ring faults, output mismatches,
invariant violations, deadlocks, synthesized rules.  The journal keeps
the *novel* ones (first occurrence of each content hash) in discovery
order and counts the duplicates, following the record-and-replay
motivation (PAPERS.md): a divergence that cannot be named, hashed and
replayed is a divergence that will be rediscovered forever.

Determinism contract: a record's detail must derive from sim state and
seeds only (no wall clock, no ``id()``/``repr`` of live objects), so
``Journal.render()`` is byte-identical across runs of one seed — CI
``cmp``s two runs to enforce it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

__all__ = ["JournalEntry", "Journal", "FuzzStats", "GLOBAL_FUZZ_STATS"]

#: Canonical order of record kinds in the journal footer; a kind absent
#: from a run still renders (count 0) so footers stay fixed-shape.
KINDS = ("divergence", "crash", "promotion", "ring-fault", "mismatch",
         "deadlock", "violation", "rule-synthesis")


class FuzzStats:
    """Process-global fuzz counters for the metrics drain.

    Mirrors ``isa.translator.GLOBAL_STATS``: the sweep runner snapshots
    these at ``start_collection`` and reports the delta, so the keys are
    always present and zero for points that never fuzz.
    """

    __slots__ = ("scenarios", "novel", "duplicates", "divergences",
                 "crashes", "rules_synthesized", "rules_absorbed")

    def __init__(self) -> None:
        self.scenarios = 0
        self.novel = 0
        self.duplicates = 0
        self.divergences = 0
        self.crashes = 0
        self.rules_synthesized = 0
        self.rules_absorbed = 0

    def as_dict(self) -> Dict[str, int]:
        return {f"fuzz.{name}": getattr(self, name)
                for name in self.__slots__}


GLOBAL_FUZZ_STATS = FuzzStats()


def _digest(kind: str, detail: str) -> str:
    h = hashlib.sha256(f"{kind}|{detail}".encode())
    return h.hexdigest()[:12]


@dataclass(frozen=True)
class JournalEntry:
    """One novel finding: a content-hashed (kind, detail) pair plus the
    index of the scenario that first produced it."""

    kind: str
    detail: str
    scenario: int

    @property
    def digest(self) -> str:
        return _digest(self.kind, self.detail)

    def render(self) -> str:
        return (f"  [{self.digest}] {self.kind}: {self.detail} "
                f"(scenario {self.scenario})")


@dataclass
class Journal:
    """Deduplicated findings for one fuzz run."""

    seed: int
    budget: int
    entries: List[JournalEntry] = field(default_factory=list)
    duplicates: int = 0
    _seen: Set[str] = field(default_factory=set)

    def record(self, kind: str, detail: str, scenario: int) -> bool:
        """Record a finding; returns True when it is novel."""
        digest = _digest(kind, detail)
        if digest in self._seen:
            self.duplicates += 1
            GLOBAL_FUZZ_STATS.duplicates += 1
            return False
        self._seen.add(digest)
        self.entries.append(JournalEntry(kind, detail, scenario))
        GLOBAL_FUZZ_STATS.novel += 1
        return True

    def kinds(self) -> Tuple[str, ...]:
        """Distinct kinds found, in canonical order."""
        present = {entry.kind for entry in self.entries}
        return tuple(kind for kind in KINDS if kind in present)

    def counts(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in KINDS}
        for entry in self.entries:
            counts[entry.kind] = counts.get(entry.kind, 0) + 1
        return counts

    def render(self) -> str:
        """The canonical journal text (byte-identical per seed)."""
        lines = [f"# fuzz seed={self.seed} budget={self.budget}"]
        lines.extend(entry.render() for entry in self.entries)
        counts = self.counts()
        summary = " ".join(f"{kind}={counts[kind]}" for kind in KINDS)
        lines.append(f"classes: {summary}")
        lines.append(f"total: {len(self.entries)} novel entries, "
                     f"{self.duplicates} duplicates, "
                     f"{len(self.kinds())} distinct classes")
        return "\n".join(lines) + "\n"
