"""The shared system-call entry point and its handler factories.

The entry point is a tiny statically-positioned code sequence (mapped as
``varan.entry``): it saves all registers, bridges into monitor logic via
``vmcall``, restores registers and returns to the trampoline that called
it.  Monitor behaviour is *not* baked into the code — the ``vmcall``
handler consults whatever system-call table is currently installed, which
is how a follower becomes a leader during failover without re-rewriting
anything (§3.2, §5.1).
"""

from __future__ import annotations

from repro.costmodel import CostModel, cycles
from repro.errors import ExecutionFault
from repro.isa.opcodes import REG_INDEX
from repro.rewriter.patchset import PatchSet
from repro.sim.core import Compute

#: VX86 source of the shared entry point. PUSHA/POPA model the
#: save-all-registers / restore-all-registers bracket of §3.2.
ENTRY_SOURCE = """
pusha
vmcall
popa
ret
"""

#: Number of registers PUSHA saves (all 16 minus RSP itself).
_SAVED_REGS = 15

#: Per-vmcall hot path: index RSP directly instead of a string lookup.
_RSP = REG_INDEX["rsp"]


def saved_rax_slot(cpu) -> int:
    """Stack address of the saved RAX while inside the entry point.

    PUSHA pushes RAX first, so its slot sits just below the return
    address the trampoline's CALL pushed.
    """
    return cpu.regs[_RSP] + (_SAVED_REGS - 1) * 8


def return_address(cpu) -> int:
    """The trampoline return address, used to identify the call site."""
    return cpu.space.read_u64(cpu.regs[_RSP] + _SAVED_REGS * 8)


def make_vmcall_handler(patchset: PatchSet, dispatch):
    """Build the ``vmcall`` hook for CPUs running rewritten code.

    ``dispatch(cpu, site)`` is a generator implementing the monitor's
    system-call table lookup and handler; its return value (if not None)
    is written into the saved-RAX slot so POPA materialises it as the
    syscall result.
    """

    def handler(cpu):
        site = patchset.site_for_return_addr(return_address(cpu))
        if site is None:
            raise ExecutionFault(
                f"vmcall from unknown return address "
                f"{return_address(cpu):#x}")
        result = yield from dispatch(cpu, site)
        if result is not None:
            cpu.space.write_u64(saved_rax_slot(cpu), result)
        return None

    return handler


def make_int0_handler(patchset: PatchSet, dispatch, costs: CostModel):
    """Build the ``int0`` hook: the signal-path fallback of §3.2.

    Sites where detouring was impossible keep a one-byte INT0; the
    interrupt is fielded by a signal handler which redirects to the same
    dispatch — at the extra cost of signal delivery and ``sigreturn``.
    """

    def handler(cpu):
        site = patchset.site_for_int_rip(cpu.rip)
        if site is None:
            raise ExecutionFault(f"INT0 at unknown rip {cpu.rip:#x}")
        yield Compute(cycles(costs.intercept.int_fallback))
        result = yield from dispatch(cpu, site)
        return result  # the CPU deposits it in RAX, as sigreturn would

    return handler
