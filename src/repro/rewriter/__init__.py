"""Selective binary rewriting of syscall sites and the vDSO (§3.2)."""

from repro.rewriter.entrypoint import (
    ENTRY_SOURCE,
    make_int0_handler,
    make_vmcall_handler,
    return_address,
    saved_rax_slot,
)
from repro.rewriter.patchset import (
    KIND_INT,
    KIND_JMP,
    KIND_VDSO,
    CallSite,
    PatchSet,
    RewriteStats,
)
from repro.rewriter.rewriter import BinaryRewriter
from repro.rewriter.vdso import rewrite_vdso

__all__ = [
    "ENTRY_SOURCE",
    "make_int0_handler",
    "make_vmcall_handler",
    "return_address",
    "saved_rax_slot",
    "KIND_INT",
    "KIND_JMP",
    "KIND_VDSO",
    "CallSite",
    "PatchSet",
    "RewriteStats",
    "BinaryRewriter",
    "rewrite_vdso",
]
