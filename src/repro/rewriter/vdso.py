"""Virtual system call (vDSO) rewriting (§3.2.1).

vDSO functions execute entirely in user space, so ptrace-based monitors
cannot intercept them — yet they leak timing non-determinism into the
versions.  Varan patches the *entry point* of every vDSO function with a
jump to dynamically generated stub code that calls the shared system-call
entry point; a second trampoline preserves the original first
instructions so the monitor can still invoke the genuine fast
implementation.
"""

from __future__ import annotations

import struct
from typing import Dict, List

from repro.errors import RewriteError
from repro.isa.disassembler import disassemble_prefix
from repro.isa.memory import Segment
from repro.isa.opcodes import BY_MNEMONIC
from repro.rewriter.patchset import KIND_VDSO, CallSite

_JMP_OP = BY_MNEMONIC["jmp"].opcode
_CALL_OP = BY_MNEMONIC["call"].opcode
_RET_OP = BY_MNEMONIC["ret"].opcode
_JMP_LEN = 5


def _rel32(op: int, src_end: int, target: int) -> bytes:
    return bytes([op]) + struct.pack("<i", target - src_end)


def rewrite_vdso(rewriter, vdso_segment: Segment,
                 symbols: Dict[str, int]) -> List[CallSite]:
    """Patch every vDSO function entry in ``symbols`` (name → address).

    For each function we emit:

    * an *original-entry trampoline*: the function's first instructions
      (≥ 5 bytes worth) followed by a jump back to the continuation, so
      the genuine implementation stays invocable;
    * a *stub* that calls the shared entry point and returns to the
      application caller;

    and overwrite the function entry with ``JMP stub``.
    """
    entry = rewriter.install_entry_point()
    space = rewriter.space
    patchset = rewriter.patchset
    sites: List[CallSite] = []
    code = bytes(vdso_segment.data)

    for name, addr in sorted(symbols.items(), key=lambda kv: kv[1]):
        if not vdso_segment.contains(addr):
            raise RewriteError(f"vDSO symbol {name} outside segment")
        offset = addr - vdso_segment.start
        prefix = disassemble_prefix(code, offset, _JMP_LEN,
                                    base_addr=vdso_segment.start)
        continuation = prefix[-1].end

        # Original-entry trampoline: relocated prefix + jump back.
        orig_size = sum(i.length for i in prefix) + _JMP_LEN
        orig_addr = rewriter._alloc(orig_size)
        out = bytearray()
        for insn in prefix:
            if insn.branch_target() is not None:
                out += _rel32(insn.raw[0], orig_addr + len(out) + insn.length,
                              insn.branch_target())
            else:
                out += insn.raw
        out += _rel32(_JMP_OP, orig_addr + len(out) + _JMP_LEN, continuation)
        space.map(Segment(orig_addr, bytes(out), perms="rx",
                          name="varan.vdso_orig"))

        # Stub: call the shared entry point, then return to the caller.
        stub_addr = rewriter._alloc(6)
        stub = _rel32(_CALL_OP, stub_addr + 5, entry) + bytes([_RET_OP])
        space.map(Segment(stub_addr, stub, perms="rx", name="varan.vdso_stub"))

        # Redirect the function entry.
        space.patch_code(addr, _rel32(_JMP_OP, addr + _JMP_LEN, stub_addr))

        site = patchset.new_site(addr, KIND_VDSO, vdso_segment.name,
                                 trampoline_addr=stub_addr,
                                 vdso_symbol=name,
                                 original_entry_trampoline=orig_addr)
        patchset.by_return_addr[stub_addr + 5] = site
        patchset.stats.vdso_patched += 1
        sites.append(site)
    return sites
