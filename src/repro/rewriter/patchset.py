"""Bookkeeping for rewritten system-call sites."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Dispatch kinds a call site can end up with after rewriting.
KIND_JMP = "jmp"  # patched with a 5-byte jump into a detour trampoline
KIND_INT = "int"  # replaced in place with the 1-byte INT0 fallback
KIND_VDSO = "vdso"  # vDSO function entry redirected to a generated stub


@dataclass
class CallSite:
    """One rewritten system-call (or vDSO) site."""

    site_id: int
    addr: int  # address of the original syscall / function entry
    kind: str
    segment_name: str
    trampoline_addr: Optional[int] = None
    #: For vDSO sites: the symbol name and the trampoline that invokes the
    #: original implementation (so the leader can still use the fast path).
    vdso_symbol: Optional[str] = None
    original_entry_trampoline: Optional[int] = None


@dataclass
class RewriteStats:
    """Counters reported by the rewriter (useful in tests and logs)."""

    segments_scanned: int = 0
    bytes_scanned: int = 0
    sites_found: int = 0
    jmp_patched: int = 0
    int_patched: int = 0
    vdso_patched: int = 0
    relocated_insns: int = 0


class PatchSet:
    """All call sites rewritten within one address space."""

    def __init__(self) -> None:
        self.sites: List[CallSite] = []
        self.by_addr: Dict[int, CallSite] = {}
        #: Return address (pushed by the trampoline's CALL into the entry
        #: point) → site.  This is how the shared entry point identifies
        #: which site trapped, mirroring Varan's per-site dispatch.
        self.by_return_addr: Dict[int, CallSite] = {}
        #: RIP after an INT0 → site, for the interrupt fallback path.
        self.by_int_rip: Dict[int, CallSite] = {}
        self.stats = RewriteStats()
        self._next_id = 0

    def new_site(self, addr: int, kind: str, segment_name: str,
                 **kwargs) -> CallSite:
        site = CallSite(site_id=self._next_id, addr=addr, kind=kind,
                        segment_name=segment_name, **kwargs)
        self._next_id += 1
        self.sites.append(site)
        self.by_addr[addr] = site
        return site

    def site_for_return_addr(self, ret_addr: int) -> Optional[CallSite]:
        return self.by_return_addr.get(ret_addr)

    def site_for_int_rip(self, rip: int) -> Optional[CallSite]:
        return self.by_int_rip.get(rip)

    def kinds_by_addr(self) -> Dict[int, str]:
        return {addr: site.kind for addr, site in self.by_addr.items()}
