"""Selective binary rewriting (§3.2).

Whenever a segment becomes executable, the rewriter linearly disassembles
it and replaces every one-byte ``SYSCALL`` instruction with a five-byte
``JMP`` into a per-site detour trampoline.  Because the jump is longer
than the syscall, the following instructions are relocated into the
trampoline (binary detouring); rel32 branches among them get their
displacements fixed up.  When the patch window contains a branch target
the site cannot be detoured and the syscall is instead replaced in place
with the one-byte ``INT0``, handled later through the signal path.

The trampoline calls a shared *system call entry point* (built by
:mod:`repro.rewriter.entrypoint`) which saves registers, consults the
installed system-call table, and returns — so swapping leader/follower
behaviour is purely a matter of swapping that table, never re-rewriting.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Set

from repro.errors import RewriteError
from repro.isa.assembler import assemble
from repro.isa.disassembler import Insn, branch_targets, disassemble
from repro.isa.memory import AddressSpace, Segment
from repro.isa.opcodes import BY_MNEMONIC
from repro.rewriter.patchset import (
    KIND_INT,
    KIND_JMP,
    CallSite,
    PatchSet,
)

_JMP_LEN = 5
_SYSCALL_OP = BY_MNEMONIC["syscall"].opcode
_INT0_OP = BY_MNEMONIC["int0"].opcode
_JMP_OP = BY_MNEMONIC["jmp"].opcode
_CALL_OP = BY_MNEMONIC["call"].opcode
_NOP_OP = BY_MNEMONIC["nop"].opcode


def _rel32(op: int, src_end: int, target: int) -> bytes:
    return bytes([op]) + struct.pack("<i", target - src_end)


class BinaryRewriter:
    """Rewrites every executable segment mapped into an address space."""

    #: Where the rewriter parks its generated code (entry point,
    #: trampolines, vDSO stubs). High in the address space, away from
    #: application segments.
    SCRATCH_BASE = 0x7000_0000

    def __init__(self, space: AddressSpace, auto: bool = True) -> None:
        self.space = space
        self.patchset = PatchSet()
        self.entry_addr: Optional[int] = None
        self._next_scratch = self.SCRATCH_BASE
        self._installed_entry = False
        if auto:
            # §3.2: rewriting happens whenever a segment is mapped
            # executable or re-protected as executable.
            space.exec_hooks.append(self._on_executable)

    # -- public API -----------------------------------------------------

    def install_entry_point(self) -> int:
        """Map the shared syscall entry point; idempotent."""
        if self._installed_entry:
            return self.entry_addr
        from repro.rewriter.entrypoint import ENTRY_SOURCE

        addr = self._alloc(0x100)
        code = assemble(ENTRY_SOURCE, origin=addr)
        self.space.map(Segment(addr, code, perms="rx", name="varan.entry"))
        self.entry_addr = addr
        self._installed_entry = True
        return addr

    def rewrite_segment(self, segment: Segment) -> List[CallSite]:
        """Scan one executable segment and patch every syscall in it."""
        if segment.name.startswith("varan."):
            return []  # never rewrite our own generated code
        self.install_entry_point()
        stats = self.patchset.stats
        stats.segments_scanned += 1
        stats.bytes_scanned += len(segment.data)

        insns = disassemble(bytes(segment.data), base_addr=segment.start)
        targets = branch_targets(insns)
        sites: List[CallSite] = []
        consumed: Set[int] = set()  # syscall addrs relocated into trampolines

        for index, insn in enumerate(insns):
            if insn.mnemonic != "syscall" or insn.addr in consumed:
                continue
            stats.sites_found += 1
            displaced = self._collect_displaced(insns, index, targets)
            if displaced is None:
                sites.append(self._patch_int(segment, insn))
            else:
                sites.append(
                    self._patch_jmp(segment, insn, displaced, consumed))
        return sites

    # -- patching -------------------------------------------------------

    def _collect_displaced(self, insns: List[Insn], index: int,
                           targets: Set[int]) -> Optional[List[Insn]]:
        """Instructions to relocate so a 5-byte JMP fits at the site.

        Returns None when the site must fall back to INT0: a branch
        target lands inside the patch window / displaced region, or the
        window runs off the end of the segment.
        """
        site = insns[index]
        window_end = site.addr + _JMP_LEN
        displaced: List[Insn] = []
        cursor = index + 1
        end = site.end
        while end < window_end:
            if cursor >= len(insns):
                return None  # segment ends mid-window
            nxt = insns[cursor]
            displaced.append(nxt)
            end = nxt.end
            cursor += 1
        # Branch targets strictly inside (site.addr, end) would land on
        # clobbered or relocated bytes.
        for target in targets:
            if site.addr < target < end:
                return None
        return displaced

    def _patch_jmp(self, segment: Segment, site_insn: Insn,
                   displaced: List[Insn], consumed: Set[int]) -> CallSite:
        continuation = (displaced[-1].end if displaced else site_insn.end)
        trampoline = self._build_trampoline(displaced, continuation, consumed)
        site = self.patchset.new_site(site_insn.addr, KIND_JMP, segment.name,
                                      trampoline_addr=trampoline.start)
        # The entry point identifies the site by the return address its
        # CALL pushed: trampoline base + 5.
        self.patchset.by_return_addr[trampoline.start + 5] = site
        # Patch the original code: JMP trampoline, dead bytes → NOP.
        patch = _rel32(_JMP_OP, site_insn.addr + _JMP_LEN, trampoline.start)
        pad = continuation - (site_insn.addr + _JMP_LEN)
        self.space.patch_code(site_insn.addr, patch + bytes([_NOP_OP]) * pad)
        self.patchset.stats.jmp_patched += 1
        self.patchset.stats.relocated_insns += len(displaced)
        return site

    def _patch_int(self, segment: Segment, site_insn: Insn) -> CallSite:
        site = self.patchset.new_site(site_insn.addr, KIND_INT, segment.name)
        self.patchset.by_int_rip[site_insn.end] = site
        self.space.patch_code(site_insn.addr, bytes([_INT0_OP]))
        self.patchset.stats.int_patched += 1
        return site

    def _build_trampoline(self, displaced: List[Insn], continuation: int,
                          consumed: Set[int]) -> Segment:
        """Emit: CALL entry; <relocated instructions>; JMP continuation."""
        if self.entry_addr is None:  # pragma: no cover - guarded by caller
            raise RewriteError("entry point not installed")
        size = 5 + sum(i.length for i in displaced) + 5
        base = self._alloc(size)
        out = bytearray(_rel32(_CALL_OP, base + 5, self.entry_addr))
        for insn in displaced:
            new_addr = base + len(out)
            if insn.mnemonic == "syscall":
                # A second syscall inside the displaced window: it now
                # lives in the trampoline, where we handle it via INT0.
                consumed.add(insn.addr)
                site = self.patchset.new_site(insn.addr, KIND_INT,
                                              "varan.trampoline")
                self.patchset.by_int_rip[new_addr + 1] = site
                self.patchset.stats.int_patched += 1
                out += bytes([_INT0_OP])
            elif insn.branch_target() is not None:
                # rel32 fixup: same absolute target from the new address.
                out += _rel32(insn.raw[0], new_addr + insn.length,
                              insn.branch_target())
            else:
                out += insn.raw
        out += _rel32(_JMP_OP, base + len(out) + _JMP_LEN, continuation)
        segment = Segment(base, bytes(out), perms="rx",
                          name="varan.trampoline")
        self.space.map(segment)
        return segment

    # -- plumbing --------------------------------------------------------

    def _on_executable(self, segment: Segment) -> None:
        self.rewrite_segment(segment)

    def _alloc(self, size: int) -> int:
        addr = self._next_scratch
        self._next_scratch += (size + 0xF) & ~0xF
        return addr
