"""Convenience wrapper tying simulator, machines, network and kernel
into one testbed mirroring the paper's setup: two Xeon E3-1280 machines
in the same rack joined by a 1 Gb link.

The world is also the session facade: :meth:`World.nvx`,
:meth:`World.lockstep` and :meth:`World.scribe` construct the matching
session kind from a shared :class:`SessionConfig`, so experiments do
not import session classes directly.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import SessionConfig
from repro.costmodel import CostModel, DEFAULT_COSTS
from repro.errors import NvxError
from repro.kernel.kernel import Kernel
from repro.sim.core import Simulator
from repro.sim.machine import Machine
from repro.sim.network import Network

__all__ = ["World", "SessionConfig"]


class World:
    """A complete simulated testbed."""

    def __init__(self, costs: CostModel = DEFAULT_COSTS,
                 machine_names=("server", "client"), seed: int = 0,
                 tracer=None) -> None:
        self.costs = costs
        self.sim = Simulator()
        if tracer is not None:
            # Explicit per-world tracer overrides the process-wide one
            # the simulator picked up (if any).
            self.sim.tracer = tracer
        self.tracer = self.sim.tracer
        if self.tracer is not None:
            # Distinguish this world's machines in merged traces; worlds
            # created while no tracer is active cost nothing here.
            self.tracer.new_world()
        self.network = Network(self.sim, costs.network)
        self.machines: Dict[str, Machine] = {
            name: Machine(self.sim, costs.machine, name=name)
            for name in machine_names
        }
        self.kernel = Kernel(self.sim, self.network, costs, seed=seed)

    def machine(self, name: str) -> Machine:
        """The named machine, with a diagnosable error when absent."""
        try:
            return self.machines[name]
        except KeyError:
            configured = ", ".join(sorted(self.machines)) or "none"
            raise NvxError(
                f"world has no machine named {name!r} "
                f"(configured: {configured})") from None

    @property
    def server(self) -> Machine:
        return self.machine("server")

    @property
    def client(self) -> Machine:
        return self.machine("client")

    def spawn(self, main, name: str = "proc",
              machine: Optional[Machine] = None, daemon: bool = False):
        """Spawn a native (un-monitored) task running ``main(ctx)``."""
        return self.kernel.spawn_task(machine or self.server, main,
                                      name=name, daemon=daemon)

    # -- session facade ----------------------------------------------------

    @staticmethod
    def _fold(config: Optional[SessionConfig], placement, transport
              ) -> Optional[SessionConfig]:
        """Fold the first-class ``placement=``/``transport=`` facade
        arguments into the config.  These are the *new* API — unlike the
        legacy per-option keywords they carry no deprecation warning —
        and explicit fields already set on the config win."""
        if placement is None and transport is None:
            return config
        resolved = config if config is not None else SessionConfig()
        overrides = {}
        if placement is not None and resolved.placement is None:
            overrides["placement"] = placement
        if transport is not None and resolved.transport is None:
            overrides["transport"] = transport
        return resolved.replace(**overrides) if overrides else resolved

    def nvx(self, specs, config: Optional[SessionConfig] = None,
            placement=None, transport=None, **kwargs):
        """Build a Varan :class:`NvxSession` over this world.

        ``placement`` maps variant index/name to a machine (name or
        object); ``transport`` is an event-transport factory
        (:func:`repro.core.netring.net_transport` for remote followers).
        Direct ring construction by sessions is gone — transports come
        from factories now.
        """
        from repro.core.coordinator import NvxSession

        config = self._fold(config, placement, transport)
        return NvxSession(self, specs, config=config, **kwargs)

    def lockstep(self, specs, config: Optional[SessionConfig] = None,
                 placement=None, transport=None, **kwargs):
        """Build a centralized lockstep-monitor baseline session."""
        from repro.nvx.lockstep import LockstepSession

        config = self._fold(config, placement, transport)
        return LockstepSession(self, specs, config=config, **kwargs)

    def scribe(self, specs, config: Optional[SessionConfig] = None,
               placement=None, transport=None, **kwargs):
        """Build a Scribe-style record/replay baseline session."""
        from repro.nvx.scribe import ScribeSession

        config = self._fold(config, placement, transport)
        return ScribeSession(self, specs, config=config, **kwargs)

    def run(self, **kwargs) -> None:
        self.sim.run(**kwargs)

    @property
    def now(self) -> int:
        return self.sim.now
