"""Convenience wrapper tying simulator, machines, network and kernel
into one testbed mirroring the paper's setup: two Xeon E3-1280 machines
in the same rack joined by a 1 Gb link."""

from __future__ import annotations

from typing import Dict, Optional

from repro.costmodel import CostModel, DEFAULT_COSTS
from repro.kernel.kernel import Kernel
from repro.sim.core import Simulator
from repro.sim.machine import Machine
from repro.sim.network import Network


class World:
    """A complete simulated testbed."""

    def __init__(self, costs: CostModel = DEFAULT_COSTS,
                 machine_names=("server", "client"), seed: int = 0) -> None:
        self.costs = costs
        self.sim = Simulator()
        self.network = Network(self.sim, costs.network)
        self.machines: Dict[str, Machine] = {
            name: Machine(self.sim, costs.machine, name=name)
            for name in machine_names
        }
        self.kernel = Kernel(self.sim, self.network, costs, seed=seed)

    @property
    def server(self) -> Machine:
        return self.machines["server"]

    @property
    def client(self) -> Machine:
        return self.machines["client"]

    def spawn(self, main, name: str = "proc",
              machine: Optional[Machine] = None, daemon: bool = False):
        """Spawn a native (un-monitored) task running ``main(ctx)``."""
        return self.kernel.spawn_task(machine or self.server, main,
                                      name=name, daemon=daemon)

    def run(self, **kwargs) -> None:
        self.sim.run(**kwargs)

    @property
    def now(self) -> int:
        return self.sim.now
