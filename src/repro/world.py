"""Convenience wrapper tying simulator, machines, network and kernel
into one testbed mirroring the paper's setup: two Xeon E3-1280 machines
in the same rack joined by a 1 Gb link.

The world is also the session facade: :meth:`World.nvx`,
:meth:`World.lockstep` and :meth:`World.scribe` construct the matching
session kind from a shared :class:`SessionConfig`, so experiments do
not import session classes directly.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Optional

from repro.core.config import SessionConfig
from repro.core.netring import NetStats
from repro.costmodel import CostModel, DEFAULT_COSTS
from repro.errors import NvxError
from repro.kernel.kernel import Kernel
from repro.sim.core import Simulator
from repro.sim.machine import Machine
from repro.sim.network import Network

__all__ = ["World", "SessionConfig", "default_engine"]

#: Engine used when ``World(engine=None)``: "heap" (the single global
#: event heap) or "sharded" (:class:`repro.sim.shard.ShardedSimulator`,
#: bit-identical results, faster at high process counts).
_DEFAULT_ENGINE = "heap"
_DEFAULT_SHARDS: Optional[int] = None


@contextmanager
def default_engine(name: str, shards: Optional[int] = None):
    """Context manager: make every World built inside use ``name``.

    This is how whole experiment drivers (which construct their own
    worlds) run under the sharded engine without threading an argument
    through every call site — the identity tests and the CLI use it.
    ``shards`` optionally pins the shard count (else one per machine,
    capped).
    """
    global _DEFAULT_ENGINE, _DEFAULT_SHARDS
    previous = (_DEFAULT_ENGINE, _DEFAULT_SHARDS)
    _DEFAULT_ENGINE = name
    _DEFAULT_SHARDS = shards
    try:
        yield
    finally:
        _DEFAULT_ENGINE, _DEFAULT_SHARDS = previous


def _build_simulator(engine: Optional[str], shards: Optional[int],
                     n_machines: int) -> Simulator:
    engine = engine or _DEFAULT_ENGINE
    if engine == "heap":
        return Simulator()
    if engine == "sharded":
        from repro.sim.shard import ShardedSimulator
        if shards is None:
            shards = _DEFAULT_SHARDS
        if shards is None:
            # One shard per machine up to a cache-friendly cap: beyond
            # ~8 the per-switch head scan starts eating the win.
            shards = max(2, min(8, n_machines))
        return ShardedSimulator(shards=shards)
    raise NvxError(f"unknown engine {engine!r} "
                   f"(choose 'heap' or 'sharded')")


class World:
    """A complete simulated testbed."""

    def __init__(self, costs: CostModel = DEFAULT_COSTS,
                 machine_names=("server", "client"), seed: int = 0,
                 tracer=None, engine: Optional[str] = None,
                 shards: Optional[int] = None) -> None:
        self.costs = costs
        self.sim = _build_simulator(engine, shards, len(machine_names))
        if tracer is not None:
            # Explicit per-world tracer overrides the process-wide one
            # the simulator picked up (if any).
            self.sim.tracer = tracer
        self.tracer = self.sim.tracer
        if self.tracer is not None:
            # Distinguish this world's machines in merged traces; worlds
            # created while no tracer is active cost nothing here.
            self.tracer.new_world()
        self.network = Network(self.sim, costs.network)
        self.machines: Dict[str, Machine] = {
            name: Machine(self.sim, costs.machine, name=name)
            for name in machine_names
        }
        self.kernel = Kernel(self.sim, self.network, costs, seed=seed)
        #: Aggregate networked-transport counters for every session run
        #: on this world (scoped here, not process-global, so parallel
        #: sweep workers and back-to-back sessions never bleed).
        self.net_stats = NetStats()

    def machine(self, name: str) -> Machine:
        """The named machine, with a diagnosable error when absent."""
        try:
            return self.machines[name]
        except KeyError:
            configured = ", ".join(sorted(self.machines)) or "none"
            raise NvxError(
                f"world has no machine named {name!r} "
                f"(configured: {configured})") from None

    @property
    def server(self) -> Machine:
        return self.machine("server")

    @property
    def client(self) -> Machine:
        return self.machine("client")

    def spawn(self, main, name: str = "proc",
              machine: Optional[Machine] = None, daemon: bool = False):
        """Spawn a native (un-monitored) task running ``main(ctx)``."""
        return self.kernel.spawn_task(machine or self.server, main,
                                      name=name, daemon=daemon)

    # -- session facade ----------------------------------------------------

    @staticmethod
    def _fold(config: Optional[SessionConfig], placement, transport
              ) -> Optional[SessionConfig]:
        """Fold the first-class ``placement=``/``transport=`` facade
        arguments into the config.  These are the *new* API — unlike the
        legacy per-option keywords they carry no deprecation warning —
        and explicit fields already set on the config win."""
        if placement is None and transport is None:
            return config
        resolved = config if config is not None else SessionConfig()
        overrides = {}
        if placement is not None and resolved.placement is None:
            overrides["placement"] = placement
        if transport is not None and resolved.transport is None:
            overrides["transport"] = transport
        return resolved.replace(**overrides) if overrides else resolved

    def nvx(self, specs, config: Optional[SessionConfig] = None,
            placement=None, transport=None, **kwargs):
        """Build a Varan :class:`NvxSession` over this world.

        ``placement`` maps variant index/name to a machine (name or
        object); ``transport`` is an event-transport factory
        (:func:`repro.core.netring.net_transport` for remote followers).
        Direct ring construction by sessions is gone — transports come
        from factories now.
        """
        from repro.core.coordinator import NvxSession

        config = self._fold(config, placement, transport)
        return NvxSession(self, specs, config=config, **kwargs)

    def lockstep(self, specs, config: Optional[SessionConfig] = None,
                 placement=None, transport=None, **kwargs):
        """Build a centralized lockstep-monitor baseline session."""
        from repro.nvx.lockstep import LockstepSession

        config = self._fold(config, placement, transport)
        return LockstepSession(self, specs, config=config, **kwargs)

    def scribe(self, specs, config: Optional[SessionConfig] = None,
               placement=None, transport=None, **kwargs):
        """Build a Scribe-style record/replay baseline session."""
        from repro.nvx.scribe import ScribeSession

        config = self._fold(config, placement, transport)
        return ScribeSession(self, specs, config=config, **kwargs)

    def run(self, **kwargs) -> None:
        self.sim.run(**kwargs)

    @property
    def now(self) -> int:
        return self.sim.now
