"""Binary log format for Varan's record-replay clients (§5.4).

Each record is a fixed header followed by the variable payload::

    <u32 magic> <u32 total_len>
    <u8 etype> <i32 nr> <u16 tindex> <u64 clock> <i64 retval>
    <u8 nargs> <nargs × i64> <u8 naux> <naux × i64>
    <u8 nfds> <nfds × i32> <u32 payload_len> <payload bytes>

The format is self-delimiting so a reader can stream records out of an
append-only file.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Tuple

from repro.core.events import ETYPE_CODES, ETYPE_NAMES, Event
from repro.errors import RecordReplayError
from repro.kernel.uapi import SYSCALL_NAMES

MAGIC = 0x5641_5241  # "VARA"

# Wire codes live with the event definition so the log format and the
# packed ring-slot layout cannot drift apart.
_ETYPE_CODES = ETYPE_CODES
_ETYPE_NAMES = ETYPE_NAMES

_HEADER = struct.Struct("<II")

#: Per-shape body packers, keyed by (nargs, aux_kind, naux, nfds).  The
#: format is little-endian and unpadded, so one Struct covering the
#: whole body emits bytes identical to the original field-at-a-time
#: encoder ("<Biq"+"<Hq"+... concatenated) — checked by the
#: byte-identity CI step.
_BODY_PACKERS: dict = {}


def _body_packer(nargs: int, aux_kind: int, naux: int,
                 nfds: int) -> struct.Struct:
    key = (nargs, aux_kind, naux, nfds)
    packer = _BODY_PACKERS.get(key)
    if packer is None:
        aux_q = 2 * naux if aux_kind else naux
        packer = _BODY_PACKERS[key] = struct.Struct(
            f"<BiqHqB{nargs}qBB{aux_q}qB{nfds}iI")
    return packer


def encode_event(event: Event, payload: bytes = b"") -> bytes:
    """Serialise one event (with its already-extracted payload).

    One pre-compiled Struct pack per record (cached by shape) instead of
    per-field packs; the byte stream is unchanged.
    """
    int_args = [a for a in event.args if isinstance(a, int)]
    # aux is either flat ints or (fd, mask)-style int pairs (epoll_wait);
    # a kind byte distinguishes the two shapes.
    if event.aux and all(isinstance(a, tuple) and len(a) == 2
                         for a in event.aux):
        aux_kind = 1
        naux = len(event.aux)
        aux_values = [value for pair in event.aux for value in pair]
    else:
        aux_kind = 0
        aux_values = [a for a in event.aux if isinstance(a, int)]
        naux = len(aux_values)
    fds = event.fd_numbers
    packer = _body_packer(len(int_args), aux_kind, naux, len(fds))
    body = packer.pack(
        _ETYPE_CODES[event.etype], event.nr, event.clock,
        event.tindex, event.retval,
        len(int_args), *int_args,
        aux_kind, naux, *aux_values,
        len(fds), *fds,
        len(payload))
    return _HEADER.pack(MAGIC, len(body) + len(payload)) + body + payload


def decode_records(data: bytes) -> Iterator[Tuple[Event, bytes]]:
    """Stream (event, payload) pairs out of a log buffer."""
    offset = 0
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            raise RecordReplayError("truncated record header")
        magic, length = _HEADER.unpack_from(data, offset)
        if magic != MAGIC:
            raise RecordReplayError(f"bad magic {magic:#x} at {offset}")
        offset += _HEADER.size
        if offset + length > len(data):
            raise RecordReplayError("truncated record body")
        yield _decode_body(data[offset:offset + length])
        offset += length


_FIXED = struct.Struct("<BiqHq")


def _decode_body(body: bytes) -> Tuple[Event, bytes]:
    view = memoryview(body)
    etype_code, nr, clock, tindex, retval = _FIXED.unpack_from(view, 0)
    offset = _FIXED.size

    def take_i64_list():
        nonlocal offset
        (count,) = struct.unpack_from("<B", view, offset)
        offset += 1
        values = list(struct.unpack_from(f"<{count}q", view, offset))
        offset += 8 * count
        return values

    args = take_i64_list()
    aux_kind, aux_count = struct.unpack_from("<BB", view, offset)
    offset += 2
    if aux_kind == 1:
        flat = struct.unpack_from(f"<{2 * aux_count}q", view, offset)
        offset += 16 * aux_count
        aux = [tuple(flat[i:i + 2]) for i in range(0, len(flat), 2)]
    else:
        aux = list(struct.unpack_from(f"<{aux_count}q", view, offset))
        offset += 8 * aux_count
    (nfds,) = struct.unpack_from("<B", view, offset)
    offset += 1
    fd_numbers = list(struct.unpack_from(f"<{nfds}i", view, offset))
    offset += 4 * nfds
    (payload_len,) = struct.unpack_from("<I", view, offset)
    offset += 4
    payload = bytes(view[offset:offset + payload_len])
    if len(payload) != payload_len:
        raise RecordReplayError("truncated payload")

    etype = _ETYPE_NAMES.get(etype_code)
    if etype is None:
        raise RecordReplayError(f"unknown event type {etype_code}")
    name = SYSCALL_NAMES.get(nr, etype)
    event = Event(etype, nr, name, tindex, clock, retval=retval,
                  args=tuple(args), aux=tuple(aux),
                  fd_count=len(fd_numbers),
                  fd_numbers=tuple(fd_numbers))
    return event, payload
