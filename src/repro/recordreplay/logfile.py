"""Binary log format for Varan's record-replay clients (§5.4).

Each record is a fixed header followed by the variable payload::

    <u32 magic> <u32 total_len>
    <u8 etype> <i32 nr> <u16 tindex> <u64 clock> <i64 retval>
    <u8 nargs> <nargs × i64> <u8 naux> <naux × i64>
    <u8 nfds> <nfds × i32> <u32 payload_len> <payload bytes>

The format is self-delimiting so a reader can stream records out of an
append-only file.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Tuple

from repro.core.events import (
    EV_CLONE,
    EV_EXIT,
    EV_FORK,
    EV_SIGNAL,
    EV_SYSCALL,
    Event,
)
from repro.errors import RecordReplayError
from repro.kernel.uapi import SYSCALL_NAMES

MAGIC = 0x5641_5241  # "VARA"

_ETYPE_CODES = {EV_SYSCALL: 0, EV_SIGNAL: 1, EV_FORK: 2, EV_CLONE: 3,
                EV_EXIT: 4}
_ETYPE_NAMES = {code: name for name, code in _ETYPE_CODES.items()}

_HEADER = struct.Struct("<II")


def encode_event(event: Event, payload: bytes = b"") -> bytes:
    """Serialise one event (with its already-extracted payload)."""
    body = bytearray()
    body += struct.pack("<Biq", _ETYPE_CODES[event.etype], event.nr,
                        event.clock)
    body += struct.pack("<Hq", event.tindex, event.retval)
    int_args = [a for a in event.args if isinstance(a, int)]
    body += struct.pack("<B", len(int_args))
    for arg in int_args:
        body += struct.pack("<q", arg)
    # aux is either flat ints or (fd, mask)-style int pairs (epoll_wait);
    # a kind byte distinguishes the two shapes.
    if event.aux and all(isinstance(a, tuple) and len(a) == 2
                         for a in event.aux):
        body += struct.pack("<BB", 1, len(event.aux))
        for first, second in event.aux:
            body += struct.pack("<qq", first, second)
    else:
        int_aux = [a for a in event.aux if isinstance(a, int)]
        body += struct.pack("<BB", 0, len(int_aux))
        for aux in int_aux:
            body += struct.pack("<q", aux)
    body += struct.pack("<B", len(event.fd_numbers))
    for fd in event.fd_numbers:
        body += struct.pack("<i", fd)
    body += struct.pack("<I", len(payload))
    body += payload
    return _HEADER.pack(MAGIC, len(body)) + bytes(body)


def decode_records(data: bytes) -> Iterator[Tuple[Event, bytes]]:
    """Stream (event, payload) pairs out of a log buffer."""
    offset = 0
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            raise RecordReplayError("truncated record header")
        magic, length = _HEADER.unpack_from(data, offset)
        if magic != MAGIC:
            raise RecordReplayError(f"bad magic {magic:#x} at {offset}")
        offset += _HEADER.size
        if offset + length > len(data):
            raise RecordReplayError("truncated record body")
        yield _decode_body(data[offset:offset + length])
        offset += length


def _decode_body(body: bytes) -> Tuple[Event, bytes]:
    view = memoryview(body)
    etype_code, nr, clock = struct.unpack_from("<Biq", view, 0)
    offset = struct.calcsize("<Biq")
    tindex, retval = struct.unpack_from("<Hq", view, offset)
    offset += struct.calcsize("<Hq")

    def take_i64_list():
        nonlocal offset
        (count,) = struct.unpack_from("<B", view, offset)
        offset += 1
        values = list(struct.unpack_from(f"<{count}q", view, offset))
        offset += 8 * count
        return values

    args = take_i64_list()
    aux_kind, aux_count = struct.unpack_from("<BB", view, offset)
    offset += 2
    if aux_kind == 1:
        flat = struct.unpack_from(f"<{2 * aux_count}q", view, offset)
        offset += 16 * aux_count
        aux = [tuple(flat[i:i + 2]) for i in range(0, len(flat), 2)]
    else:
        aux = list(struct.unpack_from(f"<{aux_count}q", view, offset))
        offset += 8 * aux_count
    (nfds,) = struct.unpack_from("<B", view, offset)
    offset += 1
    fd_numbers = list(struct.unpack_from(f"<{nfds}i", view, offset))
    offset += 4 * nfds
    (payload_len,) = struct.unpack_from("<I", view, offset)
    offset += 4
    payload = bytes(view[offset:offset + payload_len])
    if len(payload) != payload_len:
        raise RecordReplayError("truncated payload")

    etype = _ETYPE_NAMES.get(etype_code)
    if etype is None:
        raise RecordReplayError(f"unknown event type {etype_code}")
    name = SYSCALL_NAMES.get(nr, etype)
    event = Event(etype, nr, name, tindex, clock, retval=retval,
                  args=tuple(args), aux=tuple(aux),
                  fd_count=len(fd_numbers),
                  fd_numbers=tuple(fd_numbers))
    return event, payload
