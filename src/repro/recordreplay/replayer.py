"""The replay-phase client: an artificial leader that publishes logged
events into a ring consumed by one or more replayed versions (§5.4).

Because Varan was designed to run multiple instances simultaneously,
several versions can be replayed against the same log in one pass —
e.g. to find which revisions of an application are susceptible to a
crash reported from production.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bpf.rules import RewriteRules
from repro.core.coordinator import SessionStats, Variant, VersionSpec
from repro.core.events import Event
from repro.core.monitor import ReplicaMonitor, RingTuple
from repro.core.ringbuffer import RingBuffer
from repro.core.shm import SharedMemoryPool
from repro.core.tables import install_tables
from repro.costmodel import cycles
from repro.errors import NvxError, RecordReplayError
from repro.recordreplay.logfile import decode_records
from repro.sim.core import Compute


class ReplaySession:
    """Replay a recorded log against N candidate versions.

    Duck-types the parts of :class:`~repro.core.coordinator.NvxSession`
    the follower machinery relies on.  Single-process logs only: a FORK
    event in the log is a replay error.
    """

    def __init__(self, world, specs: List[VersionSpec], log_bytes: bytes,
                 machine=None, rules: Optional[RewriteRules] = None,
                 ring_capacity: int = 256, daemon: bool = False) -> None:
        if not specs:
            raise NvxError("replay needs at least one version")
        self.world = world
        self.costs = world.costs
        self.machine = machine or world.server
        self.rules = rules or RewriteRules()
        self.pool = SharedMemoryPool(world.sim, world.costs)
        self.stats = SessionStats()
        self.replay_mode = True
        self.daemon = daemon
        self.records = list(decode_records(log_bytes))
        self.variants = [Variant(i, spec, self.machine)
                         for i, spec in enumerate(specs)]
        ring = RingBuffer(world.sim, world.costs, capacity=ring_capacity,
                          name="replay-ring")
        self.tuples = [RingTuple(0, ring, channels={})]
        self.events_replayed = 0
        self.crashed: List[str] = []

    @property
    def root_tuple(self) -> RingTuple:
        return self.tuples[0]

    def start(self) -> "ReplaySession":
        ring = self.root_tuple.ring
        for variant in self.variants:
            ring.add_consumer(variant.vid)
        for variant in self.variants:
            task = self.world.kernel.spawn_task(
                self.machine, variant.spec.main, name=variant.name,
                daemon=self.daemon)
            variant.tasks.append(task)
            monitor = ReplicaMonitor(self, variant, task, self.root_tuple)
            install_tables(monitor)
            task.segv_hook = self._crash_hook(variant)
        self.machine.spawn(self._publisher(), name="varan.replay-leader",
                           daemon=True)
        return self

    # -- the artificial leader ------------------------------------------------

    def _publisher(self):
        ring = self.root_tuple.ring
        for event, payload in self.records:
            if event.etype == "fork":
                raise RecordReplayError(
                    "multi-process logs are not replayable")
            fresh = Event(event.etype, event.nr, event.name, event.tindex,
                          event.clock, retval=event.retval,
                          args=event.args, aux=event.aux,
                          fd_count=event.fd_count,
                          fd_numbers=event.fd_numbers)
            if payload:
                fresh.payload = yield from self.pool.alloc(
                    payload, readers=len(ring.cursors))
            yield Compute(cycles(
                self.costs.record_log_per_event
                + self.costs.record_log_per_byte * len(payload)))
            yield from ring.publish(fresh)
            self.events_replayed += 1

    # -- NvxSession duck-typing -------------------------------------------------

    def report_divergence(self, monitor, call, event) -> None:
        self.stats.fatal_divergences.append(
            (monitor.variant.name, call.name, event.name))
        monitor.variant.alive = False
        self.root_tuple.ring.remove_consumer(monitor.vid)

    def report_ring_fault(self, monitor, exc) -> None:
        """Ring damage observed mid-replay: drop the replayed variant so
        the artificial leader is not backpressured by its dead cursor."""
        self.stats.ring_faults.append(
            (monitor.variant.name, str(exc), self.world.sim.now))
        monitor.variant.alive = False
        self.root_tuple.ring.remove_consumer(monitor.vid)

    def await_promotion_complete(self, task):
        raise RecordReplayError("replayed versions cannot become leader")
        yield  # pragma: no cover

    def attach_follower_child(self, variant, child_task, tuple_id):
        raise RecordReplayError("multi-process logs are not replayable")

    def tuple_by_id(self, tuple_id: int) -> RingTuple:
        return self.root_tuple

    def _crash_hook(self, variant: Variant):
        def hook(task, fault):
            self.crashed.append(variant.name)
            self.stats.crashes.append(
                (variant.name, str(fault), self.world.sim.now))
            variant.alive = False
            self.root_tuple.ring.remove_consumer(variant.vid)

        return hook
