"""The record-phase client: an artificial follower that drains the ring
buffer to persistent storage (§5.4).

Decoupling log writing from the application lets the leader run at
nearly full speed — the recorder is just one more ring consumer on its
own core.
"""

from __future__ import annotations

from repro.core.coordinator import NvxSession
from repro.costmodel import cycles
from repro.errors import NvxError
from repro.recordreplay.logfile import encode_event
from repro.sim.core import Compute

#: Variant-id space reserved for recorder consumers (one per tuple).
RECORDER_VID_BASE = 9000


class Recorder:
    """Attach to a session *before* ``start()`` to capture every tuple."""

    def __init__(self, session: NvxSession, path: str) -> None:
        self.session = session
        self.path = path
        self.world = session.world
        fs = self.world.kernel.fs(session.machine)
        self.inode = fs.lookup(path) or fs.create(path)
        self.events_recorded = 0
        self.bytes_written = 0
        #: Diagnostic set when a drain hit ring damage and stopped.
        self.corrupted = None
        session.tuple_hooks.append(self._on_tuple)

    def _on_tuple(self, tuple_) -> None:
        vid = RECORDER_VID_BASE + tuple_.id
        tuple_.ring.add_consumer(vid)
        self.session.machine.spawn(
            self._drain(tuple_.ring, vid),
            name=f"varan.recorder.{tuple_.id}", daemon=True)

    def _drain(self, ring, vid: int):
        costs = self.session.costs

        def has_event():
            # Runs in the publisher's notify context: report ready on
            # ring damage and let the drain loop fail diagnostically.
            try:
                return ring.peek(vid) is not None
            except NvxError:
                return True

        while True:
            try:
                event = ring.peek(vid)
                if event is None:
                    yield from ring.wait_published(True, has_event)
                    continue
                payload = b""
                if event.payload is not None:
                    payload = yield from self.session.pool.consume(
                        event.payload)
                record = encode_event(event, payload)
                yield Compute(cycles(
                    costs.record_log_per_event
                    + costs.record_log_per_byte * len(record)))
                self.inode.write_at(self.inode.size(), record)
                self.events_recorded += 1
                self.bytes_written += len(record)
                ring.advance(vid)
            except NvxError as exc:
                # Injected slot damage: the log is no longer trustworthy
                # past this point.  Stop recording and unsubscribe so the
                # dead cursor cannot backpressure the leader forever.
                self.corrupted = str(exc)
                ring.remove_consumer(vid)
                return

    @property
    def log_bytes(self) -> bytes:
        return bytes(self.inode.data)
