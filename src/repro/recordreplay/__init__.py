"""Record-replay clients built on Varan's event streaming (§5.4)."""

from repro.recordreplay.logfile import decode_records, encode_event
from repro.recordreplay.recorder import Recorder
from repro.recordreplay.replayer import ReplaySession

__all__ = ["decode_records", "encode_event", "Recorder", "ReplaySession"]
