"""Simulated static-file HTTP servers: Lighttpd, thttpd, Apache httpd.

One parameterised implementation covers the three single-threaded
static servers used in the paper's evaluation; per-server profiles set
the request-parsing and response-generation compute so their native
throughputs differ the way the real servers' do.

The Lighttpd *revisions* used by the multi-revision (§5.2) and failover
(§5.1) experiments are faithful to the paper's description:

* r2435→r2436 — ``issetugid()`` replaces ``geteuid()/getegid()``,
  adding ``getuid`` and ``getgid`` to the startup sequence;
* r2523→r2524 — an additional ``read`` of ``/dev/urandom`` for entropy;
* r2577→r2578 — an additional ``fcntl`` setting ``FD_CLOEXEC``;
* r2437→r2438 — r2438 introduces a crash on a specific request.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import (
    EpollServer,
    ServerStats,
    http_response,
    parse_http_request,
)
from repro.kernel.uapi import F_SETFD, FD_CLOEXEC, O_RDONLY, Segfault
from repro.runtime.image import SiteSpec, build_image


@dataclass(frozen=True)
class HttpProfile:
    """Compute costs (cycles) of one server flavour."""

    name: str
    parse_cycles: int = 2600
    respond_cycles: int = 3400
    page_size: int = 4096
    log_access: bool = False  # write an access-log line per request
    #: Per-accepted-connection work (connection object setup, config
    #: lookups; prefork hand-off for Apache) — dominates non-keepalive
    #: workloads like ApacheBench and http_load.
    conn_setup_cycles: int = 0


LIGHTTPD = HttpProfile("lighttpd", parse_cycles=10000,
                       respond_cycles=14000, conn_setup_cycles=500_000)
THTTPD = HttpProfile("thttpd", parse_cycles=14000,
                     respond_cycles=19000, conn_setup_cycles=620_000)
APACHE_HTTPD = HttpProfile("apache-httpd", parse_cycles=20000,
                           respond_cycles=28000, log_access=True,
                           conn_setup_cycles=950_000)

#: Syscall sites an HTTP worker touches; used to build the VX86 image
#: the rewriter patches.
HTTPD_SITES = [
    SiteSpec("srv_socket", "socket"),
    SiteSpec("srv_setsockopt", "setsockopt"),
    SiteSpec("srv_bind", "bind"),
    SiteSpec("srv_listen", "listen"),
    SiteSpec("srv_epoll_create", "epoll_create"),
    SiteSpec("srv_epoll_ctl", "epoll_ctl"),
    SiteSpec("srv_epoll_wait", "epoll_wait"),
    SiteSpec("srv_accept", "accept"),
    SiteSpec("srv_read", "read"),
    SiteSpec("srv_write", "write"),
    SiteSpec("srv_close", "close"),
    SiteSpec("srv_open", "open"),
    SiteSpec("srv_fstat", "fstat"),
    SiteSpec("srv_time", "time", vdso="time"),
    SiteSpec("srv_clock", "clock_gettime", vdso="clock_gettime"),
]


def httpd_image(profile: HttpProfile = LIGHTTPD):
    return build_image(profile.name, HTTPD_SITES)


def make_httpd(profile: HttpProfile = LIGHTTPD, port: int = 80,
               page_path: str = "/var/www/index.html",
               stats: ServerStats = None, crash_on: bytes = None,
               startup=None):
    """Build the server generator function for one HTTP flavour.

    ``crash_on``: a request substring that triggers a Segfault (used for
    the Lighttpd r2438 failover experiment).
    ``startup``: optional generator run before serving (revision-specific
    startup syscall sequences for §5.2).
    """
    stats = stats if stats is not None else ServerStats()

    def main(ctx):
        if startup is not None:
            yield from startup(ctx)
        # Read the served page once at startup, like a static-file cache.
        page = b""
        result = yield from ctx.syscall("open", page_path, O_RDONLY,
                                        site="srv_open")
        if result.retval >= 0:
            fd = result.retval
            yield from ctx.fstat(fd, site="srv_fstat")
            page = yield from ctx.read(fd, profile.page_size,
                                       site="srv_read")
            yield from ctx.close(fd, site="srv_close")
        if not page:
            page = b"x" * profile.page_size

        def handle(hctx, conn, request):
            if crash_on is not None and crash_on in request:
                raise Segfault(f"{profile.name}: crash handling "
                               f"{request[:30]!r}")
            yield from hctx.compute(profile.parse_cycles)
            # Stat-cache validation + the server's time cache, as real
            # lighttpd does per request.
            yield from hctx.stat(page_path, site="srv_fstat")
            yield from hctx.clock_gettime(site="srv_time")
            keepalive = b"Connection: close" not in request
            conn.keepalive = keepalive
            yield from hctx.compute(profile.respond_cycles)
            # TCP_CORK bracket around the response write.
            yield from hctx.setsockopt(conn.fd, site="srv_setsockopt")
            yield from hctx.clock_gettime(site="srv_time")
            if profile.log_access:
                yield from hctx.time(site="srv_time")
            response = http_response(page, keepalive=keepalive)
            return response

        server = EpollServer(ctx, port, handle, parse_http_request,
                             stats=stats,
                             conn_setup_cycles=profile.conn_setup_cycles)
        return (yield from server.serve())

    return main


# -- Lighttpd startup sequences for the multi-revision experiments (§5.2) --

def startup_r2435(ctx):
    """geteuid/getegid before opening the config — the old sequence."""
    yield from ctx.geteuid()
    yield from ctx.getegid()
    fd = yield from ctx.open("/dev/null")
    yield from ctx.close(fd)


def startup_r2436(ctx):
    """issetugid() internally issues all four id calls, then open."""
    yield from ctx.geteuid()
    yield from ctx.getuid()
    yield from ctx.getegid()
    yield from ctx.getgid()
    fd = yield from ctx.open("/dev/null")
    yield from ctx.close(fd)


def startup_r2523(ctx):
    yield from ctx.geteuid()
    yield from ctx.getegid()


def startup_r2524(ctx):
    """r2524 reads /dev/urandom for an extra entropy source."""
    yield from ctx.geteuid()
    yield from ctx.getegid()
    fd = yield from ctx.open("/dev/urandom")
    yield from ctx.read(fd, 16)
    yield from ctx.close(fd)


def startup_r2577(ctx):
    fd = yield from ctx.open("/dev/null")
    yield from ctx.close(fd)


def startup_r2578(ctx):
    """r2578 additionally sets FD_CLOEXEC on a descriptor."""
    fd = yield from ctx.open("/dev/null")
    yield from ctx.fcntl(fd, F_SETFD, FD_CLOEXEC)
    yield from ctx.close(fd)


LIGHTTPD_REVISIONS = {
    "2435": startup_r2435,
    "2436": startup_r2436,
    "2523": startup_r2523,
    "2524": startup_r2524,
    "2577": startup_r2577,
    "2578": startup_r2578,
}


def lighttpd_revision(rev: str, port: int = 80, stats=None,
                      crash_on: bytes = None):
    """A Lighttpd version with a revision-specific startup sequence."""
    startup = LIGHTTPD_REVISIONS.get(rev)
    return make_httpd(LIGHTTPD, port=port, stats=stats, crash_on=crash_on,
                      startup=startup)
