"""Simulated Beanstalkd: a simple, fast work queue.

The paper's worst performer under NVX: tiny per-operation compute makes
the syscall path dominate.  Its hot read site is deliberately
unpatchable (a branch target lands in the patch window), so it pays the
INT0 fallback — which is why Beanstalkd alone shows a ~10% interception
overhead at zero followers (Figure 5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict

from repro.apps.base import EpollServer, ServerStats, parse_line_request
from repro.runtime.image import SiteSpec, build_image

#: Per-operation compute (cycles): parsing + queue manipulation.
PARSE_CYCLES = 1000
ENQUEUE_CYCLES = 2500
RESERVE_CYCLES = 2800

BEANSTALKD_SITES = [
    SiteSpec("srv_socket", "socket"),
    SiteSpec("srv_setsockopt", "setsockopt"),
    SiteSpec("srv_bind", "bind"),
    SiteSpec("srv_listen", "listen"),
    SiteSpec("srv_epoll_create", "epoll_create"),
    SiteSpec("srv_epoll_ctl", "epoll_ctl"),
    SiteSpec("srv_epoll_wait", "epoll_wait"),
    SiteSpec("srv_accept", "accept"),
    # The hot receive path sits in a dispatch loop whose jump table
    # targets the instruction right after the syscall: INT0 fallback.
    SiteSpec("srv_read", "read", force_int=True),
    SiteSpec("srv_write", "write"),
    SiteSpec("srv_close", "close"),
    SiteSpec("bin_write", "write"),
    SiteSpec("srv_gtod", "gettimeofday", vdso="gettimeofday"),
]


def beanstalkd_image():
    return build_image("beanstalkd", BEANSTALKD_SITES)


@dataclass
class JobStore:
    """Tube state: ready jobs plus a monotonically growing id."""

    next_id: int = 1
    ready: Deque = field(default_factory=deque)
    reserved: Dict[int, bytes] = field(default_factory=dict)


def make_beanstalkd(port: int = 11300, stats: ServerStats = None,
                    binlog_path: str = None):
    """Build the beanstalkd server generator.

    Protocol (line-oriented, binary-safe bodies are elided):
    ``put <bytes>`` / ``reserve`` / ``delete <id>`` / ``stats``.
    """
    stats = stats if stats is not None else ServerStats()
    store = JobStore()

    def main(ctx):
        binlog_fd = None
        if binlog_path is not None:
            from repro.kernel.uapi import O_CREAT, O_WRONLY

            binlog_fd = yield from ctx.open(binlog_path,
                                            O_CREAT | O_WRONLY,
                                            site="srv_open")

        def handle(hctx, conn, request):
            yield from hctx.compute(PARSE_CYCLES)
            # Job timestamps: beanstalkd reads the clock per operation.
            yield from hctx.gettimeofday(site="srv_gtod")
            parts = request.split(b" ", 1)
            command = parts[0]
            if command == b"put":
                body = parts[1] if len(parts) > 1 else b""
                yield from hctx.compute(ENQUEUE_CYCLES)
                job_id = store.next_id
                store.next_id += 1
                store.ready.append((job_id, body))
                if binlog_fd is not None:
                    yield from hctx.write(binlog_fd, body,
                                          site="bin_write")
                return b"INSERTED %d\r\n" % job_id
            if command == b"reserve":
                yield from hctx.compute(RESERVE_CYCLES)
                if not store.ready:
                    return b"TIMED_OUT\r\n"
                job_id, body = store.ready.popleft()
                store.reserved[job_id] = body
                return b"RESERVED %d %d\r\n%s\r\n" % (job_id, len(body),
                                                      body)
            if command == b"delete":
                yield from hctx.compute(ENQUEUE_CYCLES // 2)
                job_id = int(parts[1]) if len(parts) > 1 else 0
                found = store.reserved.pop(job_id, None)
                return b"DELETED\r\n" if found is not None \
                    else b"NOT_FOUND\r\n"
            if command == b"stats":
                yield from hctx.compute(PARSE_CYCLES)
                return (b"OK\r\ncurrent-jobs-ready: %d\r\n"
                        % len(store.ready))
            stats.errors += 1
            return b"UNKNOWN_COMMAND\r\n"

        server = EpollServer(ctx, port, handle, parse_line_request,
                             stats=stats)
        return (yield from server.serve())

    return main
