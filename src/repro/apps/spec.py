"""SPEC CPU2000 / CPU2006 workload models (Figures 7-8).

Each benchmark is a CPU-bound kernel with a characteristic *syscall
density* (calls per million compute cycles — SPEC programs mostly read
an input once, compute, and write results) and a *memory intensity*
used by the cache/memory-pressure model: the paper attributes SPEC's
poor scaling with follower count to memory pressure and caching effects
on a four-physical-core machine (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.costmodel import MachineSpec
from repro.kernel.uapi import O_CREAT, O_RDWR
from repro.runtime.image import SiteSpec, build_image


@dataclass(frozen=True)
class SpecBenchmark:
    name: str
    suite: str  # "cpu2000" | "cpu2006"
    #: Total compute cycles for our (scaled-down) run.
    compute_cycles: int
    #: File-I/O syscalls issued per million compute cycles.
    syscall_density: float
    #: 0..1: how sensitive the kernel is to sharing caches/memory
    #: bandwidth with its co-running variants.
    memory_intensity: float


CPU2000: Tuple[SpecBenchmark, ...] = (
    SpecBenchmark("164.gzip", "cpu2000", 40_000_000, 0.50, 0.30),
    SpecBenchmark("175.vpr", "cpu2000", 40_000_000, 0.20, 0.45),
    SpecBenchmark("176.gcc", "cpu2000", 40_000_000, 1.50, 0.55),
    SpecBenchmark("181.mcf", "cpu2000", 40_000_000, 0.07, 0.95),
    SpecBenchmark("186.crafty", "cpu2000", 40_000_000, 0.12, 0.15),
    SpecBenchmark("197.parser", "cpu2000", 40_000_000, 0.30, 0.40),
    SpecBenchmark("252.eon", "cpu2000", 40_000_000, 0.15, 0.10),
    SpecBenchmark("253.perlbmk", "cpu2000", 40_000_000, 1.00, 0.35),
    SpecBenchmark("254.gap", "cpu2000", 40_000_000, 0.38, 0.50),
    SpecBenchmark("255.vortex", "cpu2000", 40_000_000, 0.75, 0.60),
    SpecBenchmark("256.bzip2", "cpu2000", 40_000_000, 0.25, 0.45),
    SpecBenchmark("300.twolf", "cpu2000", 40_000_000, 0.10, 0.50),
)

CPU2006: Tuple[SpecBenchmark, ...] = (
    SpecBenchmark("400.perlbench", "cpu2006", 40_000_000, 1.25, 0.40),
    SpecBenchmark("401.bzip2", "cpu2006", 40_000_000, 0.25, 0.50),
    SpecBenchmark("403.gcc", "cpu2006", 40_000_000, 1.50, 0.65),
    SpecBenchmark("429.mcf", "cpu2006", 40_000_000, 0.07, 1.00),
    SpecBenchmark("445.gobmk", "cpu2006", 40_000_000, 0.50, 0.25),
    SpecBenchmark("456.hmmer", "cpu2006", 40_000_000, 0.20, 0.15),
    SpecBenchmark("458.sjeng", "cpu2006", 40_000_000, 0.10, 0.20),
    SpecBenchmark("462.libquantum", "cpu2006", 40_000_000, 0.05, 0.90),
    SpecBenchmark("464.h264ref", "cpu2006", 40_000_000, 0.38, 0.35),
    SpecBenchmark("471.omnetpp", "cpu2006", 40_000_000, 0.25, 0.85),
    SpecBenchmark("473.astar", "cpu2006", 40_000_000, 0.12, 0.75),
    SpecBenchmark("483.xalancbmk", "cpu2006", 40_000_000, 0.75, 0.80),
)

ALL_SPEC: Dict[str, SpecBenchmark] = {
    b.name: b for b in CPU2000 + CPU2006}

SPEC_SITES = [
    SiteSpec("spec_open", "open"),
    SiteSpec("spec_read", "read"),
    SiteSpec("spec_write", "write"),
    SiteSpec("spec_close", "close"),
    SiteSpec("spec_brk", "brk"),
    SiteSpec("spec_time", "time", vdso="time"),
]


def spec_image(benchmark: SpecBenchmark):
    return build_image(benchmark.name, SPEC_SITES)


def memory_pressure_factor(benchmark: SpecBenchmark, variants: int,
                           machine: MachineSpec) -> float:
    """Slowdown from co-running ``variants`` copies of the benchmark.

    Calibrated against Figures 7-8: low-intensity kernels barely notice
    followers, while mcf-class kernels degrade steeply once the variant
    count exceeds the physical core count (hyper-threads share caches)
    and approaches the logical core count.
    """
    if variants <= 1:
        return 1.0
    physical = machine.physical_cores
    # Sharing among hyperthread pairs starts immediately; capacity
    # pressure ramps once variants exceed the physical cores.
    smt_share = 0.18 * benchmark.memory_intensity * min(
        variants - 1, physical)
    over = max(0, variants - physical)
    capacity = 0.55 * benchmark.memory_intensity * over
    return 1.0 + smt_share + capacity


def make_spec(benchmark: SpecBenchmark, compute_scale: float = 1.0,
              chunk_cycles: int = 500_000,
              input_path: str = None, output_path: str = None):
    """Build the benchmark generator.

    ``compute_scale`` multiplies all compute — the experiment layer sets
    it from :func:`memory_pressure_factor` for the NVX configurations.
    """
    input_path = input_path or f"/tmp/{benchmark.name}.in"
    output_path = output_path or f"/tmp/{benchmark.name}.out"

    def main(ctx):
        fd_in = yield from ctx.open(input_path, O_CREAT | O_RDWR,
                                    site="spec_open")
        fd_out = yield from ctx.open(output_path, O_CREAT | O_RDWR,
                                     site="spec_open")
        yield from ctx.time(site="spec_time")

        total = benchmark.compute_cycles
        per_chunk_calls = (benchmark.syscall_density
                           * chunk_cycles / 1_000_000)
        call_debt = 0.0
        done = 0
        while done < total:
            chunk = min(chunk_cycles, total - done)
            yield from ctx.compute(chunk * compute_scale)
            done += chunk
            call_debt += per_chunk_calls
            while call_debt >= 1.0:
                call_debt -= 1.0
                yield from ctx.read(fd_in, 4096, site="spec_read")
                yield from ctx.write(fd_out, b"r" * 256,
                                     site="spec_write")
        yield from ctx.time(site="spec_time")
        yield from ctx.close(fd_in, site="spec_close")
        yield from ctx.close(fd_out, site="spec_close")
        return done

    return main
