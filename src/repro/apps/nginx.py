"""Simulated Nginx: multi-process HTTP server / reverse proxy.

A master process forks worker processes that share the listening socket
(non-blocking accept, so losing the thundering-herd race is harmless).
Under Varan each worker becomes its own process tuple with its own ring
buffer (§3.3.3).
"""

from __future__ import annotations

from repro.apps.base import (
    Connection,
    ServerStats,
    http_response,
    parse_http_request,
)
from repro.kernel.uapi import (
    EPOLL_CTL_ADD,
    EPOLL_CTL_DEL,
    EPOLLIN,
    O_NONBLOCK,
    SysError,
)
from repro.runtime.image import SiteSpec, build_image

PARSE_CYCLES = 5000
RESPOND_CYCLES = 7000

NGINX_SITES = [
    SiteSpec("srv_socket", "socket"),
    SiteSpec("srv_setsockopt", "setsockopt"),
    SiteSpec("srv_bind", "bind"),
    SiteSpec("srv_listen", "listen"),
    SiteSpec("srv_fork", "fork"),
    SiteSpec("srv_wait4", "wait4"),
    SiteSpec("srv_epoll_create", "epoll_create"),
    SiteSpec("srv_epoll_ctl", "epoll_ctl"),
    SiteSpec("srv_epoll_wait", "epoll_wait"),
    # Workers inherit a hot accept loop with a computed-goto dispatch:
    # the accept site cannot be detoured.
    SiteSpec("srv_accept", "accept", force_int=True),
    SiteSpec("srv_read", "read"),
    SiteSpec("srv_write", "write"),
    SiteSpec("srv_close", "close"),
    SiteSpec("srv_time", "gettimeofday", vdso="gettimeofday"),
]


def nginx_image():
    return build_image("nginx", NGINX_SITES)


def make_nginx(port: int = 8080, stats: ServerStats = None,
               workers: int = 4, page_size: int = 4096):
    """Build the nginx master generator; it forks ``workers`` children."""
    stats = stats if stats is not None else ServerStats()
    page = b"n" * page_size

    def worker_main(listen_fd: int):
        def worker(ctx):
            epfd = yield from ctx.epoll_create(site="srv_epoll_create")
            yield from ctx.epoll_ctl(epfd, EPOLL_CTL_ADD, listen_fd,
                                     EPOLLIN, site="srv_epoll_ctl")
            conns = {}
            while True:
                events = yield from ctx.epoll_wait(
                    epfd, site="srv_epoll_wait")
                for fd, _mask in events:
                    if fd == listen_fd:
                        result = yield from ctx.syscall(
                            "accept", listen_fd, site="srv_accept")
                        if result.retval < 0:
                            continue  # another worker won the race
                        conn_fd = result.retval
                        stats.connections += 1
                        conns[conn_fd] = Connection(fd=conn_fd)
                        yield from ctx.epoll_ctl(
                            epfd, EPOLL_CTL_ADD, conn_fd, EPOLLIN,
                            site="srv_epoll_ctl")
                        continue
                    conn = conns.get(fd)
                    if conn is None:
                        continue
                    data = yield from ctx.recv(fd, 4096, site="srv_read")
                    if not data:
                        yield from _drop(ctx, epfd, fd, conns)
                        continue
                    stats.bytes_in += len(data)
                    conn.buffer += data
                    while True:
                        request, rest = parse_http_request(conn.buffer)
                        if request is None:
                            break
                        conn.buffer = rest
                        stats.requests += 1
                        yield from ctx.compute(PARSE_CYCLES)
                        yield from ctx.gettimeofday(site="srv_time")
                        yield from ctx.compute(RESPOND_CYCLES)
                        keepalive = b"Connection: close" not in request
                        response = http_response(page, keepalive=keepalive)
                        sent = yield from ctx.send(fd, response,
                                                   site="srv_write")
                        stats.bytes_out += max(0, sent)
                        if not keepalive:
                            yield from _drop(ctx, epfd, fd, conns)
                            break

        return worker

    def _drop(ctx, epfd, fd, conns):
        try:
            yield from ctx.epoll_ctl(epfd, EPOLL_CTL_DEL, fd, 0,
                                     site="srv_epoll_ctl")
        except SysError:
            pass
        yield from ctx.close(fd, site="srv_close")
        conns.pop(fd, None)

    def master(ctx):
        listen_fd = yield from ctx.socket(flags=O_NONBLOCK,
                                          site="srv_socket")
        yield from ctx.setsockopt(listen_fd, site="srv_setsockopt")
        yield from ctx.bind(listen_fd, (ctx.machine.name, port),
                            site="srv_bind")
        yield from ctx.listen(listen_fd, site="srv_listen")
        pids = []
        for _ in range(workers):
            pid = yield from ctx.fork(worker_main(listen_fd),
                                      site="srv_fork")
            pids.append(pid)
        # The master parks reaping children (they never exit normally).
        for pid in pids:
            yield from ctx.wait4(pid, site="srv_wait4")

    return master
