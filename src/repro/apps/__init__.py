"""Simulated server applications and SPEC workloads (Table 1, §4)."""

from repro.apps.base import (
    Connection,
    EpollServer,
    ServerStats,
    http_response,
    parse_http_request,
    parse_line_request,
)
from repro.apps.beanstalkd import beanstalkd_image, make_beanstalkd
from repro.apps.httpd import (
    APACHE_HTTPD,
    HTTPD_SITES,
    LIGHTTPD,
    LIGHTTPD_REVISIONS,
    THTTPD,
    HttpProfile,
    httpd_image,
    lighttpd_revision,
    make_httpd,
)
from repro.apps.memcached import make_memcached, memcached_image
from repro.apps.nginx import make_nginx, nginx_image
from repro.apps.redis import (
    BUGGY_REVISION,
    REVISIONS,
    make_redis,
    redis_image,
)
from repro.apps.spec import (
    ALL_SPEC,
    CPU2000,
    CPU2006,
    SpecBenchmark,
    make_spec,
    memory_pressure_factor,
    spec_image,
)

#: Table 1 — the servers used in the evaluation, with the line counts
#: and threading models the paper reports.
TABLE_1 = (
    {"application": "Beanstalkd", "size_loc": 6365,
     "threading": "single-threaded"},
    {"application": "Lighttpd", "size_loc": 38_590,
     "threading": "single-threaded"},
    {"application": "Memcached", "size_loc": 9_779,
     "threading": "multi-threaded"},
    {"application": "Nginx", "size_loc": 101_852,
     "threading": "multi-process"},
    {"application": "Redis", "size_loc": 34_625,
     "threading": "multi-threaded"},
)

__all__ = [
    "Connection", "EpollServer", "ServerStats", "http_response",
    "parse_http_request", "parse_line_request",
    "beanstalkd_image", "make_beanstalkd",
    "APACHE_HTTPD", "HTTPD_SITES", "LIGHTTPD", "LIGHTTPD_REVISIONS",
    "THTTPD", "HttpProfile", "httpd_image", "lighttpd_revision",
    "make_httpd",
    "make_memcached", "memcached_image",
    "make_nginx", "nginx_image",
    "BUGGY_REVISION", "REVISIONS", "make_redis", "redis_image",
    "ALL_SPEC", "CPU2000", "CPU2006", "SpecBenchmark", "make_spec",
    "memory_pressure_factor", "spec_image",
    "TABLE_1",
]
