"""Simulated Redis: in-memory key-value store.

Implements the command mix redis-benchmark exercises (PING, SET, GET,
INCR, LPUSH, LPOP, SADD, HSET, HMGET) over the simulated heap so
sanitized builds have something real to check (§5.3).

Revision lineage for the failover experiment (§5.1): eight consecutive
revisions 9a22de8..7fb16ba, where the *last* one introduces a bug that
segfaults the server on a particular ``HMGET`` — the bug of
code.google.com/p/redis issue 344 used by the paper and by Mx.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.apps.base import EpollServer, ServerStats, parse_line_request
from repro.kernel.uapi import Segfault
from repro.runtime.image import SiteSpec, build_image
from repro.sanitizers.heap import SimHeap

PARSE_CYCLES = 6000
COMMAND_CYCLES = {
    b"PING": 1500,
    b"SET": 8500,
    b"GET": 7000,
    b"INCR": 7500,
    b"LPUSH": 9000,
    b"LPOP": 8500,
    b"SADD": 9000,
    b"HSET": 9500,
    b"HMGET": 10000,
    b"MSET": 12500,
}

#: The eight consecutive revisions of the §5.1 experiment.
REVISIONS = ("9a22de8", "1b2c3d4", "2c3d4e5", "3d4e5f6",
             "4e5f607", "5f60718", "6071829", "7fb16ba")

#: The revision whose HMGET handler crashes.
BUGGY_REVISION = "7fb16ba"

REDIS_SITES = [
    SiteSpec("srv_socket", "socket"),
    SiteSpec("srv_setsockopt", "setsockopt"),
    SiteSpec("srv_bind", "bind"),
    SiteSpec("srv_listen", "listen"),
    SiteSpec("srv_epoll_create", "epoll_create"),
    SiteSpec("srv_epoll_ctl", "epoll_ctl"),
    SiteSpec("srv_epoll_wait", "epoll_wait"),
    SiteSpec("srv_accept", "accept"),
    SiteSpec("srv_read", "read"),
    SiteSpec("srv_write", "write"),
    SiteSpec("srv_close", "close"),
    SiteSpec("srv_time", "gettimeofday", vdso="gettimeofday"),
    SiteSpec("bg_nanosleep", "nanosleep"),
]


def redis_image():
    return build_image("redis", REDIS_SITES)


@dataclass
class Db:
    strings: Dict[bytes, bytes] = field(default_factory=dict)
    lists: Dict[bytes, List[bytes]] = field(default_factory=dict)
    sets: Dict[bytes, set] = field(default_factory=dict)
    hashes: Dict[bytes, Dict[bytes, bytes]] = field(default_factory=dict)


def make_redis(port: int = 6379, stats: ServerStats = None,
               revision: str = REVISIONS[0],
               background_thread: bool = True,
               use_heap: bool = True):
    """Build the redis server generator for one revision."""
    stats = stats if stats is not None else ServerStats()
    buggy = revision == BUGGY_REVISION
    db = Db()

    def main(ctx):
        heap = SimHeap(ctx) if use_heap else None

        if background_thread:
            def background(bctx):
                # serverCron-style housekeeping: periodic time checks.
                for _ in range(1_000_000):
                    yield from bctx.nanosleep(100 * 1_000_000_000,
                                              site="bg_nanosleep")
                    yield from bctx.gettimeofday(site="srv_time")
                return None

            yield from ctx.spawn_thread(background)

        def handle(hctx, conn, request):
            yield from hctx.compute(PARSE_CYCLES)
            parts = request.split(b" ")
            command = parts[0].upper()
            yield from hctx.compute(COMMAND_CYCLES.get(command, 2000))
            if heap is not None and command in (b"SET", b"HSET",
                                                b"LPUSH", b"SADD"):
                addr = yield from heap.malloc(
                    len(parts[-1]) if parts else 16)
                yield from heap.store(addr, 8)
            if command == b"PING":
                return b"+PONG\r\n"
            if command == b"SET" and len(parts) >= 3:
                db.strings[parts[1]] = parts[2]
                return b"+OK\r\n"
            if command == b"GET" and len(parts) >= 2:
                value = db.strings.get(parts[1])
                if value is None:
                    return b"$-1\r\n"
                return b"$%d\r\n%s\r\n" % (len(value), value)
            if command == b"INCR" and len(parts) >= 2:
                raw = db.strings.get(parts[1], b"0")
                try:
                    value = int(raw) + 1
                except ValueError:
                    return (b"-ERR value is not an integer or out of "
                            b"range\r\n")
                db.strings[parts[1]] = str(value).encode()
                return b":%d\r\n" % value
            if command == b"LPUSH" and len(parts) >= 3:
                db.lists.setdefault(parts[1], []).insert(0, parts[2])
                return b":%d\r\n" % len(db.lists[parts[1]])
            if command == b"LPOP" and len(parts) >= 2:
                items = db.lists.get(parts[1], [])
                if not items:
                    return b"$-1\r\n"
                value = items.pop(0)
                return b"$%d\r\n%s\r\n" % (len(value), value)
            if command == b"SADD" and len(parts) >= 3:
                bucket = db.sets.setdefault(parts[1], set())
                added = int(parts[2] not in bucket)
                bucket.add(parts[2])
                return b":%d\r\n" % added
            if command == b"HSET" and len(parts) >= 4:
                db.hashes.setdefault(parts[1], {})[parts[2]] = parts[3]
                return b":1\r\n"
            if command == b"HMGET" and len(parts) >= 3:
                if buggy:
                    # Issue 344: dereference through a stale pointer when
                    # the hash is missing — a real use-after-free under
                    # ASan, a plain segfault otherwise.
                    if heap is not None:
                        addr = yield from heap.malloc(16)
                        yield from heap.free(addr)
                        yield from heap.load(addr)
                    raise Segfault(
                        f"redis {revision}: HMGET on missing hash")
                entry = db.hashes.get(parts[1], {})
                values = [entry.get(f) for f in parts[2:]]
                out = b"*%d\r\n" % len(values)
                for value in values:
                    out += (b"$-1\r\n" if value is None
                            else b"$%d\r\n%s\r\n" % (len(value), value))
                return out
            stats.errors += 1
            return b"-ERR unknown command\r\n"

        server = EpollServer(ctx, port, handle, parse_line_request,
                             stats=stats)
        return (yield from server.serve())

    return main
