"""Shared infrastructure for the simulated server applications."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.kernel.uapi import (
    EPOLL_CTL_ADD,
    EPOLL_CTL_DEL,
    EPOLLHUP,
    EPOLLIN,
    SysError,
)


@dataclass
class ServerStats:
    """Counters every simulated server maintains."""

    requests: int = 0
    connections: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    errors: int = 0


@dataclass
class Connection:
    """Per-connection parse state for line/length-oriented protocols."""

    fd: int
    buffer: bytes = b""
    keepalive: bool = True


class EpollServer:
    """The classic single-threaded epoll accept/read/respond loop.

    Subclass-free by design: behaviour is injected through the
    ``handle_request`` coroutine so each server module stays a flat,
    readable description of its protocol.
    """

    def __init__(self, ctx, port: int, handle_request,
                 parse_request, stats: Optional[ServerStats] = None,
                 accept_burst: int = 16, recv_size: int = 4096,
                 conn_setup_cycles: int = 0) -> None:
        self.ctx = ctx
        self.port = port
        self.handle_request = handle_request
        self.parse_request = parse_request
        self.stats = stats or ServerStats()
        self.accept_burst = accept_burst
        self.recv_size = recv_size
        #: Per-connection server work (allocating the connection object,
        #: TLS-less handshake bookkeeping, prefork hand-off...) — the
        #: dominant cost of one-request-per-connection workloads.
        self.conn_setup_cycles = conn_setup_cycles
        self.connections: Dict[int, Connection] = {}
        self.running = True

    def serve(self):
        """Generator: run the accept loop forever (or until stopped)."""
        ctx = self.ctx
        listen_fd = yield from ctx.socket(site="srv_socket")
        yield from ctx.setsockopt(listen_fd, site="srv_setsockopt")
        yield from ctx.bind(listen_fd, (ctx.machine.name, self.port),
                            site="srv_bind")
        yield from ctx.listen(listen_fd, site="srv_listen")
        epfd = yield from ctx.epoll_create(site="srv_epoll_create")
        yield from ctx.epoll_ctl(epfd, EPOLL_CTL_ADD, listen_fd, EPOLLIN,
                                 site="srv_epoll_ctl")
        while self.running:
            events = yield from ctx.epoll_wait(epfd, site="srv_epoll_wait")
            for fd, mask in events:
                if fd == listen_fd:
                    yield from self._accept(epfd, listen_fd)
                elif mask & EPOLLHUP and fd not in self.connections:
                    continue
                else:
                    yield from self._serve_fd(epfd, fd)
        return self.stats

    def _accept(self, epfd: int, listen_fd: int):
        # One accept per readiness wake: level-triggered epoll re-reports
        # the listener while connections remain queued.
        ctx = self.ctx
        result = yield from ctx.syscall("accept", listen_fd,
                                        site="srv_accept")
        if result.retval < 0:
            return
        fd = result.retval
        self.connections[fd] = Connection(fd=fd)
        self.stats.connections += 1
        if self.conn_setup_cycles:
            yield from ctx.compute(self.conn_setup_cycles)
        yield from ctx.epoll_ctl(epfd, EPOLL_CTL_ADD, fd, EPOLLIN,
                                 site="srv_epoll_ctl")

    def _serve_fd(self, epfd: int, fd: int):
        ctx = self.ctx
        conn = self.connections.get(fd)
        if conn is None:
            return
        data = yield from ctx.recv(fd, self.recv_size, site="srv_read")
        if not data:
            yield from self._close(epfd, fd)
            return
        self.stats.bytes_in += len(data)
        conn.buffer += data
        while True:
            request, rest = self.parse_request(conn.buffer)
            if request is None:
                break
            conn.buffer = rest
            self.stats.requests += 1
            response = yield from self.handle_request(ctx, conn, request)
            if response:
                sent = yield from ctx.send(fd, response, site="srv_write")
                self.stats.bytes_out += max(0, sent)
            if not conn.keepalive:
                yield from self._close(epfd, fd)
                return

    def _close(self, epfd: int, fd: int):
        ctx = self.ctx
        try:
            yield from ctx.epoll_ctl(epfd, EPOLL_CTL_DEL, fd, 0,
                                     site="srv_epoll_ctl")
        except SysError:
            pass
        yield from ctx.close(fd, site="srv_close")
        self.connections.pop(fd, None)


def parse_line_request(buffer: bytes):
    """Protocol helper: one CRLF-terminated line per request."""
    idx = buffer.find(b"\r\n")
    if idx < 0:
        return None, buffer
    return buffer[:idx], buffer[idx + 2:]


def parse_http_request(buffer: bytes):
    """Protocol helper: a blank-line-terminated HTTP request head."""
    idx = buffer.find(b"\r\n\r\n")
    if idx < 0:
        return None, buffer
    return buffer[:idx], buffer[idx + 4:]


def parse_sized_request(buffer: bytes):
    """Protocol helper: 4-byte little-endian length prefix + body."""
    if len(buffer) < 4:
        return None, buffer
    length = int.from_bytes(buffer[:4], "little")
    if len(buffer) < 4 + length:
        return None, buffer
    return buffer[4:4 + length], buffer[4 + length:]


def http_response(body: bytes, status: str = "200 OK",
                  keepalive: bool = True) -> bytes:
    head = (f"HTTP/1.1 {status}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keepalive else 'close'}\r\n"
            "\r\n").encode()
    return head + body
