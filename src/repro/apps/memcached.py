"""Simulated Memcached: multi-threaded in-memory object cache.

Faithful to the real architecture: the main thread accepts connections
and hands them to worker threads round-robin, kicking each worker
through its notify pipe; every worker runs its own epoll loop.  Under
Varan this exercises the multi-threaded event ordering of §3.3.3.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict

from repro.apps.base import ServerStats, parse_line_request
from repro.kernel.uapi import (
    EPOLL_CTL_ADD,
    EPOLL_CTL_DEL,
    EPOLLIN,
    SysError,
)
from repro.runtime.image import SiteSpec, build_image

PARSE_CYCLES = 6000
GET_CYCLES = 12000
SET_CYCLES = 15000

MEMCACHED_SITES = [
    SiteSpec("srv_socket", "socket"),
    SiteSpec("srv_setsockopt", "setsockopt"),
    SiteSpec("srv_bind", "bind"),
    SiteSpec("srv_listen", "listen"),
    SiteSpec("srv_epoll_create", "epoll_create"),
    SiteSpec("srv_epoll_ctl", "epoll_ctl"),
    SiteSpec("srv_epoll_wait", "epoll_wait"),
    SiteSpec("srv_accept", "accept"),
    SiteSpec("srv_read", "read"),
    SiteSpec("srv_write", "write"),
    SiteSpec("srv_close", "close"),
    SiteSpec("srv_pipe", "pipe"),
    SiteSpec("srv_clone", "clone"),
]


def memcached_image():
    return build_image("memcached", MEMCACHED_SITES)


def make_memcached(port: int = 11211, stats: ServerStats = None,
                   workers: int = 2):
    """Build the memcached server generator (main + worker threads)."""
    stats = stats if stats is not None else ServerStats()
    cache: Dict[bytes, bytes] = {}

    def main(ctx):
        worker_queues: list = []
        notify_write_fds: list = []

        def make_worker(queue: Deque, notify_read_fd: int):
            def worker(wctx):
                epfd = yield from wctx.epoll_create(
                    site="srv_epoll_create")
                yield from wctx.epoll_ctl(epfd, EPOLL_CTL_ADD,
                                          notify_read_fd, EPOLLIN,
                                          site="srv_epoll_ctl")
                buffers: Dict[int, bytes] = {}
                while True:
                    events = yield from wctx.epoll_wait(
                        epfd, site="srv_epoll_wait")
                    for fd, _mask in events:
                        if fd == notify_read_fd:
                            # Exactly one connection per notify byte:
                            # draining the whole queue would make the
                            # epoll_ctl count depend on thread timing —
                            # user-space communication the NVX monitor
                            # cannot see (§6), and a replay divergence.
                            yield from wctx.read(fd, 1, site="srv_read")
                            if queue:
                                conn_fd = queue.popleft()
                                buffers[conn_fd] = b""
                                yield from wctx.epoll_ctl(
                                    epfd, EPOLL_CTL_ADD, conn_fd,
                                    EPOLLIN, site="srv_epoll_ctl")
                            continue
                        if fd not in buffers:
                            continue
                        data = yield from wctx.recv(fd, 4096,
                                                    site="srv_read")
                        if not data:
                            try:
                                yield from wctx.epoll_ctl(
                                    epfd, EPOLL_CTL_DEL, fd, 0,
                                    site="srv_epoll_ctl")
                            except SysError:
                                pass
                            yield from wctx.close(fd, site="srv_close")
                            buffers.pop(fd, None)
                            continue
                        stats.bytes_in += len(data)
                        buffers[fd] += data
                        while True:
                            request, rest = parse_line_request(
                                buffers[fd])
                            if request is None:
                                break
                            buffers[fd] = rest
                            response = yield from _handle(wctx, request)
                            stats.requests += 1
                            sent = yield from wctx.send(
                                fd, response, site="srv_write")
                            stats.bytes_out += max(0, sent)

            return worker

        def _handle(hctx, request: bytes):
            yield from hctx.compute(PARSE_CYCLES)
            parts = request.split(b" ")
            command = parts[0]
            if command == b"set" and len(parts) >= 3:
                yield from hctx.compute(SET_CYCLES)
                cache[parts[1]] = parts[2]
                return b"STORED\r\n"
            if command == b"get" and len(parts) >= 2:
                yield from hctx.compute(GET_CYCLES)
                value = cache.get(parts[1])
                if value is None:
                    return b"END\r\n"
                return (b"VALUE %s 0 %d\r\n%s\r\nEND\r\n"
                        % (parts[1], len(value), value))
            if command == b"delete" and len(parts) >= 2:
                yield from hctx.compute(GET_CYCLES)
                existed = cache.pop(parts[1], None) is not None
                return b"DELETED\r\n" if existed else b"NOT_FOUND\r\n"
            stats.errors += 1
            return b"ERROR\r\n"

        # Spawn workers, each with a notify pipe.
        for _ in range(workers):
            read_fd, write_fd = yield from ctx.pipe(site="srv_pipe")
            queue: Deque = deque()
            worker_queues.append(queue)
            notify_write_fds.append(write_fd)
            yield from ctx.spawn_thread(make_worker(queue, read_fd),
                                        site="srv_clone")

        # Main thread: accept and dispatch round-robin.
        listen_fd = yield from ctx.socket(site="srv_socket")
        yield from ctx.setsockopt(listen_fd, site="srv_setsockopt")
        yield from ctx.bind(listen_fd, (ctx.machine.name, port),
                            site="srv_bind")
        yield from ctx.listen(listen_fd, site="srv_listen")
        next_worker = 0
        while True:
            result = yield from ctx.syscall("accept", listen_fd,
                                            site="srv_accept")
            if result.retval < 0:
                continue
            stats.connections += 1
            worker_queues[next_worker].append(result.retval)
            yield from ctx.write(notify_write_fds[next_worker], b"!",
                                 site="srv_write")
            next_worker = (next_worker + 1) % workers

    return main
