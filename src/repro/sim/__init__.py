"""Discrete-event simulation substrate (virtual time, machines, sync)."""

from repro.sim.core import (
    TIMEOUT,
    Block,
    Compute,
    EventHandle,
    Process,
    Simulator,
    Sleep,
)
from repro.sim.machine import Machine
from repro.sim.network import Network
from repro.sim.sync import Barrier, Mutex, Semaphore, WaitQueue

__all__ = [
    "TIMEOUT",
    "Block",
    "Compute",
    "EventHandle",
    "Process",
    "Simulator",
    "Sleep",
    "Machine",
    "Network",
    "Barrier",
    "Mutex",
    "Semaphore",
    "WaitQueue",
]
