"""Synchronisation primitives built on the DES engine.

All primitives expose *generator* methods intended to be driven with
``yield from`` inside a simulated process.

Wait queues support *predicate-gated* wakeups: a waiter may park
together with a ``ready`` callable, and :meth:`WaitQueue.notify_ready`
wakes only the waiters whose predicate holds — sleepers that could not
make progress are left parked instead of being scheduled, run, and
re-parked.  This is what keeps the ring buffer's publish/advance paths
from waking three whole queues per event.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.errors import SimulationError
from repro.sim.core import TIMEOUT, Block, Process, Simulator


class _Waiter:
    """One parked process plus its (optional) progress predicate."""

    __slots__ = ("proc", "ready")

    def __init__(self, proc: Process,
                 ready: Optional[Callable[[], bool]]) -> None:
        self.proc = proc
        self.ready = ready


class WaitQueue:
    """FIFO queue of processes waiting for a notification.

    ``name`` is optional observability labelling: named queues emit a
    ``park`` instant (category ``wait``) to the simulator's tracer when
    a process parks on them, so ring/coordinator waits are attributable
    in exported timelines.  Unnamed queues never touch the tracer.
    """

    __slots__ = ("sim", "_waiters", "name")

    def __init__(self, sim: Simulator, name: Optional[str] = None) -> None:
        self.sim = sim
        self._waiters: Deque[_Waiter] = deque()
        self.name = name

    def __len__(self) -> int:
        return len(self._waiters)

    def wait(self, spin: bool = False, timeout_ps: Optional[int] = None,
             ready: Optional[Callable[[], bool]] = None):
        """Generator: park the calling process until notified.

        ``ready`` is the waiter's progress predicate, consulted by
        :meth:`notify_ready`; waiters parked without one are woken by
        every notification, as before.

        Returns the value passed to :meth:`notify`, or :data:`TIMEOUT`.
        """
        me = self.sim.current_process
        if me is None:
            raise SimulationError("wait() called outside a process")
        if self.name is not None:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant(self.sim.now, me.machine.name, me.name,
                               "wait", "park", (("queue", self.name),))
        entry = _Waiter(me, ready)
        self._waiters.append(entry)
        value = yield Block(spin=spin, timeout_ps=timeout_ps)
        if value is TIMEOUT:
            try:
                self._waiters.remove(entry)
            except ValueError:
                pass
        return value

    def notify(self, value: Any = None) -> bool:
        """Wake the longest-waiting process. Returns True if one woke."""
        waiters = self._waiters
        while waiters:
            entry = waiters.popleft()
            if entry.proc.wake(value):
                return True
        return False

    def notify_all(self, value: Any = None) -> int:
        """Wake every *currently parked* waiter.

        Snapshot semantics: processes that enqueue themselves while the
        wakeups run (e.g. a spinner that re-parks immediately) are not
        woken again by this call — that would livelock.
        """
        waiters = list(self._waiters)
        self._waiters.clear()
        woken = 0
        for entry in waiters:
            if entry.proc.wake(value):
                woken += 1
        return woken

    def notify_ready(self, value: Any = None) -> int:
        """Wake every parked waiter whose predicate currently holds.

        Waiters without a predicate are treated as always-ready.  The
        others stay parked — they are *not* scheduled at all, which is
        the point: a notification they cannot act on would only burn a
        wakeup, a core grant and a re-park.  Snapshot semantics match
        :meth:`notify_all`.
        """
        waiters = self._waiters
        if not waiters:
            return 0
        kept: Deque[_Waiter] = deque()
        woken = 0
        for entry in waiters:
            ready = entry.ready
            if ready is None or ready():
                if entry.proc.wake(value):
                    woken += 1
                # else: stale entry (already timed out) — drop it
            else:
                kept.append(entry)
        self._waiters = kept
        return woken

    def discard(self, proc: Process) -> None:
        """Remove a process from the queue (after interrupt)."""
        for entry in self._waiters:
            if entry.proc is proc:
                self._waiters.remove(entry)
                return


class Mutex:
    """FIFO mutual exclusion, the serialisation primitive for the
    centralized lockstep monitor baseline."""

    __slots__ = ("sim", "_locked", "_queue", "owner")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._locked = False
        self._queue = WaitQueue(sim)
        self.owner: Optional[Process] = None

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self):
        """Generator: acquire the lock (FIFO order)."""
        me = self.sim.current_process
        if self._locked:
            yield from self._queue.wait()
        else:
            self._locked = True
        self.owner = me
        return None

    def release(self) -> None:
        if not self._locked:
            raise SimulationError("release of an unlocked Mutex")
        self.owner = None
        if not self._queue.notify():
            self._locked = False


class Semaphore:
    """Counting semaphore with FIFO wakeups."""

    __slots__ = ("sim", "_value", "_queue")

    def __init__(self, sim: Simulator, value: int = 1) -> None:
        if value < 0:
            raise SimulationError("semaphore value must be non-negative")
        self.sim = sim
        self._value = value
        self._queue = WaitQueue(sim)

    @property
    def value(self) -> int:
        return self._value

    def acquire(self):
        if self._value > 0:
            self._value -= 1
        else:
            yield from self._queue.wait()
        return None

    def release(self) -> None:
        if not self._queue.notify():
            self._value += 1


class Barrier:
    """All-or-nothing rendezvous for ``parties`` processes.

    The lockstep monitor uses one to force every version to reach the
    same syscall before any proceeds.
    """

    __slots__ = ("sim", "parties", "_count", "_queue", "generation")

    def __init__(self, sim: Simulator, parties: int) -> None:
        if parties < 1:
            raise SimulationError("barrier needs at least one party")
        self.sim = sim
        self.parties = parties
        self._count = 0
        self._queue = WaitQueue(sim)
        self.generation = 0

    def arrive(self):
        """Generator: block until all parties have arrived."""
        self._count += 1
        if self._count >= self.parties:
            self._count = 0
            self.generation += 1
            self._queue.notify_all()
            return True  # the releasing party
        yield from self._queue.wait()
        return False

    def reset_parties(self, parties: int) -> None:
        """Shrink/grow the barrier (used when a version crashes)."""
        if parties < 1:
            raise SimulationError("barrier needs at least one party")
        self.parties = parties
        if self._count >= self.parties:
            self._count = 0
            self.generation += 1
            self._queue.notify_all()
