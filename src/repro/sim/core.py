"""Deterministic discrete-event simulator.

The whole reproduction runs on top of this engine.  Simulated processes
are Python generators that yield *commands* — :class:`Compute`,
:class:`Sleep` or :class:`Block` — and the engine advances a global
virtual clock measured in integer picoseconds.  Runs are fully
deterministic: the event heap is ordered by ``(time, sequence)`` and no
wall-clock source is ever consulted.

CPU cores are modelled explicitly.  A process occupies one core of its
:class:`~repro.sim.machine.Machine` whenever it is runnable; blocking
(``Block(spin=False)``) or sleeping releases the core, while spinning
(``Block(spin=True)``) keeps it busy — which is how busy-waiting followers
consume hardware threads, the reason the paper stops at six followers on
an eight-thread machine.

Hot-path design (this is the substrate every experiment pays for):

* Heap entries are plain ``(time, seq, owner, token, fn, arg)`` tuples.
  ``seq`` is unique, so heap comparisons never fall past the first two
  integers and stay at C speed.
* Cancellation is *lazy*: nothing is ever removed from the heap.  Every
  cancellable entry carries its ``owner`` (a :class:`Process` or
  :class:`EventHandle`) and the owner's wake ``token`` captured at
  schedule time; bumping the owner's token invalidates the entry, and
  the run loop discards stale entries at pop time — before advancing
  the clock, exactly like the old explicit-cancel path did.
* Callbacks are pre-bound methods taking one argument, so scheduling a
  compute/sleep/timeout allocates one tuple and nothing else (no
  closures, no handle objects).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional

from repro.errors import DeadlockError, ProcessKilled, SimulationError
from repro.obs import trace as _obs_trace

#: Sentinel delivered to a ``Block`` that timed out.
TIMEOUT = object()


class Compute:
    """Occupy a core for ``ps`` picoseconds of computation.

    ``preemptible`` computations give up the core at completion when other
    processes are queued for it (cooperative round-robin), which
    approximates processor sharing without a preemption quantum.
    """

    __slots__ = ("ps", "preemptible")

    def __init__(self, ps: int, preemptible: bool = True) -> None:
        self.ps = ps
        self.preemptible = preemptible

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Compute(ps={self.ps}, preemptible={self.preemptible})"


class Sleep:
    """Release the core and resume after ``ps`` picoseconds."""

    __slots__ = ("ps",)

    def __init__(self, ps: int) -> None:
        self.ps = ps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sleep(ps={self.ps})"


class Block:
    """Suspend until another process calls :meth:`Process.wake`.

    With ``spin=True`` the process keeps its core while waiting (busy
    waiting); otherwise the core is released.  An optional timeout resumes
    the process with the :data:`TIMEOUT` sentinel.
    """

    __slots__ = ("spin", "timeout_ps")

    def __init__(self, spin: bool = False,
                 timeout_ps: Optional[int] = None) -> None:
        self.spin = spin
        self.timeout_ps = timeout_ps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Block(spin={self.spin}, timeout_ps={self.timeout_ps})"


class EventHandle:
    """Cancellable handle for a callback scheduled via :meth:`Simulator.schedule`.

    Cancellation is lazy: the heap entry stays put and is discarded at
    pop time when its captured token no longer matches ``_wake_token``.
    """

    __slots__ = ("_wake_token", "_shard_index")

    def __init__(self) -> None:
        self._wake_token = 0
        #: Which event shard holds this handle's entry.  Always 0 under
        #: the single-heap engine; the sharded engine assigns it at
        #: schedule time so cancellation stays O(1)-lazy per shard.
        self._shard_index = 0

    @property
    def cancelled(self) -> bool:
        return self._wake_token != 0

    def cancel(self) -> None:
        self._wake_token = 1


def _call0(fn: Callable[[], None]) -> None:
    """Adapter: dispatch a zero-argument public callback."""
    fn()


class Simulator:
    """Global event loop with a picosecond virtual clock."""

    __slots__ = ("_heap", "_seq", "_now", "_current", "processes",
                 "events_processed", "tracer")

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._seq = 0
        self._now = 0
        self._current: Optional["Process"] = None
        self.processes: List["Process"] = []
        #: Non-stale heap entries dispatched so far (perf-harness metric).
        self.events_processed = 0
        #: Observability hook (repro.obs).  Defaults to the process-wide
        #: active tracer (None outside `python -m repro trace` / tests),
        #: so every hot-path emission site is one attribute load plus an
        #: is-None check when tracing is off.
        self.tracer = _obs_trace.active()

    @property
    def now(self) -> int:
        """Current virtual time in picoseconds."""
        return self._now

    @property
    def current_process(self) -> Optional["Process"]:
        """The process whose generator is executing right now."""
        return self._current

    def _register_machine(self, machine) -> None:
        """Assign the machine's event shard.  The single-heap engine has
        exactly one shard; :class:`repro.sim.shard.ShardedSimulator`
        overrides this to spread machines across shards."""
        machine._shard_index = 0

    def schedule_on(self, machine, delay_ps: int,
                    fn: Callable[[], None]) -> EventHandle:
        """Like :meth:`schedule`, but hints which machine the callback
        belongs to.  The single-heap engine ignores the hint; the sharded
        engine routes the entry to the machine's shard (this is how
        cross-machine network deliveries become cross-shard edges)."""
        return self.schedule(delay_ps, fn)

    def schedule(self, delay_ps: int, fn: Callable[[], None]) -> EventHandle:
        """Run ``fn`` after ``delay_ps`` picoseconds of virtual time."""
        if delay_ps < 0:
            raise SimulationError(f"negative delay: {delay_ps}")
        handle = EventHandle()
        self._seq += 1
        heapq.heappush(
            self._heap, (self._now + delay_ps, self._seq, handle, 0,
                         _call0, fn))
        return handle

    def _post(self, delay_ps: int, owner, token: int,
              fn: Callable[[Any], None], arg: Any) -> None:
        """Internal allocation-light schedule: one tuple, no handle.

        ``owner`` is any object with a ``_wake_token`` int (a Process or
        an EventHandle) or None for events that are never cancelled; the
        entry is stale — skipped without advancing the clock — once the
        owner's token moves past the captured ``token``.
        """
        if delay_ps < 0:
            raise SimulationError(f"negative delay: {delay_ps}")
        self._seq += 1
        heapq.heappush(self._heap,
                       (self._now + delay_ps, self._seq, owner, token,
                        fn, arg))

    def run(self, until_ps: Optional[int] = None,
            max_events: int = 500_000_000) -> None:
        """Drain the event heap, optionally stopping at ``until_ps``.

        Raises :class:`DeadlockError` if events run out while some process
        is still blocked — unless every remaining process is a daemon.
        """
        heap = self._heap
        heappop = heapq.heappop
        events = 0
        while heap:
            entry = heappop(heap)
            owner = entry[2]
            if owner is not None and owner._wake_token != entry[3]:
                continue  # lazily-cancelled: clock must not advance
            when = entry[0]
            if until_ps is not None and when > until_ps:
                self._now = until_ps
                heapq.heappush(heap, entry)
                self.events_processed += events
                return
            self._now = when
            entry[4](entry[5])
            events += 1
            if events >= max_events:
                self.events_processed += events
                raise SimulationError(f"exceeded max_events={max_events}")
        self.events_processed += events
        stuck = [p for p in self.processes
                 if not p.done and not p.daemon and p.state != NEW]
        if stuck:
            names = ", ".join(p.name for p in stuck[:8])
            raise DeadlockError(f"no events left but processes blocked: {names}")

    def run_until_done(self, procs, **kwargs) -> None:
        """Run until every process in ``procs`` has finished."""
        self.run(**kwargs)
        missing = [p.name for p in procs if not p.done]
        if missing:
            raise DeadlockError(f"processes never finished: {missing}")


# Process lifecycle states.
NEW = "new"
READY = "ready"  # waiting for a core
RUNNING = "running"  # holds a core, computing
SPINNING = "spinning"  # holds a core, busy-waiting
BLOCKED = "blocked"  # no core, waiting for wake()
SLEEPING = "sleeping"  # no core, timed sleep
DONE = "done"


class Process:
    """A simulated thread of execution hosted on a machine.

    ``gen`` is a generator yielding :class:`Compute`, :class:`Sleep` or
    :class:`Block` commands.  Values sent into the generator are the wake
    values passed to :meth:`wake` (or :data:`TIMEOUT`).
    """

    __slots__ = ("machine", "sim", "gen", "name", "daemon", "state",
                 "result", "exception", "cpu_ps", "_done_callbacks",
                 "_shard_index",
                 "_wake_token", "_resume_value", "_resume_throw",
                 "_cb_after_compute", "_cb_after_sleep", "_cb_on_timeout",
                 "_cb_spin_resume", "_cb_granted_core", "__weakref__")

    def __init__(self, machine, gen: Generator, name: str = "proc",
                 daemon: bool = False) -> None:
        self.machine = machine
        self.sim: Simulator = machine.sim
        #: A process's events always live in its machine's shard, so the
        #: sharded engine's ``_post`` routes by one attribute load.
        self._shard_index = machine._shard_index
        self.gen = gen
        self.name = name
        self.daemon = daemon
        self.state = NEW
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self.cpu_ps = 0  # accumulated compute time, for utilisation stats
        self._done_callbacks: List[Callable[["Process"], None]] = []
        #: Monotonic staleness token: every wake/timeout/interrupt bumps
        #: it, lazily invalidating all outstanding heap entries.
        self._wake_token = 0
        self._resume_value: Any = None
        self._resume_throw: Optional[BaseException] = None
        # Pre-bound callbacks: binding once here keeps the per-event
        # schedule path free of bound-method allocation.
        self._cb_after_compute = self._after_compute
        self._cb_after_sleep = self._after_sleep
        self._cb_on_timeout = self._on_timeout
        self._cb_spin_resume = self._spin_resume
        self._cb_granted_core = self._granted_core
        self.sim.processes.append(self)

    # -- public API ---------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state == DONE

    @property
    def failed(self) -> bool:
        return self.exception is not None

    def start(self) -> "Process":
        """Queue the process for its first core grant."""
        if self.state != NEW:
            raise SimulationError(f"{self.name}: started twice")
        self.state = READY
        self.machine.request_core(self)
        return self

    def on_done(self, fn: Callable[["Process"], None]) -> None:
        """Register a callback fired (once) when the process finishes."""
        if self.state == DONE:
            fn(self)
        else:
            self._done_callbacks.append(fn)

    def wake(self, value: Any = None) -> bool:
        """Resume a process parked on a :class:`Block`.

        Returns ``False`` when the process was not actually blocked (e.g.
        it already timed out), in which case the caller should pick a
        different waiter.
        """
        state = self.state
        if state == SPINNING:
            self._wake_token += 1  # invalidates the pending timeout
            # Resume on a fresh event: waking synchronously would let the
            # spinner's continuation run inside the waker's stack (and,
            # if it re-parks on the same queue, livelock a notify_all).
            self.state = RUNNING
            self.sim._post(0, self, self._wake_token,
                           self._cb_spin_resume, value)
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant(self.sim._now, self.machine.name,
                               self.name, "wait", "wake",
                               (("was", "spinning"),))
            return True
        if state == BLOCKED:
            self._wake_token += 1  # invalidates the pending timeout
            self.state = READY
            self._resume_value = value
            self.machine.request_core(self)
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant(self.sim._now, self.machine.name,
                               self.name, "wait", "wake",
                               (("was", "blocked"),))
            return True
        return False

    def interrupt(self, exc: BaseException) -> bool:
        """Throw ``exc`` into the process at its current yield point.

        Works in every non-terminal state; mid-compute interrupts cancel
        the pending completion and deliver immediately.
        """
        if self.state == DONE:
            return False
        if self.state == NEW:
            self.state = DONE
            self.exception = exc
            self.gen.close()
            self._fire_done()
            return True
        # One bump lazily cancels every outstanding completion/timeout.
        self._wake_token += 1
        if self.state in (RUNNING, SPINNING):
            self.state = RUNNING
            self._step(None, throw=exc)
        else:  # BLOCKED, SLEEPING or READY: need a core to run cleanup
            self._resume_throw = exc
            if self.state != READY:
                self.state = READY
                self.machine.request_core(self)
        return True

    def kill(self) -> None:
        """Forcibly terminate the process (delivers ProcessKilled)."""
        self.interrupt(ProcessKilled(self.name))

    def join(self):
        """Generator: block the *calling* process until this one is done."""
        if not self.done:
            waiter = self.sim.current_process
            if waiter is None:
                raise SimulationError("join() outside a process")
            self.on_done(lambda _p: waiter.wake(None))
            yield Block()
        if self.exception is not None and not isinstance(
                self.exception, ProcessKilled):
            raise SimulationError(
                f"joined process {self.name} failed: {self.exception!r}"
            ) from self.exception
        return self.result

    # -- engine internals ----------------------------------------------

    def _granted_core(self, _arg: Any = None) -> None:
        """Called by the machine when this process receives a core."""
        self.state = RUNNING
        throw, self._resume_throw = self._resume_throw, None
        value, self._resume_value = self._resume_value, None
        self._step(value, throw=throw)

    def _step(self, value: Any, throw: Optional[BaseException] = None) -> None:
        sim = self.sim
        prev = sim._current
        sim._current = self
        try:
            if throw is not None:
                cmd = self.gen.throw(throw)
            else:
                cmd = self.gen.send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except ProcessKilled as exc:
            self._finish(exception=exc)
            return
        except BaseException as exc:  # noqa: BLE001 - surfaced via .exception
            self._finish(exception=exc)
            return
        finally:
            sim._current = prev
        self._dispatch(cmd)

    def _dispatch(self, cmd: Any) -> None:
        cls = cmd.__class__
        if cls is Compute:
            ps = cmd.ps
            self.cpu_ps += ps
            self.sim._post(ps, self, self._wake_token,
                           self._cb_after_compute, cmd.preemptible)
        elif cls is Block:
            if cmd.spin:
                self.state = SPINNING
            else:
                self.state = BLOCKED
                self.machine.release_core(self)
            if cmd.timeout_ps is not None:
                self.sim._post(cmd.timeout_ps, self, self._wake_token,
                               self._cb_on_timeout, None)
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant(self.sim._now, self.machine.name,
                               self.name, "wait", "block",
                               (("spin", cmd.spin),))
        elif cls is Sleep:
            self.state = SLEEPING
            self.machine.release_core(self)
            self.sim._post(cmd.ps, self, self._wake_token,
                           self._cb_after_sleep, None)
        elif isinstance(cmd, (Compute, Sleep, Block)):  # subclassed command
            self._dispatch_slow(cmd)
        else:
            self._finish(exception=SimulationError(
                f"{self.name} yielded unknown command {cmd!r}"))

    def _dispatch_slow(self, cmd: Any) -> None:
        """Subclass-tolerant fallback for the exact-type fast path."""
        if isinstance(cmd, Compute):
            self.cpu_ps += cmd.ps
            self.sim._post(cmd.ps, self, self._wake_token,
                           self._cb_after_compute, cmd.preemptible)
        elif isinstance(cmd, Block):
            if cmd.spin:
                self.state = SPINNING
            else:
                self.state = BLOCKED
                self.machine.release_core(self)
            if cmd.timeout_ps is not None:
                self.sim._post(cmd.timeout_ps, self, self._wake_token,
                               self._cb_on_timeout, None)
        else:
            self.state = SLEEPING
            self.machine.release_core(self)
            self.sim._post(cmd.ps, self, self._wake_token,
                           self._cb_after_sleep, None)

    def _spin_resume(self, value: Any) -> None:
        if self.state != RUNNING:
            return
        self._step(value)

    def _after_compute(self, preemptible: bool) -> None:
        if self.state != RUNNING:
            return
        if preemptible and self.machine.has_core_waiters():
            # Cooperative round-robin: give the core up and requeue.
            self.state = READY
            self.machine.release_core(self)
            self.machine.request_core(self)
        else:
            self._step(None)

    def _after_sleep(self, _arg: Any = None) -> None:
        if self.state != SLEEPING:
            return
        self.state = READY
        self.machine.request_core(self)

    def _on_timeout(self, _arg: Any = None) -> None:
        state = self.state
        if state == SPINNING:
            self._wake_token += 1
            self.state = RUNNING
            self._step(TIMEOUT)
        elif state == BLOCKED:
            self._wake_token += 1
            self.state = READY
            self._resume_value = TIMEOUT
            self.machine.request_core(self)

    def _finish(self, result: Any = None,
                exception: Optional[BaseException] = None) -> None:
        had_core = self.state in (RUNNING, SPINNING)
        self.state = DONE
        self.result = result
        self.exception = exception
        self._wake_token += 1  # lazily cancel any outstanding timeout
        if had_core:
            self.machine.release_core(self)
        self._fire_done()

    def _fire_done(self) -> None:
        callbacks, self._done_callbacks = self._done_callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name} state={self.state} t={self.sim.now}>"
