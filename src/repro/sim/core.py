"""Deterministic discrete-event simulator.

The whole reproduction runs on top of this engine.  Simulated processes
are Python generators that yield *commands* — :class:`Compute`,
:class:`Sleep` or :class:`Block` — and the engine advances a global
virtual clock measured in integer picoseconds.  Runs are fully
deterministic: the event heap is ordered by ``(time, sequence)`` and no
wall-clock source is ever consulted.

CPU cores are modelled explicitly.  A process occupies one core of its
:class:`~repro.sim.machine.Machine` whenever it is runnable; blocking
(``Block(spin=False)``) or sleeping releases the core, while spinning
(``Block(spin=True)``) keeps it busy — which is how busy-waiting followers
consume hardware threads, the reason the paper stops at six followers on
an eight-thread machine.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional

from repro.errors import DeadlockError, ProcessKilled, SimulationError

#: Sentinel delivered to a ``Block`` that timed out.
TIMEOUT = object()


@dataclass(frozen=True)
class Compute:
    """Occupy a core for ``ps`` picoseconds of computation.

    ``preemptible`` computations give up the core at completion when other
    processes are queued for it (cooperative round-robin), which
    approximates processor sharing without a preemption quantum.
    """

    ps: int
    preemptible: bool = True


@dataclass(frozen=True)
class Sleep:
    """Release the core and resume after ``ps`` picoseconds."""

    ps: int


@dataclass(frozen=True)
class Block:
    """Suspend until another process calls :meth:`Process.wake`.

    With ``spin=True`` the process keeps its core while waiting (busy
    waiting); otherwise the core is released.  An optional timeout resumes
    the process with the :data:`TIMEOUT` sentinel.
    """

    spin: bool = False
    timeout_ps: Optional[int] = None


class EventHandle:
    """Cancellable handle for a scheduled callback."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """Global event loop with a picosecond virtual clock."""

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._seq = 0
        self._now = 0
        self._current: Optional["Process"] = None
        self.processes: List["Process"] = []

    @property
    def now(self) -> int:
        """Current virtual time in picoseconds."""
        return self._now

    @property
    def current_process(self) -> Optional["Process"]:
        """The process whose generator is executing right now."""
        return self._current

    def schedule(self, delay_ps: int, fn: Callable[[], None]) -> EventHandle:
        """Run ``fn`` after ``delay_ps`` picoseconds of virtual time."""
        if delay_ps < 0:
            raise SimulationError(f"negative delay: {delay_ps}")
        handle = EventHandle()
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay_ps, self._seq, handle, fn))
        return handle

    def run(self, until_ps: Optional[int] = None, max_events: int = 500_000_000) -> None:
        """Drain the event heap, optionally stopping at ``until_ps``.

        Raises :class:`DeadlockError` if events run out while some process
        is still blocked — unless every remaining process is a daemon.
        """
        events = 0
        while self._heap:
            when, _seq, handle, fn = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            if until_ps is not None and when > until_ps:
                self._now = until_ps
                heapq.heappush(self._heap, (when, _seq, handle, fn))
                return
            self._now = when
            fn()
            events += 1
            if events >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
        stuck = [p for p in self.processes
                 if not p.done and not p.daemon and p.state != NEW]
        if stuck:
            names = ", ".join(p.name for p in stuck[:8])
            raise DeadlockError(f"no events left but processes blocked: {names}")

    def run_until_done(self, procs, **kwargs) -> None:
        """Run until every process in ``procs`` has finished."""
        self.run(**kwargs)
        missing = [p.name for p in procs if not p.done]
        if missing:
            raise DeadlockError(f"processes never finished: {missing}")


# Process lifecycle states.
NEW = "new"
READY = "ready"  # waiting for a core
RUNNING = "running"  # holds a core, computing
SPINNING = "spinning"  # holds a core, busy-waiting
BLOCKED = "blocked"  # no core, waiting for wake()
SLEEPING = "sleeping"  # no core, timed sleep
DONE = "done"


class Process:
    """A simulated thread of execution hosted on a machine.

    ``gen`` is a generator yielding :class:`Compute`, :class:`Sleep` or
    :class:`Block` commands.  Values sent into the generator are the wake
    values passed to :meth:`wake` (or :data:`TIMEOUT`).
    """

    def __init__(self, machine, gen: Generator, name: str = "proc",
                 daemon: bool = False) -> None:
        self.machine = machine
        self.sim: Simulator = machine.sim
        self.gen = gen
        self.name = name
        self.daemon = daemon
        self.state = NEW
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self.cpu_ps = 0  # accumulated compute time, for utilisation stats
        self._done_callbacks: List[Callable[["Process"], None]] = []
        self._wake_token = 0
        self._timeout_handle: Optional[EventHandle] = None
        self._pending_handle: Optional[EventHandle] = None
        self.sim.processes.append(self)

    # -- public API ---------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state == DONE

    @property
    def failed(self) -> bool:
        return self.exception is not None

    def start(self) -> "Process":
        """Queue the process for its first core grant."""
        if self.state != NEW:
            raise SimulationError(f"{self.name}: started twice")
        self.state = READY
        self.machine.request_core(self)
        return self

    def on_done(self, fn: Callable[["Process"], None]) -> None:
        """Register a callback fired (once) when the process finishes."""
        if self.done:
            fn(self)
        else:
            self._done_callbacks.append(fn)

    def wake(self, value: Any = None) -> bool:
        """Resume a process parked on a :class:`Block`.

        Returns ``False`` when the process was not actually blocked (e.g.
        it already timed out), in which case the caller should pick a
        different waiter.
        """
        if self.state == SPINNING:
            self._cancel_timeout()
            self._wake_token += 1
            # Resume on a fresh event: waking synchronously would let the
            # spinner's continuation run inside the waker's stack (and,
            # if it re-parks on the same queue, livelock a notify_all).
            self.state = RUNNING
            token = self._wake_token
            self._pending_handle = self.sim.schedule(
                0, lambda: self._spin_resume(token, value))
            return True
        if self.state == BLOCKED:
            self._cancel_timeout()
            self._wake_token += 1
            self.state = READY
            self._resume_value = value
            self.machine.request_core(self)
            return True
        return False

    def interrupt(self, exc: BaseException) -> bool:
        """Throw ``exc`` into the process at its current yield point.

        Works in every non-terminal state; mid-compute interrupts cancel
        the pending completion and deliver immediately.
        """
        if self.state == DONE:
            return False
        if self.state == NEW:
            self.state = DONE
            self.exception = exc
            self.gen.close()
            self._fire_done()
            return True
        self._cancel_timeout()
        self._wake_token += 1
        if self._pending_handle is not None:
            self._pending_handle.cancel()
            self._pending_handle = None
        if self.state in (RUNNING, SPINNING):
            self.state = RUNNING
            self._step(None, throw=exc)
        else:  # BLOCKED, SLEEPING or READY: need a core to run cleanup
            self._resume_throw = exc
            if self.state != READY:
                self.state = READY
                self.machine.request_core(self)
        return True

    def kill(self) -> None:
        """Forcibly terminate the process (delivers ProcessKilled)."""
        self.interrupt(ProcessKilled(self.name))

    def join(self):
        """Generator: block the *calling* process until this one is done."""
        if not self.done:
            waiter = self.sim.current_process
            if waiter is None:
                raise SimulationError("join() outside a process")
            self.on_done(lambda _p: waiter.wake(None))
            yield Block()
        if self.exception is not None and not isinstance(
                self.exception, ProcessKilled):
            raise SimulationError(
                f"joined process {self.name} failed: {self.exception!r}"
            ) from self.exception
        return self.result

    # -- engine internals ----------------------------------------------

    _resume_value: Any = None
    _resume_throw: Optional[BaseException] = None

    def _granted_core(self) -> None:
        """Called by the machine when this process receives a core."""
        self.state = RUNNING
        throw, self._resume_throw = self._resume_throw, None
        value, self._resume_value = self._resume_value, None
        self._step(value, throw=throw)

    def _step(self, value: Any, throw: Optional[BaseException] = None) -> None:
        prev = self.sim._current
        self.sim._current = self
        try:
            if throw is not None:
                cmd = self.gen.throw(throw)
            else:
                cmd = self.gen.send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except ProcessKilled as exc:
            self._finish(exception=exc)
            return
        except BaseException as exc:  # noqa: BLE001 - surfaced via .exception
            self._finish(exception=exc)
            return
        finally:
            self.sim._current = prev
        self._dispatch(cmd)

    def _dispatch(self, cmd: Any) -> None:
        if isinstance(cmd, Compute):
            self.cpu_ps += cmd.ps
            token = self._wake_token
            handle = self.sim.schedule(
                cmd.ps, lambda: self._after_compute(token, cmd.preemptible))
            self._pending_handle = handle
        elif isinstance(cmd, Sleep):
            self.state = SLEEPING
            self.machine.release_core(self)
            token = self._wake_token
            self._pending_handle = self.sim.schedule(
                cmd.ps, lambda: self._after_sleep(token))
        elif isinstance(cmd, Block):
            if cmd.spin:
                self.state = SPINNING
            else:
                self.state = BLOCKED
                self.machine.release_core(self)
            if cmd.timeout_ps is not None:
                token = self._wake_token
                self._timeout_handle = self.sim.schedule(
                    cmd.timeout_ps, lambda: self._on_timeout(token))
        else:
            self._finish(exception=SimulationError(
                f"{self.name} yielded unknown command {cmd!r}"))

    def _spin_resume(self, token: int, value: Any) -> None:
        if token != self._wake_token or self.state != RUNNING:
            return
        self._pending_handle = None
        self._step(value)

    def _after_compute(self, token: int, preemptible: bool) -> None:
        if token != self._wake_token or self.state != RUNNING:
            return
        self._pending_handle = None
        if preemptible and self.machine.has_core_waiters():
            # Cooperative round-robin: give the core up and requeue.
            self.state = READY
            self.machine.release_core(self)
            self.machine.request_core(self)
        else:
            self._step(None)

    def _after_sleep(self, token: int) -> None:
        if token != self._wake_token or self.state != SLEEPING:
            return
        self._pending_handle = None
        self.state = READY
        self.machine.request_core(self)

    def _on_timeout(self, token: int) -> None:
        if token != self._wake_token:
            return
        self._timeout_handle = None
        if self.state == SPINNING:
            self._wake_token += 1
            self.state = RUNNING
            self._step(TIMEOUT)
        elif self.state == BLOCKED:
            self._wake_token += 1
            self.state = READY
            self._resume_value = TIMEOUT
            self.machine.request_core(self)

    def _cancel_timeout(self) -> None:
        if self._timeout_handle is not None:
            self._timeout_handle.cancel()
            self._timeout_handle = None

    def _finish(self, result: Any = None,
                exception: Optional[BaseException] = None) -> None:
        had_core = self.state in (RUNNING, SPINNING)
        self.state = DONE
        self.result = result
        self.exception = exception
        self._cancel_timeout()
        if had_core:
            self.machine.release_core(self)
        self._fire_done()

    def _fire_done(self) -> None:
        callbacks, self._done_callbacks = self._done_callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name} state={self.state} t={self.sim.now}>"
