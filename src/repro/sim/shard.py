"""Sharded deterministic DES engine: per-machine-group event heaps.

The single-heap :class:`~repro.sim.core.Simulator` keeps every pending
event in one ``heapq``.  At load-generation scale — tens of thousands of
concurrent client processes, each with a long-lived request watchdog —
that heap holds hundreds of thousands of entries, most of them already
lazily cancelled, and every push/pop pays ``O(log n)`` over the whole
cold structure while stale entries linger until their (far-future)
expiry finally surfaces them.

:class:`ShardedSimulator` partitions the pending-event set by *machine
group*: every :class:`~repro.sim.machine.Machine` is assigned to a shard
at construction (round-robin in creation order by default, or via an
explicit ``group_of`` policy), and every event is filed in the shard of
the machine it belongs to.  Three structural wins follow:

* **Small hot heaps.**  Each shard's heap holds only its own machines'
  events, so push/pop touch a cache-resident structure.
* **An O(1) immediate lane.**  Delay-0 events (core grants, spin
  resumes) are appended to a per-shard deque instead of the heap.  The
  clock never runs backwards during a drain, so delay-0 entries arrive
  in nondecreasing ``(time, seq)`` order and the deque head is always
  the lane's minimum — a priority queue with O(1) push and pop.  (The
  one way time can rewind — ``run(until_ps=...)`` with an *earlier*
  deadline than a previous run — is detected per push and diverted to
  the heap.)
* **Amortised stale compaction.**  Wake tokens only ever increase, so a
  stale entry stays stale forever and removing it early is observably
  identical to the single-heap engine skipping it at pop time (the skip
  advances no clock and runs no callback).  Each shard counts heap
  pushes and, once they exceed the heap's size, filters stale entries
  out and re-heapifies in place — amortised O(1) per push, and the
  standing population of cancelled request watchdogs never bloats the
  heap the way it bloats the single global one.

Determinism — why results are bit-identical to the single heap
--------------------------------------------------------------

The coordinator never *speculates*.  Both engines dispatch pending
events in exactly ascending ``(time, seq)`` order, where ``seq`` is a
single global counter assigned at schedule time; the sharded engine
merely stores the pending set K ways and performs an exact K-way merge:

* **Selection.**  One pass over the shard heads finds the globally
  minimal key *and* the runner-up (the *frontier*).  Keys are unique
  (``seq`` is), so the minimum is unambiguous.
* **Drain ("runs independently up to the next cross-shard horizon").**
  The winning shard dispatches its own events, in local order, while its
  head key stays below the frontier — without rescanning the other
  shards.  Any event it schedules lands either in its own structures
  (picked up by the local peek) or in another shard, in which case
  ``_post`` tightens the frontier so the drain stops before the foreign
  event's turn.  The frontier is maintained conservatively (it may drop
  below the true second-minimum, never above), so the drain can stop
  early and reselect, but can never dispatch an event out of global
  order.
* **Identical side effects.**  Since the dispatch sequence is identical,
  the ``seq`` values assigned to newly scheduled events are identical,
  the clock visits the same instants, and every callback observes the
  same state — by induction the whole run, including traces, journals
  and ``reference_sweep.txt`` cells, is bit-identical to the single-heap
  engine for *any* shard assignment.

Because the merge is exact, correctness never depends on network
latency; the minimum-latency lookahead of classical conservative
parallel DES shows up here only as a *throughput* property (messages
between machines over :mod:`repro.sim.network` are the only cross-shard
edges, so co-locating chatty machines in one shard lengthens drains).
"""

from __future__ import annotations

import heapq
from collections import deque
from heapq import heapify, heappop, heappush
from typing import Callable, List, Optional

from repro.errors import DeadlockError, SimulationError
from repro.sim.core import NEW, EventHandle, Simulator, _call0

__all__ = ["ShardedSimulator"]

#: Frontier sentinel meaning "no other shard holds anything": compares
#: greater than every real event key (entry[0] is always a finite int).
_INF = (float("inf"), 0)


class ShardedSimulator(Simulator):
    """Drop-in :class:`~repro.sim.core.Simulator` with a sharded event
    set.  Public behaviour (clock, dispatch order, errors, stats) is
    bit-identical; only wall-clock speed differs."""

    __slots__ = ("_nshards", "_heaps", "_imms", "_compact_at", "_active",
                 "_f", "_group_of", "_machine_count", "stale_dropped")

    def __init__(self, shards: int = 8, group_of=None) -> None:
        super().__init__()
        if shards < 1:
            raise SimulationError(f"shards must be >= 1: {shards}")
        self._nshards = shards
        self._heaps: List[List[tuple]] = [[] for _ in range(shards)]
        self._imms = [deque() for _ in range(shards)]
        #: Per-shard heap size that triggers the next stale compaction.
        self._compact_at = [0] * shards
        #: Shard currently draining (-1 outside run()).
        self._active = -1
        #: Conservative frontier: no *other* shard holds an event whose
        #: (time, seq) key compares below this.  Kept as a tuple so the
        #: hot-loop check is one C-level comparison; ``seq`` is globally
        #: unique, so comparing a 6-tuple entry against it never falls
        #: through to the (non-comparable) owner field.
        self._f: tuple = _INF
        self._group_of = group_of
        self._machine_count = 0
        #: Stale entries removed early by compaction (diagnostic).
        self.stale_dropped = 0

    @property
    def shards(self) -> int:
        return self._nshards

    # -- shard assignment ----------------------------------------------

    def _register_machine(self, machine) -> None:
        if self._group_of is not None:
            index = int(self._group_of(machine.name)) % self._nshards
        else:
            index = self._machine_count % self._nshards
        self._machine_count += 1
        machine._shard_index = index

    # -- event filing ---------------------------------------------------

    def _push(self, index: int, delay_ps: int, owner, token: int,
              fn, arg) -> None:
        self._seq += 1
        when = self._now + delay_ps
        entry = (when, self._seq, owner, token, fn, arg)
        if delay_ps == 0:
            imm = self._imms[index]
            # The immediate lane must stay sorted; a clock rewind (a
            # second run() with an earlier until_ps) is the only way a
            # new delay-0 key can undercut the tail.
            if imm and imm[-1][0] > when:
                self._push_heap(index, entry)
            else:
                imm.append(entry)
        else:
            self._push_heap(index, entry)
        if index != self._active and entry < self._f:
            # A cross-shard event below the frontier must stop the
            # active drain before its turn.  Tightening to the new key
            # is conservative: the true other-shard minimum may be even
            # lower, in which case the frontier just ends a drain early
            # and the reselect recomputes exactly.
            self._f = entry

    def _push_heap(self, index: int, entry: tuple) -> None:
        # Compact when the heap doubles past its last-known live size:
        # geometric triggering makes the O(n) scan amortised O(1) per
        # push whether the growth is live load (scan finds nothing,
        # threshold doubles away) or cancelled watchdogs (scan halves
        # the heap and resets the bar).
        heap = self._heaps[index]
        heappush(heap, entry)
        if len(heap) >= self._compact_at[index]:
            self._compact(index)
            self._compact_at[index] = 64 + 2 * len(heap)

    def _compact(self, index: int) -> None:
        """Drop lazily-cancelled entries and re-heapify, in place.

        Tokens are monotonic, so an entry stale now is stale at its pop
        time too; the single-heap engine would skip it there with no
        observable effect, so early removal preserves bit-identity.
        In place matters: run() holds a reference to the heap list.
        """
        heap = self._heaps[index]
        live = [e for e in heap
                if e[2] is None or e[2]._wake_token == e[3]]
        if len(live) != len(heap):
            self.stale_dropped += len(heap) - len(live)
            heap[:] = live
            heapq.heapify(heap)

    def schedule(self, delay_ps: int, fn: Callable[[], None]) -> EventHandle:
        # Hot alongside _post: load generators schedule (and cancel)
        # per-request retransmit timers by the thousand.  Same inlined
        # filing as _post, minus the impossible delay-0/rewind case.
        if delay_ps < 0:
            raise SimulationError(f"negative delay: {delay_ps}")
        handle = EventHandle()
        index = self._active
        if index < 0:
            index = 0
        handle._shard_index = index
        seq = self._seq + 1
        self._seq = seq
        when = self._now + delay_ps
        entry = (when, seq, handle, 0, _call0, fn)
        if delay_ps == 0:
            imm = self._imms[index]
            if imm and imm[-1][0] > when:  # clock rewind: keep lane sorted
                heappush(self._heaps[index], entry)
            else:
                imm.append(entry)
        else:
            heap = self._heaps[index]
            heappush(heap, entry)
            if len(heap) >= self._compact_at[index]:
                self._compact(index)
                self._compact_at[index] = 64 + 2 * len(heap)
        if index != self._active and entry < self._f:
            self._f = entry
        return handle

    def schedule_on(self, machine, delay_ps: int,
                    fn: Callable[[], None]) -> EventHandle:
        if delay_ps < 0:
            raise SimulationError(f"negative delay: {delay_ps}")
        handle = EventHandle()
        index = machine._shard_index
        handle._shard_index = index
        self._push(index, delay_ps, handle, 0, _call0, fn)
        return handle

    def _post(self, delay_ps: int, owner, token: int, fn, arg) -> None:
        # The engine-wide hot path: one call per compute/sleep/timeout/
        # grant.  The body of _push is inlined here (and only here) —
        # going through the helper costs more than the sharding saves.
        if owner is not None:
            # Process/EventHandle owners carry their shard.
            index = owner._shard_index
        else:
            # Core grants: owner-less; file them in the posting shard.
            # Shard assignment never affects dispatch order (the merge
            # is exact for any assignment), and a grant's poster is
            # almost always the granted process's own machine anyway.
            index = self._active
            if index < 0:
                index = 0
        seq = self._seq + 1
        self._seq = seq
        when = self._now + delay_ps
        entry = (when, seq, owner, token, fn, arg)
        if delay_ps == 0:
            imm = self._imms[index]
            if imm and imm[-1][0] > when:  # clock rewind: keep lane sorted
                heappush(self._heaps[index], entry)
            else:
                imm.append(entry)
        elif delay_ps > 0:
            heap = self._heaps[index]
            heappush(heap, entry)
            if len(heap) >= self._compact_at[index]:
                self._compact(index)
                self._compact_at[index] = 64 + 2 * len(heap)
        else:
            raise SimulationError(f"negative delay: {delay_ps}")
        if index != self._active and entry < self._f:
            self._f = entry

    # -- the coordinator ------------------------------------------------

    def run(self, until_ps: Optional[int] = None,
            max_events: int = 500_000_000) -> None:
        pairs = list(zip(self._imms, self._heaps))
        events = 0
        try:
            while True:
                # Exact K-way selection: one pass over the shard heads
                # finds the global minimum (the shard to drain) and the
                # runner-up (the frontier it may drain up to).  Entries
                # compare directly — one C tuple comparison each, never
                # reaching the owner field because seq is unique.
                best = -1
                best_e = second_e = None
                for i, (imm, heap) in enumerate(pairs):
                    if imm:
                        e = imm[0]
                        if heap and heap[0] < e:
                            e = heap[0]
                    elif heap:
                        e = heap[0]
                    else:
                        continue
                    if best_e is None or e < best_e:
                        second_e = best_e
                        best_e = e
                        best = i
                    elif second_e is None or e < second_e:
                        second_e = e
                if best < 0:
                    break  # every shard drained
                self._f = second_e if second_e is not None else _INF
                self._active = best
                imm, heap = pairs[best]
                # Drain the active shard while its head key stays below
                # the frontier.  _post() tightens self._f live when a
                # dispatch pushes into another shard.
                while True:
                    if imm:
                        e = imm[0]
                        use_imm = True
                        if heap:
                            h = heap[0]
                            if h < e:
                                e = h
                                use_imm = False
                    elif heap:
                        e = heap[0]
                        use_imm = False
                    else:
                        break  # shard empty: reselect
                    if e > self._f:
                        break  # next global event lives elsewhere
                    if use_imm:
                        imm.popleft()
                    else:
                        heappop(heap)
                    owner = e[2]
                    if owner is not None and owner._wake_token != e[3]:
                        continue  # lazily cancelled: clock frozen
                    when = e[0]
                    if until_ps is not None and when > until_ps:
                        self._now = until_ps
                        if use_imm:
                            imm.appendleft(e)
                        else:
                            heappush(heap, e)
                        return
                    self._now = when
                    e[4](e[5])
                    events += 1
                    if events >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}")
        finally:
            self._active = -1
            self._f = _INF
            self.events_processed += events
        stuck = [p for p in self.processes
                 if not p.done and not p.daemon and p.state != NEW]
        if stuck:
            names = ", ".join(p.name for p in stuck[:8])
            raise DeadlockError(
                f"no events left but processes blocked: {names}")

    def pending_events(self) -> int:
        """Total entries currently filed (incl. stale; diagnostic)."""
        return (sum(len(h) for h in self._heaps)
                + sum(len(d) for d in self._imms))
