"""Simulated machines: bounded core pools with FIFO scheduling."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.costmodel import MachineSpec
from repro.errors import SimulationError
from repro.sim.core import Process, Simulator


class Machine:
    """A host with a fixed number of logical cores.

    Processes request a core to run and queue FIFO when all cores are
    busy.  The distinction between physical and logical cores matters
    only to the memory-pressure model used by the SPEC experiments
    (see :mod:`repro.apps.spec`).
    """

    __slots__ = ("sim", "spec", "name", "free_cores", "_ready",
                 "_shard_index")

    def __init__(self, sim: Simulator, spec: Optional[MachineSpec] = None,
                 name: str = "machine") -> None:
        self.sim = sim
        self.spec = spec or MachineSpec()
        self.name = name
        self.free_cores = self.spec.logical_cores
        self._ready: Deque[Process] = deque()
        # Sets self._shard_index: which event shard this machine's
        # processes schedule into (always 0 on the single-heap engine).
        sim._register_machine(self)

    def spawn(self, gen, name: str = "proc", daemon: bool = False,
              start: bool = True) -> Process:
        """Create (and by default start) a process on this machine."""
        proc = Process(self, gen, name=name, daemon=daemon)
        if start:
            proc.start()
        return proc

    # -- core management (called by Process) ----------------------------

    def request_core(self, proc: Process) -> None:
        if self.free_cores > 0:
            self.free_cores -= 1
            # Grant on a fresh event so the caller's stack unwinds first.
            # Grants are never cancelled (interrupting a READY process
            # reuses its grant to deliver the exception), hence no owner.
            self.sim._post(0, None, 0, proc._cb_granted_core, None)
        else:
            self._ready.append(proc)

    def release_core(self, proc: Process) -> None:
        if self._ready:
            nxt = self._ready.popleft()
            self.sim._post(0, None, 0, nxt._cb_granted_core, None)
        else:
            self.free_cores += 1
            if self.free_cores > self.spec.logical_cores:
                raise SimulationError(
                    f"{self.name}: more cores released than exist")

    def has_core_waiters(self) -> bool:
        return bool(self._ready)

    @property
    def busy_cores(self) -> int:
        return self.spec.logical_cores - self.free_cores

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Machine {self.name} busy={self.busy_cores}/"
                f"{self.spec.logical_cores}>")
