"""Point-to-point network between simulated machines.

Models the paper's testbed: two machines in the same rack joined by a
1 Gb Ethernet link.  Each direction of the link serialises transmissions
(bandwidth) and adds a fixed propagation latency.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.costmodel import NetworkSpec
from repro.sim.core import Simulator
from repro.sim.machine import Machine


class Network:
    """Latency/bandwidth model used by cross-machine sockets."""

    def __init__(self, sim: Simulator, spec: NetworkSpec = None) -> None:
        self.sim = sim
        self.spec = spec or NetworkSpec()
        self._busy_until: Dict[Tuple[str, str], int] = {}
        self.bytes_sent = 0
        self.messages_sent = 0
        #: Optional fault hook (``repro.faults.NetworkFaults``): may
        #: delay a delivery (partition hold, loss retransmission) but
        #: never drop it, so injected network faults preserve liveness.
        self.faults = None

    def transit_ps(self, nbytes: int) -> int:
        """Latency + transmission time for a message of ``nbytes``."""
        return self.spec.latency_ps + nbytes * self.spec.ps_per_byte

    #: When True, each link direction is a single serialising resource
    #: (strict store-and-forward).  Off by default: with TSO, full-duplex
    #: switching and per-flow pacing, modelling the rack link as a
    #: per-message latency+transmission delay keeps the *server* the
    #: bottleneck — which is what the paper's client-side throughput
    #: measurements require (see DESIGN.md, network model).
    serialize: bool = False

    def deliver(self, src: Machine, dst: Machine, nbytes: int,
                fn: Callable[[], None], floor_ps: int = 0) -> int:
        """Schedule ``fn`` when ``nbytes`` sent from src arrive at dst.

        ``floor_ps`` enforces in-order delivery within one stream: the
        arrival never precedes it (TCP segments of a connection do not
        overtake each other — nor does the FIN).  Returns the arrival
        time, which the caller threads through as the next floor.
        """
        if src is dst:
            # Loopback: negligible latency, no bandwidth cap.
            arrival = max(self.sim.now + 1000, floor_ps)
            self.sim.schedule_on(dst, arrival - self.sim.now, fn)
            return arrival
        tx = nbytes * self.spec.ps_per_byte
        if self.serialize:
            key = (src.name, dst.name)
            start = max(self.sim.now, self._busy_until.get(key, 0))
            self._busy_until[key] = start + tx
            arrival = start + tx + self.spec.latency_ps
        else:
            arrival = self.sim.now + tx + self.spec.latency_ps
        if self.faults is not None:
            arrival = self.faults.adjust(src.name, dst.name, self.sim.now,
                                         arrival)
        arrival = max(arrival, floor_ps)
        self.bytes_sent += nbytes
        self.messages_sent += 1
        # Route the arrival to the destination machine's event shard:
        # cross-machine deliveries are the cross-shard edges of the
        # sharded engine (see repro.sim.shard).
        self.sim.schedule_on(dst, arrival - self.sim.now, fn)
        return arrival
