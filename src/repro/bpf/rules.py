"""Rewrite-rule engine: applying BPF filters to divergences (§2.3, §3.4).

When a follower's next system call does not match the head event of the
leader's stream, the monitor runs the installed filters over the pair
(follower's ``seccomp_data``, leader's event view) and acts on the
verdict:

* ``ALLOW`` — the follower executes its *additional* call locally and
  re-matches (the "addition" direction);
* ``SKIP``  — the leader's *extra* event is consumed and discarded and
  matching retries (the "removal/coalescing" direction);
* ``KILL``  — the divergence is fatal; the follower is terminated.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.bpf.insn import (
    NVX_RET_SKIP,
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_KILL,
)
from repro.bpf.interpreter import BpfProgram, pack_seccomp_data

ACTION_ALLOW = "allow"
ACTION_SKIP = "skip"
ACTION_KILL = "kill"

_ACTIONS = {
    SECCOMP_RET_ALLOW: ACTION_ALLOW,
    NVX_RET_SKIP: ACTION_SKIP,
    SECCOMP_RET_KILL: ACTION_KILL,
}


class RewriteRules:
    """An ordered set of BPF rewrite rules for one NVX session."""

    def __init__(self, filters: Optional[Sequence[BpfProgram]] = None):
        self.filters: List[BpfProgram] = list(filters or [])
        self.applied = 0  # divergences resolved, for stats

    def add(self, program: BpfProgram) -> None:
        self.filters.append(program)

    def __len__(self) -> int:
        return len(self.filters)

    def total_insns(self) -> int:
        return sum(len(f) for f in self.filters)

    def evaluate(self, follower_nr: int, follower_args: Sequence[int],
                 event_words: Sequence[int]) -> str:
        """Return ACTION_ALLOW / ACTION_SKIP / ACTION_KILL.

        Filters run in order; the first one returning a recognised
        non-KILL verdict wins.  With no filters installed, every
        divergence is fatal — the classical NVX behaviour.
        """
        data = pack_seccomp_data(follower_nr, args=follower_args)
        for program in self.filters:
            verdict = _ACTIONS.get(program.run(data, event_words))
            if verdict in (ACTION_ALLOW, ACTION_SKIP):
                self.applied += 1
                return verdict
        return ACTION_KILL
