"""Assembler for the BPF dialect used in the paper's Listing 1.

Supports the classic-BPF mnemonics plus the Varan ``event`` extension::

    ld event[0]
    jeq #108, getegid /* __NR_getegid */
    jeq #2, open      /* __NR_open */
    jmp bad
    getegid:
    ld [0]            /* offsetof(struct seccomp_data, nr) */
    jeq #102, good    /* __NR_getuid */
    open:
    ld [0]
    jeq #104, good    /* __NR_getgid */
    bad: ret #0       /* SECCOMP_RET_KILL */
    good: ret #0x7fff0000 /* SECCOMP_RET_ALLOW */

Conditional jumps take ``jeq #k, jt`` (fall through on false) or
``jeq #k, jt, jf``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.bpf.insn import (
    BPF_A,
    BPF_ABS,
    BPF_ADD,
    BPF_ALU,
    BPF_AND,
    BPF_DIV,
    BPF_IMM,
    BPF_JA,
    BPF_JEQ,
    BPF_JGE,
    BPF_JGT,
    BPF_JMP,
    BPF_JSET,
    BPF_K,
    BPF_LD,
    BPF_LDX,
    BPF_LEN,
    BPF_LSH,
    BPF_MEM,
    BPF_MISC,
    BPF_MUL,
    BPF_NEG,
    BPF_OR,
    BPF_RET,
    BPF_RSH,
    BPF_ST,
    BPF_STX,
    BPF_SUB,
    BPF_TAX,
    BPF_TXA,
    BPF_W,
    BPF_X,
    EVENT_EXTENSION_BASE,
    BpfInsn,
)
from repro.bpf.interpreter import BpfProgram
from repro.errors import BpfVerifierError

_COMMENT_RE = re.compile(r"/\*.*?\*/|//.*$")
_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):\s*(.*)$")

_ALU_OPS = {"add": BPF_ADD, "sub": BPF_SUB, "mul": BPF_MUL, "div": BPF_DIV,
            "or": BPF_OR, "and": BPF_AND, "lsh": BPF_LSH, "rsh": BPF_RSH}
_JMP_OPS = {"jeq": BPF_JEQ, "jgt": BPF_JGT, "jge": BPF_JGE,
            "jset": BPF_JSET}


def _parse_imm(text: str) -> int:
    text = text.strip()
    if not text.startswith("#"):
        raise BpfVerifierError(f"expected #immediate, got {text!r}")
    return int(text[1:], 0)


class _Pending:
    """An instruction whose jump offsets still reference labels."""

    def __init__(self, kind: str, **fields) -> None:
        self.kind = kind
        self.fields = fields


def assemble_bpf(source: str, name: str = "filter") -> BpfProgram:
    """Assemble BPF source into a verified :class:`BpfProgram`."""
    pending: List[_Pending] = []
    labels: Dict[str, int] = {}

    for lineno, raw in enumerate(source.splitlines(), 1):
        line = _COMMENT_RE.sub("", raw).strip()
        while line:
            match = _LABEL_RE.match(line)
            if match and match.group(1) not in ("ld", "ldx", "st", "stx",
                                                "ret", "jmp", "tax", "txa"):
                label = match.group(1)
                if label in labels:
                    raise BpfVerifierError(
                        f"line {lineno}: duplicate label {label!r}")
                labels[label] = len(pending)
                line = match.group(2).strip()
                continue
            pending.append(_parse_insn(line, lineno))
            line = ""

    insns: List[BpfInsn] = []
    for pc, item in enumerate(pending):
        insns.append(_resolve(item, pc, labels))
    return BpfProgram(insns, name=name)


def _parse_insn(line: str, lineno: int) -> _Pending:
    mnemonic, _, rest = line.partition(" ")
    mnemonic = mnemonic.lower()
    rest = rest.strip()

    if mnemonic in ("ld", "ldx"):
        klass = BPF_LD if mnemonic == "ld" else BPF_LDX
        if rest.startswith("event["):
            inner = int(rest[len("event["):-1], 0)
            return _Pending("stmt", code=klass | BPF_W | BPF_ABS,
                            k=EVENT_EXTENSION_BASE | inner)
        if rest.startswith("M[") or rest.startswith("m["):
            return _Pending("stmt", code=klass | BPF_W | BPF_MEM,
                            k=int(rest[2:-1], 0))
        if rest.startswith("["):
            return _Pending("stmt", code=klass | BPF_W | BPF_ABS,
                            k=int(rest[1:-1], 0))
        if rest == "len":
            return _Pending("stmt", code=klass | BPF_W | BPF_LEN, k=0)
        return _Pending("stmt", code=klass | BPF_W | BPF_IMM,
                        k=_parse_imm(rest))
    if mnemonic in ("st", "stx"):
        klass = BPF_ST if mnemonic == "st" else BPF_STX
        if not (rest.startswith("M[") or rest.startswith("m[")):
            raise BpfVerifierError(f"line {lineno}: {mnemonic} needs M[k]")
        return _Pending("stmt", code=klass, k=int(rest[2:-1], 0))
    if mnemonic in _ALU_OPS:
        if rest == "x":
            return _Pending("stmt", code=BPF_ALU | _ALU_OPS[mnemonic] | BPF_X,
                            k=0)
        return _Pending("stmt", code=BPF_ALU | _ALU_OPS[mnemonic] | BPF_K,
                        k=_parse_imm(rest))
    if mnemonic == "neg":
        return _Pending("stmt", code=BPF_ALU | BPF_NEG, k=0)
    if mnemonic in ("tax", "txa"):
        op = BPF_TAX if mnemonic == "tax" else BPF_TXA
        return _Pending("stmt", code=BPF_MISC | op, k=0)
    if mnemonic in ("jmp", "ja"):
        return _Pending("ja", target=rest, lineno=lineno)
    if mnemonic in _JMP_OPS:
        parts = [p.strip() for p in rest.split(",")]
        if len(parts) < 2:
            raise BpfVerifierError(
                f"line {lineno}: {mnemonic} needs #k, jt[, jf]")
        operand = parts[0]
        src = BPF_X if operand == "x" else BPF_K
        k = 0 if operand == "x" else _parse_imm(operand)
        jt = parts[1]
        jf = parts[2] if len(parts) > 2 else None
        return _Pending("jcond", code=BPF_JMP | _JMP_OPS[mnemonic] | src,
                        k=k, jt=jt, jf=jf, lineno=lineno)
    if mnemonic == "ret":
        if rest.lower() == "a":
            return _Pending("stmt", code=BPF_RET | BPF_A, k=0)
        return _Pending("stmt", code=BPF_RET | BPF_K, k=_parse_imm(rest))
    raise BpfVerifierError(f"line {lineno}: unknown mnemonic {mnemonic!r}")


def _offset(label: Optional[str], pc: int, labels: Dict[str, int],
            lineno: int) -> int:
    if label is None:
        return 0
    if label.isdigit():
        return int(label)
    if label not in labels:
        raise BpfVerifierError(f"line {lineno}: undefined label {label!r}")
    offset = labels[label] - (pc + 1)
    if offset < 0:
        raise BpfVerifierError(
            f"line {lineno}: backward jump to {label!r} (not allowed)")
    if offset > 255:
        raise BpfVerifierError(f"line {lineno}: jump to {label!r} too far")
    return offset


def _resolve(item: _Pending, pc: int, labels: Dict[str, int]) -> BpfInsn:
    if item.kind == "stmt":
        return BpfInsn(code=item.fields["code"], k=item.fields["k"])
    if item.kind == "ja":
        lineno = item.fields["lineno"]
        target = item.fields["target"]
        if target not in labels:
            raise BpfVerifierError(
                f"line {lineno}: undefined label {target!r}")
        offset = labels[target] - (pc + 1)
        if offset < 0:
            raise BpfVerifierError(
                f"line {lineno}: backward jump to {target!r}")
        return BpfInsn(code=BPF_JMP | BPF_JA, k=offset)
    # jcond
    fields = item.fields
    lineno = fields["lineno"]
    return BpfInsn(
        code=fields["code"],
        k=fields["k"],
        jt=_offset(fields["jt"], pc, labels, lineno),
        jf=_offset(fields["jf"], pc, labels, lineno),
    )
