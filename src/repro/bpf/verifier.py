"""Static verification of BPF programs.

Mirrors the kernel's checker: every filter is validated when loaded, so a
malformed rule can never wedge the monitor — in particular, termination
is guaranteed because all jumps are forward-only (§3.4).
"""

from __future__ import annotations

from typing import Sequence

from repro.bpf.insn import (
    BPF_ABS,
    BPF_ALU,
    BPF_DIV,
    BPF_IMM,
    BPF_JA,
    BPF_JMP,
    BPF_K,
    BPF_LD,
    BPF_LDX,
    BPF_MEM,
    BPF_MEMWORDS,
    BPF_MISC,
    BPF_RET,
    BPF_ST,
    BPF_STX,
    BpfInsn,
)
from repro.errors import BpfVerifierError

MAX_INSNS = 4096


def verify(program: Sequence[BpfInsn]) -> None:
    """Raise :class:`BpfVerifierError` unless ``program`` is safe."""
    if not program:
        raise BpfVerifierError("empty program")
    if len(program) > MAX_INSNS:
        raise BpfVerifierError(f"program too long ({len(program)} insns)")

    for pc, insn in enumerate(program):
        klass = insn.klass
        if klass in (BPF_LD, BPF_LDX):
            mode = insn.code & 0xE0
            if mode == BPF_MEM and insn.k >= BPF_MEMWORDS:
                raise BpfVerifierError(f"pc {pc}: M[{insn.k}] out of range")
        elif klass in (BPF_ST, BPF_STX):
            if insn.k >= BPF_MEMWORDS:
                raise BpfVerifierError(f"pc {pc}: M[{insn.k}] out of range")
        elif klass == BPF_ALU:
            op = insn.code & 0xF0
            src = insn.code & 0x08
            if op == BPF_DIV and src == BPF_K and insn.k == 0:
                raise BpfVerifierError(f"pc {pc}: division by zero")
        elif klass == BPF_JMP:
            op = insn.code & 0xF0
            if op == BPF_JA:
                target = pc + 1 + insn.k
                if insn.k > 0x7FFF_FFFF or target >= len(program):
                    raise BpfVerifierError(
                        f"pc {pc}: ja target {target} out of range")
            else:
                for off, label in ((insn.jt, "jt"), (insn.jf, "jf")):
                    target = pc + 1 + off
                    if target >= len(program):
                        raise BpfVerifierError(
                            f"pc {pc}: {label} target {target} out of range")
        elif klass == BPF_RET:
            continue
        elif klass == BPF_MISC:
            continue
        else:  # pragma: no cover - klass is 3 bits, all handled
            raise BpfVerifierError(f"pc {pc}: unknown class {klass}")

    # Every fall-through path must end in RET: the last reachable
    # instruction of any path must be a RET. A sufficient (kernel-style)
    # condition: the final instruction is RET, since jumps are forward.
    if program[-1].klass != BPF_RET:
        raise BpfVerifierError("program does not end in RET")
