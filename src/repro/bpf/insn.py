"""Classic BPF instruction set, as used by seccomp-bpf (§3.4).

Varan embeds a user-space port of the kernel's BPF interpreter and adds
an ``event`` extension that exposes the leader's event stream to rewrite
rules.  Instruction encoding follows the classic 8-byte layout:
``(u16 code, u8 jt, u8 jf, u32 k)``.
"""

from __future__ import annotations

from dataclasses import dataclass

# -- instruction classes ---------------------------------------------------

BPF_LD = 0x00
BPF_LDX = 0x01
BPF_ST = 0x02
BPF_STX = 0x03
BPF_ALU = 0x04
BPF_JMP = 0x05
BPF_RET = 0x06
BPF_MISC = 0x07

# ld/ldx fields
BPF_W = 0x00  # 32-bit word
BPF_ABS = 0x20
BPF_IND = 0x40
BPF_MEM = 0x60
BPF_IMM = 0x00
BPF_LEN = 0x80

# alu/jmp fields
BPF_ADD = 0x00
BPF_SUB = 0x10
BPF_MUL = 0x20
BPF_DIV = 0x30
BPF_OR = 0x40
BPF_AND = 0x50
BPF_LSH = 0x60
BPF_RSH = 0x70
BPF_NEG = 0x80
BPF_JA = 0x00
BPF_JEQ = 0x10
BPF_JGT = 0x20
BPF_JGE = 0x30
BPF_JSET = 0x40
BPF_K = 0x00
BPF_X = 0x08
BPF_A = 0x10

# misc
BPF_TAX = 0x00
BPF_TXA = 0x80

#: Varan extension: ``ld event[k]`` — read word ``k`` of the event-stream
#: view (the leader's pending event). Encoded as LD|W|ABS with the high
#: bit of ``k`` set, mirroring how seccomp encodes its own extensions.
EVENT_EXTENSION_BASE = 0x8000_0000

#: Number of 32-bit scratch memory slots (kernel value).
BPF_MEMWORDS = 16

# -- seccomp-compatible return values --------------------------------------

SECCOMP_RET_KILL = 0x0000_0000
SECCOMP_RET_TRAP = 0x0003_0000
SECCOMP_RET_ERRNO = 0x0005_0000
SECCOMP_RET_TRACE = 0x7FF0_0000
SECCOMP_RET_ALLOW = 0x7FFF_0000
#: Varan's NVX extension: consume and discard the leader's event (the
#: "removal/coalescing" direction of §2.3), then re-match.
NVX_RET_SKIP = 0x7FFE_0000

RET_NAMES = {
    SECCOMP_RET_KILL: "KILL",
    SECCOMP_RET_TRAP: "TRAP",
    SECCOMP_RET_ERRNO: "ERRNO",
    SECCOMP_RET_TRACE: "TRACE",
    SECCOMP_RET_ALLOW: "ALLOW",
    NVX_RET_SKIP: "SKIP",
}


@dataclass(frozen=True)
class BpfInsn:
    """One 8-byte classic BPF instruction."""

    code: int
    jt: int = 0
    jf: int = 0
    k: int = 0

    @property
    def klass(self) -> int:
        return self.code & 0x07

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"(code={self.code:#06x} jt={self.jt} jf={self.jf} k={self.k:#x})"


def stmt(code: int, k: int) -> BpfInsn:
    """BPF_STMT macro."""
    return BpfInsn(code=code, k=k)


def jump(code: int, k: int, jt: int, jf: int) -> BpfInsn:
    """BPF_JUMP macro."""
    return BpfInsn(code=code, jt=jt, jf=jf, k=k)
