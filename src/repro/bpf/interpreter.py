"""User-space BPF interpreter (kernel port, per §3.4) with the NVX
``event`` extension."""

from __future__ import annotations

import struct
from typing import Optional, Sequence

from repro.bpf.insn import (
    BPF_A,
    BPF_ABS,
    BPF_ADD,
    BPF_ALU,
    BPF_AND,
    BPF_DIV,
    BPF_IMM,
    BPF_IND,
    BPF_JA,
    BPF_JEQ,
    BPF_JGE,
    BPF_JGT,
    BPF_JMP,
    BPF_JSET,
    BPF_K,
    BPF_LD,
    BPF_LDX,
    BPF_LEN,
    BPF_LSH,
    BPF_MEM,
    BPF_MEMWORDS,
    BPF_MISC,
    BPF_MUL,
    BPF_NEG,
    BPF_OR,
    BPF_RET,
    BPF_RSH,
    BPF_ST,
    BPF_STX,
    BPF_SUB,
    BPF_TAX,
    BPF_TXA,
    BPF_X,
    EVENT_EXTENSION_BASE,
    BpfInsn,
)
from repro.bpf.verifier import verify
from repro.errors import BpfRuntimeError

_U32 = 0xFFFF_FFFF


def pack_seccomp_data(nr: int, arch: int = 0xC000003E,
                      ip: int = 0, args: Sequence[int] = ()) -> bytes:
    """Build a ``struct seccomp_data`` buffer (x86-64 arch by default)."""
    padded = list(args)[:6] + [0] * (6 - min(6, len(args)))
    clean = [a & 0xFFFF_FFFF_FFFF_FFFF for a in padded]
    return struct.pack("<iIQ6Q", nr, arch, ip, *clean)


class BpfProgram:
    """A verified, executable BPF filter."""

    def __init__(self, insns: Sequence[BpfInsn],
                 name: str = "filter") -> None:
        verify(insns)
        self.insns = list(insns)
        self.name = name

    def __len__(self) -> int:
        return len(self.insns)

    def run(self, data: bytes,
            event_words: Optional[Sequence[int]] = ()) -> int:
        """Execute over ``data`` (seccomp_data) with the event view.

        ``event_words`` backs the ``ld event[k]`` extension: word 0 is
        the leader's syscall number, words 1.. are derived from the
        event's by-value payload (see repro.core.events.event_words).
        """
        acc = 0
        idx = 0
        mem = [0] * BPF_MEMWORDS
        pc = 0
        steps = 0
        insns = self.insns
        while pc < len(insns):
            steps += 1
            if steps > len(insns) + 1:  # unreachable given the verifier
                raise BpfRuntimeError(f"{self.name}: runaway filter")
            insn = insns[pc]
            code, k = insn.code, insn.k
            klass = insn.klass
            pc += 1
            if klass == BPF_LD:
                mode = code & 0xE0
                if mode == BPF_ABS:
                    if k & EVENT_EXTENSION_BASE:
                        acc = self._event_word(event_words,
                                               k & ~EVENT_EXTENSION_BASE)
                    else:
                        acc = self._load_word(data, k)
                elif mode == BPF_IND:
                    acc = self._load_word(data, k + idx)
                elif mode == BPF_MEM:
                    acc = mem[k]
                elif mode == BPF_IMM:
                    acc = k & _U32
                elif mode == BPF_LEN:
                    acc = len(data)
                else:
                    raise BpfRuntimeError(f"{self.name}: bad ld mode")
            elif klass == BPF_LDX:
                mode = code & 0xE0
                if mode == BPF_MEM:
                    idx = mem[k]
                elif mode == BPF_IMM:
                    idx = k & _U32
                elif mode == BPF_LEN:
                    idx = len(data)
                else:
                    raise BpfRuntimeError(f"{self.name}: bad ldx mode")
            elif klass == BPF_ST:
                mem[k] = acc
            elif klass == BPF_STX:
                mem[k] = idx
            elif klass == BPF_ALU:
                acc = self._alu(code, acc, idx, k)
            elif klass == BPF_JMP:
                op = code & 0xF0
                src = idx if code & BPF_X else k
                if op == BPF_JA:
                    pc += k
                elif op == BPF_JEQ:
                    pc += insn.jt if acc == src else insn.jf
                elif op == BPF_JGT:
                    pc += insn.jt if acc > src else insn.jf
                elif op == BPF_JGE:
                    pc += insn.jt if acc >= src else insn.jf
                elif op == BPF_JSET:
                    pc += insn.jt if acc & src else insn.jf
                else:
                    raise BpfRuntimeError(f"{self.name}: bad jmp op")
            elif klass == BPF_RET:
                if code & 0x18 == BPF_A:
                    return acc & _U32
                return k & _U32
            elif klass == BPF_MISC:
                if code & 0xF8 == BPF_TAX:
                    idx = acc
                else:
                    acc = idx
            else:  # pragma: no cover - verifier rejects
                raise BpfRuntimeError(f"{self.name}: bad class")
        raise BpfRuntimeError(f"{self.name}: fell off the end")

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _load_word(data: bytes, offset: int) -> int:
        if offset < 0 or offset + 4 > len(data):
            raise BpfRuntimeError(f"load outside packet at {offset}")
        return struct.unpack_from("<I", data, offset)[0]

    @staticmethod
    def _event_word(event_words, index: int) -> int:
        if event_words is None or index >= len(event_words):
            return 0
        return event_words[index] & _U32

    @staticmethod
    def _alu(code: int, acc: int, idx: int, k: int) -> int:
        op = code & 0xF0
        src = idx if code & BPF_X else k
        if op == BPF_ADD:
            acc += src
        elif op == BPF_SUB:
            acc -= src
        elif op == BPF_MUL:
            acc *= src
        elif op == BPF_DIV:
            if src == 0:
                raise BpfRuntimeError("division by zero")
            acc //= src
        elif op == BPF_OR:
            acc |= src
        elif op == BPF_AND:
            acc &= src
        elif op == BPF_LSH:
            acc <<= src & 31
        elif op == BPF_RSH:
            acc >>= src & 31
        elif op == BPF_NEG:
            acc = -acc
        else:
            raise BpfRuntimeError("bad alu op")
        return acc & _U32
