"""BPF machine: interpreter, verifier, assembler and rewrite rules."""

from repro.bpf.assembler import assemble_bpf
from repro.bpf.insn import (
    NVX_RET_SKIP,
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_ERRNO,
    SECCOMP_RET_KILL,
    SECCOMP_RET_TRACE,
    SECCOMP_RET_TRAP,
    BpfInsn,
    jump,
    stmt,
)
from repro.bpf.interpreter import BpfProgram, pack_seccomp_data
from repro.bpf.rules import (
    ACTION_ALLOW,
    ACTION_KILL,
    ACTION_SKIP,
    RewriteRules,
)
from repro.bpf.verifier import verify

__all__ = [
    "assemble_bpf",
    "NVX_RET_SKIP",
    "SECCOMP_RET_ALLOW",
    "SECCOMP_RET_ERRNO",
    "SECCOMP_RET_KILL",
    "SECCOMP_RET_TRACE",
    "SECCOMP_RET_TRAP",
    "BpfInsn",
    "jump",
    "stmt",
    "BpfProgram",
    "pack_seccomp_data",
    "ACTION_ALLOW",
    "ACTION_KILL",
    "ACTION_SKIP",
    "RewriteRules",
    "verify",
]
