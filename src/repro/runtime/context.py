"""High-level, Pythonic syscall API for simulated programs.

Application code is written as generator functions receiving a
:class:`ProcessContext`; every wrapper drives the task's syscall gate
with ``yield from``, so monitors (Varan, ptrace baselines) interpose
transparently::

    def main(ctx):
        fd = yield from ctx.open("/etc/motd")
        data = yield from ctx.read(fd, 512)
        yield from ctx.close(fd)
        return data
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.costmodel import cycles
from repro.kernel.uapi import (
    CLONE_THREAD,
    O_RDONLY,
    SOCK_STREAM,
    Syscall,
    SysError,
    SysResult,
)
from repro.sim.core import Compute


class ProcessContext:
    """The libc of the simulation."""

    def __init__(self, task) -> None:
        self.task = task

    # -- plumbing ----------------------------------------------------------

    def syscall(self, name: str, *args, site: Optional[str] = None,
                data: bytes = b"", nbytes: int = 0):
        """Generator: issue a raw syscall, returning the SysResult."""
        call = Syscall(name, args, site=site or name, data=data,
                       nbytes=nbytes)
        return self.task.gate.dispatch(call)

    def _checked(self, name: str, *args, site=None, data=b"", nbytes=0):
        result = yield from self.syscall(name, *args, site=site, data=data,
                                         nbytes=nbytes)
        if result.retval < 0:
            raise SysError(result.errno, name)
        return result

    def compute(self, ncycles: float):
        """Generator: burn CPU (application work between syscalls)."""
        yield Compute(cycles(ncycles))

    @property
    def sim(self):
        return self.task.kernel.sim

    @property
    def machine(self):
        return self.task.machine

    # -- files -------------------------------------------------------------

    def open(self, path: str, flags: int = O_RDONLY, site=None):
        result = yield from self._checked("open", path, flags, site=site)
        return result.retval

    def close(self, fd: int, site=None):
        result = yield from self.syscall("close", fd, site=site)
        return result.retval

    def read(self, fd: int, size: int, site=None):
        result = yield from self._checked("read", fd, size, site=site,
                                          nbytes=size)
        return result.data

    def write(self, fd: int, data: bytes, site=None):
        result = yield from self._checked("write", fd, len(data), site=site,
                                          data=data)
        return result.retval

    def pread(self, fd: int, size: int, offset: int, site=None):
        result = yield from self._checked("pread", fd, size, offset,
                                          site=site, nbytes=size)
        return result.data

    def lseek(self, fd: int, offset: int, whence: int = 0, site=None):
        result = yield from self._checked("lseek", fd, offset, whence,
                                          site=site)
        return result.retval

    def stat(self, path: str, site=None):
        result = yield from self.syscall("stat", path, site=site)
        return result

    def fstat(self, fd: int, site=None):
        result = yield from self._checked("fstat", fd, site=site)
        return result

    def access(self, path: str, site=None):
        result = yield from self.syscall("access", path, site=site)
        return result.retval

    def unlink(self, path: str, site=None):
        result = yield from self.syscall("unlink", path, site=site)
        return result.retval

    def fcntl(self, fd: int, cmd: int, arg: int = 0, site=None):
        result = yield from self._checked("fcntl", fd, cmd, arg, site=site)
        return result.retval

    def sendfile(self, out_fd: int, in_fd: int, count: int, site=None):
        result = yield from self._checked("sendfile", out_fd, in_fd, 0,
                                          count, site=site, nbytes=count)
        return result.retval

    # -- sockets -------------------------------------------------------------

    def socket(self, flags: int = 0, site=None):
        result = yield from self._checked("socket", 2, SOCK_STREAM, flags,
                                          site=site)
        return result.retval

    def bind(self, fd: int, addr: Tuple[str, int], site=None):
        result = yield from self._checked("bind", fd, addr, site=site)
        return result.retval

    def listen(self, fd: int, backlog: int = 128, site=None):
        result = yield from self._checked("listen", fd, backlog, site=site)
        return result.retval

    def accept(self, fd: int, site=None):
        result = yield from self._checked("accept", fd, site=site)
        return result.retval

    def connect(self, fd: int, addr: Tuple[str, int], site=None):
        result = yield from self._checked("connect", fd, addr, site=site)
        return result.retval

    def recv(self, fd: int, size: int, site=None):
        result = yield from self._checked("recvfrom", fd, size, site=site,
                                          nbytes=size)
        return result.data

    def send(self, fd: int, data: bytes, site=None):
        result = yield from self._checked("sendto", fd, len(data),
                                          site=site, data=data)
        return result.retval

    def shutdown(self, fd: int, site=None):
        result = yield from self.syscall("shutdown", fd, site=site)
        return result.retval

    def setsockopt(self, fd: int, level: int = 1, opt: int = 2,
                   value: int = 1, site=None):
        result = yield from self.syscall("setsockopt", fd, level, opt,
                                         value, site=site)
        return result.retval

    def socketpair(self, site=None):
        result = yield from self._checked("socketpair", site=site)
        return result.aux  # (fd_a, fd_b)

    def pipe(self, site=None):
        result = yield from self._checked("pipe", site=site)
        return result.aux  # (read_fd, write_fd)

    # -- epoll ---------------------------------------------------------------

    def epoll_create(self, site=None):
        result = yield from self._checked("epoll_create", site=site)
        return result.retval

    def epoll_ctl(self, epfd: int, op: int, fd: int, events: int,
                  site=None):
        result = yield from self._checked("epoll_ctl", epfd, op, fd, events,
                                          site=site)
        return result.retval

    def epoll_wait(self, epfd: int, max_events: int = 64,
                   timeout_ms: int = -1, site=None):
        result = yield from self._checked("epoll_wait", epfd, max_events,
                                          timeout_ms, site=site)
        return list(result.aux)  # [(fd, events), ...]

    # -- processes, threads --------------------------------------------------

    def fork(self, child_main: Callable, site=None):
        result = yield from self._checked("fork", child_main, site=site)
        return result.retval  # child pid

    def spawn_thread(self, thread_main: Callable, site=None):
        result = yield from self._checked("clone", CLONE_THREAD,
                                          thread_main, site=site)
        return result.retval  # tid

    def exit(self, status: int = 0, site=None):
        yield from self.syscall("exit_group", status, site=site)

    def wait4(self, pid: int = -1, site=None):
        result = yield from self._checked("wait4", pid, site=site)
        return result.retval, (result.aux[0] if result.aux else 0)

    def kill(self, pid: int, sig: int, site=None):
        result = yield from self.syscall("kill", pid, sig, site=site)
        return result.retval

    def getpid(self, site=None):
        result = yield from self.syscall("getpid", site=site)
        return result.retval

    def sigaction(self, sig: int, handler, site=None):
        result = yield from self.syscall("rt_sigaction", sig, handler,
                                         site=site)
        return result.retval

    # -- identity -------------------------------------------------------------

    def getuid(self, site=None):
        result = yield from self.syscall("getuid", site=site)
        return result.retval

    def geteuid(self, site=None):
        result = yield from self.syscall("geteuid", site=site)
        return result.retval

    def getgid(self, site=None):
        result = yield from self.syscall("getgid", site=site)
        return result.retval

    def getegid(self, site=None):
        result = yield from self.syscall("getegid", site=site)
        return result.retval

    def issetugid(self, site=None):
        result = yield from self.syscall("issetugid", site=site)
        return result.retval

    # -- time -----------------------------------------------------------------

    def time(self, site=None):
        result = yield from self.syscall("time", site=site)
        return result.retval

    def gettimeofday(self, site=None):
        result = yield from self.syscall("gettimeofday", site=site)
        return result.aux  # (seconds, micros)

    def clock_gettime(self, site=None):
        result = yield from self.syscall("clock_gettime", site=site)
        return result.aux  # (seconds, nanos)

    def nanosleep(self, ps: int, site=None):
        result = yield from self.syscall("nanosleep", ps, site=site)
        return result.retval

    # -- memory ----------------------------------------------------------------

    def mmap(self, length: int, site=None):
        result = yield from self._checked("mmap", 0, length, site=site)
        return result.retval

    def brk(self, addr: int = 0, site=None):
        result = yield from self.syscall("brk", addr, site=site)
        return result.retval

    # -- misc --------------------------------------------------------------------

    def getrandom(self, size: int, site=None):
        result = yield from self._checked("getrandom", size, site=site,
                                          nbytes=size)
        return result.data

    def futex(self, op: int = 0, site=None):
        result = yield from self.syscall("futex", op, site=site)
        return result.retval
