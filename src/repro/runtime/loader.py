"""Loader: maps a version's image, the vDSO and the monitor library into
a fresh address space and runs the binary rewriter over everything —
the monitor-side half of Figure 2's per-version setup."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.isa.assembler import assemble, assemble_with_symbols
from repro.isa.memory import AddressSpace, Segment
from repro.rewriter.patchset import KIND_VDSO
from repro.rewriter.rewriter import BinaryRewriter
from repro.rewriter.vdso import rewrite_vdso
from repro.runtime.image import Image, VDSO_SYMBOLS, site_label

#: Each vDSO function occupies one 16-byte slot.
_VDSO_SLOT = 16


def build_vdso_source() -> str:
    lines = []
    for index, symbol in enumerate(VDSO_SYMBOLS):
        lines.append(f"{symbol}:")
        lines.append(f"vsys {index}")
        lines.append("ret")
        lines += ["nop"] * (_VDSO_SLOT - 3)
    return "\n".join(lines)


@dataclass
class LoadedImage:
    """Result of loading + rewriting one version."""

    image: Image
    space: AddressSpace
    rewriter: BinaryRewriter
    entry: int
    stack_top: int
    vdso_symbols: Dict[str, int]
    site_addrs: Dict[str, int]
    #: site name → dispatch kind ('jmp' | 'int' | 'vdso'), consumed by
    #: the task's syscall gate.
    patch_kinds: Dict[str, str]

    def make_cpu(self, name: str = "cpu", translate: bool = True):
        """Convenience: a Cpu positioned at this image's entry point.

        Created *after* rewriting, so the translation cache sees the
        patched text from the start; later patches are caught by the
        segment-version invalidation instead.
        """
        from repro.isa.cpu import Cpu
        return Cpu(self.space, self.entry, self.stack_top, name=name,
                   translate=translate)


def load_image(image: Image, seed: int = 0,
               stack_size: int = 0x4000) -> LoadedImage:
    """Load one version and selectively rewrite it (§3.1-§3.2)."""
    space = AddressSpace()
    rewriter = BinaryRewriter(space, auto=False)
    rewriter.install_entry_point()

    # Map the vDSO at a (mildly) randomised address — the kernel hands
    # its base over via AT_SYSINFO_EHDR (§3.2.1).
    vdso_base = 0x6000_0000 + (seed % 64) * 0x1000
    vdso_code = assemble(build_vdso_source(), origin=vdso_base)
    vdso_segment = space.map(Segment(vdso_base, vdso_code, perms="rx",
                                     name="vdso"))
    vdso_symbols = {name: vdso_base + i * _VDSO_SLOT
                    for i, name in enumerate(VDSO_SYMBOLS)}

    # Assemble and map the text segment, then rewrite it.
    source = image.render(vdso_symbols)
    code, labels = assemble_with_symbols(source, origin=image.text_addr)
    text = space.map(Segment(image.text_addr, code, perms="rx", name="text"))

    stack_top = 0x7FFF_0000
    space.map(Segment(stack_top - stack_size, bytes(stack_size),
                      perms="rw", name="stack"))

    rewriter.rewrite_segment(text)
    rewrite_vdso(rewriter, vdso_segment, vdso_symbols)

    site_addrs: Dict[str, int] = {}
    patch_kinds: Dict[str, str] = {}
    for site in image.sites:
        if site.vdso is not None:
            patch_kinds[site.name] = KIND_VDSO
            site_addrs[site.name] = labels.get(site_label(site.name), -1)
            continue
        addr = labels[site_label(site.name)]
        site_addrs[site.name] = addr
        patched = rewriter.patchset.by_addr.get(addr)
        if patched is not None:
            patch_kinds[site.name] = patched.kind
    entry = labels.get("entry", image.text_addr)
    loaded = LoadedImage(image=image, space=space, rewriter=rewriter,
                         entry=entry, stack_top=stack_top,
                         vdso_symbols=vdso_symbols, site_addrs=site_addrs,
                         patch_kinds=patch_kinds)
    # Pre-translate the entry block of the rewritten text: catches a
    # rewriter patch that left undecodable bytes on the entry path at
    # load time rather than first dispatch, and surfaces real
    # translation activity in the `tcache.*` sweep metrics.
    check_cpu = loaded.make_cpu(name=f"{image.name}-loadcheck")
    check_cpu.tcache.lookup(check_cpu)
    return loaded
