"""VX86 image construction for simulated applications.

Every application carries a generated text segment whose system-call
sites mirror the app's syscall mix; the coordinator genuinely loads and
rewrites this image, and the resulting per-site patch kinds (JMP detour
vs INT0 fallback vs vDSO stub) decide the dispatch cost of each call the
application later makes at that site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import RewriteError
from repro.kernel.uapi import SYSCALL_NUMBERS

#: The virtual syscalls exposed through the vDSO segment, in layout order
#: (16 bytes per function).
VDSO_SYMBOLS = ("time", "gettimeofday", "clock_gettime", "getcpu")


@dataclass(frozen=True)
class SiteSpec:
    """One static system-call site in an application's text."""

    name: str
    syscall: str = "default"
    #: Emit surrounding code with a branch target inside the patch
    #: window, forcing the INT0 fallback (§3.2).
    force_int: bool = False
    #: This site is a call into the named vDSO function instead of a
    #: syscall instruction (§3.2.1).
    vdso: Optional[str] = None


@dataclass
class Image:
    """An ELF-like executable: source template + site metadata.

    The template contains ``{vdso_<symbol>}`` placeholders resolved by
    the loader once it knows where the kernel mapped the vDSO.
    """

    name: str
    source_template: str
    sites: List[SiteSpec] = field(default_factory=list)
    text_addr: int = 0x0040_0000
    interp: Optional[str] = "ld-linux.so"

    def render(self, vdso_symbols: Dict[str, int]) -> str:
        values = {f"vdso_{name}": addr
                  for name, addr in vdso_symbols.items()}
        try:
            return self.source_template.format(**values)
        except KeyError as exc:
            raise RewriteError(f"{self.name}: unresolved vDSO ref {exc}")


def site_label(name: str) -> str:
    return f"site_{name}"


def build_image(name: str, sites: List[SiteSpec]) -> Image:
    """Generate a realistic text image containing the given sites."""
    lines: List[str] = ["entry:"]
    for index, site in enumerate(sites):
        if site.vdso is not None:
            if site.vdso not in VDSO_SYMBOLS:
                raise RewriteError(f"unknown vDSO symbol {site.vdso!r}")
            lines += [
                f"movi rbx, {{vdso_{site.vdso}}}",
                f"{site_label(site.name)}:",
                "callr rbx",
                "mov rbx, rax",
            ]
            continue
        nr = SYSCALL_NUMBERS.get(site.syscall,
                                 SYSCALL_NUMBERS.get(site.name, 0))
        if site.force_int:
            # The instruction right after the syscall is a branch target,
            # so the 5-byte JMP cannot be placed: INT0 fallback.
            lines += [
                "movi rcx, 1",
                f"movi rax, {nr}",
                f"{site_label(site.name)}:",
                "syscall",
                f"after_{index}:",
                "nop",
                "nop",
                "nop",
                "nop",
                "subi rcx, 1",
                f"jnz after_{index}",
            ]
        else:
            lines += [
                f"movi rax, {nr}",
                f"{site_label(site.name)}:",
                "syscall",
                "mov rbx, rax",
                "nop",
                "nop",
                "nop",
            ]
    lines.append("hlt")
    return Image(name=name, source_template="\n".join(lines),
                 sites=list(sites))


def image_for_syscalls(name: str, syscall_names,
                       int_fraction: float = 0.0) -> Image:
    """Convenience: one patchable site per syscall name (optionally a
    fraction of sites forced onto the INT0 path, for ablations)."""
    sites = []
    threshold = int(len(list(syscall_names)) * int_fraction)
    for i, sc in enumerate(syscall_names):
        vdso = sc if sc in VDSO_SYMBOLS else None
        sites.append(SiteSpec(name=sc, syscall=sc, vdso=vdso,
                              force_int=(vdso is None and i < threshold)))
    return build_image(name, sites)
