"""Exception hierarchy shared across the whole reproduction.

Every layer (simulator, kernel, ISA, rewriter, BPF machine, Varan core)
raises exceptions derived from :class:`ReproError` so callers can catch
library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class DeadlockError(SimulationError):
    """The simulator ran out of events while processes were still blocked."""


class ProcessKilled(ReproError):
    """Thrown into a simulated process that is being killed.

    Kernel tasks translate this into an exit with the appropriate status;
    it intentionally does *not* derive from the errors user programs are
    expected to catch.
    """


class KernelError(ReproError):
    """The simulated kernel was driven into an invalid state."""


class IsaError(ReproError):
    """Base class for VX86 ISA errors."""


class AssemblyError(IsaError):
    """The assembler rejected a source program."""


class DisassemblyError(IsaError):
    """The disassembler hit an undecodable byte sequence."""


class ExecutionFault(IsaError):
    """The VX86 interpreter faulted (bad opcode, bad memory access)."""


class RewriteError(ReproError):
    """The binary rewriter could not process a text segment."""


class BpfError(ReproError):
    """Base class for BPF machine errors."""


class BpfVerifierError(BpfError):
    """A BPF program failed static verification."""


class BpfRuntimeError(BpfError):
    """A BPF program faulted while being interpreted."""


class NvxError(ReproError):
    """Base class for NVX monitor errors."""


class DivergenceError(NvxError):
    """A follower diverged from the leader's event stream and no rewrite
    rule allowed the divergence."""


class FailoverError(NvxError):
    """Transparent failover could not be completed."""


class RecordReplayError(ReproError):
    """The record-replay clients hit a malformed or truncated log."""
