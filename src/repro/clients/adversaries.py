"""Byzantine client actors for the scenario fuzzer.

The open-loop plane (:mod:`repro.clients.loadgen`) models *well-behaved*
clients: they send complete requests and read every response.  Real
deployments also face the other kind — and the MVEE literature (see
PAPERS.md) is explicit that adversarial inputs and benign divergences
are where N-version monitors actually break.  This module supplies that
traffic as deterministic actors riding the same placement machinery as
the load plane:

* ``slowloris``   — hold a connection and drip a request byte-by-byte,
  hogging server accept slots without ever completing quickly;
* ``oversize``    — requests far beyond the server's ``recv_size``, so
  parsing happens across many buffered reads;
* ``truncate``    — send half a request, then abruptly close; reconnect
  and do it again (tears down parse state mid-request);
* ``protocol``    — legal-looking but abusive commands: unknown verbs,
  missing arguments, type confusion, and the HMGET-on-missing-hash that
  segfaults the buggy Redis revision (paper §5.1, issue 344);
* ``flood``       — terminator-free random bytes at high rate, with only
  occasional drains of the response socket;
* ``reconnect``   — connect/close storms that churn the accept loop.

Every actor draws from its own seeded stream (same derivation shape as
the load plane) and runs until a sim-time deadline, so a given
``(mix, seed, duration)`` produces the identical byte sequence on every
run — which is what lets the fuzz journal be byte-identical per seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.clients.base import connect_with_retry, recv_until
from repro.costmodel import MS_PS, SEC_PS, US_PS
from repro.kernel.uapi import SysError

__all__ = ["ADVERSARIES", "AdversaryStats", "make_adversaries"]

#: The default mix, in canonical order.
ADVERSARIES = ("slowloris", "oversize", "truncate", "protocol",
               "flood", "reconnect")

#: Per-behaviour stream salt (any fixed distinct constants work; these
#: keep streams independent without hashing strings).
_SALTS = {name: 0x51AB_0000 + i for i, name in enumerate(ADVERSARIES)}


@dataclass
class AdversaryStats:
    """What the fleet did to the server (deterministic counters)."""

    connections: int = 0
    requests_sent: int = 0
    bytes_sent: int = 0
    #: Connections torn down mid-request (truncate + storm closes).
    aborts: int = 0
    #: Requests the server answered with an error line.
    rejected: int = 0
    #: Send/recv attempts that failed at the socket layer (the server
    #: side vanished — e.g. a crashed leader before failover finished).
    socket_errors: int = 0


def _deadline(ctx, deadline_ps: int) -> bool:
    return ctx.sim.now >= deadline_ps


def _reconnect(ctx, fd, addr):
    yield from ctx.close(fd)
    return (yield from connect_with_retry(ctx, addr, attempts=50))


def _adv_slowloris(ctx, rng, stats, addr, deadline_ps):
    fd = yield from connect_with_retry(ctx, addr)
    stats.connections += 1
    request = b"SET loris:key " + bytes([rng.randrange(97, 123)]) * 8 \
        + b"\r\n"
    while not _deadline(ctx, deadline_ps):
        for i in range(len(request)):
            if _deadline(ctx, deadline_ps):
                break
            try:
                yield from ctx.send(fd, request[i:i + 1])
            except SysError:
                stats.socket_errors += 1
                fd = yield from _reconnect(ctx, fd, addr)
                stats.connections += 1
                break
            stats.bytes_sent += 1
            yield from ctx.nanosleep(rng.randint(5, 40) * MS_PS)
        else:
            stats.requests_sent += 1
            try:
                yield from recv_until(ctx, fd, b"\r\n")
            except SysError:
                stats.socket_errors += 1
    yield from ctx.close(fd)
    return stats.requests_sent


def _adv_oversize(ctx, rng, stats, addr, deadline_ps):
    fd = yield from connect_with_retry(ctx, addr)
    stats.connections += 1
    while not _deadline(ctx, deadline_ps):
        size = rng.randint(6_000, 20_000)  # far beyond recv_size=4096
        body = bytes([rng.randrange(97, 123)]) * size
        line = b"SET big:key " + body + b"\r\n"
        try:
            for off in range(0, len(line), 4096):
                yield from ctx.send(fd, line[off:off + 4096])
            stats.bytes_sent += len(line)
            stats.requests_sent += 1
            response = yield from recv_until(ctx, fd, b"\r\n")
            if response.startswith(b"-"):
                stats.rejected += 1
        except SysError:
            stats.socket_errors += 1
            fd = yield from _reconnect(ctx, fd, addr)
            stats.connections += 1
        yield from ctx.nanosleep(rng.randint(2, 20) * MS_PS)
    yield from ctx.close(fd)
    return stats.requests_sent


def _adv_truncate(ctx, rng, stats, addr, deadline_ps):
    fragments = (b"SET trunc:key val", b"GET trunc", b"HMGET h f1 f",
                 b"LPUSH l", b"PIN")
    while not _deadline(ctx, deadline_ps):
        fd = yield from connect_with_retry(ctx, addr)
        stats.connections += 1
        fragment = fragments[rng.randrange(len(fragments))]
        try:
            yield from ctx.send(fd, fragment)  # no terminator, ever
            stats.bytes_sent += len(fragment)
        except SysError:
            stats.socket_errors += 1
        yield from ctx.close(fd)  # tear down mid-request
        stats.aborts += 1
        yield from ctx.nanosleep(rng.randint(3, 30) * MS_PS)
    return stats.aborts


def _adv_protocol(ctx, rng, stats, addr, deadline_ps):
    abuse = (b"FROBNICATE a b c\r\n",        # unknown verb
             b"SET onlykey\r\n",             # missing argument
             b"INCR proto:str\r\n",          # type confusion (see SET)
             b"SET proto:str notanint\r\n",
             b"HMGET missinghash f1 f2\r\n",  # issue-344 crash trigger
             b"GET\r\n")
    fd = yield from connect_with_retry(ctx, addr)
    stats.connections += 1
    while not _deadline(ctx, deadline_ps):
        line = abuse[rng.randrange(len(abuse))]
        try:
            yield from ctx.send(fd, line)
            stats.bytes_sent += len(line)
            stats.requests_sent += 1
            response = yield from recv_until(ctx, fd, b"\r\n")
            if response.startswith(b"-"):
                stats.rejected += 1
            if not response:
                stats.socket_errors += 1
                fd = yield from _reconnect(ctx, fd, addr)
                stats.connections += 1
        except SysError:
            stats.socket_errors += 1
            fd = yield from _reconnect(ctx, fd, addr)
            stats.connections += 1
        yield from ctx.nanosleep(rng.randint(1, 15) * MS_PS)
    yield from ctx.close(fd)
    return stats.requests_sent


def _adv_flood(ctx, rng, stats, addr, deadline_ps):
    fd = yield from connect_with_retry(ctx, addr)
    stats.connections += 1
    while not _deadline(ctx, deadline_ps):
        burst = bytes(rng.randrange(33, 127) for _ in range(
            rng.randint(200, 1200)))
        try:
            yield from ctx.send(fd, burst)
            stats.bytes_sent += len(burst)
            stats.requests_sent += 1
            # Drain occasionally so the server's writes never wedge the
            # whole accept loop behind one saturated socket.
            if rng.random() < 0.33:
                yield from ctx.recv(fd, 4096)
        except SysError:
            stats.socket_errors += 1
            fd = yield from _reconnect(ctx, fd, addr)
            stats.connections += 1
        yield from ctx.nanosleep(rng.randint(500, 4000) * US_PS)
    yield from ctx.close(fd)
    return stats.requests_sent


def _adv_reconnect(ctx, rng, stats, addr, deadline_ps):
    while not _deadline(ctx, deadline_ps):
        fd = yield from connect_with_retry(ctx, addr)
        stats.connections += 1
        if rng.random() < 0.25:
            try:
                yield from ctx.send(fd, b"PING\r\n")
                stats.bytes_sent += 6
                stats.requests_sent += 1
                yield from recv_until(ctx, fd, b"\r\n")
            except SysError:
                stats.socket_errors += 1
        yield from ctx.close(fd)
        stats.aborts += 1
        yield from ctx.nanosleep(rng.randint(200, 2500) * US_PS)
    return stats.connections


_BEHAVIOURS = {
    "slowloris": _adv_slowloris,
    "oversize": _adv_oversize,
    "truncate": _adv_truncate,
    "protocol": _adv_protocol,
    "flood": _adv_flood,
    "reconnect": _adv_reconnect,
}


def make_adversaries(mix: Tuple[str, ...] = ADVERSARIES, seed: int = 0,
                     server: str = "server", port: int = 6379,
                     machine: str = "client",
                     duration_ps: int = SEC_PS
                     ) -> Tuple[List[Tuple[str, str, object]],
                                AdversaryStats]:
    """Build the byzantine fleet.

    Returns ``(placements, stats)`` where ``placements`` are
    ``(machine_name, actor_name, main)`` triples ready for
    :func:`repro.clients.loadgen.spawn_pool`, and ``stats`` aggregates
    the whole fleet's counters.  One actor per mix entry; repeat a name
    in ``mix`` to weight it.
    """
    unknown = sorted(set(mix) - set(_BEHAVIOURS))
    if unknown:
        raise ValueError(f"unknown adversaries {unknown}; "
                         f"known: {sorted(_BEHAVIOURS)}")
    stats = AdversaryStats()
    addr = (server, port)
    placements = []
    for index, name in enumerate(mix):
        behaviour = _BEHAVIOURS[name]
        rng = random.Random((seed << 20)
                            ^ (index * 0x9E3779B1)
                            ^ _SALTS[name])

        def main(ctx, _behaviour=behaviour, _rng=rng):
            deadline_ps = ctx.sim.now + duration_ps
            try:
                return (yield from _behaviour(ctx, _rng, stats, addr,
                                              deadline_ps))
            except SysError:
                # The service died for good (every variant gone);
                # nothing left to torment.
                stats.socket_errors += 1
                return -1

        placements.append((machine, f"adv-{name}-{index}", main))
    return placements, stats
