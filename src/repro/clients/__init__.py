"""Client-side load generators (§4.2, §4.3, §5)."""

from repro.clients.base import ClientReport, connect_with_retry, recv_until
from repro.clients.tools import (
    REDIS_COMMANDS,
    make_apachebench,
    make_beanstalkd_benchmark,
    make_http_load,
    make_memslap,
    make_redis_benchmark,
    make_redis_command_probe,
    make_wrk,
)

__all__ = [
    "ClientReport",
    "connect_with_retry",
    "recv_until",
    "REDIS_COMMANDS",
    "make_apachebench",
    "make_beanstalkd_benchmark",
    "make_http_load",
    "make_memslap",
    "make_redis_benchmark",
    "make_redis_command_probe",
    "make_wrk",
]
