"""Client-side load generators (§4.2, §4.3, §5) and the open-loop
load-generation plane."""

from repro.clients.base import (
    ClientReport,
    LatencyDigest,
    connect_with_retry,
    recv_until,
)
from repro.clients.loadgen import (
    DEFAULT_CLASSES,
    LoadStats,
    OpenLoopConfig,
    RequestClass,
    make_open_loop,
    spawn_pool,
)
from repro.clients.topology import LoadTopology
from repro.clients.tools import (
    REDIS_COMMANDS,
    make_apachebench,
    make_beanstalkd_benchmark,
    make_http_load,
    make_memslap,
    make_redis_benchmark,
    make_redis_command_probe,
    make_wrk,
)

__all__ = [
    "ClientReport",
    "LatencyDigest",
    "connect_with_retry",
    "recv_until",
    "DEFAULT_CLASSES",
    "LoadStats",
    "LoadTopology",
    "OpenLoopConfig",
    "RequestClass",
    "make_open_loop",
    "spawn_pool",
    "REDIS_COMMANDS",
    "make_apachebench",
    "make_beanstalkd_benchmark",
    "make_http_load",
    "make_memslap",
    "make_redis_benchmark",
    "make_redis_command_probe",
    "make_wrk",
]
