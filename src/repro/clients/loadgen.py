"""Actor-based open-loop load-generation plane.

The §4/§5 benchmark tools (:mod:`repro.clients.tools`) are
*closed-loop*: each client waits for a response before issuing the next
request, so a slow server quietly throttles its own offered load and
the measured latencies suffer coordinated omission.  This module drives
the opposite design, the one production load tests use:

* **Open-loop arrivals.**  Each pooled actor draws request arrival
  times from its own seeded RNG — Poisson (exponential gaps) or
  uniform (constant gaps, phase-staggered across the pool) — and the
  schedule never slows down because the server is slow.  Latency is
  measured from the *scheduled* arrival, not the send, so queueing
  delay behind a late response is charged to the server (the wrk2
  coordinated-omission correction).
* **A pooled actor plane.**  Thousands of client actors spread over a
  :class:`~repro.clients.topology.LoadTopology` of load-generator
  machines, each with connection churn (periodic reconnects) and a
  per-request retransmit watchdog that is scheduled on issue and
  cancelled on response — the lazily-cancelled timer population this
  pattern leaves behind is precisely the load the sharded engine's
  compaction exists for.
* **Bounded, per-class measurement.**  Results land in a
  :class:`~repro.clients.base.ClientReport` whose digests give
  p50/p99/p999 per request class without holding per-sample lists.

Everything is deterministic: the same topology, config and seed yield
byte-identical reports on either engine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.clients.base import ClientReport, connect_with_retry, recv_until
from repro.costmodel import SEC_PS, US_PS
from repro.errors import NvxError
from repro.kernel.uapi import SysError

__all__ = ["RequestClass", "OpenLoopConfig", "LoadStats",
           "make_open_loop", "spawn_pool", "DEFAULT_CLASSES"]


@dataclass(frozen=True)
class RequestClass:
    """One request shape in the offered mix."""

    name: str
    line: bytes
    terminator: bytes = b"\r\n"
    weight: int = 1


#: A redis-benchmark-flavoured default mix: cheap pings, mid-cost reads,
#: heavier writes.
DEFAULT_CLASSES = (
    RequestClass("ping", b"PING\r\n", weight=2),
    RequestClass("get", b"GET lg:key\r\n", weight=2),
    RequestClass("set", b"SET lg:key v\r\n", weight=1),
)


@dataclass(frozen=True)
class OpenLoopConfig:
    """Offered load and client behaviour for one run."""

    #: Aggregate offered load over the whole pool, requests per
    #: (virtual) second.
    rate_rps: float = 50_000.0
    #: How long arrivals keep coming, from each actor's first schedule.
    duration_ps: int = 2 * SEC_PS
    #: "poisson" (exponential gaps) or "uniform" (constant gaps).
    arrivals: str = "poisson"
    seed: int = 0
    #: Reconnect after this many requests (0 disables churn).
    churn_every: int = 64
    #: Per-request retransmit watchdog; fires only if the response is
    #: slower than this (counted, never aborts the wait).
    timeout_ps: int = 50_000 * US_PS
    classes: Tuple[RequestClass, ...] = DEFAULT_CLASSES

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise NvxError(f"offered load must be > 0: {self.rate_rps}")
        if self.arrivals not in ("poisson", "uniform"):
            raise NvxError(f"unknown arrival process {self.arrivals!r} "
                           f"(choose 'poisson' or 'uniform')")
        if not self.classes:
            raise NvxError("need at least one request class")


@dataclass
class LoadStats:
    """Plane-level counters the report's digests don't cover."""

    timeouts: int = 0
    reconnects: int = 0
    #: Arrivals issued after their scheduled instant had already passed
    #: (the actor was still waiting on the previous response).
    late_arrivals: int = 0


def _class_of(config: OpenLoopConfig, index: int) -> RequestClass:
    """Deterministic weighted class assignment for actor ``index``."""
    expanded: List[RequestClass] = []
    for cls in config.classes:
        expanded.extend([cls] * max(1, cls.weight))
    return expanded[index % len(expanded)]


def make_open_loop(topology, config: OpenLoopConfig, port: int = 6379):
    """Build the actor pool.

    Returns ``(placements, report, stats)`` where ``placements`` is a
    list of ``(machine_name, actor_name, main)`` ready for
    :func:`spawn_pool`, and ``report``/``stats`` aggregate the whole
    pool's measurements.
    """
    report = ClientReport(name="open-loop")
    stats = LoadStats()
    mean_gap_ps = int(topology.clients * SEC_PS / config.rate_rps)
    if mean_gap_ps < 1:
        raise NvxError("offered load too high for pool size: "
                       f"{config.rate_rps} rps over {topology.clients}")

    def make_actor(index: int):
        cls = _class_of(config, index)
        # Independent per-actor stream: deterministic, and stable under
        # changes to the pool size ordering.
        rng = random.Random((config.seed << 24) ^ (index * 0x9E3779B1))
        poisson = config.arrivals == "poisson"
        # Phase-stagger the first arrival so "uniform" offers a flat
        # aggregate rate rather than a thundering herd.
        first_gap = (int(rng.expovariate(1.0) * mean_gap_ps) if poisson
                     else 1 + (index * mean_gap_ps) // topology.clients)

        def main(ctx):
            sim = ctx.sim
            fd = yield from connect_with_retry(ctx,
                                               (topology.server, port))
            next_at = sim.now + first_gap
            deadline = sim.now + config.duration_ps
            since_churn = 0
            while next_at < deadline:
                if sim.now < next_at:
                    yield from ctx.nanosleep(next_at - sim.now)
                else:
                    stats.late_arrivals += 1
                pending = [True]

                def on_timeout(p=pending):
                    if p[0]:
                        stats.timeouts += 1

                watchdog = sim.schedule(config.timeout_ps, on_timeout)
                try:
                    yield from ctx.send(fd, cls.line)
                    response = yield from recv_until(ctx, fd,
                                                     cls.terminator)
                except SysError:
                    response = b""
                pending[0] = False
                watchdog.cancel()
                if not response:
                    report.errors += 1
                    yield from ctx.close(fd)
                    fd = yield from connect_with_retry(
                        ctx, (topology.server, port))
                    stats.reconnects += 1
                else:
                    # Coordinated-omission corrected: charge from the
                    # scheduled arrival, not the (possibly late) send.
                    report.observe(sim.now - next_at, command=cls.name,
                                   now=sim.now)
                since_churn += 1
                if config.churn_every and since_churn >= config.churn_every:
                    yield from ctx.close(fd)
                    fd = yield from connect_with_retry(
                        ctx, (topology.server, port))
                    stats.reconnects += 1
                    since_churn = 0
                gap = (int(rng.expovariate(1.0) * mean_gap_ps) if poisson
                       else mean_gap_ps)
                next_at += max(1, gap)
            yield from ctx.close(fd)
            return report.requests

        return main

    placements = [(machine, f"c{index}", make_actor(index))
                  for index, machine in topology.placements()]
    return placements, report, stats


def spawn_pool(world, placements) -> None:
    """Spawn every pool actor on its topology-assigned machine."""
    for machine_name, actor_name, main in placements:
        world.kernel.spawn_task(world.machine(machine_name), main,
                                name=actor_name)
