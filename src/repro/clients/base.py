"""Shared machinery for the client-side load generators.

All measurements are client-side, like the paper's: the client machine
sits in the same rack as the server, the worst case for monitor
overhead since network latency hides nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.costmodel import SEC_PS, US_PS
from repro.kernel.uapi import ECONNREFUSED, SysError


@dataclass
class ClientReport:
    """What a load generator measured."""

    name: str
    requests: int = 0
    errors: int = 0
    started_ps: Optional[int] = None
    finished_ps: Optional[int] = None
    latencies_ps: List[int] = field(default_factory=list)
    #: Per-command latency samples (redis-benchmark style).
    per_command: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def duration_ps(self) -> int:
        if self.started_ps is None or self.finished_ps is None:
            return 0
        return max(1, self.finished_ps - self.started_ps)

    @property
    def throughput_rps(self) -> float:
        return self.requests * SEC_PS / self.duration_ps

    def latency_avg_us(self) -> float:
        if not self.latencies_ps:
            return 0.0
        return sum(self.latencies_ps) / len(self.latencies_ps) / US_PS

    def latency_percentile_us(self, pct: float) -> float:
        if not self.latencies_ps:
            return 0.0
        ordered = sorted(self.latencies_ps)
        index = min(len(ordered) - 1, int(pct / 100.0 * len(ordered)))
        return ordered[index] / US_PS

    def command_avg_us(self, command: str) -> float:
        samples = self.per_command.get(command, [])
        if not samples:
            return 0.0
        return sum(samples) / len(samples) / US_PS

    def observe(self, latency_ps: int, command: Optional[str] = None,
                now: Optional[int] = None) -> None:
        self.requests += 1
        self.latencies_ps.append(latency_ps)
        if command is not None:
            self.per_command.setdefault(command, []).append(latency_ps)
        if now is not None:
            if self.started_ps is None:
                self.started_ps = now - latency_ps
            self.finished_ps = now


def connect_with_retry(ctx, addr, attempts: int = 200,
                       backoff_ps: int = 200 * US_PS):
    """Generator: connect, retrying while the server is still booting."""
    for _ in range(attempts):
        fd = yield from ctx.socket()
        result = yield from ctx.syscall("connect", fd, addr)
        if result.retval == 0:
            return fd
        yield from ctx.close(fd)
        if result.retval != -ECONNREFUSED:
            raise SysError(-result.retval, "connect")
        yield from ctx.nanosleep(backoff_ps)
    raise SysError(ECONNREFUSED, "connect")


def recv_until(ctx, fd, terminator: bytes, limit: int = 1 << 16):
    """Generator: read until ``terminator`` appears (or EOF)."""
    buffer = b""
    while terminator not in buffer and len(buffer) < limit:
        data = yield from ctx.recv(fd, 4096)
        if not data:
            break
        buffer += data
    return buffer
