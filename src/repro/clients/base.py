"""Shared machinery for the client-side load generators.

All measurements are client-side, like the paper's: the client machine
sits in the same rack as the server, the worst case for monitor
overhead since network latency hides nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.costmodel import SEC_PS, US_PS
from repro.kernel.uapi import ECONNREFUSED, SysError
from repro.obs.metrics import Histogram


class LatencyDigest:
    """Bounded latency accumulator: a power-of-two histogram plus a
    fixed-size reservoir sample.

    A 10k-client open-loop run observes millions of latencies; keeping
    them all in a list (the old ``ClientReport.latencies_ps``) holds
    megabytes of ints per report.  The digest is O(limit): averages come
    from the histogram's exact count/total, and percentiles come from
    the reservoir — *exact* while ``count <= limit`` (every sample is
    retained, which is what the tests rely on), and interpolated within
    the matching power-of-two bucket beyond that.

    Reservoir replacement draws from a digest-local seeded RNG, so a
    deterministic observation sequence yields a deterministic digest —
    runs stay byte-for-byte reproducible.
    """

    __slots__ = ("hist", "reservoir", "limit", "_rng")

    def __init__(self, limit: int = 4096) -> None:
        self.hist = Histogram()
        self.reservoir: list = []
        self.limit = limit
        self._rng = random.Random(0x1A7E)

    @property
    def count(self) -> int:
        return self.hist.count

    @property
    def total(self) -> int:
        return self.hist.total

    def observe(self, value: int) -> None:
        self.hist.observe(value)
        if len(self.reservoir) < self.limit:
            self.reservoir.append(value)
        else:
            # Algorithm R: each of the count samples ends up retained
            # with probability limit/count.
            slot = self._rng.randrange(self.hist.count)
            if slot < self.limit:
                self.reservoir[slot] = value

    def avg_ps(self) -> float:
        if not self.hist.count:
            return 0.0
        return self.hist.total / self.hist.count

    def percentile_ps(self, pct: float) -> float:
        count = self.hist.count
        if not count:
            return 0.0
        if count <= self.limit:
            ordered = sorted(self.reservoir)
            index = min(count - 1, int(pct / 100.0 * count))
            return float(ordered[index])
        # Walk the histogram to the bucket holding the requested rank
        # and interpolate linearly inside its value range.
        rank = min(count - 1, int(pct / 100.0 * count))
        cumulative = 0
        for bucket, bucket_count in sorted(self.hist.buckets.items()):
            if cumulative + bucket_count > rank:
                low = 1 << (bucket - 1) if bucket > 0 else 0
                high = (1 << bucket) - 1 if bucket > 0 else 0
                if bucket_count == 1 or high <= low:
                    return float(low)
                fraction = (rank - cumulative) / (bucket_count - 1)
                return low + fraction * (high - low)
            cumulative += bucket_count
        return float(self.hist.max or 0)

    def snapshot(self) -> dict:
        return self.hist.snapshot()


@dataclass
class ClientReport:
    """What a load generator measured.

    Latency samples live in bounded :class:`LatencyDigest`s (overall
    and per command), not unbounded lists — see the digest docstring.
    """

    name: str
    requests: int = 0
    errors: int = 0
    started_ps: Optional[int] = None
    finished_ps: Optional[int] = None
    latency: LatencyDigest = field(default_factory=LatencyDigest)
    #: Per-command latency digests (redis-benchmark style).
    per_command: Dict[str, LatencyDigest] = field(default_factory=dict)

    @property
    def duration_ps(self) -> int:
        if self.started_ps is None or self.finished_ps is None:
            return 0
        return max(1, self.finished_ps - self.started_ps)

    @property
    def throughput_rps(self) -> float:
        return self.requests * SEC_PS / self.duration_ps

    def latency_avg_us(self) -> float:
        return self.latency.avg_ps() / US_PS

    def latency_percentile_us(self, pct: float) -> float:
        return self.latency.percentile_ps(pct) / US_PS

    def command_avg_us(self, command: str) -> float:
        digest = self.per_command.get(command)
        return digest.avg_ps() / US_PS if digest is not None else 0.0

    def command_percentile_us(self, command: str, pct: float) -> float:
        digest = self.per_command.get(command)
        return (digest.percentile_ps(pct) / US_PS
                if digest is not None else 0.0)

    def observe(self, latency_ps: int, command: Optional[str] = None,
                now: Optional[int] = None) -> None:
        self.requests += 1
        self.latency.observe(latency_ps)
        if command is not None:
            digest = self.per_command.get(command)
            if digest is None:
                digest = self.per_command[command] = LatencyDigest()
            digest.observe(latency_ps)
        if now is not None:
            if self.started_ps is None:
                self.started_ps = now - latency_ps
            self.finished_ps = now


def connect_with_retry(ctx, addr, attempts: int = 200,
                       backoff_ps: int = 200 * US_PS):
    """Generator: connect, retrying while the server is still booting."""
    for _ in range(attempts):
        fd = yield from ctx.socket()
        result = yield from ctx.syscall("connect", fd, addr)
        if result.retval == 0:
            return fd
        yield from ctx.close(fd)
        if result.retval != -ECONNREFUSED:
            raise SysError(-result.retval, "connect")
        yield from ctx.nanosleep(backoff_ps)
    raise SysError(ECONNREFUSED, "connect")


def recv_until(ctx, fd, terminator: bytes, limit: int = 1 << 16):
    """Generator: read until ``terminator`` appears (or EOF)."""
    buffer = b""
    while terminator not in buffer and len(buffer) < limit:
        data = yield from ctx.recv(fd, 4096)
        if not data:
            break
        buffer += data
    return buffer
