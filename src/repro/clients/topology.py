"""Placement of pooled load-generator actors over client machines.

A load-generation run wants *thousands* of client actors, far more than
one simulated machine would realistically host.  A
:class:`LoadTopology` describes a pool of load-generator machines and
deterministically spreads the actor pool across them round-robin, so

* the actor → machine map is a pure function of the topology (no
  registration order dependence), and
* under the sharded engine each load-generator machine's actors land in
  that machine's shard, which is exactly the partition the engine wants.

The topology only *names* machines; the caller builds the
:class:`~repro.world.World` from :meth:`machine_names` and spawns each
actor on :meth:`machine_of` its index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import NvxError

__all__ = ["LoadTopology"]


@dataclass(frozen=True)
class LoadTopology:
    """A pool of ``clients`` actors spread over ``machines`` hosts.

    ``extra_machines`` names hosts the experiment needs besides the
    server and the load generators (remote-follower replicas, say);
    they are folded into :meth:`machine_names` so one topology fully
    determines the world.
    """

    clients: int = 1000
    machines: int = 4
    server: str = "server"
    prefix: str = "lg"
    extra_machines: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise NvxError(f"topology needs >= 1 client: {self.clients}")
        if self.machines < 1:
            raise NvxError(f"topology needs >= 1 machine: {self.machines}")

    def machine_names(self) -> Tuple[str, ...]:
        """Every machine the world must have, server first."""
        return ((self.server,) + self.extra_machines
                + tuple(f"{self.prefix}{i}" for i in range(self.machines)))

    def machine_of(self, index: int) -> str:
        """The load-generator machine hosting actor ``index``."""
        return f"{self.prefix}{index % self.machines}"

    def placements(self) -> Iterator[Tuple[int, str]]:
        """(actor index, machine name) for the whole pool."""
        for index in range(self.clients):
            yield index, self.machine_of(index)
