"""The client-side benchmark tools of §4 and §5.

Each ``make_*`` returns a list of generator functions (one per
concurrent client task) plus the shared :class:`ClientReport`.  The
defaults mirror the paper's workloads scaled by ``scale`` so the
discrete-event simulation stays fast; overhead ratios converge well
before the full workload sizes.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.clients.base import ClientReport, connect_with_retry, recv_until
from repro.costmodel import SEC_PS
from repro.kernel.uapi import SysError


def _spawn_set(name: str, count: int, body) -> Tuple[List[Callable],
                                                     ClientReport]:
    report = ClientReport(name=name)
    mains = [body(report, index) for index in range(count)]
    return mains, report


# -- HTTP tools --------------------------------------------------------------


def make_wrk(host: str = "server", port: int = 80, clients: int = 10,
             duration_ps: int = 10 * SEC_PS, scale: float = 1.0):
    """wrk: keep-alive connections driven for a fixed duration."""
    run_for = int(duration_ps * scale)

    def body(report, index):
        def main(ctx):
            fd = yield from connect_with_retry(ctx, (host, port))
            deadline = ctx.sim.now + run_for
            request = b"GET /index.html HTTP/1.1\r\n\r\n"
            while ctx.sim.now < deadline:
                start = ctx.sim.now
                yield from ctx.send(fd, request)
                response = yield from recv_until(ctx, fd, b"\r\n\r\n")
                if not response:
                    report.errors += 1
                    break
                body_len = _content_length(response)
                got = len(response.split(b"\r\n\r\n", 1)[1])
                while got < body_len:
                    more = yield from ctx.recv(fd, 4096)
                    if not more:
                        break
                    got += len(more)
                report.observe(ctx.sim.now - start, now=ctx.sim.now)
            yield from ctx.close(fd)
            return report.requests

        return main

    return _spawn_set("wrk", clients, body)


def make_apachebench(host: str = "server", port: int = 80,
                     requests: int = 10_000, concurrency: int = 10,
                     scale: float = 1.0):
    """ApacheBench: a fixed request count, one connection per request."""
    total = max(1, int(requests * scale))
    per_client = max(1, total // concurrency)

    def body(report, index):
        def main(ctx):
            for _ in range(per_client):
                start = ctx.sim.now
                try:
                    fd = yield from connect_with_retry(ctx, (host, port))
                except SysError:
                    report.errors += 1
                    continue
                yield from ctx.send(
                    fd, b"GET / HTTP/1.0\r\nConnection: close\r\n\r\n")
                yield from recv_until(ctx, fd, b"\r\n\r\n")
                yield from ctx.close(fd)
                report.observe(ctx.sim.now - start, now=ctx.sim.now)
            return report.requests

        return main

    return _spawn_set("ab", concurrency, body)


def make_http_load(host: str = "server", port: int = 80,
                   requests: int = 5_000, parallel: int = 10,
                   scale: float = 1.0):
    """http_load: parallel non-keepalive fetches (like ab, different
    pacing)."""
    mains, report = make_apachebench(host, port, requests, parallel, scale)
    report.name = "http_load"
    return mains, report


def _content_length(response: bytes) -> int:
    for line in response.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            return int(line.split(b":", 1)[1])
    return 0


# -- redis-benchmark -----------------------------------------------------------

#: The default redis-benchmark command mix (one request each per round).
REDIS_COMMANDS = (b"PING", b"SET", b"GET", b"INCR",
                  b"LPUSH", b"LPOP", b"SADD")


def make_redis_benchmark(host: str = "server", port: int = 6379,
                         clients: int = 50, requests: int = 10_000,
                         scale: float = 1.0, commands=REDIS_COMMANDS):
    """redis-benchmark: the default workload — 50 clients, 10 000
    requests per command type, average latency per command."""
    per_client = max(1, int(requests * scale) // clients)

    def body(report, index):
        def main(ctx):
            fd = yield from connect_with_retry(ctx, (host, port))
            for round_index in range(per_client):
                for command in commands:
                    key = b"key:%d" % ((index * 997 + round_index) % 1000)
                    if command == b"PING":
                        line = b"PING\r\n"
                    elif command in (b"SET",):
                        line = b"SET %s v%d\r\n" % (key, round_index)
                    elif command in (b"LPUSH", b"SADD"):
                        line = b"%s mylist item%d\r\n" % (command,
                                                          round_index)
                    elif command == b"LPOP":
                        line = b"LPOP mylist\r\n"
                    elif command == b"HMGET":
                        line = b"HMGET myhash %s\r\n" % key
                    else:
                        line = b"%s %s\r\n" % (command, key)
                    start = ctx.sim.now
                    yield from ctx.send(fd, line)
                    response = yield from recv_until(ctx, fd, b"\r\n")
                    if not response:
                        report.errors += 1
                        return report.requests
                    report.observe(ctx.sim.now - start,
                                   command=command.decode(),
                                   now=ctx.sim.now)
            yield from ctx.close(fd)
            return report.requests

        return main

    return _spawn_set("redis-benchmark", clients, body)


def make_redis_command_probe(command_line: bytes, host: str = "server",
                             port: int = 6379, warmup: int = 5):
    """Send one specific command and time it (the §5.1 HMGET probe)."""

    def body(report, index):
        def main(ctx):
            fd = yield from connect_with_retry(ctx, (host, port))
            for _ in range(warmup):
                yield from ctx.send(fd, b"PING\r\n")
                yield from recv_until(ctx, fd, b"\r\n")
            start = ctx.sim.now
            yield from ctx.send(fd, command_line)
            response = yield from recv_until(ctx, fd, b"\r\n")
            report.observe(ctx.sim.now - start, command="probe",
                           now=ctx.sim.now)
            if not response:
                report.errors += 1
            # A few follow-up commands to measure residual throughput.
            for _ in range(10):
                start = ctx.sim.now
                yield from ctx.send(fd, b"PING\r\n")
                if not (yield from recv_until(ctx, fd, b"\r\n")):
                    report.errors += 1
                    break
                report.observe(ctx.sim.now - start, command="after",
                               now=ctx.sim.now)
            yield from ctx.close(fd)
            return report.requests

        return main

    return _spawn_set("redis-probe", 1, body)


# -- memslap ----------------------------------------------------------------------


def make_memslap(host: str = "server", port: int = 11211,
                 initial_load: int = 10_000, executions: int = 10_000,
                 concurrency: int = 16, get_fraction: float = 0.9,
                 scale: float = 1.0):
    """memslap: initial key load, then a 90/10 get/set mix."""
    loads = max(1, int(initial_load * scale) // concurrency)
    runs = max(1, int(executions * scale) // concurrency)

    def body(report, index):
        def main(ctx):
            fd = yield from connect_with_retry(ctx, (host, port))
            for i in range(loads):
                key = b"k%d_%d" % (index, i)
                yield from ctx.send(fd, b"set %s %s\r\n" % (key, b"v" * 32))
                yield from recv_until(ctx, fd, b"\r\n")
            for i in range(runs):
                start = ctx.sim.now
                key = b"k%d_%d" % (index, i % loads)
                if i % 10 < int(get_fraction * 10):
                    yield from ctx.send(fd, b"get %s\r\n" % key)
                    response = yield from recv_until(ctx, fd, b"END\r\n")
                else:
                    yield from ctx.send(fd,
                                        b"set %s %s\r\n" % (key, b"w" * 32))
                    response = yield from recv_until(ctx, fd, b"\r\n")
                if not response:
                    report.errors += 1
                    break
                report.observe(ctx.sim.now - start, now=ctx.sim.now)
            yield from ctx.close(fd)
            return report.requests

        return main

    return _spawn_set("memslap", concurrency, body)


# -- beanstalkd-benchmark ------------------------------------------------------------


def make_beanstalkd_benchmark(host: str = "server", port: int = 11300,
                              workers: int = 10, pushes: int = 10_000,
                              payload: int = 256, scale: float = 1.0):
    """beanstalkd-benchmark: 10 workers × 10 000 pushes of 256 B."""
    per_worker = max(1, int(pushes * scale))
    body_bytes = b"j" * payload

    def body(report, index):
        def main(ctx):
            fd = yield from connect_with_retry(ctx, (host, port))
            for _ in range(per_worker):
                start = ctx.sim.now
                yield from ctx.send(fd, b"put %s\r\n" % body_bytes)
                response = yield from recv_until(ctx, fd, b"\r\n")
                if not response.startswith(b"INSERTED"):
                    report.errors += 1
                    break
                report.observe(ctx.sim.now - start, now=ctx.sim.now)
            yield from ctx.close(fd)
            return report.requests

        return main

    return _spawn_set("beanstalkd-benchmark", workers, body)
