"""Sockets, pipes and the pollable plumbing of the simulated kernel.

Stream sockets connect tasks on the same machine (loopback, UNIX domain)
or across the simulated rack link (see :mod:`repro.sim.network`).  All
buffers notify epoll watchers and blocked readers on state changes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.kernel.uapi import (
    EAGAIN,
    ECONNREFUSED,
    EPIPE,
    EPOLLHUP,
    EPOLLIN,
    EPOLLOUT,
    O_NONBLOCK,
)
from repro.kernel.vfs import FileDescription
from repro.sim.sync import WaitQueue


class Pollable(FileDescription):
    """A description whose readiness can change asynchronously."""

    def __init__(self, sim) -> None:
        super().__init__()
        self.sim = sim
        #: Epoll instances watching this description, in registration
        #: order.  A dict, not a set: ``poke`` iterates it and wakes
        #: waiters, and set order follows object addresses — two epolls
        #: ready at the same tick would wake their sleepers in a
        #: heap-layout-dependent order, breaking run-to-run determinism.
        self.watchers: Dict = {}
        self.read_waiters = WaitQueue(sim)
        self.write_waiters = WaitQueue(sim)

    def poke(self) -> None:
        """Notify blocked readers/writers and epoll watchers."""
        mask = self.poll_mask()
        if mask & (EPOLLIN | EPOLLHUP):
            self.read_waiters.notify_all()
        if mask & (EPOLLOUT | EPOLLHUP):
            self.write_waiters.notify_all()
        for epoll in list(self.watchers):
            epoll.poke(self)


class StreamBuffer:
    """One direction of a stream connection."""

    def __init__(self, limit: int = 1 << 20) -> None:
        self.chunks: Deque[bytes] = deque()
        self.size = 0
        self.limit = limit
        self.eof = False

    def push(self, data: bytes) -> None:
        if data:
            self.chunks.append(data)
            self.size += len(data)

    def pull(self, size: int) -> bytes:
        out = bytearray()
        while self.chunks and len(out) < size:
            chunk = self.chunks.popleft()
            take = size - len(out)
            if len(chunk) > take:
                out += chunk[:take]
                self.chunks.appendleft(chunk[take:])
            else:
                out += chunk
        self.size -= len(out)
        return bytes(out)


class StreamSocket(Pollable):
    """One endpoint of a connected byte stream."""

    kind = "socket"

    def __init__(self, sim, machine, network=None,
                 flags: int = 0) -> None:
        super().__init__(sim)
        self.machine = machine
        self.network = network
        self.peer: Optional["StreamSocket"] = None
        self.rx = StreamBuffer()
        self.flags = flags
        self.closed = False
        self.local_addr: Optional[Tuple[str, int]] = None
        self.remote_addr: Optional[Tuple[str, int]] = None
        self.bytes_in = 0
        self.bytes_out = 0
        #: Arrival time of our last transmission: later segments (and
        #: the FIN) must not overtake it (in-order stream delivery).
        self._last_tx_arrival = 0

    @property
    def nonblocking(self) -> bool:
        return bool(self.flags & O_NONBLOCK)

    def poll_mask(self) -> int:
        mask = 0
        if self.rx.size > 0 or self.rx.eof:
            mask |= EPOLLIN
        if self.peer is not None and not self.closed:
            mask |= EPOLLOUT
        if self.closed or (self.peer is None and self.rx.eof):
            mask |= EPOLLHUP
        return mask

    # -- data path -------------------------------------------------------

    def deliver(self, data: bytes) -> None:
        """Called at the *receiving* endpoint when bytes arrive."""
        self.rx.push(data)
        self.bytes_in += len(data)
        self.poke()

    def deliver_eof(self) -> None:
        self.rx.eof = True
        self.poke()

    def send_bytes(self, data: bytes) -> int:
        """Transmit to the peer. Returns bytes accepted or -errno."""
        if self.closed or self.peer is None:
            return -EPIPE
        peer = self.peer
        self.bytes_out += len(data)
        if self.network is not None and peer.machine is not self.machine:
            payload = bytes(data)
            self._last_tx_arrival = self.network.deliver(
                self.machine, peer.machine, len(payload),
                lambda: peer.deliver(payload),
                floor_ps=self._last_tx_arrival)
        else:
            peer.deliver(bytes(data))
        return len(data)

    def recv_bytes(self, size: int):
        """Generator: blocking receive. Returns bytes (b'' = EOF)."""
        while self.rx.size == 0 and not self.rx.eof:
            if self.nonblocking:
                return -EAGAIN
            yield from self.read_waiters.wait()
        return self.rx.pull(size)

    def shutdown_write(self) -> None:
        peer = self.peer
        if peer is None:
            return
        if self.network is not None and peer.machine is not self.machine:
            # The FIN rides the same ordered stream as the data.
            self._last_tx_arrival = self.network.deliver(
                self.machine, peer.machine, 0, peer.deliver_eof,
                floor_ps=self._last_tx_arrival)
        else:
            peer.deliver_eof()

    def on_last_close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.shutdown_write()
        if self.peer is not None:
            self.peer.peer = None
        self.poke()


class ListenerSocket(Pollable):
    """A bound, listening stream socket with an accept queue."""

    kind = "listener"

    def __init__(self, sim, machine, addr: Tuple[str, int],
                 backlog: int = 128, flags: int = 0) -> None:
        super().__init__(sim)
        self.machine = machine
        self.addr = addr
        self.backlog = backlog
        self.pending: Deque[StreamSocket] = deque()
        self.flags = flags
        self.closed = False

    def poll_mask(self) -> int:
        mask = EPOLLIN if self.pending else 0
        if self.closed:
            mask |= EPOLLHUP
        return mask

    def enqueue(self, server_end: StreamSocket) -> bool:
        if self.closed or len(self.pending) >= self.backlog:
            return False
        self.pending.append(server_end)
        self.poke()
        return True

    def accept_one(self):
        """Generator: blocking accept. Returns a StreamSocket or -errno."""
        while not self.pending:
            if self.closed:
                return -ECONNREFUSED
            if self.flags & O_NONBLOCK:
                return -EAGAIN
            yield from self.read_waiters.wait()
        return self.pending.popleft()

    def on_last_close(self) -> None:
        self.closed = True
        self.poke()


class PipeEnd(Pollable):
    """One end of an anonymous pipe (or of a UNIX socketpair)."""

    kind = "pipe"

    def __init__(self, sim, readable: bool) -> None:
        super().__init__(sim)
        self.readable = readable
        self.buffer: Optional[StreamBuffer] = None  # shared, set by make()
        self.other: Optional["PipeEnd"] = None
        self.closed = False
        #: Out-of-band queue for passed file descriptors (SCM_RIGHTS).
        self.fd_queue: Deque = deque()

    @staticmethod
    def make_pipe(sim) -> Tuple["PipeEnd", "PipeEnd"]:
        read_end = PipeEnd(sim, readable=True)
        write_end = PipeEnd(sim, readable=False)
        shared = StreamBuffer()
        read_end.buffer = shared
        write_end.buffer = shared
        read_end.other = write_end
        write_end.other = read_end
        return read_end, write_end

    @staticmethod
    def make_socketpair(sim) -> Tuple["PipeEnd", "PipeEnd"]:
        """Bidirectional: model as two pipes glued into two duplex ends."""
        a = DuplexPipe(sim)
        b = DuplexPipe(sim)
        a.peer = b
        b.peer = a
        return a, b

    def poll_mask(self) -> int:
        mask = 0
        if self.readable and self.buffer is not None:
            if self.buffer.size > 0 or self.buffer.eof or self.fd_queue:
                mask |= EPOLLIN
        if not self.readable and not self.closed:
            mask |= EPOLLOUT
        if self.closed:
            mask |= EPOLLHUP
        return mask

    def write_bytes(self, data: bytes) -> int:
        if self.readable:
            return -EPIPE
        if self.other is None or self.other.closed:
            return -EPIPE
        self.buffer.push(data)
        self.other.poke()
        return len(data)

    def read_bytes(self, size: int):
        """Generator: blocking pipe read."""
        if not self.readable:
            return -EPIPE
        while (self.buffer.size == 0 and not self.buffer.eof
               and not (self.other is None or self.other.closed)):
            yield from self.read_waiters.wait()
        return self.buffer.pull(size)

    def on_last_close(self) -> None:
        self.closed = True
        if self.readable:
            pass
        elif self.buffer is not None:
            self.buffer.eof = True
        if self.other is not None:
            self.other.poke()
        self.poke()


class DuplexPipe(Pollable):
    """One end of a socketpair: independent rx buffer per end."""

    kind = "socketpair"

    def __init__(self, sim) -> None:
        super().__init__(sim)
        self.rx = StreamBuffer()
        self.peer: Optional["DuplexPipe"] = None
        self.closed = False
        self.fd_queue: Deque = deque()

    def poll_mask(self) -> int:
        mask = 0
        if self.rx.size > 0 or self.rx.eof or self.fd_queue:
            mask |= EPOLLIN
        if self.peer is not None and not self.peer.closed:
            mask |= EPOLLOUT
        if self.closed:
            mask |= EPOLLHUP
        return mask

    def write_bytes(self, data: bytes) -> int:
        if self.peer is None or self.peer.closed:
            return -EPIPE
        self.peer.rx.push(data)
        self.peer.poke()
        return len(data)

    def read_bytes(self, size: int):
        while (self.rx.size == 0 and not self.rx.eof
               and not (self.peer is None or self.peer.closed)):
            yield from self.read_waiters.wait()
        return self.rx.pull(size)

    def push_fd(self, description: FileDescription) -> int:
        """SCM_RIGHTS: enqueue a duplicated description at the peer."""
        if self.peer is None or self.peer.closed:
            return -EPIPE
        self.peer.fd_queue.append(description.incref())
        self.peer.poke()
        return 0

    def pop_fd(self):
        """Generator: blocking receive of a passed description."""
        while not self.fd_queue:
            if self.peer is None or self.peer.closed:
                return None
            yield from self.read_waiters.wait()
        return self.fd_queue.popleft()

    def on_last_close(self) -> None:
        self.closed = True
        if self.peer is not None:
            self.peer.rx.eof = True
            self.peer.poke()
        self.poke()
