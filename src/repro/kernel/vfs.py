"""In-memory filesystem of the simulated kernel."""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.errors import KernelError
from repro.kernel.uapi import (
    EBADF,
    EEXIST,
    EISDIR,
    ENOENT,
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
)


class Inode:
    """Base class of filesystem objects."""

    kind = "file"

    def __init__(self, name: str) -> None:
        self.name = name
        self.nlink = 1

    def size(self) -> int:
        return 0

    def read_at(self, offset: int, size: int) -> bytes:
        raise NotImplementedError

    def write_at(self, offset: int, data: bytes) -> int:
        raise NotImplementedError


class RegularFile(Inode):
    """A plain file backed by a bytearray."""

    def __init__(self, name: str, data: bytes = b"") -> None:
        super().__init__(name)
        self.data = bytearray(data)

    def size(self) -> int:
        return len(self.data)

    def read_at(self, offset: int, size: int) -> bytes:
        return bytes(self.data[offset:offset + size])

    def write_at(self, offset: int, data: bytes) -> int:
        end = offset + len(data)
        if end > len(self.data):
            self.data.extend(b"\0" * (end - len(self.data)))
        self.data[offset:end] = data
        return len(data)

    def truncate(self, length: int = 0) -> None:
        del self.data[length:]


class Directory(Inode):
    kind = "dir"

    def read_at(self, offset: int, size: int) -> bytes:
        raise KernelError("read from directory")

    def write_at(self, offset: int, data: bytes) -> int:
        raise KernelError("write to directory")


class DevNull(Inode):
    """Reads return EOF; writes are discarded — the paper's favourite."""

    kind = "chardev"

    def read_at(self, offset: int, size: int) -> bytes:
        return b""

    def write_at(self, offset: int, data: bytes) -> int:
        return len(data)


class DevZero(Inode):
    kind = "chardev"

    def read_at(self, offset: int, size: int) -> bytes:
        return b"\0" * size

    def write_at(self, offset: int, data: bytes) -> int:
        return len(data)


class DevURandom(Inode):
    """Deterministic entropy: seeded per machine, stable across runs."""

    kind = "chardev"

    def __init__(self, name: str, seed: int = 0) -> None:
        super().__init__(name)
        self._rng = random.Random(seed)

    def read_at(self, offset: int, size: int) -> bytes:
        return bytes(self._rng.getrandbits(8) for _ in range(size))

    def write_at(self, offset: int, data: bytes) -> int:
        return len(data)


class Filesystem:
    """A flat-path in-memory filesystem (one per machine)."""

    def __init__(self, urandom_seed: int = 0) -> None:
        self._nodes: Dict[str, Inode] = {}
        self.mkdir("/")
        self.mkdir("/dev")
        self.mkdir("/tmp")
        self.mkdir("/var")
        self.mkdir("/var/www")
        self._nodes["/dev/null"] = DevNull("/dev/null")
        self._nodes["/dev/zero"] = DevZero("/dev/zero")
        self._nodes["/dev/urandom"] = DevURandom("/dev/urandom",
                                                 seed=urandom_seed)

    # -- namespace ------------------------------------------------------

    @staticmethod
    def _norm(path: str) -> str:
        if not path.startswith("/"):
            path = "/" + path
        while "//" in path:
            path = path.replace("//", "/")
        return path.rstrip("/") or "/"

    def lookup(self, path: str) -> Optional[Inode]:
        return self._nodes.get(self._norm(path))

    def exists(self, path: str) -> bool:
        return self._norm(path) in self._nodes

    def mkdir(self, path: str) -> Directory:
        path = self._norm(path)
        node = Directory(path)
        self._nodes[path] = node
        return node

    def create(self, path: str, data: bytes = b"") -> RegularFile:
        path = self._norm(path)
        node = RegularFile(path, data)
        self._nodes[path] = node
        return node

    def unlink(self, path: str) -> int:
        path = self._norm(path)
        node = self._nodes.get(path)
        if node is None:
            return -ENOENT
        if node.kind == "dir":
            return -EISDIR
        del self._nodes[path]
        return 0

    def rename(self, old: str, new: str) -> int:
        old, new = self._norm(old), self._norm(new)
        node = self._nodes.pop(old, None)
        if node is None:
            return -ENOENT
        self._nodes[new] = node
        node.name = new
        return 0

    # -- open-file plumbing ----------------------------------------------

    def open(self, path: str, flags: int) -> "FileDesc | int":
        """Returns a FileDesc or a negative errno."""
        path = self._norm(path)
        node = self._nodes.get(path)
        if node is None:
            if not flags & O_CREAT:
                return -ENOENT
            node = self.create(path)
        elif flags & O_CREAT and flags & 0o200000:  # O_EXCL analogue
            return -EEXIST
        if node.kind == "dir" and flags & (O_WRONLY | O_RDWR):
            return -EISDIR
        if flags & O_TRUNC and isinstance(node, RegularFile):
            node.truncate()
        return FileDesc(node, flags)


class FileDescription:
    """Base of everything a descriptor can point at.

    Duplicated descriptors (``dup``, fd transfer over a data channel)
    share one description object, so offsets and socket state are shared
    exactly as in Linux.
    """

    kind = "file"

    def __init__(self) -> None:
        self.refcount = 1
        self.cloexec = False

    def incref(self) -> "FileDescription":
        self.refcount += 1
        return self

    def decref(self) -> None:
        self.refcount -= 1
        if self.refcount == 0:
            self.on_last_close()

    def on_last_close(self) -> None:
        """Subclass hook for releasing underlying resources."""

    # epoll interface
    def poll_mask(self) -> int:
        return 0


class FileDesc(FileDescription):
    """An open regular file / device / directory."""

    def __init__(self, inode: Inode, flags: int) -> None:
        super().__init__()
        self.inode = inode
        self.flags = flags
        self.offset = 0

    def can_read(self) -> bool:
        return (self.flags & 0o3) in (O_RDONLY, O_RDWR)

    def can_write(self) -> bool:
        return (self.flags & 0o3) in (O_WRONLY, O_RDWR)

    def read(self, size: int) -> bytes:
        if not self.can_read():
            return b""
        data = self.inode.read_at(self.offset, size)
        self.offset += len(data)
        return data

    def write(self, data: bytes) -> int:
        if not self.can_write():
            return -EBADF
        if self.flags & O_APPEND:
            self.offset = self.inode.size()
        written = self.inode.write_at(self.offset, data)
        self.offset += written
        return written

    def poll_mask(self) -> int:
        from repro.kernel.uapi import EPOLLIN, EPOLLOUT

        return EPOLLIN | EPOLLOUT  # regular files are always ready
