"""User-space ABI of the simulated kernel.

System call numbers follow the real x86-64 Linux table so that BPF
rewrite rules written against ``seccomp_data.nr`` — including Listing 1
of the paper, verbatim — work unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import KernelError

# -- syscall numbers (x86-64) --------------------------------------------

SYSCALL_NUMBERS = {
    "read": 0,
    "write": 1,
    "open": 2,
    "close": 3,
    "stat": 4,
    "fstat": 5,
    "lstat": 6,
    "poll": 7,
    "lseek": 8,
    "mmap": 9,
    "mprotect": 10,
    "munmap": 11,
    "brk": 12,
    "rt_sigaction": 13,
    "rt_sigprocmask": 14,
    "rt_sigreturn": 15,
    "ioctl": 16,
    "pread": 17,
    "pwrite": 18,
    "readv": 19,
    "writev": 20,
    "access": 21,
    "pipe": 22,
    "select": 23,
    "sched_yield": 24,
    "madvise": 28,
    "dup": 32,
    "dup2": 33,
    "nanosleep": 35,
    "getpid": 39,
    "sendfile": 40,
    "socket": 41,
    "connect": 42,
    "accept": 43,
    "sendto": 44,
    "recvfrom": 45,
    "sendmsg": 46,
    "recvmsg": 47,
    "shutdown": 48,
    "bind": 49,
    "listen": 50,
    "getsockname": 51,
    "getpeername": 52,
    "socketpair": 53,
    "setsockopt": 54,
    "getsockopt": 55,
    "clone": 56,
    "fork": 57,
    "vfork": 58,
    "execve": 59,
    "exit": 60,
    "wait4": 61,
    "kill": 62,
    "uname": 63,
    "fcntl": 72,
    "fsync": 74,
    "fdatasync": 75,
    "ftruncate": 77,
    "getdents": 78,
    "getcwd": 79,
    "chdir": 80,
    "rename": 82,
    "mkdir": 83,
    "rmdir": 84,
    "unlink": 87,
    "readlink": 89,
    "chmod": 90,
    "chown": 92,
    "umask": 95,
    "gettimeofday": 96,
    "getrlimit": 97,
    "getrusage": 98,
    "sysinfo": 99,
    "times": 100,
    "getuid": 102,
    "getgid": 104,
    "setuid": 105,
    "setgid": 106,
    "geteuid": 107,
    "getegid": 108,
    "setsid": 112,
    "sigaltstack": 131,
    "prctl": 157,
    "arch_prctl": 158,
    "setrlimit": 160,
    "gettid": 186,
    "time": 201,
    "futex": 202,
    "sched_setaffinity": 203,
    "sched_getaffinity": 204,
    "epoll_create": 213,
    "getdents64": 217,
    "set_tid_address": 218,
    "clock_gettime": 228,
    "clock_nanosleep": 230,
    "exit_group": 231,
    "epoll_wait": 232,
    "epoll_ctl": 233,
    "tgkill": 234,
    "openat": 257,
    "set_robust_list": 273,
    "accept4": 288,
    "eventfd2": 290,
    "epoll_create1": 291,
    "dup3": 292,
    "pipe2": 293,
    "getcpu": 309,
    "getrandom": 318,
    # Not a real Linux syscall: the simulated analogue of BSD's
    # issetugid(), used by the Lighttpd multi-revision experiment.
    "issetugid": 500,
}

SYSCALL_NAMES = {nr: name for name, nr in SYSCALL_NUMBERS.items()}


def syscall_number(name: str) -> int:
    try:
        return SYSCALL_NUMBERS[name]
    except KeyError as exc:
        raise KernelError(f"unknown syscall {name!r}") from exc


# -- errno ----------------------------------------------------------------

EPERM = 1
ENOENT = 2
EINTR = 4
EIO = 5
EBADF = 9
EAGAIN = 11
ENOMEM = 12
EACCES = 13
EFAULT = 14
EEXIST = 17
ENOTDIR = 20
EISDIR = 21
EINVAL = 22
EMFILE = 24
ENOSPC = 28
EPIPE = 32
ENOSYS = 38
ENOTSOCK = 88
EADDRINUSE = 98
ECONNREFUSED = 111
ERESTARTSYS = 512  # kernel-internal: restart after signal (§3.2)

ERRNO_NAMES = {
    EPERM: "EPERM", ENOENT: "ENOENT", EINTR: "EINTR", EIO: "EIO",
    EBADF: "EBADF", EAGAIN: "EAGAIN", ENOMEM: "ENOMEM", EACCES: "EACCES",
    EFAULT: "EFAULT", EEXIST: "EEXIST", ENOTDIR: "ENOTDIR",
    EISDIR: "EISDIR", EINVAL: "EINVAL", EMFILE: "EMFILE",
    ENOSPC: "ENOSPC", EPIPE: "EPIPE", ENOSYS: "ENOSYS",
    ENOTSOCK: "ENOTSOCK", EADDRINUSE: "EADDRINUSE",
    ECONNREFUSED: "ECONNREFUSED", ERESTARTSYS: "ERESTARTSYS",
}

# -- open flags, misc constants ------------------------------------------

O_RDONLY = 0
O_WRONLY = 1
O_RDWR = 2
O_CREAT = 0o100
O_TRUNC = 0o1000
O_APPEND = 0o2000
O_NONBLOCK = 0o4000
O_CLOEXEC = 0o2000000

FD_CLOEXEC = 1
F_GETFD = 1
F_SETFD = 2
F_GETFL = 3
F_SETFL = 4

EPOLL_CTL_ADD = 1
EPOLL_CTL_DEL = 2
EPOLL_CTL_MOD = 3
EPOLLIN = 0x001
EPOLLOUT = 0x004
EPOLLERR = 0x008
EPOLLHUP = 0x010

SIGHUP = 1
SIGINT = 2
SIGKILL = 9
SIGSEGV = 11
SIGPIPE = 13
SIGTERM = 15
SIGCHLD = 17

SOCK_STREAM = 1
SOCK_DGRAM = 2
AF_INET = 2
AF_UNIX = 1

CLONE_THREAD = 0x10000

#: Signal names for diagnostics.
SIGNAL_NAMES = {SIGHUP: "SIGHUP", SIGINT: "SIGINT", SIGKILL: "SIGKILL",
                SIGSEGV: "SIGSEGV", SIGPIPE: "SIGPIPE", SIGTERM: "SIGTERM",
                SIGCHLD: "SIGCHLD"}


# -- syscall request / result records ------------------------------------

@dataclass(slots=True)
class Syscall:
    """One system call as issued by a program.

    ``site`` names the static call site in the program's text image so
    the gate can look up how the rewriter patched it (JMP vs INT0 vs
    vDSO).  ``data`` carries an outgoing payload (e.g. write buffers);
    ``nbytes`` sizes incoming payloads (e.g. read lengths) for the cost
    model.
    """

    name: str
    args: Tuple = ()
    site: Optional[str] = None
    data: bytes = b""
    nbytes: int = 0

    @property
    def nr(self) -> int:
        return syscall_number(self.name)

    def arg(self, index: int, default=0):
        return self.args[index] if index < len(self.args) else default


@dataclass(slots=True)
class SysResult:
    """What a system call produced.

    ``retval`` follows the Linux convention (negative = -errno).
    ``data`` carries inbound payloads (read results, accepted peer
    address, time values...). ``new_fds`` lists descriptor numbers the
    call created in the calling task — the monitor uses it to know when
    a descriptor must be transferred to followers (§3.3.2).
    """

    retval: int
    data: bytes = b""
    new_fds: Tuple[int, ...] = ()
    #: Extra values by-value (e.g. the seconds/microseconds pair of
    #: gettimeofday) that fit in the event without a shared-memory
    #: payload.
    aux: Tuple = ()

    @property
    def ok(self) -> bool:
        return self.retval >= 0

    @property
    def errno(self) -> int:
        return -self.retval if self.retval < 0 else 0


class SysError(Exception):
    """Raised by the high-level ProcessContext wrappers on -errno."""

    def __init__(self, errno: int, call: str) -> None:
        name = ERRNO_NAMES.get(errno, str(errno))
        super().__init__(f"{call}: {name}")
        self.errno = errno
        self.call = call


@dataclass
class Segfault(Exception):
    """A simulated SIGSEGV raised inside application code.

    Carries enough context for the monitor's signal handler to report
    the crash to the coordinator (§5.1).
    """

    reason: str = "segmentation fault"

    def __str__(self) -> str:
        return self.reason
