"""The simulated kernel: semantics for ~60 system calls.

Costs and semantics are separated: :meth:`Kernel.native` charges the
calibrated native cost and then runs :meth:`Kernel.execute`, which is
pure semantics.  NVX monitors reuse ``execute`` when they need semantics
without the native-trap charge (e.g. a follower installing a transferred
descriptor locally).
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Optional, Tuple

from repro.costmodel import CostModel, DEFAULT_COSTS, SEC_PS, US_PS, cycles
from repro.errors import KernelError
from repro.kernel.epoll import Epoll
from repro.kernel.net import (
    DuplexPipe,
    ListenerSocket,
    PipeEnd,
    StreamSocket,
)
from repro.kernel.task import StopTask, Task
from repro.kernel.uapi import (
    CLONE_THREAD,
    EAGAIN,
    EBADF,
    ECONNREFUSED,
    EINVAL,
    ENOENT,
    ENOSYS,
    ENOTSOCK,
    EPIPE,
    O_NONBLOCK,
    SIGKILL,
    SIGSEGV,
    Syscall,
    SysResult,
)
from repro.kernel.vfs import FileDesc, Filesystem
from repro.sim.core import Compute, Simulator, Sleep
from repro.sim.machine import Machine
from repro.sim.network import Network

#: Unix epoch offset applied to the virtual clock, so time() returns
#: plausible absolute timestamps (2015-03-14, the paper's conference).
EPOCH_OFFSET_S = 1_426_291_200


class Kernel:
    """One kernel instance serving every simulated machine in a world."""

    def __init__(self, sim: Simulator, network: Optional[Network] = None,
                 costs: CostModel = DEFAULT_COSTS, seed: int = 0) -> None:
        self.sim = sim
        self.network = network
        self.costs = costs
        self.seed = seed
        #: Observability hook shared with the simulator; the syscall gate
        #: reads this per dispatch (one attribute load when disabled).
        self.tracer = sim.tracer
        self._filesystems: Dict[str, Filesystem] = {}
        self.tasks: Dict[int, Task] = {}
        self._next_pid = 100
        #: (machine_name, port) → ListenerSocket
        self.listeners: Dict[Tuple[str, int], ListenerSocket] = {}
        self.syscall_log_enabled = False
        self.syscall_log = []

    # -- world plumbing ---------------------------------------------------

    def fs(self, machine: Machine) -> Filesystem:
        name = machine.name
        if name not in self._filesystems:
            self._filesystems[name] = Filesystem(
                urandom_seed=self.seed ^ hash(name) & 0xFFFF)
        return self._filesystems[name]

    def spawn_task(self, machine: Machine, main: Callable, name: str,
                   daemon: bool = False, parent: Optional[Task] = None,
                   ctx_factory: Optional[Callable] = None) -> Task:
        """Create a task whose main thread runs ``main(ctx)``.

        ``main`` is a generator function taking a
        :class:`~repro.runtime.context.ProcessContext`.
        """
        from repro.runtime.context import ProcessContext

        task = Task(self, machine, name, self._next_pid, parent=parent)
        task.daemon = daemon
        self._next_pid += 1
        self.tasks[task.pid] = task
        factory = ctx_factory or ProcessContext
        ctx = factory(task)
        task.add_thread(main(ctx), name=name)
        if parent is not None:
            parent.children.append(task)
        return task

    def on_task_exit(self, task: Task) -> None:
        self.tasks.pop(task.pid, None)
        # Withdraw any listeners the task still owned (best effort; the
        # descriptions were already closed by close_all()).
        dead = [key for key, listener in self.listeners.items()
                if listener.closed]
        for key in dead:
            del self.listeners[key]

    # -- cost + semantics --------------------------------------------------

    def native(self, task: Task, call: Syscall):
        """Generator: charge the native cost, then run semantics."""
        nbytes = max(call.nbytes, len(call.data))
        yield Compute(cycles(self.costs.syscalls.native(call.name, nbytes)))
        return (yield from self.execute(task, call))

    def execute(self, task: Task, call: Syscall):
        """Generator: pure semantics; returns a SysResult."""
        handler = getattr(self, f"_sys_{call.name}", None)
        if handler is None:
            return SysResult(-ENOSYS)
        result = yield from handler(task, call)
        if self.syscall_log_enabled:
            self.syscall_log.append((task.name, call.name, result.retval))
        return result

    # -- clock -------------------------------------------------------------

    def now_seconds(self) -> int:
        return EPOCH_OFFSET_S + self.sim.now // SEC_PS

    def now_micros(self) -> int:
        return EPOCH_OFFSET_S * 1_000_000 + self.sim.now // US_PS

    def now_nanos(self) -> int:
        return EPOCH_OFFSET_S * 1_000_000_000 + self.sim.now // 1000

    # =====================================================================
    # File syscalls
    # =====================================================================

    def _sys_open(self, task: Task, call: Syscall):
        path, flags = call.arg(0), call.arg(1)
        result = self.fs(task.machine).open(path, flags)
        if isinstance(result, int):
            return SysResult(result)
        fd = task.fdtable.install(result)
        return SysResult(fd, new_fds=(fd,))
        yield  # pragma: no cover - uniform generator shape

    def _sys_openat(self, task: Task, call: Syscall):
        # dirfd is ignored: the simulated VFS is absolute-path only.
        inner = Syscall("open", call.args[1:], site=call.site)
        return (yield from self._sys_open(task, inner))

    def _sys_close(self, task: Task, call: Syscall):
        return SysResult(task.fdtable.close(call.arg(0)))
        yield  # pragma: no cover

    def _sys_read(self, task: Task, call: Syscall):
        fd, size = call.arg(0), call.arg(1)
        description = task.fdtable.get(fd)
        if description is None:
            return SysResult(-EBADF)
        if isinstance(description, FileDesc):
            data = description.read(size)
            return SysResult(len(data), data=data)
        if isinstance(description, StreamSocket):
            data = yield from description.recv_bytes(size)
            if isinstance(data, int):
                return SysResult(data)
            return SysResult(len(data), data=data)
        if isinstance(description, (PipeEnd, DuplexPipe)):
            data = yield from description.read_bytes(size)
            if isinstance(data, int):
                return SysResult(data)
            return SysResult(len(data), data=data)
        return SysResult(-EBADF)

    def _sys_write(self, task: Task, call: Syscall):
        fd = call.arg(0)
        data = call.data
        description = task.fdtable.get(fd)
        if description is None:
            return SysResult(-EBADF)
        if isinstance(description, FileDesc):
            return SysResult(description.write(data))
        if isinstance(description, StreamSocket):
            return SysResult(description.send_bytes(data))
        if isinstance(description, (PipeEnd, DuplexPipe)):
            return SysResult(description.write_bytes(data))
        return SysResult(-EBADF)
        yield  # pragma: no cover

    def _sys_pread(self, task: Task, call: Syscall):
        fd, size, offset = call.arg(0), call.arg(1), call.arg(2)
        description = task.fdtable.get(fd)
        if not isinstance(description, FileDesc):
            return SysResult(-EBADF)
        data = description.inode.read_at(offset, size)
        return SysResult(len(data), data=data)
        yield  # pragma: no cover

    def _sys_pwrite(self, task: Task, call: Syscall):
        fd, offset = call.arg(0), call.arg(1)
        description = task.fdtable.get(fd)
        if not isinstance(description, FileDesc):
            return SysResult(-EBADF)
        return SysResult(description.inode.write_at(offset, call.data))
        yield  # pragma: no cover

    def _sys_writev(self, task: Task, call: Syscall):
        return (yield from self._sys_write(task, call))

    def _sys_readv(self, task: Task, call: Syscall):
        return (yield from self._sys_read(task, call))

    def _sys_lseek(self, task: Task, call: Syscall):
        fd, offset, whence = call.arg(0), call.arg(1), call.arg(2)
        description = task.fdtable.get(fd)
        if not isinstance(description, FileDesc):
            return SysResult(-EBADF)
        if whence == 0:  # SEEK_SET
            description.offset = offset
        elif whence == 1:  # SEEK_CUR
            description.offset += offset
        elif whence == 2:  # SEEK_END
            description.offset = description.inode.size() + offset
        else:
            return SysResult(-EINVAL)
        return SysResult(description.offset)
        yield  # pragma: no cover

    def _stat_bytes(self, inode) -> bytes:
        kind = {"file": 0o100000, "dir": 0o040000,
                "chardev": 0o020000}.get(inode.kind, 0)
        return struct.pack("<qq", kind, inode.size())

    def _sys_stat(self, task: Task, call: Syscall):
        inode = self.fs(task.machine).lookup(call.arg(0))
        if inode is None:
            return SysResult(-ENOENT)
        return SysResult(0, data=self._stat_bytes(inode))
        yield  # pragma: no cover

    def _sys_lstat(self, task: Task, call: Syscall):
        return (yield from self._sys_stat(task, call))

    def _sys_fstat(self, task: Task, call: Syscall):
        description = task.fdtable.get(call.arg(0))
        if description is None:
            return SysResult(-EBADF)
        if isinstance(description, FileDesc):
            return SysResult(0, data=self._stat_bytes(description.inode))
        return SysResult(0, data=struct.pack("<qq", 0o140000, 0))
        yield  # pragma: no cover

    def _sys_access(self, task: Task, call: Syscall):
        ok = self.fs(task.machine).exists(call.arg(0))
        return SysResult(0 if ok else -ENOENT)
        yield  # pragma: no cover

    def _sys_unlink(self, task: Task, call: Syscall):
        return SysResult(self.fs(task.machine).unlink(call.arg(0)))
        yield  # pragma: no cover

    def _sys_rename(self, task: Task, call: Syscall):
        return SysResult(
            self.fs(task.machine).rename(call.arg(0), call.arg(1)))
        yield  # pragma: no cover

    def _sys_mkdir(self, task: Task, call: Syscall):
        self.fs(task.machine).mkdir(call.arg(0))
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_ftruncate(self, task: Task, call: Syscall):
        description = task.fdtable.get(call.arg(0))
        if not isinstance(description, FileDesc):
            return SysResult(-EBADF)
        inode = description.inode
        if hasattr(inode, "truncate"):
            inode.truncate(call.arg(1))
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_fsync(self, task: Task, call: Syscall):
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_fdatasync(self, task: Task, call: Syscall):
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_sendfile(self, task: Task, call: Syscall):
        out_fd, in_fd, count = call.arg(0), call.arg(1), call.arg(3)
        source = task.fdtable.get(in_fd)
        if not isinstance(source, FileDesc):
            return SysResult(-EBADF)
        data = source.read(count)
        inner = Syscall("write", (out_fd,), data=data)
        result = yield from self._sys_write(task, inner)
        return SysResult(result.retval)

    def _sys_dup(self, task: Task, call: Syscall):
        fd = task.fdtable.dup(call.arg(0))
        return SysResult(fd, new_fds=(fd,) if fd >= 0 else ())
        yield  # pragma: no cover

    def _sys_dup2(self, task: Task, call: Syscall):
        fd = task.fdtable.dup(call.arg(0), at=call.arg(1))
        return SysResult(fd, new_fds=(fd,) if fd >= 0 else ())
        yield  # pragma: no cover

    def _sys_fcntl(self, task: Task, call: Syscall):
        from repro.kernel.uapi import F_GETFD, F_GETFL, F_SETFD, F_SETFL

        fd, cmd, arg = call.arg(0), call.arg(1), call.arg(2)
        description = task.fdtable.get(fd)
        if description is None:
            return SysResult(-EBADF)
        if cmd == F_GETFD:
            return SysResult(int(description.cloexec))
        if cmd == F_SETFD:
            description.cloexec = bool(arg & 1)
            return SysResult(0)
        if cmd == F_GETFL:
            return SysResult(getattr(description, "flags", 0))
        if cmd == F_SETFL:
            if hasattr(description, "flags"):
                description.flags = arg
            return SysResult(0)
        return SysResult(-EINVAL)
        yield  # pragma: no cover

    def _sys_ioctl(self, task: Task, call: Syscall):
        if task.fdtable.get(call.arg(0)) is None:
            return SysResult(-EBADF)
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_getdents(self, task: Task, call: Syscall):
        return SysResult(0, data=b"")
        yield  # pragma: no cover

    def _sys_getcwd(self, task: Task, call: Syscall):
        data = task.cwd.encode()
        return SysResult(len(data), data=data)
        yield  # pragma: no cover

    def _sys_chdir(self, task: Task, call: Syscall):
        task.cwd = call.arg(0)
        return SysResult(0)
        yield  # pragma: no cover

    # =====================================================================
    # Sockets
    # =====================================================================

    def _sys_socket(self, task: Task, call: Syscall):
        flags = call.arg(2, 0)
        sock = StreamSocket(self.sim, task.machine, network=self.network,
                            flags=flags)
        fd = task.fdtable.install(sock)
        return SysResult(fd, new_fds=(fd,))
        yield  # pragma: no cover

    def _sys_bind(self, task: Task, call: Syscall):
        fd, addr = call.arg(0), call.arg(1)
        description = task.fdtable.get(fd)
        if not isinstance(description, StreamSocket):
            return SysResult(-ENOTSOCK)
        key = (task.machine.name, addr[1])
        if key in self.listeners and not self.listeners[key].closed:
            from repro.kernel.uapi import EADDRINUSE

            return SysResult(-EADDRINUSE)
        description.local_addr = (task.machine.name, addr[1])
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_listen(self, task: Task, call: Syscall):
        fd, backlog = call.arg(0), call.arg(1, 128)
        description = task.fdtable.get(fd)
        if not isinstance(description, StreamSocket):
            return SysResult(-ENOTSOCK)
        if description.local_addr is None:
            return SysResult(-EINVAL)
        listener = ListenerSocket(self.sim, task.machine,
                                  description.local_addr, backlog=backlog,
                                  flags=description.flags)
        # The fd morphs into a listening socket, like Linux.
        task.fdtable.install(listener, at=fd)
        self.listeners[listener.addr] = listener
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_accept(self, task: Task, call: Syscall):
        fd = call.arg(0)
        description = task.fdtable.get(fd)
        if not isinstance(description, ListenerSocket):
            return SysResult(-ENOTSOCK)
        conn = yield from description.accept_one()
        if isinstance(conn, int):
            return SysResult(conn)
        new_fd = task.fdtable.install(conn)
        peer = conn.remote_addr or ("?", 0)
        return SysResult(new_fd, new_fds=(new_fd,),
                         data=f"{peer[0]}:{peer[1]}".encode())

    def _sys_accept4(self, task: Task, call: Syscall):
        result = yield from self._sys_accept(task, call)
        if result.ok and call.arg(1, 0) & O_NONBLOCK:
            sock = task.fdtable.get(result.retval)
            if isinstance(sock, StreamSocket):
                sock.flags |= O_NONBLOCK
        return result

    def _sys_connect(self, task: Task, call: Syscall):
        fd, addr = call.arg(0), call.arg(1)
        description = task.fdtable.get(fd)
        if not isinstance(description, StreamSocket):
            return SysResult(-ENOTSOCK)
        host, port = addr
        listener = self.listeners.get((host, port))
        if listener is None or listener.closed:
            return SysResult(-ECONNREFUSED)
        server_machine = listener.machine
        # Connection handshake: one RTT when crossing the rack link.
        if self.network is not None and server_machine is not task.machine:
            yield Sleep(2 * self.network.spec.latency_ps)
        server_end = StreamSocket(self.sim, server_machine,
                                  network=self.network)
        description.peer = server_end
        server_end.peer = description
        description.remote_addr = (host, port)
        server_end.local_addr = (host, port)
        server_end.remote_addr = (task.machine.name, 0)
        if not listener.enqueue(server_end):
            description.peer = None
            return SysResult(-ECONNREFUSED)
        return SysResult(0)

    def _sys_send(self, task: Task, call: Syscall):
        inner = Syscall("write", call.args, data=call.data)
        return (yield from self._sys_write(task, inner))

    def _sys_sendto(self, task: Task, call: Syscall):
        return (yield from self._sys_send(task, call))

    def _sys_sendmsg(self, task: Task, call: Syscall):
        return (yield from self._sys_send(task, call))

    def _sys_recv(self, task: Task, call: Syscall):
        inner = Syscall("read", call.args, nbytes=call.nbytes)
        return (yield from self._sys_read(task, inner))

    def _sys_recvfrom(self, task: Task, call: Syscall):
        return (yield from self._sys_recv(task, call))

    def _sys_recvmsg(self, task: Task, call: Syscall):
        return (yield from self._sys_recv(task, call))

    def _sys_shutdown(self, task: Task, call: Syscall):
        description = task.fdtable.get(call.arg(0))
        if not isinstance(description, StreamSocket):
            return SysResult(-ENOTSOCK)
        description.shutdown_write()
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_setsockopt(self, task: Task, call: Syscall):
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_getsockopt(self, task: Task, call: Syscall):
        return SysResult(0, data=struct.pack("<i", 0))
        yield  # pragma: no cover

    def _sys_getsockname(self, task: Task, call: Syscall):
        description = task.fdtable.get(call.arg(0))
        addr = getattr(description, "local_addr", None) or ("", 0)
        return SysResult(0, data=f"{addr[0]}:{addr[1]}".encode())
        yield  # pragma: no cover

    def _sys_getpeername(self, task: Task, call: Syscall):
        description = task.fdtable.get(call.arg(0))
        addr = getattr(description, "remote_addr", None) or ("", 0)
        return SysResult(0, data=f"{addr[0]}:{addr[1]}".encode())
        yield  # pragma: no cover

    def _sys_socketpair(self, task: Task, call: Syscall):
        end_a, end_b = PipeEnd.make_socketpair(self.sim)
        fd_a = task.fdtable.install(end_a)
        fd_b = task.fdtable.install(end_b)
        return SysResult(0, new_fds=(fd_a, fd_b),
                         aux=(fd_a, fd_b))
        yield  # pragma: no cover

    def _sys_pipe(self, task: Task, call: Syscall):
        read_end, write_end = PipeEnd.make_pipe(self.sim)
        fd_r = task.fdtable.install(read_end)
        fd_w = task.fdtable.install(write_end)
        return SysResult(0, new_fds=(fd_r, fd_w), aux=(fd_r, fd_w))
        yield  # pragma: no cover

    def _sys_pipe2(self, task: Task, call: Syscall):
        return (yield from self._sys_pipe(task, call))

    # =====================================================================
    # epoll / poll
    # =====================================================================

    def _sys_epoll_create(self, task: Task, call: Syscall):
        epoll = Epoll(self.sim)
        fd = task.fdtable.install(epoll)
        return SysResult(fd, new_fds=(fd,))
        yield  # pragma: no cover

    def _sys_epoll_create1(self, task: Task, call: Syscall):
        return (yield from self._sys_epoll_create(task, call))

    def _sys_epoll_ctl(self, task: Task, call: Syscall):
        epfd, op, fd, events = (call.arg(0), call.arg(1), call.arg(2),
                                call.arg(3))
        epoll = task.fdtable.get(epfd)
        if not isinstance(epoll, Epoll):
            return SysResult(-EBADF)
        target = task.fdtable.get(fd)
        if target is None:
            return SysResult(-EBADF)
        return SysResult(epoll.ctl(op, fd, target, events))
        yield  # pragma: no cover

    def _sys_epoll_wait(self, task: Task, call: Syscall):
        epfd, max_events = call.arg(0), call.arg(1, 64)
        timeout_ms = call.arg(2, -1)
        epoll = task.fdtable.get(epfd)
        if not isinstance(epoll, Epoll):
            return SysResult(-EBADF)
        timeout_ps = None if timeout_ms < 0 else timeout_ms * 1_000_000_000
        ready = yield from epoll.wait(max_events, timeout_ps=timeout_ps)
        payload = struct.pack("<%di" % (2 * len(ready)),
                              *[x for pair in ready for x in pair])
        return SysResult(len(ready), data=payload, aux=tuple(ready))

    def _sys_poll(self, task: Task, call: Syscall):
        # Simplified: poll one fd for readability.
        fd = call.arg(0)
        description = task.fdtable.get(fd)
        if description is None:
            return SysResult(-EBADF)
        from repro.kernel.uapi import EPOLLIN

        while not description.poll_mask() & EPOLLIN:
            waiters = getattr(description, "read_waiters", None)
            if waiters is None:
                break
            yield from waiters.wait()
        return SysResult(1)

    def _sys_select(self, task: Task, call: Syscall):
        return (yield from self._sys_poll(task, call))

    # =====================================================================
    # Processes, threads, signals
    # =====================================================================

    def _sys_fork(self, task: Task, call: Syscall):
        """args: (child_main,) — the generator function the child runs."""
        child_main = call.arg(0)
        if child_main is None:
            return SysResult(-EINVAL)
        child = self._fork_task(task, child_main)
        return SysResult(child.pid)
        yield  # pragma: no cover

    def _fork_task(self, task: Task, child_main,
                   name: Optional[str] = None) -> Task:
        from repro.runtime.context import ProcessContext

        child = Task(self, task.machine, name or f"{task.name}.child",
                     self._next_pid, parent=task)
        child.daemon = task.daemon
        self._next_pid += 1
        child.fdtable = task.fdtable.clone()
        child.gate.intercepting = task.gate.intercepting
        child.gate.patch_kinds = task.gate.patch_kinds
        self.tasks[child.pid] = child
        task.children.append(child)
        ctx = ProcessContext(child)
        child.add_thread(child_main(ctx), name=child.name)
        return child

    def _sys_clone(self, task: Task, call: Syscall):
        """args: (flags, thread_main) — CLONE_THREAD spawns a thread."""
        flags, thread_main = call.arg(0), call.arg(1)
        if not flags & CLONE_THREAD:
            return (yield from self._sys_fork(
                task, Syscall("fork", (thread_main,), site=call.site)))
        from repro.runtime.context import ProcessContext

        ctx = ProcessContext(task)
        proc = task.add_thread(thread_main(ctx))
        return SysResult(task.thread_ids[proc])

    def _sys_exit(self, task: Task, call: Syscall):
        raise StopTask(call.arg(0, 0))
        yield  # pragma: no cover

    def _sys_exit_group(self, task: Task, call: Syscall):
        raise StopTask(call.arg(0, 0))
        yield  # pragma: no cover

    def _sys_wait4(self, task: Task, call: Syscall):
        pid = call.arg(0, -1)
        children = ([c for c in task.children if c.pid == pid]
                    if pid > 0 else list(task.children))
        if not children:
            return SysResult(-ENOENT)
        for child in children:
            if child.exited:
                return SysResult(child.pid, aux=(child.exit_status,))
        # Block on the first child to exit.
        child = children[0]
        status = yield from child.exit_waiters.wait()
        return SysResult(child.pid, aux=(status,))

    def _sys_kill(self, task: Task, call: Syscall):
        pid, sig = call.arg(0), call.arg(1)
        target = self.tasks.get(pid)
        if target is None:
            return SysResult(-ENOENT)
        self.deliver_signal(target, sig)
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_tgkill(self, task: Task, call: Syscall):
        inner = Syscall("kill", (call.arg(0), call.arg(2)))
        return (yield from self._sys_kill(task, inner))

    def deliver_signal(self, target: Task, sig: int) -> None:
        handler = target.signal_handlers.get(sig)
        if handler is not None:
            handler(target, sig)
        elif sig in (SIGKILL, SIGSEGV):
            target.kill_now(128 + sig)

    def _sys_rt_sigaction(self, task: Task, call: Syscall):
        sig, handler = call.arg(0), call.arg(1)
        if handler is None:
            task.signal_handlers.pop(sig, None)
        else:
            task.signal_handlers[sig] = handler
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_rt_sigprocmask(self, task: Task, call: Syscall):
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_sigaltstack(self, task: Task, call: Syscall):
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_getpid(self, task: Task, call: Syscall):
        return SysResult(task.pid)
        yield  # pragma: no cover

    def _sys_gettid(self, task: Task, call: Syscall):
        return SysResult(task.current_tid())
        yield  # pragma: no cover

    # -- identity (the multi-revision experiment's syscalls, §5.2) --------

    def _sys_getuid(self, task: Task, call: Syscall):
        return SysResult(task.uid)
        yield  # pragma: no cover

    def _sys_geteuid(self, task: Task, call: Syscall):
        return SysResult(task.euid)
        yield  # pragma: no cover

    def _sys_getgid(self, task: Task, call: Syscall):
        return SysResult(task.gid)
        yield  # pragma: no cover

    def _sys_getegid(self, task: Task, call: Syscall):
        return SysResult(task.egid)
        yield  # pragma: no cover

    def _sys_issetugid(self, task: Task, call: Syscall):
        return SysResult(int(task.uid != task.euid or task.gid != task.egid))
        yield  # pragma: no cover

    def _sys_setuid(self, task: Task, call: Syscall):
        task.uid = task.euid = call.arg(0)
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_setgid(self, task: Task, call: Syscall):
        task.gid = task.egid = call.arg(0)
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_setsid(self, task: Task, call: Syscall):
        return SysResult(task.pid)
        yield  # pragma: no cover

    # =====================================================================
    # Time (vDSO family), sleeping, scheduling
    # =====================================================================

    def _sys_time(self, task: Task, call: Syscall):
        return SysResult(self.now_seconds())
        yield  # pragma: no cover

    def _sys_gettimeofday(self, task: Task, call: Syscall):
        micros = self.now_micros()
        return SysResult(0, aux=(micros // 1_000_000, micros % 1_000_000))
        yield  # pragma: no cover

    def _sys_clock_gettime(self, task: Task, call: Syscall):
        nanos = self.now_nanos()
        return SysResult(0, aux=(nanos // 1_000_000_000,
                                 nanos % 1_000_000_000))
        yield  # pragma: no cover

    def _sys_getcpu(self, task: Task, call: Syscall):
        return SysResult(0, aux=(0, 0))
        yield  # pragma: no cover

    def _sys_nanosleep(self, task: Task, call: Syscall):
        yield Sleep(max(0, call.arg(0)))
        return SysResult(0)

    def _sys_clock_nanosleep(self, task: Task, call: Syscall):
        return (yield from self._sys_nanosleep(task, call))

    def _sys_sched_yield(self, task: Task, call: Syscall):
        yield Sleep(0)
        return SysResult(0)

    # =====================================================================
    # Memory (process-local; executed by every version)
    # =====================================================================

    def _sys_mmap(self, task: Task, call: Syscall):
        length = call.arg(1, 4096)
        addr = task.mmap_base
        task.mmap_base += (length + 0xFFF) & ~0xFFF
        return SysResult(addr)
        yield  # pragma: no cover

    def _sys_munmap(self, task: Task, call: Syscall):
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_mprotect(self, task: Task, call: Syscall):
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_madvise(self, task: Task, call: Syscall):
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_brk(self, task: Task, call: Syscall):
        request = call.arg(0, 0)
        if request:
            task.heap_brk = request
        return SysResult(task.heap_brk)
        yield  # pragma: no cover

    # =====================================================================
    # Misc
    # =====================================================================

    def _sys_futex(self, task: Task, call: Syscall):
        # Process-local synchronisation; semantics provided by the
        # higher-level sync primitives. Charged but otherwise a no-op.
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_uname(self, task: Task, call: Syscall):
        return SysResult(0, data=b"Linux varan-sim 3.13.0 x86_64")
        yield  # pragma: no cover

    def _sys_getrandom(self, task: Task, call: Syscall):
        size = call.arg(0, 16)
        inode = self.fs(task.machine).lookup("/dev/urandom")
        data = inode.read_at(0, size)
        return SysResult(len(data), data=data)
        yield  # pragma: no cover

    def _sys_getrlimit(self, task: Task, call: Syscall):
        return SysResult(0, aux=(65536, 65536))
        yield  # pragma: no cover

    def _sys_setrlimit(self, task: Task, call: Syscall):
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_getrusage(self, task: Task, call: Syscall):
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_sysinfo(self, task: Task, call: Syscall):
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_times(self, task: Task, call: Syscall):
        return SysResult(self.sim.now // 10_000_000_000)  # clock ticks
        yield  # pragma: no cover

    def _sys_umask(self, task: Task, call: Syscall):
        old = task.umask
        task.umask = call.arg(0)
        return SysResult(old)
        yield  # pragma: no cover

    def _sys_prctl(self, task: Task, call: Syscall):
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_arch_prctl(self, task: Task, call: Syscall):
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_set_tid_address(self, task: Task, call: Syscall):
        return SysResult(task.current_tid())
        yield  # pragma: no cover

    def _sys_set_robust_list(self, task: Task, call: Syscall):
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_sched_getaffinity(self, task: Task, call: Syscall):
        return SysResult(task.machine.spec.logical_cores)
        yield  # pragma: no cover

    def _sys_sched_setaffinity(self, task: Task, call: Syscall):
        return SysResult(0)
        yield  # pragma: no cover

    def _sys_execve(self, task: Task, call: Syscall):
        return SysResult(-ENOSYS)  # versions are started by the zygote
        yield  # pragma: no cover
