"""Tasks (simulated processes), threads, descriptor tables and the
system-call gate every call funnels through."""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Optional

from repro.costmodel import CostModel, cycles
from repro.errors import KernelError
from repro.kernel.uapi import EBADF, EMFILE, Segfault, Syscall, SysResult
from repro.kernel.vfs import FileDescription
from repro.sim.core import Compute, Process
from repro.sim.machine import Machine
from repro.sim.sync import WaitQueue

#: Calls served from the vDSO fast path (§3.2.1).
VDSO_CALLS = frozenset({"time", "gettimeofday", "clock_gettime", "getcpu"})

#: Kind markers used in Gate.patch_kinds (mirrors rewriter.patchset).
PATCH_JMP = "jmp"
PATCH_INT = "int"
PATCH_VDSO = "vdso"


class FdTable:
    """Per-task descriptor table; descriptions are refcounted."""

    MAX_FDS = 65536

    def __init__(self) -> None:
        self._fds: Dict[int, FileDescription] = {}
        self._next = 3  # 0/1/2 reserved for std streams

    def install(self, description: FileDescription,
                at: Optional[int] = None) -> int:
        if at is None:
            fd = self._next
            while fd in self._fds:
                fd += 1
            if fd >= self.MAX_FDS:
                return -EMFILE
            self._next = fd + 1
        else:
            fd = at
            old = self._fds.get(fd)
            if old is not None:
                old.decref()
        self._fds[fd] = description
        return fd

    def get(self, fd: int) -> Optional[FileDescription]:
        return self._fds.get(fd)

    def close(self, fd: int) -> int:
        description = self._fds.pop(fd, None)
        if description is None:
            return -EBADF
        description.decref()
        if fd < self._next:
            self._next = max(3, min(self._next, fd))
        return 0

    def dup(self, fd: int, at: Optional[int] = None) -> int:
        description = self._fds.get(fd)
        if description is None:
            return -EBADF
        return self.install(description.incref(), at=at)

    def clone(self) -> "FdTable":
        """Fork semantics: child shares descriptions, not the table."""
        table = FdTable()
        table._fds = {fd: d.incref() for fd, d in self._fds.items()}
        table._next = self._next
        return table

    def close_all(self) -> None:
        for description in self._fds.values():
            description.decref()
        self._fds.clear()

    def fds(self) -> List[int]:
        return sorted(self._fds)

    def __len__(self) -> int:
        return len(self._fds)


class SyscallGate:
    """Models the dispatch path of every system call a task makes.

    Natively the gate goes straight to the kernel.  Under Varan, the
    monitor flips :attr:`intercepting` on and installs a *system call
    table* (name → handler generator); the per-site patch kind decides
    the dispatch cost (JMP-detour fast path, INT0 signal path, or vDSO
    stub).  Under a ptrace baseline, a trap cost and a centralized
    monitor resource are modelled by the installed table instead.
    """

    def __init__(self, task: "Task", costs: CostModel) -> None:
        self.task = task
        self.costs = costs
        self.intercepting = False
        self.table: Optional[Dict[str, Callable]] = None
        self.default_handler: Optional[Callable] = None
        self.patch_kinds: Dict[str, str] = {}
        self.counts: Counter = Counter()
        #: Extra per-call dispatch charge (used by ptrace-style monitors).
        self.pre_dispatch: Optional[Callable] = None
        # Per-dispatch hot path: resolve the three interception costs
        # once instead of walking cost-model properties per call.
        self._vdso_cost = costs.intercept.vdso_stub
        self._slow_cost = costs.intercept.slow_path
        self._fast_cost = costs.intercept.fast_path

    def intercept_cost(self, call: Syscall) -> int:
        """Cycles added by the rewriting-based interception path."""
        if call.name in VDSO_CALLS:
            return self._vdso_cost
        kind = self.patch_kinds.get(call.site, PATCH_JMP)
        if kind == PATCH_INT:
            return self._slow_cost
        return self._fast_cost

    def dispatch(self, call: Syscall):
        """Generator: route one syscall, returning a SysResult."""
        tracer = self.task.kernel.tracer
        if tracer is not None:
            return (yield from self._dispatch_traced(call, tracer))
        self.counts[call.name] += 1
        if self.pre_dispatch is not None:
            yield from self.pre_dispatch(self.task, call)
        if self.intercepting:
            yield Compute(cycles(self.intercept_cost(call)))
            handler = None
            if self.table is not None:
                handler = self.table.get(call.name, self.default_handler)
            if handler is not None:
                return (yield from handler(self.task, call))
        return (yield from self.task.kernel.native(self.task, call))

    def _dispatch_traced(self, call: Syscall, tracer):
        """Same routing as :meth:`dispatch`, wrapped in a syscall span.

        Kept separate so the disabled-tracing hot path pays only one
        attribute load and None check per dispatch.
        """
        sim = self.task.kernel.sim
        start_ps = sim.now
        self.counts[call.name] += 1
        if self.pre_dispatch is not None:
            yield from self.pre_dispatch(self.task, call)
        result = None
        handled = False
        if self.intercepting:
            yield Compute(cycles(self.intercept_cost(call)))
            handler = None
            if self.table is not None:
                handler = self.table.get(call.name, self.default_handler)
            if handler is not None:
                result = yield from handler(self.task, call)
                handled = True
        if not handled:
            result = yield from self.task.kernel.native(self.task, call)
        role = (getattr(self, "_varan_role", None)
                or ("intercept" if self.intercepting else "native"))
        tracer.span_here(sim, start_ps, "syscall", call.name,
                         (("retval", getattr(result, "retval", 0)),
                          ("role", role)))
        return result


class Task:
    """A simulated OS process: descriptor table + one or more threads."""

    def __init__(self, kernel, machine: Machine, name: str, pid: int,
                 parent: Optional["Task"] = None) -> None:
        self.kernel = kernel
        self.machine = machine
        self.name = name
        self.pid = pid
        self.parent = parent
        self.fdtable = FdTable()
        self.gate = SyscallGate(self, kernel.costs)
        self.threads: List[Process] = []
        self.thread_ids: Dict[Process, int] = {}
        self._next_tid = 0
        self.children: List["Task"] = []
        #: Daemon tasks (and all their threads/children) do not count as
        #: deadlocked when the event heap drains — used for servers.
        self.daemon = False
        self.exited = False
        self.exit_status: Optional[int] = None
        self.exit_waiters = WaitQueue(kernel.sim)
        self.uid = self.euid = 1000
        self.gid = self.egid = 1000
        self.cwd = "/"
        self.umask = 0o022
        #: Python-level signal handlers: sig → fn(task, sig). Installed
        #: through rt_sigaction by the monitor (e.g. the SIGSEGV handler
        #: that reports crashes to the coordinator, §5.1).
        self.signal_handlers: Dict[int, Callable] = {}
        #: Monitor hook fired when a thread raises Segfault.
        self.segv_hook: Optional[Callable] = None
        self.heap_brk = 0x0060_0000
        self.mmap_base = 0x7F00_0000_0000
        #: Arbitrary per-task scratch used by monitors (leader/follower
        #: runtime state lives here rather than in globals).
        self.monitor_state = None

    # -- threads ---------------------------------------------------------

    def add_thread(self, gen, name: Optional[str] = None,
                   daemon: Optional[bool] = None) -> Process:
        if daemon is None:
            daemon = self.daemon
        tid = self.pid * 100 + self._next_tid
        self._next_tid += 1
        proc = self.machine.spawn(
            self._thread_runner(gen),
            name=name or f"{self.name}.t{tid}",
            daemon=daemon,
        )
        self.threads.append(proc)
        self.thread_ids[proc] = tid
        return proc

    def current_tid(self) -> int:
        proc = self.kernel.sim.current_process
        return self.thread_ids.get(proc, self.pid * 100)

    def thread_index(self, proc=None) -> int:
        """Creation-order index of a thread within this task.

        Stable across variants (thread spawn order is deterministic), so
        NVX monitors use it to pair leader and follower threads (§3.3.3).
        """
        proc = proc or self.kernel.sim.current_process
        try:
            return self.threads.index(proc)
        except ValueError:
            return 0

    def _thread_runner(self, gen):
        try:
            result = yield from gen
        except Segfault as fault:
            self._on_segfault(fault)
            return None
        except StopTask as stop:
            self._exit(stop.status)
            return stop.status
        if not self.exited and all(
                t.done or t is self.kernel.sim.current_process
                for t in self.threads):
            self._exit(0 if result is None else 0)
        return result

    def _on_segfault(self, fault: Segfault) -> None:
        if self.segv_hook is not None:
            self.segv_hook(self, fault)
        else:
            self._exit(139)  # 128 + SIGSEGV

    def _exit(self, status: int) -> None:
        if self.exited:
            return
        self.exited = True
        self.exit_status = status
        current = self.kernel.sim.current_process
        for thread in self.threads:
            if thread is not current and not thread.done:
                thread.kill()
        self.fdtable.close_all()
        self.exit_waiters.notify_all(status)
        self.kernel.on_task_exit(self)

    def kill_now(self, status: int = 137) -> None:
        """External termination (SIGKILL path)."""
        if self.exited:
            return
        self.exited = True
        self.exit_status = status
        for thread in self.threads:
            if not thread.done:
                thread.kill()
        self.fdtable.close_all()
        self.exit_waiters.notify_all(status)
        self.kernel.on_task_exit(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.name} pid={self.pid}>"


class StopTask(Exception):
    """Raised by exit()/exit_group() wrappers to unwind a thread."""

    def __init__(self, status: int) -> None:
        super().__init__(f"exit({status})")
        self.status = status
