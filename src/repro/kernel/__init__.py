"""The simulated Linux-like kernel substrate."""

from repro.kernel.kernel import Kernel
from repro.kernel.task import (
    FdTable,
    PATCH_INT,
    PATCH_JMP,
    PATCH_VDSO,
    StopTask,
    SyscallGate,
    Task,
    VDSO_CALLS,
)
from repro.kernel.uapi import (
    SYSCALL_NAMES,
    SYSCALL_NUMBERS,
    Segfault,
    Syscall,
    SysError,
    SysResult,
    syscall_number,
)

__all__ = [
    "Kernel",
    "FdTable",
    "PATCH_INT",
    "PATCH_JMP",
    "PATCH_VDSO",
    "StopTask",
    "SyscallGate",
    "Task",
    "VDSO_CALLS",
    "SYSCALL_NAMES",
    "SYSCALL_NUMBERS",
    "Segfault",
    "Syscall",
    "SysError",
    "SysResult",
    "syscall_number",
]
