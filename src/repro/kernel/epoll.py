"""A minimal but faithful epoll implementation."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.kernel.uapi import (
    EBADF,
    EEXIST,
    ENOENT,
    EPOLL_CTL_ADD,
    EPOLL_CTL_DEL,
    EPOLL_CTL_MOD,
    EPOLLERR,
    EPOLLHUP,
)
from repro.kernel.vfs import FileDescription
from repro.sim.core import TIMEOUT
from repro.sim.sync import WaitQueue


class Epoll(FileDescription):
    """Interest list + ready notification, level-triggered."""

    kind = "epoll"

    def __init__(self, sim) -> None:
        super().__init__()
        self.sim = sim
        #: fd number → (description, interest mask)
        self.interest: Dict[int, Tuple[FileDescription, int]] = {}
        self.waiters = WaitQueue(sim)

    def ctl(self, op: int, fd: int, description: FileDescription,
            events: int) -> int:
        if op == EPOLL_CTL_ADD:
            if fd in self.interest:
                return -EEXIST
            self.interest[fd] = (description, events)
            if hasattr(description, "watchers"):
                description.watchers[self] = None
        elif op == EPOLL_CTL_MOD:
            if fd not in self.interest:
                return -ENOENT
            self.interest[fd] = (description, events)
        elif op == EPOLL_CTL_DEL:
            if fd not in self.interest:
                return -ENOENT
            description, _ = self.interest.pop(fd)
            if hasattr(description, "watchers"):
                description.watchers.pop(self, None)
        else:
            return -EBADF
        self.poke_all()
        return 0

    def ready_events(self) -> List[Tuple[int, int]]:
        """Level-triggered scan of the interest list.

        Descriptions whose last reference was closed are pruned, as Linux
        drops an fd from every epoll set when its description dies.
        """
        out = []
        dead = []
        for fd, (description, mask) in self.interest.items():
            if description.refcount <= 0:
                dead.append(fd)
                continue
            hit = description.poll_mask() & (mask | EPOLLHUP | EPOLLERR)
            if hit:
                out.append((fd, hit))
        for fd in dead:
            description, _ = self.interest.pop(fd)
            if hasattr(description, "watchers"):
                description.watchers.pop(self, None)
        return out

    def wait(self, max_events: int, timeout_ps=None):
        """Generator: block until ≥1 event (or timeout). Returns a list."""
        while True:
            ready = self.ready_events()
            if ready:
                return ready[:max_events]
            value = yield from self.waiters.wait(timeout_ps=timeout_ps)
            if value is TIMEOUT:
                return []

    def poke(self, _description) -> None:
        """Called by a watched pollable when its state changes."""
        if self.ready_events():
            self.waiters.notify_all()

    def poke_all(self) -> None:
        if self.ready_events():
            self.waiters.notify_all()

    def on_last_close(self) -> None:
        for description, _ in self.interest.values():
            if hasattr(description, "watchers"):
                description.watchers.pop(self, None)
        self.interest.clear()
