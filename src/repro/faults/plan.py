"""Seeded, deterministic fault plans.

A :class:`FaultPlan` is an ordered collection of :class:`Fault` records,
each firing exactly once at a *sim-time* trigger (``at_ps``) or a
*syscall-index* trigger (``at_syscall``: the N-th system call the target
variant dispatches).  Plans are plain data: building one never touches
the simulator, and :meth:`FaultPlan.random` derives everything from a
caller-supplied :class:`random.Random`, so a seed fully determines the
plan.  ``describe()`` renders a canonical one-line form used by the
chaos journal (byte-identical across runs of the same seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Optional, Tuple

from repro.errors import NvxError

#: Kill the target variant (SIGSEGV path; leader crashes promote).
CRASH = "crash"
#: Slow every syscall the target variant dispatches for a window.
STALL = "stall"
#: Overwrite a pending ring slot's sequence number (a lost/overwritten
#: publish).  Consumers must surface it as a diagnostic NvxError.
CORRUPT_SLOT = "corrupt_slot"
#: Half-written event: mutate payload-describing fields of a pending
#: slot without updating its integrity seal.
TORN_WRITE = "torn_write"
#: Network partition between two machines for a window (messages are
#: held and delivered when the partition heals — TCP retransmission).
PARTITION = "partition"
#: Per-message loss: each message in the window is delayed by one
#: retransmission timeout.
PACKET_LOSS = "packet_loss"
#: Flip one bit of guest (VX86) memory in the target variant's image.
BITFLIP = "bitflip"
#: Kill every variant hosted on one machine at once (power loss /
#: kernel panic).  The machine is also marked dead so leader
#: re-election never promotes onto it.
MACHINE_CRASH = "machine_crash"

#: Kinds that target a variant.
VARIANT_KINDS = frozenset({CRASH, STALL, BITFLIP})
#: Kinds that target a ring tuple.
RING_KINDS = frozenset({CORRUPT_SLOT, TORN_WRITE})
#: Kinds that target the network.
NETWORK_KINDS = frozenset({PARTITION, PACKET_LOSS})
#: Kinds that target a whole machine.
MACHINE_KINDS = frozenset({MACHINE_CRASH})

ALL_KINDS = VARIANT_KINDS | RING_KINDS | NETWORK_KINDS | MACHINE_KINDS


@dataclass(frozen=True)
class Fault:
    """One scheduled fault."""

    kind: str
    #: Target variant index (CRASH/STALL/BITFLIP); -1 = whoever is the
    #: leader when the fault fires.
    variant: int = -1
    #: Sim-time trigger, picoseconds.  Exactly one of at_ps/at_syscall.
    at_ps: Optional[int] = None
    #: Syscall-index trigger: fires just before the target variant
    #: dispatches its N-th system call (counted across its tasks).
    at_syscall: Optional[int] = None
    #: STALL: extra cycles charged per dispatch inside the window.
    stall_cycles: int = 0
    #: STALL/PARTITION/PACKET_LOSS window length, picoseconds.
    duration_ps: int = 0
    #: CORRUPT_SLOT/TORN_WRITE: ring tuple id to poison.
    ring: int = 0
    #: CORRUPT_SLOT/TORN_WRITE: offset into the pending window selecting
    #: which in-flight slot to poison (modulo the number pending).
    slot_offset: int = 0
    #: BITFLIP: guest address and bit number to flip.
    addr: int = 0
    bit: int = 0
    #: MACHINE_CRASH: name of the machine to kill.
    machine: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise NvxError(f"unknown fault kind {self.kind!r}")
        if (self.at_ps is None) == (self.at_syscall is None):
            raise NvxError(
                f"fault {self.kind}: exactly one of at_ps/at_syscall "
                f"must be set")
        if self.at_syscall is not None and self.kind not in VARIANT_KINDS:
            raise NvxError(
                f"fault {self.kind}: syscall-index triggers only apply "
                f"to variant-targeted faults")
        if self.kind in MACHINE_KINDS and not self.machine:
            raise NvxError(f"fault {self.kind}: machine name required")

    def describe(self) -> str:
        """Canonical journal form, stable across processes and runs."""
        trigger = (f"t={self.at_ps}" if self.at_ps is not None
                   else f"sys={self.at_syscall}")
        target = ""
        if self.kind in VARIANT_KINDS:
            target = f" v{self.variant}" if self.variant >= 0 else " leader"
        extra = ""
        if self.kind == STALL:
            extra = f" stall={self.stall_cycles}c/{self.duration_ps}ps"
        elif self.kind in RING_KINDS:
            extra = f" ring={self.ring} slot+{self.slot_offset}"
        elif self.kind in NETWORK_KINDS:
            extra = f" window={self.duration_ps}ps"
        elif self.kind == BITFLIP:
            extra = f" addr={self.addr:#x} bit={self.bit}"
        elif self.kind in MACHINE_KINDS:
            extra = f" machine={self.machine}"
        return f"{self.kind}[{trigger}{target}{extra}]"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of faults for one session run."""

    faults: Tuple[Fault, ...] = ()

    def __len__(self) -> int:
        return len(self.faults)

    def describe(self) -> str:
        if not self.faults:
            return "(no faults)"
        return " ".join(f.describe() for f in self.faults)

    @staticmethod
    def random(rng: Random, n_variants: int, horizon_ps: int,
               max_faults: int = 3,
               kinds: Tuple[str, ...] = (CRASH, CRASH, STALL,
                                         CORRUPT_SLOT, TORN_WRITE),
               ) -> "FaultPlan":
        """Draw a random plan from ``rng`` (fully seed-determined).

        ``horizon_ps`` bounds sim-time triggers (usually the fault-free
        run's duration); syscall-index triggers are drawn small so they
        land inside short workloads.  ``kinds`` may repeat entries to
        weight the draw.  At most one variant is crashed per plan *per
        variant index*, so at least one variant always survives.
        """
        faults = []
        crashed = set()
        for _ in range(rng.randint(1, max_faults)):
            kind = kinds[rng.randrange(len(kinds))]
            if kind == CRASH:
                candidates = [v for v in range(n_variants)
                              if v not in crashed]
                if len(candidates) <= 1:
                    continue  # keep one survivor
                variant = candidates[rng.randrange(len(candidates))]
                crashed.add(variant)
                if rng.random() < 0.5:
                    faults.append(Fault(CRASH, variant=variant,
                                        at_syscall=rng.randint(1, 12)))
                else:
                    faults.append(Fault(
                        CRASH, variant=variant,
                        at_ps=rng.randint(1, max(2, horizon_ps))))
            elif kind == STALL:
                faults.append(Fault(
                    STALL, variant=rng.randrange(n_variants),
                    at_syscall=rng.randint(1, 8),
                    stall_cycles=rng.randint(2_000, 50_000),
                    duration_ps=rng.randint(1, max(2, horizon_ps // 2))))
            elif kind in RING_KINDS:
                faults.append(Fault(
                    kind, at_ps=rng.randint(1, max(2, horizon_ps)),
                    ring=0, slot_offset=rng.randrange(8)))
            elif kind in NETWORK_KINDS:
                faults.append(Fault(
                    kind, at_ps=rng.randint(1, max(2, horizon_ps)),
                    duration_ps=rng.randint(1, max(2, horizon_ps // 4))))
            elif kind == BITFLIP:
                faults.append(Fault(
                    BITFLIP, variant=rng.randrange(n_variants),
                    at_ps=rng.randint(1, max(2, horizon_ps)),
                    addr=rng.randrange(1 << 16), bit=rng.randrange(8)))
        return FaultPlan(tuple(faults))

    @staticmethod
    def random_distributed(rng: Random, n_variants: int, horizon_ps: int,
                           placement: Tuple[str, ...],
                           ) -> "FaultPlan":
        """A distributed-session plan: whole-machine loss plus network
        trouble, drawn deterministically from ``rng``.

        ``placement`` names the machine hosting each variant (index i →
        variant i).  At most one machine is crashed, and never one whose
        loss would leave no surviving variant, so every plan keeps the
        session winnable.  A partition window and a classic
        single-variant fault are mixed in with seed-determined odds.
        """
        if len(placement) != n_variants:
            raise NvxError("placement must name one machine per variant")
        faults = []
        # Machines whose loss leaves at least one variant standing.
        crashable = sorted({m for m in placement
                            if sum(1 for p in placement if p != m) >= 1})
        if crashable and rng.random() < 0.8:
            machine = crashable[rng.randrange(len(crashable))]
            faults.append(Fault(
                MACHINE_CRASH, machine=machine,
                at_ps=rng.randint(1, max(2, horizon_ps))))
            survivors = [v for v in range(n_variants)
                         if placement[v] != machine]
        else:
            survivors = list(range(n_variants))
        if rng.random() < 0.5:
            faults.append(Fault(
                PARTITION, at_ps=rng.randint(1, max(2, horizon_ps)),
                duration_ps=rng.randint(1, max(2, horizon_ps // 4))))
        if len(survivors) > 1 and rng.random() < 0.4:
            # One classic fault against a survivor, keeping one alive.
            victim = survivors[rng.randrange(len(survivors))]
            faults.append(Fault(CRASH, variant=victim,
                                at_syscall=rng.randint(1, 12)))
        if not faults:
            faults.append(Fault(
                PACKET_LOSS, at_ps=rng.randint(1, max(2, horizon_ps)),
                duration_ps=rng.randint(1, max(2, horizon_ps // 4))))
        return FaultPlan(tuple(faults))
