"""Randomized chaos runs: seeded workloads under seeded fault plans.

``python -m repro chaos --seed N --plans K`` draws K (workload, fault
plan) pairs from one seed and runs each twice:

1. a **baseline** run with no faults, which yields the workload's
   expected outputs and the sim-time horizon faults are drawn from;
2. a **faulted** run of the *same* workload under the plan, with the
   always-on :class:`~repro.faults.invariants.InvariantChecker`
   attached.

The conformance statement checked per plan:

* every surviving variant produced exactly the baseline outputs
  (survivor-output equality — fault tolerance did not change results);
* the invariant checker observed **zero** violations, even in the
  faulted run — injected ring damage must be caught by the ring's own
  integrity machinery (and surface as a diagnostic drop/failover)
  *before* it ever reaches a consumer as data.

Everything — the data file, the workload parameters, the plan, the
journal text — derives from ``random.Random(seed)`` and sim state, so
two runs of the same seed emit byte-identical journals.  Workload
outputs are digests over syscall *data and deterministic return
values*; wall-clock-like values (``time()``, pids) are exercised but
never digested, because a failover legitimately shifts them.
"""

from __future__ import annotations

import hashlib
import random
from typing import Callable, Dict, List, Tuple

from repro.core import NvxSession, VersionSpec
from repro.core.config import SessionConfig
from repro.errors import DeadlockError
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import FaultPlan
from repro.world import World

#: Path and size of the deterministic data file every workload reads.
DATA_PATH = "/chaos/data"
DATA_SIZE = 4096

#: Ring capacity for chaos sessions: small enough that backpressure and
#: pending-slot windows actually occur.
RING_CAPACITY = 16

#: Machines hosting remote followers under ``placement="remote"``; the
#: leader stays on the server and followers round-robin across these.
REMOTE_MACHINES = ("replica1", "replica2")


def _remote_placement(n_variants: int) -> Dict[int, str]:
    """Variant index → machine name for a remote chaos session."""
    return {index: REMOTE_MACHINES[(index - 1) % len(REMOTE_MACHINES)]
            for index in range(1, n_variants)}


def _placement_names(n_variants: int, placement: str) -> Tuple[str, ...]:
    """The machine hosting each variant, in variant order."""
    if placement != "remote":
        return ("server",) * n_variants
    mapping = _remote_placement(n_variants)
    return tuple(mapping.get(index, "server")
                 for index in range(n_variants))


def _digest(parts) -> str:
    """Order-stable digest of a list of bytes/ints/strings."""
    h = hashlib.sha256()
    for part in parts:
        if isinstance(part, bytes):
            h.update(part)
        else:
            h.update(str(part).encode())
        h.update(b"|")
    return h.hexdigest()[:16]


def _reads(rng: random.Random, n_lo: int = 3, n_hi: int = 8
           ) -> List[Tuple[int, int]]:
    return [(rng.randrange(0, DATA_SIZE - 64), rng.randint(1, 64))
            for _ in range(rng.randint(n_lo, n_hi))]


# -- the workload family ------------------------------------------------------
#
# Each builder draws its parameters from ``rng`` ONCE (so baseline and
# faulted runs execute the identical program) and returns a factory
# producing a fresh ``main`` bound to a per-run ``outputs`` dict keyed
# by ``(vid, tag)``.

def _wl_pread_mix(rng: random.Random):
    reads = _reads(rng)

    def build(outputs: Dict):
        def main(ctx):
            vid = ctx.task.monitor_state.variant.vid
            parts = []
            fd = yield from ctx.open(DATA_PATH)
            for off, size in reads:
                parts.append((yield from ctx.pread(fd, size, off)))
            yield from ctx.close(fd)
            outputs[(vid, "main")] = _digest(parts)
            return outputs[(vid, "main")]
        return main
    return "pread-mix", build


def _wl_rw_cycle(rng: random.Random):
    from repro.kernel.uapi import O_CREAT, O_WRONLY

    chunks = [bytes([rng.randrange(256)]) * rng.randint(1, 96)
              for _ in range(rng.randint(3, 8))]
    reads = _reads(rng, 2, 4)

    def build(outputs: Dict):
        def main(ctx):
            vid = ctx.task.monitor_state.variant.vid
            parts = []
            out_fd = yield from ctx.open("/chaos/scratch",
                                         O_WRONLY | O_CREAT)
            for chunk in chunks:
                # write retvals are deterministic (len); the file is
                # never read back — a leader crash between execute and
                # publish may legitimately double-write it.
                parts.append((yield from ctx.write(out_fd, chunk)))
            yield from ctx.close(out_fd)
            in_fd = yield from ctx.open(DATA_PATH)
            for off, size in reads:
                parts.append((yield from ctx.pread(in_fd, size, off)))
            yield from ctx.close(in_fd)
            outputs[(vid, "main")] = _digest(parts)
            return outputs[(vid, "main")]
        return main
    return "rw-cycle", build


def _wl_spin_sleep(rng: random.Random):
    steps = [(rng.randint(500, 5000), rng.randint(1_000, 100_000))
             for _ in range(rng.randint(2, 5))]

    def build(outputs: Dict):
        def main(ctx):
            vid = ctx.task.monitor_state.variant.vid
            parts = []
            for ncycles, sleep_ps in steps:
                yield from ctx.compute(ncycles)
                parts.append((yield from ctx.nanosleep(sleep_ps)))
                # Exercise the time path but exclude the value: a
                # failover shifts wall-clock reads without being wrong.
                yield from ctx.time()
                parts.append((yield from ctx.getuid()))
            outputs[(vid, "main")] = _digest(parts)
            return outputs[(vid, "main")]
        return main
    return "spin-sleep", build


def _wl_threads(rng: random.Random):
    thread_reads = [_reads(rng, 2, 5) for _ in range(2)]
    main_reads = _reads(rng, 2, 5)

    def build(outputs: Dict):
        def main(ctx):
            vid = ctx.task.monitor_state.variant.vid

            def worker(tix, offs):
                def tmain(tctx):
                    parts = []
                    fd = yield from tctx.open(DATA_PATH)
                    for off, size in offs:
                        parts.append((yield from tctx.pread(fd, size,
                                                            off)))
                    yield from tctx.close(fd)
                    outputs[(vid, f"t{tix}")] = _digest(parts)
                return tmain

            for tix, offs in enumerate(thread_reads):
                yield from ctx.spawn_thread(worker(tix, offs))
            parts = []
            fd = yield from ctx.open(DATA_PATH)
            for off, size in main_reads:
                parts.append((yield from ctx.pread(fd, size, off)))
            yield from ctx.close(fd)
            outputs[(vid, "main")] = _digest(parts)
            return outputs[(vid, "main")]
        return main
    return "threads", build


def _wl_fork_child(rng: random.Random):
    child_reads = _reads(rng, 2, 5)
    parent_reads = _reads(rng, 2, 5)

    def build(outputs: Dict):
        def main(ctx):
            vid = ctx.task.monitor_state.variant.vid

            def child(cctx):
                cvid = cctx.task.monitor_state.variant.vid
                parts = []
                fd = yield from cctx.open(DATA_PATH)
                for off, size in child_reads:
                    parts.append((yield from cctx.pread(fd, size, off)))
                yield from cctx.close(fd)
                outputs[(cvid, "child")] = _digest(parts)

            pid = yield from ctx.fork(child)
            parts = []
            fd = yield from ctx.open(DATA_PATH)
            for off, size in parent_reads:
                parts.append((yield from ctx.pread(fd, size, off)))
            yield from ctx.close(fd)
            yield from ctx.wait4(pid)
            outputs[(vid, "main")] = _digest(parts)
            return outputs[(vid, "main")]
        return main
    return "fork-child", build


WORKLOADS: Tuple[Callable, ...] = (
    _wl_pread_mix, _wl_rw_cycle, _wl_spin_sleep, _wl_threads,
    _wl_fork_child,
)


# -- one plan = baseline run + faulted run ------------------------------------

def _run_workload(build, data: bytes, n_variants: int, plan,
                  checker: InvariantChecker, placement: str = "local"):
    """One session run; returns (session, world, outputs, deadlock)."""
    if placement == "remote":
        world = World(machine_names=("server", "client") + REMOTE_MACHINES)
        placement_map = _remote_placement(n_variants)
        # Each machine hosting a variant needs its own copy of the data
        # file: a promoted remote leader re-executes reads natively
        # against its local filesystem.
        for name in {"server", *placement_map.values()}:
            world.kernel.fs(world.machine(name)).create(DATA_PATH, data)
    else:
        world = World()
        placement_map = None
        world.kernel.fs(world.server).create(DATA_PATH, data)
    outputs: Dict = {}
    main = build(outputs)
    specs = [VersionSpec(f"v{i}", main) for i in range(n_variants)]
    config = SessionConfig(fault_plan=plan, invariants=checker,
                           ring_capacity=RING_CAPACITY,
                           placement=placement_map)
    session = NvxSession(world, specs, config=config).start()
    deadlock = None
    try:
        world.run()
    except DeadlockError as exc:
        deadlock = str(exc)
    checker.final_check()
    return session, world, outputs, deadlock


def run_plan(seed: int, index: int, placement: str = "local"
             ) -> Tuple[List[str], int, int]:
    """Run chaos plan ``index`` of ``seed``.

    Returns ``(journal_lines, output_mismatches, invariant_violations)``.
    """
    # int-arithmetic derivation: identical across processes and runs.
    rng = random.Random(seed * 1000003 + index)
    n_variants = rng.randint(2, 3)
    data = bytes(rng.randrange(256) for _ in range(DATA_SIZE))
    name, build = WORKLOADS[rng.randrange(len(WORKLOADS))](rng)

    where = "" if placement == "local" else f" placement={placement}"
    lines = [f"plan {index}: workload={name} variants={n_variants} "
             f"data={_digest([data])}{where}"]
    mismatches = 0

    # Baseline: expected outputs + the horizon faults are drawn from.
    base_checker = InvariantChecker(roundtrip_every=1)
    base_session, base_world, base_outputs, base_dead = _run_workload(
        build, data, n_variants, None, base_checker, placement)
    horizon = base_world.sim.now
    lines.append(f"  baseline: horizon={horizon}ps "
                 f"outputs={len(base_outputs)} ({base_checker.summary()})")
    if base_dead is not None:
        lines.append(f"  baseline DEADLOCK: {base_dead}")
        mismatches += 1

    # The expected output per tag is the baseline leader's digest; every
    # baseline variant must already agree with it (NVX correctness).
    reference: Dict[str, str] = {
        tag: digest for (vid, tag), digest in sorted(base_outputs.items())
        if vid == 0}
    for vid in range(n_variants):
        for tag, expected in reference.items():
            if base_outputs.get((vid, tag)) != expected:
                lines.append(f"  baseline MISMATCH: v{vid}/{tag}: "
                             f"{base_outputs.get((vid, tag))} != "
                             f"{expected}")
                mismatches += 1

    # Faulted run of the identical workload.  Remote sessions draw from
    # the distributed family (whole-machine crashes, partitions).
    if placement == "remote":
        plan = FaultPlan.random_distributed(
            rng, n_variants, max(2, horizon),
            _placement_names(n_variants, placement))
    else:
        plan = FaultPlan.random(rng, n_variants, max(2, horizon))
    lines.append(f"  plan: {plan.describe()}")
    fault_checker = InvariantChecker(roundtrip_every=1)
    session, _world, outputs, dead = _run_workload(
        build, data, n_variants, plan, fault_checker, placement)
    for entry in session.injector.log:
        lines.append(f"  inject: {entry}")
    if dead is not None:
        lines.append(f"  fault-run DEADLOCK: {dead}")
        mismatches += 1

    survivors = [v for v in session.variants if v.alive]
    if not survivors:
        lines.append("  survivors: none (cascading faults)")
    else:
        tags = ["{}v{}".format("*" if v.is_leader else "", v.vid)
                for v in survivors]
        lines.append(f"  survivors: {' '.join(tags)}")
        checked = 0
        for variant in survivors:
            for tag, expected in reference.items():
                got = outputs.get((variant.vid, tag))
                checked += 1
                if got != expected:
                    mismatches += 1
                    lines.append(
                        f"  output MISMATCH: v{variant.vid}/{tag}: "
                        f"{got} != {expected}")
        lines.append(f"  outputs: {checked} survivor outputs checked "
                     f"against baseline")
    lines.append(f"  fault-run {fault_checker.summary()}")
    violations = (len(base_checker.violations)
                  + len(fault_checker.violations))
    for message in base_checker.violations + fault_checker.violations:
        lines.append(f"  VIOLATION: {message}")
    status = "OK" if not mismatches and not violations else "FAIL"
    lines.append(f"  result: {status}")
    return lines, mismatches, violations


def run_chaos(seed: int, plans: int, placement: str = "local"
              ) -> Tuple[str, int]:
    """Run ``plans`` chaos plans; returns ``(journal_text, failures)``.

    The journal is byte-identical across runs of the same arguments;
    ``failures`` counts output mismatches plus invariant violations.
    ``placement="remote"`` runs every session with followers on remote
    machines over the networked transport, under distributed plans.
    """
    where = "" if placement == "local" else f" placement={placement}"
    lines = [f"# chaos seed={seed} plans={plans}{where}"]
    total_mismatches = 0
    total_violations = 0
    for index in range(plans):
        plan_lines, mismatches, violations = run_plan(seed, index,
                                                      placement)
        lines.extend(plan_lines)
        total_mismatches += mismatches
        total_violations += violations
    lines.append(f"total: {plans} plans, {total_mismatches} output "
                 f"mismatches, {total_violations} invariant violations")
    return "\n".join(lines) + "\n", total_mismatches + total_violations
