"""Executes a :class:`~repro.faults.plan.FaultPlan` against a live
session.

Two trigger mechanisms, both fully deterministic:

* **sim-time triggers** (``at_ps``) are armed on the simulator's event
  heap when the session starts; when one fires, the injector acts from
  *outside* any process — interrupting a victim thread with a
  :class:`Segfault`, poisoning a pending ring slot, flipping a guest
  memory bit — exactly as asynchronous hardware/kernel failures land in
  the real system;
* **syscall-index triggers** (``at_syscall``) ride the task's
  ``SyscallGate.pre_dispatch`` hook: the injector counts the target
  variant's dispatches (across all its tasks) and fires just before the
  N-th one, in the victim's own context.

A fault whose target is already gone (variant crashed earlier, slot
window empty) is *skipped*, and the skip is journalled — the journal of
fired/skipped faults is part of the chaos run's deterministic output.

Network faults live in :class:`NetworkFaults`, a small hook the
:class:`~repro.sim.network.Network` consults per delivery: partitions
hold messages and release them when the window heals (TCP
retransmission: traffic is delayed, never silently dropped), packet
loss delays individual messages by a retransmission timeout.  Liveness
is preserved by construction, so a fault plan can never turn a healthy
workload into a hang.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.costmodel import US_PS, cycles
from repro.kernel.uapi import Segfault
from repro.sim.core import Compute

from repro.faults.plan import (
    BITFLIP,
    CORRUPT_SLOT,
    CRASH,
    MACHINE_CRASH,
    NETWORK_KINDS,
    PARTITION,
    STALL,
    TORN_WRITE,
    Fault,
    FaultPlan,
)

#: Modelled TCP retransmission timeout for a lost packet.
RETRANSMIT_PS = 200 * US_PS

#: Deterministic per-message loss probability inside a loss window.
LOSS_PROBABILITY = 0.5


class NetworkFaults:
    """Per-delivery fault hook installed on :class:`Network.faults`.

    Window membership is decided by *send* time (``now``); the loss
    draw uses a private seeded rng, and the network's message order is
    itself deterministic, so reruns lose exactly the same packets.
    """

    def __init__(self, partitions: List[Tuple[int, int]],
                 loss_windows: List[Tuple[int, int]],
                 seed: int = 0) -> None:
        self.partitions = sorted(partitions)
        self.loss_windows = sorted(loss_windows)
        self._rng = random.Random(seed)
        self.messages_held = 0
        self.messages_lost = 0

    def adjust(self, src_name: str, dst_name: str, now: int,
               arrival: int) -> int:
        """Return the (possibly delayed) arrival time for one message."""
        transit = arrival - now
        for start, end in self.partitions:
            if start <= now < end:
                # Held at the sender until the partition heals, then
                # retransmitted: full transit time after the heal.
                self.messages_held += 1
                arrival = max(arrival, end + transit)
        for start, end in self.loss_windows:
            if start <= now < end and self._rng.random() < LOSS_PROBABILITY:
                self.messages_lost += 1
                arrival += RETRANSMIT_PS
        return arrival


class FaultInjector:
    """Drives one plan against one :class:`NvxSession`."""

    def __init__(self, session, plan: FaultPlan) -> None:
        self.session = session
        self.plan = plan
        #: Journal of "fired"/"skipped" lines, in deterministic order.
        self.log: List[str] = []
        self._sys_counts: Dict[int, int] = {}
        #: vid → at_syscall-sorted pending faults for that variant.
        self._sys_faults: Dict[int, List[Fault]] = {}
        #: vid → (window_end_ps, extra_cycles) for an open stall window.
        self._stall_windows: Dict[int, Tuple[int, int]] = {}
        self.network_faults: Optional[NetworkFaults] = None
        for fault in plan.faults:
            if fault.at_syscall is not None:
                self._sys_faults.setdefault(fault.variant, []).append(fault)
        for pending in self._sys_faults.values():
            pending.sort(key=lambda f: f.at_syscall)

    # -- wiring -----------------------------------------------------------

    def arm(self) -> None:
        """Schedule every sim-time fault; install the network hook."""
        sim = self.session.world.sim
        partitions, losses = [], []
        for fault in self.plan.faults:
            if fault.at_ps is None:
                continue
            if fault.kind in NETWORK_KINDS:
                window = (fault.at_ps, fault.at_ps + fault.duration_ps)
                (partitions if fault.kind == PARTITION
                 else losses).append(window)
                continue
            sim.schedule(max(0, fault.at_ps - sim.now),
                         lambda f=fault: self._fire_async(f))
        if partitions or losses:
            self.network_faults = NetworkFaults(partitions, losses)
            self.session.world.network.faults = self.network_faults

    def on_bind(self, variant, task) -> None:
        """Install the counting pre-dispatch hook on a newly bound task."""
        if (variant.vid in self._sys_faults
                or any(f.kind == STALL for f in self.plan.faults)):
            task.gate.pre_dispatch = self._make_pre_dispatch(variant.vid)

    # -- syscall-index triggers (victim context) ---------------------------

    def _make_pre_dispatch(self, vid: int):
        def pre_dispatch(task, call):
            count = self._sys_counts.get(vid, 0) + 1
            self._sys_counts[vid] = count
            pending = self._sys_faults.get(vid)
            while pending and pending[0].at_syscall <= count:
                fault = pending.pop(0)
                if fault.kind == CRASH:
                    self._note(fault, f"fired in {call.name}")
                    raise Segfault(
                        f"injected crash at syscall {count} ({call.name})")
                if fault.kind == STALL:
                    sim = task.kernel.sim
                    self._stall_windows[vid] = (
                        sim.now + fault.duration_ps, fault.stall_cycles)
                    self._note(fault, "window opened")
                elif fault.kind == BITFLIP:
                    self._bitflip(fault)
            window = self._stall_windows.get(vid)
            if window is not None:
                end_ps, extra_cycles = window
                if task.kernel.sim.now < end_ps:
                    yield Compute(cycles(extra_cycles))
                else:
                    del self._stall_windows[vid]
        return pre_dispatch

    # -- sim-time triggers (asynchronous context) --------------------------

    def _fire_async(self, fault: Fault) -> None:
        if fault.kind == CRASH:
            self._crash(fault)
        elif fault.kind == STALL:
            target = self._target(fault)
            if target is None:
                self._note(fault, "skipped: target gone")
                return
            sim = self.session.world.sim
            self._stall_windows[target.vid] = (
                sim.now + fault.duration_ps, fault.stall_cycles)
            self._note(fault, "window opened")
        elif fault.kind in (CORRUPT_SLOT, TORN_WRITE):
            self._poison_slot(fault)
        elif fault.kind == BITFLIP:
            self._bitflip(fault)
        elif fault.kind == MACHINE_CRASH:
            self._machine_crash(fault)

    def _target(self, fault: Fault):
        """Resolve the victim variant; None when it no longer exists."""
        if fault.variant < 0:
            return self.session.leader
        if fault.variant >= len(self.session.variants):
            return None
        variant = self.session.variants[fault.variant]
        return variant if variant.alive else None

    def _crash(self, fault: Fault) -> None:
        variant = self._target(fault)
        if variant is None:
            self._note(fault, "skipped: target gone")
            return
        for task in variant.tasks:
            if task.exited:
                continue
            for thread in task.threads:
                if not thread.done:
                    self._note(fault, f"fired in {thread.name} "
                                      f"({thread.state})")
                    thread.interrupt(Segfault(
                        f"injected crash of {variant.name}"))
                    return
        self._note(fault, "skipped: no live thread")

    def _machine_crash(self, fault: Fault) -> None:
        """Whole-machine loss: mark the machine dead for leader
        election, then kill every variant hosted on it at once."""
        victims = [v for v in self.session.variants
                   if v.alive and v.machine.name == fault.machine]
        if not victims:
            self._note(fault, "skipped: no live variant on machine")
            return
        dead = getattr(self.session, "dead_machines", None)
        if dead is not None:
            dead.add(fault.machine)
        killed = []
        for variant in victims:
            for task in variant.tasks:
                if task.exited:
                    continue
                for thread in task.threads:
                    if not thread.done:
                        thread.interrupt(Segfault(
                            f"machine {fault.machine} crashed under "
                            f"{variant.name}"))
                        killed.append(variant.name)
                        break
                else:
                    continue
                break
        self._note(fault, f"fired: killed {' '.join(killed)}"
                   if killed else "skipped: no live thread")

    def _poison_slot(self, fault: Fault) -> None:
        tuples = self.session.tuples
        if not tuples:
            self._note(fault, "skipped: no rings")
            return
        ring = tuples[fault.ring % len(tuples)].ring
        floor = ring.min_cursor()
        pending = ring.head - floor
        if pending <= 0 or not ring.cursors:
            self._note(fault, "skipped: no pending slots")
            return
        seq = floor + fault.slot_offset % pending
        event = ring.slots[seq % ring.capacity]
        if fault.kind == CORRUPT_SLOT:
            # A lost/overwritten publish: the slot no longer holds the
            # sequence its consumers are gated on.
            event.seq += ring.capacity
        else:
            # Half-written event: the result word changes under the
            # consumer's feet; the integrity seal stays stale.
            event.retval ^= 0x5A5A
        self._note(fault, f"poisoned seq {seq} on {ring.name}")
        # Parked consumers re-examine the ring (and surface the damage
        # in their own context) instead of sleeping through it.
        ring.wake_all()

    def _bitflip(self, fault: Fault) -> None:
        variant = self._target(fault)
        if variant is None:
            self._note(fault, "skipped: target gone")
            return
        loaded = getattr(variant, "loaded", None)
        if loaded is None:
            self._note(fault, "skipped: no guest image")
            return
        if loaded.space.bitflip(fault.addr, fault.bit):
            self._note(fault, f"flipped bit {fault.bit} "
                              f"at {fault.addr:#x}")
        else:
            self._note(fault, "skipped: address unmapped")

    # -- journal ----------------------------------------------------------

    def _note(self, fault: Fault, what: str) -> None:
        now = self.session.world.sim.now
        self.log.append(f"t={now} {fault.describe()}: {what}")
