"""The NVX conformance oracle: an always-on invariant checker.

One :class:`InvariantChecker` attaches to a session and continuously
asserts the contract Varan's robustness claims rest on:

* **ring sequence numbers are dense and monotonic** — every publish on a
  ring carries seq = previous + 1, no gaps, no reordering;
* **failover drops no external event** — the Lamport clocks stamped on
  published events form the dense sequence 1, 2, 3, … per ring *even
  across leader promotion*: a new leader that skipped part of the dead
  leader's backlog would publish with a too-small clock and be caught;
* **consumption matches publication** — every event a follower (or the
  record client) consumes is compared against what was published at that
  sequence number, in order, per consumer;
* **record → replay round-trips byte-identically** — published events
  are pushed through the §5.4 log codec (encode → decode → re-encode)
  and both byte strings and field values must survive the trip.

The checker is pure observation: it charges no virtual time and draws no
randomness, so enabling it cannot change any simulated result — which is
why sessions keep it on by default (``SessionConfig(invariants=False)``
opts out).  Violations are recorded, counted process-wide (so sweep
runners can fail loudly), and emitted as tracer instants when a tracer
is armed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.events import Event
from repro.recordreplay.logfile import decode_records, encode_event

#: Round-trip every N-th published event through the log codec in the
#: always-on configuration (1 = every event, used by chaos runs).
DEFAULT_ROUNDTRIP_EVERY = 8

#: Process-wide violation count, so a sweep worker can detect that *any*
#: session it ran broke the contract without holding session references.
_process_violations = 0


def process_violations() -> int:
    """Total invariant violations seen by any checker in this process."""
    return _process_violations


class _RingState:
    """Per-ring bookkeeping (keyed by ring name, which is unique within
    a session)."""

    __slots__ = ("next_seq", "next_clock", "consumed_seq")

    def __init__(self) -> None:
        self.next_seq: Optional[int] = None
        self.next_clock = 1
        #: consumer vid -> next sequence number it must consume.
        self.consumed_seq: Dict[int, int] = {}


class InvariantChecker:
    """Continuous conformance oracle for one (or more) sessions."""

    def __init__(self, roundtrip_every: int = DEFAULT_ROUNDTRIP_EVERY
                 ) -> None:
        self.roundtrip_every = max(1, roundtrip_every)
        self.violations: List[str] = []
        self.events_checked = 0
        self.consumes_checked = 0
        self.roundtrips_checked = 0
        self.lockstep_rounds = 0
        self._rings: Dict[str, _RingState] = {}
        self._sessions: List = []

    # -- wiring ------------------------------------------------------------

    def attach_session(self, session) -> None:
        """Register a session; its rings report through this checker."""
        self._sessions.append(session)

    def _state(self, ring) -> _RingState:
        state = self._rings.get(ring.name)
        if state is None:
            state = self._rings[ring.name] = _RingState()
        return state

    def violation(self, message: str, tracer=None, sim=None) -> None:
        global _process_violations
        self.violations.append(message)
        _process_violations += 1
        if tracer is not None and sim is not None:
            tracer.instant_here(sim, "invariant", "violation",
                                (("message", message),))

    # -- ring observer hooks (called by RingBuffer) ------------------------

    def on_publish(self, ring, event: Event) -> None:
        """Publish-side checks: dense seqs, dense clocks, log round-trip."""
        self.events_checked += 1
        state = self._state(ring)
        if state.next_seq is not None and event.seq != state.next_seq:
            self.violation(
                f"{ring.name}: non-monotonic publish: seq {event.seq} "
                f"after {state.next_seq - 1}", ring.tracer, ring.sim)
        state.next_seq = event.seq + 1
        if event.clock != state.next_clock:
            self.violation(
                f"{ring.name}: external event dropped or duplicated "
                f"across failover: published clock {event.clock}, "
                f"expected {state.next_clock}", ring.tracer, ring.sim)
        state.next_clock = event.clock + 1
        if self.events_checked % self.roundtrip_every == 0:
            self._check_roundtrip(ring, event)

    def on_consume(self, ring, vid: int, event: Event) -> None:
        """Consume-side checks: in-order, gap-free consumption per vid.

        Field integrity is already guarded by the ring's own seal (see
        ``RingBuffer.advance``); here we assert stream shape.
        """
        self.consumes_checked += 1
        state = self._state(ring)
        expected = state.consumed_seq.get(vid)
        if expected is not None and event.seq != expected:
            self.violation(
                f"{ring.name}: consumer {vid} consumed seq {event.seq}, "
                f"expected {expected}", ring.tracer, ring.sim)
        state.consumed_seq[vid] = event.seq + 1

    def _check_roundtrip(self, ring, event: Event) -> None:
        """Encode → decode → re-encode must be byte-identical (§5.4)."""
        self.roundtrips_checked += 1
        payload = b"" if event.payload is None else bytes(event.payload.data)
        try:
            first = encode_event(event, payload)
            decoded, decoded_payload = next(iter(decode_records(first)))
            second = encode_event(decoded, decoded_payload)
        except Exception as exc:  # noqa: BLE001 - any codec failure is a finding
            self.violation(
                f"{ring.name}: record/replay codec failed on "
                f"{event.etype}:{event.name} seq {event.seq}: {exc!r}",
                ring.tracer, ring.sim)
            return
        if first != second or decoded_payload != payload:
            self.violation(
                f"{ring.name}: record/replay round-trip not "
                f"byte-identical for {event.etype}:{event.name} "
                f"seq {event.seq}", ring.tracer, ring.sim)

    # -- lockstep hook (called by LockstepSession) -------------------------

    def on_lockstep_round(self, profile_name: str, round_id: int,
                          names, caught: bool = False) -> None:
        """One barrier rendezvous completed; all versions must have
        arrived at the same system call.  A mixed round the monitor
        itself flagged (``caught=True``, the expected fatal-divergence
        path) is conformant — the violation is a mixed round that
        *escaped* the monitor."""
        self.lockstep_rounds += 1
        distinct = sorted(set(names))
        if len(distinct) > 1 and not caught:
            self.violation(
                f"lockstep[{profile_name}]: round {round_id} mixed "
                f"system calls {distinct} escaped the monitor")

    # -- end-of-run checks -------------------------------------------------

    def final_check(self) -> List[str]:
        """Post-run assertions over every attached session.

        Every live follower must have drained its ring completely (a
        parked, starved follower at end-of-run means an event it was
        owed never arrived), and a session that survived must still
        have a leader.
        """
        for session in self._sessions:
            leader = session.leader
            alive = [v for v in session.variants if v.alive]
            if alive and leader is None:
                self.violation(
                    "session ended with live variants but no leader")
            for tuple_ in session.tuples:
                ring = tuple_.ring
                for vid, cursor in sorted(ring.cursors.items()):
                    if cursor < ring.head:
                        self.violation(
                            f"{ring.name}: consumer {vid} ended "
                            f"{ring.head - cursor} events behind "
                            f"(published {ring.head}, consumed {cursor})")
        return self.violations

    def summary(self) -> str:
        return (f"invariants: {self.events_checked} publishes, "
                f"{self.consumes_checked} consumes, "
                f"{self.roundtrips_checked} roundtrips, "
                f"{len(self.violations)} violations")
