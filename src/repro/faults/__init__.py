"""Seeded fault injection and the always-on NVX invariant checker.

``plan`` describes *what* goes wrong (plain data), ``injector``
executes it against a live session, ``invariants`` continuously checks
that the session's externally visible behaviour still honours the NVX
contract, and ``chaos`` ties the three into seeded randomized runs
(``python -m repro chaos``).
"""

from repro.faults.injector import (
    LOSS_PROBABILITY,
    RETRANSMIT_PS,
    FaultInjector,
    NetworkFaults,
)
from repro.faults.invariants import (
    DEFAULT_ROUNDTRIP_EVERY,
    InvariantChecker,
    process_violations,
)
from repro.faults.plan import (
    ALL_KINDS,
    BITFLIP,
    CORRUPT_SLOT,
    CRASH,
    NETWORK_KINDS,
    PACKET_LOSS,
    PARTITION,
    RING_KINDS,
    STALL,
    TORN_WRITE,
    VARIANT_KINDS,
    Fault,
    FaultPlan,
)

__all__ = [
    "ALL_KINDS",
    "BITFLIP",
    "CORRUPT_SLOT",
    "CRASH",
    "DEFAULT_ROUNDTRIP_EVERY",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "InvariantChecker",
    "LOSS_PROBABILITY",
    "NETWORK_KINDS",
    "NetworkFaults",
    "PACKET_LOSS",
    "PARTITION",
    "RETRANSMIT_PS",
    "RING_KINDS",
    "STALL",
    "TORN_WRITE",
    "VARIANT_KINDS",
    "process_violations",
    "run_chaos",
    "run_plan",
]


def run_chaos(seed: int, plans: int):
    """Lazy re-export: chaos pulls in the whole session stack."""
    from repro.faults.chaos import run_chaos as _run
    return _run(seed, plans)


def run_plan(seed: int, index: int):
    from repro.faults.chaos import run_plan as _run
    return _run(seed, index)
