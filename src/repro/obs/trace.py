"""Sim-clock-aware tracing (the observability tentpole).

A :class:`Tracer` records typed *spans* and *instants* keyed by
``(sim_time, seq, machine, task)``.  Every timestamp is virtual
picoseconds taken from the simulator clock — never wall clock — so a
trace of a fixed-seed run is byte-identical run to run.

The disabled path is near-zero-cost by construction: components hold a
``tracer`` attribute that defaults to ``None`` and every hot-path
emission site is a single attribute load plus an ``is not None`` check.
No record objects, closures or strings are built unless a tracer is
actually installed.

Sinks are pluggable: :class:`MemorySink` (default), :class:`JsonlSink`
(one JSON object per line, the determinism-test format) and
:class:`ChromeTraceSink` (Chrome ``trace_event`` JSON for
``chrome://tracing`` / Perfetto, grouping machines as processes and
tasks as threads).

A module-level *active tracer* lets the CLI install a tracer that
simulators constructed deep inside experiment drivers pick up
automatically: ``Simulator.__init__`` consults :func:`active`.
"""

from __future__ import annotations

import json
from collections import namedtuple
from contextlib import contextmanager
from typing import List, Optional, Tuple

# Span/instant categories.  Plain strings so emission sites in the sim
# core need no imports; listed here as the canonical vocabulary.
CAT_SYSCALL = "syscall"  # gate dispatch spans
CAT_RING = "ring"  # publish/consume instants, backpressure stalls
CAT_WAIT = "wait"  # block/wake/park instants, await-event spans
CAT_DIVERGENCE = "divergence"  # rule-evaluated and fatal divergences
CAT_FAILOVER = "failover"  # crash, promotion, follower drop
CAT_SESSION = "session"  # session setup spans

#: Chrome trace_event phase codes used by this tracer.
PH_COMPLETE = "X"
PH_INSTANT = "i"

#: One trace record.  ``ts``/``dur`` are virtual picoseconds; ``seq`` is
#: the tracer-global emission sequence (total order even at equal
#: timestamps); ``args`` is a tuple of (key, value) pairs.
TraceRecord = namedtuple(
    "TraceRecord", "ts seq machine task cat name ph dur args")


class MemorySink:
    """Buffers records in a list (``tracer.records`` reads the first one)."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def record(self, rec: TraceRecord) -> None:
        self.records.append(rec)

    def close(self) -> None:
        pass


class JsonlSink:
    """Streams one JSON object per record to a file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "w")

    def record(self, rec: TraceRecord) -> None:
        self._fh.write(jsonl_line(rec))
        self._fh.write("\n")

    def close(self) -> None:
        self._fh.close()


class ChromeTraceSink:
    """Buffers records and writes a Chrome trace_event file on close."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.records: List[TraceRecord] = []

    def record(self, rec: TraceRecord) -> None:
        self.records.append(rec)

    def close(self) -> None:
        with open(self.path, "w") as fh:
            fh.write(chrome_trace_json(self.records))


class Tracer:
    """Collects deterministic spans/instants from the simulation."""

    __slots__ = ("sinks", "_seq", "_worlds", "_world_tag")

    def __init__(self, sinks=None) -> None:
        self.sinks = list(sinks) if sinks else [MemorySink()]
        self._seq = 0
        self._worlds = 0
        #: Prefix applied to machine names so sequentially-built worlds
        #: (e.g. figure4's native/intercept/nvx testbeds) stay separate
        #: process groups in the exported timeline.
        self._world_tag: Optional[str] = None

    @property
    def records(self) -> List[TraceRecord]:
        """Records of the first in-memory sink (convenience accessor)."""
        for sink in self.sinks:
            if isinstance(sink, (MemorySink, ChromeTraceSink)):
                return sink.records
        return []

    def new_world(self) -> str:
        """Register one more World; subsequent records carry its tag."""
        tag = f"w{self._worlds}"
        self._worlds += 1
        self._world_tag = tag
        return tag

    # -- emission ------------------------------------------------------

    def instant(self, ts: int, machine: str, task: str, cat: str,
                name: str, args: Tuple = ()) -> None:
        self._emit(ts, machine, task, cat, name, PH_INSTANT, 0, args)

    def span(self, ts: int, dur: int, machine: str, task: str, cat: str,
             name: str, args: Tuple = ()) -> None:
        self._emit(ts, machine, task, cat, name, PH_COMPLETE, dur, args)

    def instant_here(self, sim, cat: str, name: str,
                     args: Tuple = ()) -> None:
        """Instant attributed to the currently-executing process."""
        proc = sim.current_process
        if proc is None:
            self._emit(sim.now, "-", "-", cat, name, PH_INSTANT, 0, args)
        else:
            self._emit(sim.now, proc.machine.name, proc.name, cat, name,
                       PH_INSTANT, 0, args)

    def span_here(self, sim, start_ts: int, cat: str, name: str,
                  args: Tuple = ()) -> None:
        """Span from ``start_ts`` to now, attributed like instant_here."""
        proc = sim.current_process
        if proc is None:
            self._emit(start_ts, "-", "-", cat, name, PH_COMPLETE,
                       sim.now - start_ts, args)
        else:
            self._emit(start_ts, proc.machine.name, proc.name, cat, name,
                       PH_COMPLETE, sim.now - start_ts, args)

    def _emit(self, ts, machine, task, cat, name, ph, dur, args) -> None:
        if self._world_tag is not None:
            machine = f"{self._world_tag}:{machine}"
        self._seq += 1
        rec = TraceRecord(ts, self._seq, machine, task, cat, name, ph,
                          dur, args)
        for sink in self.sinks:
            sink.record(rec)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


# -- serialisation ----------------------------------------------------------

def jsonl_line(rec: TraceRecord) -> str:
    """One record as a canonical (sorted-key, compact) JSON line."""
    return json.dumps(
        {"ts": rec.ts, "seq": rec.seq, "machine": rec.machine,
         "task": rec.task, "cat": rec.cat, "name": rec.name,
         "ph": rec.ph, "dur": rec.dur, "args": dict(rec.args)},
        sort_keys=True, separators=(",", ":"))


def chrome_trace_json(records) -> str:
    """Records as a Chrome ``trace_event`` JSON document.

    Machines map to processes and tasks to threads; pid/tid integers are
    assigned in first-seen order (deterministic, since record order is),
    with ``process_name``/``thread_name`` metadata events so the viewer
    shows the simulation's names.  ``ts``/``dur`` are microseconds, the
    unit the format specifies; the ps→µs division is the same float op
    every run, so output bytes stay identical for a fixed seed.
    """
    pids: dict = {}
    tids: dict = {}
    meta: List[dict] = []
    events: List[dict] = []
    for rec in records:
        pid = pids.get(rec.machine)
        if pid is None:
            pid = pids[rec.machine] = len(pids) + 1
            meta.append({"ph": "M", "pid": pid, "tid": 0,
                         "name": "process_name",
                         "args": {"name": rec.machine}})
        key = (rec.machine, rec.task)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            meta.append({"ph": "M", "pid": pid, "tid": tid,
                         "name": "thread_name",
                         "args": {"name": rec.task}})
        args = dict(rec.args)
        args["seq"] = rec.seq
        event = {"name": rec.name, "cat": rec.cat, "ph": rec.ph,
                 "ts": rec.ts / 1e6, "pid": pid, "tid": tid,
                 "args": args}
        if rec.ph == PH_COMPLETE:
            event["dur"] = rec.dur / 1e6
        if rec.ph == PH_INSTANT:
            event["s"] = "t"  # thread-scoped instant
        events.append(event)
    return json.dumps({"traceEvents": meta + events,
                       "displayTimeUnit": "ns"},
                      sort_keys=True, separators=(",", ":"))


# -- active-tracer registry --------------------------------------------------

_active: Optional[Tracer] = None


def activate(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide active tracer: every
    Simulator constructed while it is active records into it."""
    global _active
    _active = tracer
    return tracer


def deactivate() -> None:
    global _active
    _active = None


def active() -> Optional[Tracer]:
    return _active


@contextmanager
def tracing(tracer: Optional[Tracer] = None):
    """Context manager: activate a tracer for the duration of a run."""
    tracer = tracer or Tracer()
    activate(tracer)
    try:
        yield tracer
    finally:
        deactivate()
